#![warn(missing_docs)]

//! `treequery` — efficient query processing on tree-structured data.
//!
//! A from-scratch Rust reproduction of Christoph Koch, *Processing Queries
//! on Tree-Structured Data Efficiently* (PODS 2006). This facade crate
//! re-exports the whole workspace; see [`Engine`] for the unified entry
//! point and `DESIGN.md` in the repository root for the system inventory.
//!
//! ```
//! use treequery::{Engine, parse_term};
//!
//! let tree = parse_term("site(people(person(name) person) regions)").unwrap();
//! let engine = Engine::new(&tree);
//! let people = engine.xpath("//person").unwrap();
//! assert_eq!(people.len(), 2);
//! let answer = engine.cq("q(x) :- label(x, person), child(x, y), label(y, name).").unwrap();
//! assert_eq!(answer.tuples.len(), 1);
//! ```

pub use treequery_core::*;
