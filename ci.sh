#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# The workspace builds offline (path-crate shims, committed Cargo.lock),
# so this script needs no network access.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test (TREEQUERY_WORKERS=1)"
TREEQUERY_WORKERS=1 cargo test --workspace -q

echo "==> cargo test (TREEQUERY_WORKERS=4)"
TREEQUERY_WORKERS=4 cargo test --workspace -q

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> noop-recorder + counting-allocator overhead gate"
cargo run -p treequery-bench --release --bin harness -q -- --check-noop-overhead

echo "==> zero-alloc steady-state gate (workers 1 and 4)"
# The executor kernels (sweep, semijoin, structural join, union merge)
# must not allocate on a warm run; asserted via AllocScope attribution
# at both worker counts, under both pool-sizing env settings.
TREEQUERY_WORKERS=1 cargo test -q -p treequery-core --test zero_alloc
TREEQUERY_WORKERS=4 cargo test -q -p treequery-core --test zero_alloc

echo "==> continuous benchmark trajectory gate"
# Runs the pinned suite and fails on >15% wall (calibration-scaled,
# persisting across re-measurement) or >5% allocated-byte regressions
# against the committed seed baseline, or on any steady-state allocation
# in a set-at-a-time sweep case. After an intentional perf change,
# regenerate with: harness bench --out crates/bench/BENCH_seed.json
BENCH_OUT="$(mktemp -t treequery-bench.XXXXXX.json)"
trap 'rm -f "$BENCH_OUT"' EXIT
cargo run -p treequery-bench --release --bin harness -q -- bench \
    --out "$BENCH_OUT" --baseline crates/bench/BENCH_seed.json

echo "==> harness --report round-trip smoke (E19)"
REPORT="$(mktemp -t treequery-report.XXXXXX.json)"
trap 'rm -f "$BENCH_OUT" "$REPORT"' EXIT
cargo run -p treequery-bench --release --bin harness -q -- --report "$REPORT" e12 e19
grep -q '"e19"' "$REPORT"

echo "==> differential fuzz gate (seed 0xC0C4)"
# Seed-deterministic campaign; exits 1 on any strategy disagreement or
# metamorphic-law violation. New reproducers land in tests/corpus/ —
# commit them so the bug stays covered after the fix.
cargo run -p treequery-bench --release --bin harness -q -- fuzz --seconds 10 --seed 0xC0C4

echo "==> edit-script fuzz gate (seed 0xED17)"
# Edits-only rotation: every input is a (tree, query, edit script)
# triple; after each edit the incrementally maintained document, the
# patched XASR, and the fingerprint delta are all cross-checked against
# a from-scratch rebuild oracle under every strategy x {1,4} workers.
cargo run -p treequery-bench --release --bin harness -q -- fuzz --edits --seconds 10 --seed 0xED17

echo "==> regression corpus replay (workers 1 and 4)"
TREEQUERY_WORKERS=1 cargo test -q --test corpus_replay
TREEQUERY_WORKERS=4 cargo test -q --test corpus_replay

echo "==> Chrome trace round-trip gate"
# The demo workload's trace must write, parse back through the committed
# JSON parser, and validate: one complete span tree per query, with
# worker-attributed chunk events on at least two threads.
TRACE="$(mktemp -t treequery-trace.XXXXXX.json)"
trap 'rm -f "$BENCH_OUT" "$REPORT" "$TRACE"' EXIT
cargo run -p treequery-bench --release --bin harness -q -- --trace "$TRACE"
cargo run -p treequery-bench --release --bin harness -q -- --check-trace "$TRACE"

echo "==> persistent metrics endpoint gate"
# One server process, many requests: the probe scrapes /metrics twice
# (validating the Prometheus exposition), reads /flight and /slow
# (TREEQUERY_SLOW_MS=0 makes every demo query a slow query), checks the
# 404/400 paths, then stops the server via GET /shutdown and verifies a
# clean exit.
ENDPOINT_PORT=9184
TREEQUERY_SLOW_MS=0 cargo run -p treequery-bench --release --bin harness -q -- \
    --serve-metrics "$ENDPOINT_PORT" &
SERVER_PID=$!
cargo run -p treequery-bench --release --bin harness -q -- probe-endpoint "$ENDPOINT_PORT"
wait "$SERVER_PID"

echo "==> query service conformance gate (serve + transcript replay)"
# One multi-tenant server process, replayed against the committed golden
# transcript: every verb, structured errors, a cross-connection CANCEL of
# a runaway NP-class query, a deadline-exceeded query, a metrics scrape
# (validated as Prometheus exposition, with per-verb/per-code counters
# checked), and a clean protocol-level shutdown. The replay exits 1 on
# any mismatch; the server must then exit 0 on its own.
SERVE_PORT=9185
cargo run -p treequery-bench --release --bin harness -q -- serve "$SERVE_PORT" &
SERVE_PID=$!
cargo run -p treequery-bench --release --bin harness -q -- \
    serve-client "$SERVE_PORT" crates/serve/transcripts/ci_session.jsonl
wait "$SERVE_PID"

echo "==> tenant observatory gate (tracing + usage + SLO + graceful drain)"
# One server with the flight recorder and the observatory HTTP listener
# enabled, exercised by two committed transcripts. The first runs two
# tenants side by side: trace ids echoed on every reply, per-tenant
# usage totals pinned exactly against the usage verb, per-class SLO
# attainment (thresholds relaxed for CI machines), and the tenant/SLO
# families in the validated /metrics exposition. The probe then checks
# the HTTP side: /tenants and /slo validate as Prometheus expositions
# with both tenants present, and /flight contains the record joined to
# the transcript's explicit trace id. The second transcript shuts the
# server down gracefully: a finite heavy query in flight is drained to
# completion while a runaway NP-class query is cancelled once the
# --drain-ms budget expires, with both outcomes reported in the ack.
TENANT_PORT=9186
OBSERVATORY_PORT=9187
cargo run -p treequery-bench --release --bin harness -q -- serve "$TENANT_PORT" \
    --flight --http "$OBSERVATORY_PORT" --drain-ms 6000 \
    --slo linear=2000 --slo output_sensitive=4000 --slo polynomial=4000 --slo exponential=8000 &
TENANT_PID=$!
cargo run -p treequery-bench --release --bin harness -q -- \
    serve-client "$TENANT_PORT" crates/serve/transcripts/ci_tenant_session.jsonl
cargo run -p treequery-bench --release --bin harness -q -- \
    probe-observatory "$OBSERVATORY_PORT" --tenants alpha,beta --trace trace-alpha-1
cargo run -p treequery-bench --release --bin harness -q -- \
    serve-client "$TENANT_PORT" crates/serve/transcripts/ci_drain.jsonl
wait "$TENANT_PID"

echo "CI OK"
