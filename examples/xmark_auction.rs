//! XMark-style auction workload: the document-and-query scenario the XML
//! query-processing literature (and the paper's Section 1 application
//! list) revolves around. Generates a synthetic auction site document and
//! runs a panel of Core XPath queries through all engines, timing each.
//!
//! Run with `cargo run --release --example xmark_auction [scale]`.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery::tree::{xmark_document, XmarkConfig};
use treequery::{Engine, XPathStrategy};

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let mut rng = StdRng::seed_from_u64(2006);
    let tree = xmark_document(&mut rng, &XmarkConfig::scaled_to(scale));
    println!(
        "XMark document: {} nodes, height {}, {} labels",
        tree.len(),
        tree.height(),
        tree.interner().len()
    );
    let engine = Engine::new(&tree);

    let queries = [
        ("Q1: items in Africa", "/site/regions/africa/item"),
        ("Q2: persons with address", "//person[address]"),
        (
            "Q3: auctions with bidders",
            "//open_auction[bidder/increase]",
        ),
        ("Q4: unwatched persons", "//person[not(watches)]"),
        ("Q5: deep text", "//listitem//text"),
        (
            "Q6: city of personal sellers",
            "//person[emailaddress]/address/city",
        ),
        ("Q7: bidder dates", "//open_auction/bidder/date"),
        ("Q8: categories or edges", "//category/name | //edge/from"),
    ];

    println!(
        "\n{:<28} {:>8} {:>12} {:>12}",
        "query", "results", "set-at-time", "datalog"
    );
    for (name, q) in queries {
        let t0 = Instant::now();
        let fast = engine.xpath(q).unwrap();
        let dt_fast = t0.elapsed();
        let t1 = Instant::now();
        let via_datalog = engine.xpath_via(q, XPathStrategy::Datalog).unwrap();
        let dt_datalog = t1.elapsed();
        assert_eq!(fast, via_datalog, "engines disagree on {q}");
        println!(
            "{:<28} {:>8} {:>10.2?} {:>10.2?}",
            name,
            fast.len(),
            dt_fast,
            dt_datalog
        );
    }
    println!("\nall engines agree on every query ✓");
}
