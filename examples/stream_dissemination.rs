//! Selective dissemination of information (SDI): the streaming scenario
//! of Altinel & Franklin [3] and Chan et al. [16] cited in the paper's
//! introduction. Many subscriber queries, a stream of documents; each
//! document is matched against every subscription in a single pass with
//! memory linear in document depth — never in document size.
//!
//! Run with `cargo run --release --example stream_dissemination`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery::streaming::{matches_events, tree_events};
use treequery::tree::{random_tree_with_depth, xmark_document, XmarkConfig};
use treequery::Engine;

fn main() {
    // Subscriptions: forward Core XPath filters (one uses a backward axis
    // and is rewritten automatically).
    let subscriptions = [
        ("bids", "//open_auction[bidder/increase]"),
        ("africa", "/site/regions/africa/item"),
        ("privacy", "//person[not(address)]"),
        ("deep-text", "//parlist//listitem//text"),
        ("homepages", "//homepage/parent::person"),
    ];

    let mut rng = StdRng::seed_from_u64(7);
    // The document stream: auction sites of various sizes plus unrelated
    // noise documents.
    let mut documents = Vec::new();
    for scale in [500, 2_000, 8_000] {
        documents.push((
            format!("auction-{scale}"),
            xmark_document(&mut rng, &XmarkConfig::scaled_to(scale)),
        ));
    }
    documents.push((
        "noise".to_owned(),
        random_tree_with_depth(&mut rng, 5_000, 12, &["x", "y", "z"]),
    ));

    // Compile each subscription once.
    let compiled: Vec<_> = subscriptions
        .iter()
        .map(|(name, q)| {
            // Use any document's engine just for compilation (filters are
            // document-independent).
            let engine = Engine::new(&documents[0].1);
            (*name, *q, engine.stream_filter(q).unwrap())
        })
        .collect();

    println!(
        "{:<14} {:>8} {:>6} | {}",
        "document",
        "nodes",
        "depth",
        subscriptions
            .iter()
            .map(|(n, _)| format!("{n:>10}"))
            .collect::<String>()
    );
    for (doc_name, tree) in &documents {
        let events = tree_events(tree);
        let mut row = String::new();
        let mut peak = 0;
        for (_, query, filter) in &compiled {
            let (matched, stats) = matches_events(filter, &events);
            peak = peak.max(stats.peak_frames);
            // Cross-check against the in-memory evaluator.
            let engine = Engine::new(tree);
            let expected = !engine.xpath(query).unwrap().is_empty();
            assert_eq!(matched, expected, "{doc_name} vs {query}");
            row.push_str(&format!("{:>10}", if matched { "✔" } else { "—" }));
        }
        println!(
            "{:<14} {:>8} {:>6} | {row}   (peak frames: {peak})",
            doc_name,
            tree.len(),
            tree.height() + 1,
        );
    }
    println!("\nmemory grows with document depth only — never with size.");
}
