//! Quickstart: build a tree, query it with every engine.
//!
//! Run with `cargo run --example quickstart`.

use treequery::{cq, parse_term, streaming, Engine, XPathStrategy};

fn main() {
    // A small document in the term syntax (see also `parse_xml`).
    let tree =
        parse_term("library(shelf(book(title author) book(title)) shelf(journal(title)))").unwrap();
    println!("document: {tree}");
    println!("nodes: {}, height: {}", tree.len(), tree.height());

    let engine = Engine::new(&tree);

    // --- Core XPath ---
    let with_author = engine.xpath("//book[author]").unwrap();
    println!("\n//book[author] selects {} node(s):", with_author.len());
    for v in &with_author {
        println!(
            "  pre rank {} ({})",
            tree.pre(v.to_owned()),
            tree.label_name(*v)
        );
    }
    // The same query through the monadic-datalog engine (Theorem 3.2).
    let via_datalog = engine
        .xpath_via("//book[author]", XPathStrategy::Datalog)
        .unwrap();
    assert_eq!(with_author, via_datalog);
    println!("the monadic datalog route agrees ✓");

    // --- Conjunctive queries ---
    let answer = engine
        .cq("q(s, b) :- label(s, shelf), child(s, b), label(b, book).")
        .unwrap();
    println!(
        "\nshelf/book pairs: {} (plan: {:?})",
        answer.tuples.len(),
        answer.plan
    );

    // A cyclic query over the τ1 signature: Theorem 6.5 evaluates it in
    // linear time via arc-consistency + minimum valuation.
    let cyclic = engine
        .cq("child+(x, y), child+(y, z), child+(x, z), label(z, title)")
        .unwrap();
    println!(
        "cyclic τ1 query satisfiable: {} (plan: {:?})",
        cyclic.is_satisfiable(),
        cyclic.plan
    );

    // --- Monadic datalog (Example 3.1 pattern) ---
    let marked = engine
        .datalog(
            "P0(x) :- label(x, title).
             P0(x0) :- nextsibling(x0, x), P0(x).
             P(x0) :- firstchild(x0, x), P0(x).
             P0(x) :- P(x).
             ?- P.",
        )
        .unwrap();
    println!(
        "\nnodes with a title-descendant (datalog): {}",
        marked.len()
    );

    // --- Streaming filtering ---
    let filter = engine.stream_filter("//book[author]").unwrap();
    let (matched, stats) = streaming::matches_tree(&filter, &tree);
    println!(
        "\nstreaming filter //book[author]: matched={matched}, peak frames={}, frame bits={}",
        stats.peak_frames, stats.frame_bits
    );

    // --- The dichotomy classifier ---
    let q = cq::parse_cq("child(x, y), child+(x, z)").unwrap();
    println!(
        "\nsignature {{Child, Child+}} classifies as {:?}",
        cq::classify(&q)
    );
}
