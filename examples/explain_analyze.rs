//! `EXPLAIN ANALYZE` over an XMark document: for one query per planner
//! strategy, print the analyzed plan tree — the planner's rationale
//! merged with the measured per-stage wall times, span fields, and the
//! executor's work-counter deltas.
//!
//! ```bash
//! cargo run --example explain_analyze
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery::tree::{xmark_document, XmarkConfig};
use treequery::{Engine, Query};

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let tree = xmark_document(&mut rng, &XmarkConfig::scaled_to(20_000));
    let engine = Engine::new(&tree);
    println!(
        "XMark document: {} nodes — one EXPLAIN ANALYZE per planner strategy\n",
        tree.len()
    );

    // Candidates chosen so the planner exercises each strategy it can
    // pick; the first query observed per strategy is printed.
    let candidates = [
        // sweep: every label common
        Query::xpath("//open_auction[bidder]/seller"),
        // via-acyclic-cq: an absent label short-circuits the reducer
        Query::xpath("//person[phantom]"),
        // acyclic CQ: full reducer + backtrack-free enumeration
        Query::cq("q(x) :- label(x, person), child(x, y), label(y, name)."),
        // X-property cyclic CQ: arc-consistency + minimum valuation
        Query::cq("child+(x, y), child+(y, z), child+(x, z)"),
        // rewrite union / backtracking (NP-hard shape)
        Query::cq("q(x) :- child+(x, y), child+(x, z), child+(y, w), child+(z, w)."),
        // datalog: ground + Minoux
        Query::datalog("P(x) :- label(x, bidder). P(x) :- firstchild(x, y), P(y). ?- P."),
    ];

    let mut seen: Vec<String> = Vec::new();
    for query in &candidates {
        let analyzed = match engine.explain_analyze(query) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("skipping {:?}: {e}", query.text());
                continue;
            }
        };
        let strategy = analyzed.plan.strategy.to_string();
        if seen.contains(&strategy) {
            continue;
        }
        seen.push(strategy);
        println!("{}", analyzed.render());
    }
    println!("strategies analyzed: {}", seen.join(", "));
}
