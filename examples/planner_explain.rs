//! The query pipeline made visible: lower queries from all three
//! front-ends into the shared IR, ask the planner to explain its choices
//! on an XMark document, run a batched workload, and read the executor's
//! work counters.
//!
//! ```bash
//! cargo run --example planner_explain
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery::tree::{xmark_document, XmarkConfig};
use treequery::{Engine, Query};

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let tree = xmark_document(&mut rng, &XmarkConfig::scaled_to(20_000));
    let engine = Engine::new(&tree);

    let stats = engine.stats();
    println!(
        "document: {} nodes, height {}, {} distinct labels, median fanout {}",
        stats.nodes, stats.height, stats.distinct_labels, stats.fanout_p50
    );

    // One query per front-end, plus the statistics-driven special cases.
    let queries = [
        Query::xpath("//open_auction[bidder]/seller"),
        Query::xpath("//person[phantom]"), // absent label
        Query::xpath("//person[address and not(watches)]"),
        Query::cq("q(x) :- label(x, person), child(x, y), label(y, name)."),
        Query::cq("child+(x, y), child+(y, z), child+(x, z)"),
        Query::cq("q(x) :- child+(x, y), child+(x, z), child+(y, w), child+(z, w)."),
        Query::datalog("P(x) :- label(x, bidder). P(x) :- firstchild(x, y), P(y). ?- P."),
    ];

    println!("\n=== Engine::explain ===");
    for q in &queries {
        let plan = engine.explain(q).unwrap();
        println!("\n[{}] {}", plan.source, q.text().trim());
        println!("  strategy:  {}", plan.strategy);
        println!("  cost:      {}", plan.cost);
        println!("  est. work: {} node-touches", plan.estimated_work);
        println!("  because:   {}", plan.rationale);
    }

    // The same workload, batched over scoped worker threads; answers are
    // identical to sequential evaluation, plans come from the cache.
    println!("\n=== Engine::eval_batch ===");
    let batch: Vec<Query> = queries
        .iter()
        .cycle()
        .take(queries.len() * 4)
        .cloned()
        .collect();
    let results = engine.eval_batch(&batch);
    println!(
        "{} queries evaluated, {} succeeded",
        results.len(),
        results.iter().filter(|r| r.is_ok()).count()
    );

    let m = engine.metrics();
    println!("\n=== Metrics ===");
    println!("  queries lowered:        {}", m.queries_lowered);
    println!("  plans computed:         {}", m.plans_computed);
    println!(
        "  plan cache:             {} hits / {} misses ({} cached)",
        m.plan_cache_hits,
        m.plan_cache_misses,
        engine.cached_plans()
    );
    println!("  queries executed:       {}", m.queries_executed);
    println!("  nodes swept:            {}", m.nodes_swept);
    println!("  semijoin passes:        {}", m.semijoin_passes);
    println!("  reduced candidate size: {}", m.candidate_nodes);
    println!("  union parts evaluated:  {}", m.union_parts);
    println!("  backtrack assignments:  {}", m.backtrack_assignments);
}
