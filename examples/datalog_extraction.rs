//! Web information extraction with monadic datalog — the application that
//! motivated monadic datalog over trees (Gottlob & Koch [31]: wrappers in
//! the Lixto system are monadic datalog programs).
//!
//! The "page" is a product-listing document; the wrapper program marks the
//! price nodes of discounted products in stock, using recursion through
//! siblings rather than any transitive axis.
//!
//! Run with `cargo run --example datalog_extraction`.

use treequery::{parse_term, Engine};

fn main() {
    let page = parse_term(
        "html(body(\
            listing(\
              product(name price instock discount) \
              product(name price soldout) \
              product(name price instock) \
              product(name price instock discount(percent))) \
            footer(contact)))",
    )
    .unwrap();
    println!("page: {page}\n");
    let engine = Engine::new(&page);

    // The wrapper: a product qualifies if its child list contains both an
    // `instock` and a `discount` marker; its price is then extracted.
    // Everything is expressed over FirstChild/NextSibling (τ⁺) — the
    // signature of Theorem 3.2 — so evaluation is O(|P|·|Dom|).
    let wrapper = "
        % A node whose right-sibling chain contains `instock`.
        HasStock(x) :- label(x, instock).
        HasStock(x) :- nextsibling(x, y), HasStock(y).
        % ... and `discount`.
        HasDisc(x) :- label(x, discount).
        HasDisc(x) :- nextsibling(x, y), HasDisc(y).
        % A qualifying product sees both somewhere in its child chain.
        Qualifies(p) :- label(p, product), firstchild(p, c), HasStock(c), HasDisc(c).
        HasStock(x) :- nextsibling(x, y), HasStock(y).
        % Extract the price child of qualifying products.
        Extract(v) :- label(v, price), child(p, v), Qualifies(p).
        ?- Extract.
    ";
    let prices = engine.datalog(wrapper).unwrap();
    println!("extracted {} price node(s):", prices.len());
    for v in &prices {
        let product = page.parent(*v).unwrap();
        let kids: Vec<_> = page
            .children(product)
            .map(|c| page.label_name(c).to_owned())
            .collect();
        println!(
            "  price at pre rank {:>2} — product children: {kids:?}",
            page.pre(*v)
        );
    }
    assert_eq!(prices.len(), 2, "products 1 and 4 qualify");

    // The same extraction as a conjunctive query, for comparison: it needs
    // the Child axis and two label tests, and the planner runs it through
    // the acyclic machinery.
    let cq = engine
        .cq("q(v) :- label(v, price), child(p, v), label(p, product), \
             child(p, s), label(s, instock), child(p, d), label(d, discount).")
        .unwrap();
    println!(
        "\nconjunctive-query route: {} tuple(s), plan {:?}",
        cq.tuples.len(),
        cq.plan
    );
    assert_eq!(cq.tuples.len(), prices.len());
}
