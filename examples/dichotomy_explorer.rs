//! Explores the tractability landscape of Theorem 6.8 (the Dichotomy
//! Theorem): for every subset of the forward axes, which order (if any)
//! certifies the X-property — and what that means operationally when
//! evaluating a cyclic query.
//!
//! Run with `cargo run --example dichotomy_explorer`.

use treequery::cq::{self, dichotomy::classify_axes, Tractability};
use treequery::{parse_term, Axis, Engine};

fn main() {
    let axes = [
        Axis::Child,
        Axis::Descendant,
        Axis::DescendantOrSelf,
        Axis::NextSibling,
        Axis::FollowingSibling,
        Axis::FollowingSiblingOrSelf,
        Axis::Following,
    ];

    println!("Tractability of CQ[F] for every axis subset F (Theorem 6.8):\n");
    let mut tractable = 0;
    let mut hard = 0;
    for mask in 1u32..(1 << axes.len()) {
        let subset: Vec<Axis> = axes
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .map(|(_, &a)| a)
            .collect();
        let verdict = classify_axes(subset.iter().copied(), false);
        match verdict {
            Tractability::Tractable(_) => tractable += 1,
            Tractability::NpComplete => hard += 1,
        }
        // Print the single-axis rows and a few interesting combinations.
        if subset.len() == 1 || subset.len() == axes.len() {
            let names: Vec<_> = subset.iter().map(|a| a.name()).collect();
            println!("  {{{}}} → {verdict:?}", names.join(", "));
        }
    }
    println!("\n{tractable} subsets are in PTIME, {hard} are NP-complete.");

    // The maximal tractable families (τ1, τ2, τ3).
    println!("\nmaximal tractable families:");
    for (name, family) in [
        ("τ1 (<pre)", vec![Axis::Descendant, Axis::DescendantOrSelf]),
        ("τ2 (<post)", vec![Axis::Following]),
        (
            "τ3 (<bflr)",
            vec![
                Axis::Child,
                Axis::NextSibling,
                Axis::FollowingSiblingOrSelf,
                Axis::FollowingSibling,
            ],
        ),
    ] {
        println!(
            "  {name}: {:?}",
            classify_axes(family.iter().copied(), false)
        );
    }

    // Operational consequence: the same *cyclic* triangle pattern is
    // linear-time over τ1 but forces exponential search over the mixed
    // signature.
    let tree = parse_term("r(a(b(c(d))) a(b(c)) b)").unwrap();
    let engine = Engine::new(&tree);

    let tractable_q = "child+(x, y), child+(y, z), child+(x, z)";
    let a = engine.cq(tractable_q).unwrap();
    println!("\n[{tractable_q}]");
    println!("  plan {:?}, satisfiable: {}", a.plan, a.is_satisfiable());

    let hard_q = "child(x, y), child(y, z), child+(x, z), label(x, r)";
    let q = cq::parse_cq(hard_q).unwrap();
    println!("[{hard_q}]");
    println!("  classifier: {:?}", cq::classify(&q));
    let b = engine.cq(hard_q).unwrap();
    println!(
        "  evaluated anyway via {:?}: satisfiable = {}",
        b.plan,
        b.is_satisfiable()
    );
}
