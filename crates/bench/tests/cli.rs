//! End-to-end tests of the `harness` binary's command line: flag
//! rejection, the `bench` subcommand's report emission, and the baseline
//! regression gate.
//!
//! The bench runs use tiny documents (`--sizes`) and one rep so the whole
//! suite stays fast in debug test builds; the emitted schema is the same
//! as the production run.

use std::path::PathBuf;
use std::process::{Command, Output};

use treequery_core::obs::{parse_json, Json};

fn harness(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_harness"))
        .args(args)
        .output()
        .expect("harness binary runs")
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("treequery-cli-{}-{name}", std::process::id()));
    p
}

#[test]
fn unknown_flags_are_rejected_with_usage_and_exit_2() {
    let out = harness(&["--definitely-not-a-flag"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown flag '--definitely-not-a-flag'"),
        "{stderr}"
    );
    assert!(stderr.contains("usage: harness"), "{stderr}");
}

#[test]
fn unknown_experiments_are_rejected_with_usage_and_exit_2() {
    let out = harness(&["e99"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown experiment 'e99'"), "{stderr}");
    assert!(stderr.contains("usage: harness"), "{stderr}");
}

#[test]
fn unknown_bench_options_are_rejected() {
    let out = harness(&["bench", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown bench option '--frobnicate'"),
        "{stderr}"
    );
}

/// `harness bench` writes a report that round-trips through the obs JSON
/// parser, passes the gate against itself, and fails the gate against a
/// doctored baseline with halved byte budgets.
#[test]
fn bench_emits_report_and_gates_against_baselines() {
    let report_path = temp_path("bench.json");
    let out = harness(&[
        "bench",
        "--sizes",
        "60,120",
        "--reps",
        "1",
        "--out",
        report_path.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&report_path).expect("report written");
    let report = parse_json(&text).expect("report round-trips through the JSON parser");
    assert_eq!(
        report.get("schema").and_then(|s| s.as_str()),
        Some("treequery-bench-trajectory/v1")
    );
    let cases = report
        .get("cases")
        .and_then(|c| c.as_arr())
        .expect("cases array");
    assert!(cases.len() >= 10, "suite has {} cases", cases.len());

    // Gate against itself: identical numbers are within budget.
    let out = harness(&[
        "bench",
        "--sizes",
        "60,120",
        "--reps",
        "1",
        "--out",
        report_path.to_str().unwrap(),
        "--baseline",
        report_path.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "self-baseline must pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Doctor the baseline: halve every byte count (equivalent to the
    // current run doubling its allocations). The gate must fire.
    let doctored: Vec<Json> = cases
        .iter()
        .map(|c| {
            let bytes = c.get("bytes").and_then(|b| b.as_u64()).unwrap();
            let mut copy = Json::obj()
                .set("id", c.get("id").unwrap().as_str().unwrap())
                .set("bytes", bytes / 2);
            if let Some(w) = c.get("wall_p50_ns").and_then(|w| w.as_u64()) {
                copy = copy.set("wall_p50_ns", w);
            }
            copy
        })
        .collect();
    let doctored_path = temp_path("baseline-doctored.json");
    let doctored_report = Json::obj()
        .set("schema", "treequery-bench-trajectory/v1")
        .set("cases", Json::Arr(doctored));
    std::fs::write(&doctored_path, doctored_report.render()).unwrap();

    let out = harness(&[
        "bench",
        "--sizes",
        "60,120",
        "--reps",
        "1",
        "--out",
        report_path.to_str().unwrap(),
        "--baseline",
        doctored_path.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "2x allocation regression must gate"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("allocated bytes regressed"), "{stderr}");

    let _ = std::fs::remove_file(&report_path);
    let _ = std::fs::remove_file(&doctored_path);
}
