//! E12 — structural joins: stack merge vs nested loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treequery_bench::experiments::e12_structural::workload;
use treequery_core::storage::{nested_loop_join, stack_tree_join};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_structural");
    g.sample_size(10);
    for n in [1_000usize, 4_000, 16_000] {
        let (_t, x) = workload(n);
        let la = x.label_list("a");
        let lb = x.label_list("b");
        g.bench_with_input(BenchmarkId::new("stack", n), &(), |b, _| {
            b.iter(|| stack_tree_join(la, lb))
        });
        g.bench_with_input(BenchmarkId::new("nested_loop", n), &(), |b, _| {
            b.iter(|| nested_loop_join(la, lb))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
