//! E10 — conjunctive Core XPath through the acyclic-CQ machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treequery_bench::experiments::e10_xpath_cq::{doc, QUERY};
use treequery_core::cq::eval_acyclic;
use treequery_core::xpath::{parse_xpath, to_cq};

fn bench(c: &mut Criterion) {
    let q = to_cq(&parse_xpath(QUERY).unwrap()).unwrap();
    let mut g = c.benchmark_group("e10_xpath_cq");
    g.sample_size(10);
    for scale in [1_000usize, 4_000, 16_000] {
        let t = doc(scale);
        g.bench_with_input(BenchmarkId::from_parameter(t.len()), &(), |b, _| {
            b.iter(|| eval_acyclic(&q, &t).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
