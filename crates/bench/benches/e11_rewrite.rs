//! E11 — Theorem 5.1 rewriting: union growth and evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treequery_bench::experiments::e11_rewrite::{ancestors_query, bench_tree};
use treequery_core::cq::{rewrite::eval_via_rewrite, rewrite_to_acyclic};

fn bench(c: &mut Criterion) {
    let t = bench_tree();
    let mut g = c.benchmark_group("e11_rewrite");
    g.sample_size(10);
    for k in [2usize, 3, 4] {
        let q = ancestors_query(k);
        g.bench_with_input(BenchmarkId::new("rewrite", k), &q, |b, q| {
            b.iter(|| rewrite_to_acyclic(q).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("rewrite_eval", k), &q, |b, q| {
            b.iter(|| eval_via_rewrite(q, &t).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
