//! E13 — TwigStack vs the binary structural-join plan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treequery_bench::experiments::e13_twig::{doc, pattern};
use treequery_core::cq::twigjoin::{structural_join_plan, twig_stack};

fn bench(c: &mut Criterion) {
    let tq = pattern();
    let mut g = c.benchmark_group("e13_twig");
    g.sample_size(10);
    for scale in [2_000usize, 8_000] {
        let t = doc(scale);
        g.bench_with_input(BenchmarkId::new("twig_stack", t.len()), &(), |b, _| {
            b.iter(|| twig_stack(&tq, &t))
        });
        g.bench_with_input(BenchmarkId::new("sj_plan", t.len()), &(), |b, _| {
            b.iter(|| structural_join_plan(&tq, &t))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
