//! E8 — monadic datalog combined complexity O(|P|·|Dom|).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treequery_bench::experiments::e08_datalog::{grid_tree, marking_program};
use treequery_core::datalog::eval_query;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e08_datalog");
    g.sample_size(10);
    for k in [2usize, 4] {
        let prog = marking_program(k);
        for n in [2_000usize, 8_000] {
            let t = grid_tree(n, 8);
            let id = format!("P{}xD{}", prog.size(), n);
            g.bench_with_input(BenchmarkId::from_parameter(id), &(), |b, _| {
                b.iter(|| eval_query(&prog, &t))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
