//! E9 — Theorem 4.1: bounded-tree-width evaluation vs |A|^(k+1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treequery_bench::experiments::e09_treewidth::{clique_cq, cycle_cq, random_structure};
use treequery_core::cq::relational::eval_treewidth_auto;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e09_treewidth");
    g.sample_size(10);
    for domain in [8usize, 16] {
        let a = random_structure(domain, 99);
        let cyc = cycle_cq(5);
        g.bench_with_input(BenchmarkId::new("cycle_w2", domain), &(), |b, _| {
            b.iter(|| eval_treewidth_auto(&cyc, &a))
        });
        let k4 = clique_cq(4);
        g.bench_with_input(BenchmarkId::new("clique_w3", domain), &(), |b, _| {
            b.iter(|| eval_treewidth_auto(&k4, &a))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
