//! E6 — backtrack-free enumeration: time vs output size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treequery_bench::experiments::e06_enumeration::workload;
use treequery_core::cq::Enumerator;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e06_enumerate");
    g.sample_size(10);
    for spine in [20usize, 40, 80] {
        let (t, q) = workload(spine);
        g.bench_with_input(BenchmarkId::from_parameter(t.len()), &(), |b, _| {
            b.iter(|| Enumerator::new(&q, &t).unwrap().count())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
