//! E7 — Theorem 6.5 (X-property) vs backtracking on cyclic τ1 queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treequery_bench::experiments::e07_dichotomy::{bench_tree, cycle_query};
use treequery_core::cq::{eval_x_property, is_satisfiable_backtrack};

fn bench(c: &mut Criterion) {
    let t = bench_tree();
    let mut g = c.benchmark_group("e07_dichotomy");
    g.sample_size(10);
    for k in [2usize, 3, 4] {
        let q = cycle_query(k, "child+");
        g.bench_with_input(BenchmarkId::new("xproperty", k), &q, |b, q| {
            b.iter(|| eval_x_property(q, &t).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("backtrack", k), &q, |b, q| {
            b.iter(|| is_satisfiable_backtrack(q, &t))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
