//! E3 — Minoux's algorithm on growing Horn formulas (linear time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treequery_bench::experiments::e03_minoux::chain_formula;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e03_minoux");
    g.sample_size(10);
    for m in [10_000usize, 40_000, 160_000] {
        let f = chain_formula(m);
        g.bench_with_input(BenchmarkId::from_parameter(m), &f, |b, f| {
            b.iter(|| f.solve())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
