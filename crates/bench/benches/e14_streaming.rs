//! E14 — streaming filter throughput and depth-bounded memory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery_bench::experiments::e14_streaming::filter;
use treequery_core::streaming::{matches_events, tree_events};
use treequery_core::tree::random_tree_with_depth;

fn bench(c: &mut Criterion) {
    let f = filter();
    let mut rng = StdRng::seed_from_u64(14);
    let mut g = c.benchmark_group("e14_streaming");
    g.sample_size(10);
    for n in [10_000usize, 100_000] {
        let t = random_tree_with_depth(&mut rng, n, 8, &["a", "b", "c", "d"]);
        let events = tree_events(&t);
        g.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, _| {
            b.iter(|| matches_events(&f, &events))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
