//! E15 — Horn-SAT solving, linear in formula size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treequery_bench::experiments::e15_hornsat::random_formula;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e15_hornsat");
    g.sample_size(10);
    for m in [20_000usize, 80_000, 320_000] {
        let f = random_formula(m, 15);
        g.bench_with_input(BenchmarkId::from_parameter(f.size()), &f, |b, f| {
            b.iter(|| f.solve())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
