//! E16 — Core XPath linear data complexity: both engines, growing docs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treequery_bench::experiments::e16_xpath_scaling::{doc, QUERY};
use treequery_core::datalog::eval_query as datalog_eval;
use treequery_core::xpath::{eval_query, parse_xpath, to_datalog};

fn bench(c: &mut Criterion) {
    let path = parse_xpath(QUERY).unwrap();
    let prog = to_datalog(&path);
    let mut g = c.benchmark_group("e16_xpath");
    g.sample_size(10);
    for scale in [5_000usize, 20_000, 80_000] {
        let t = doc(scale);
        g.bench_with_input(BenchmarkId::new("set_at_a_time", t.len()), &(), |b, _| {
            b.iter(|| eval_query(&path, &t))
        });
        g.bench_with_input(BenchmarkId::new("via_datalog", t.len()), &(), |b, _| {
            b.iter(|| datalog_eval(&prog, &t))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
