//! E17 — planner-chosen vs forced strategies, and batched evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treequery_bench::experiments::e17_planner::doc;
use treequery_core::{Engine, EngineConfig, Query, XPathStrategy};

fn bench(c: &mut Criterion) {
    let t = doc(20_000);
    let engine = Engine::new(&t);
    let mut g = c.benchmark_group("e17_planner");
    g.sample_size(10);
    for q in ["//site[people]", "//people/person[name]", "//bidder"] {
        g.bench_with_input(BenchmarkId::new("planned", q), &(), |b, _| {
            b.iter(|| engine.xpath(q).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("forced_sweep", q), &(), |b, _| {
            b.iter(|| engine.xpath_via(q, XPathStrategy::SetAtATime).unwrap())
        });
    }
    let workload: Vec<Query> = ["site", "people", "person", "name", "bidder", "item"]
        .iter()
        .flat_map(|a| {
            ["site", "people", "person", "name", "bidder", "item"]
                .iter()
                .map(move |b| Query::xpath(format!("//{a}[{b}]")))
        })
        .collect();
    let seq_engine = Engine::with_config(
        &t,
        EngineConfig {
            batch_threads: Some(1),
            ..EngineConfig::default()
        },
    );
    g.bench_with_input(BenchmarkId::new("batch", "1_thread"), &(), |b, _| {
        b.iter(|| seq_engine.eval_batch(&workload))
    });
    g.bench_with_input(BenchmarkId::new("batch", "all_cores"), &(), |b, _| {
        b.iter(|| engine.eval_batch(&workload))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
