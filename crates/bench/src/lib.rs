//! The benchmark harness reproducing every figure, table, and complexity
//! claim of the paper (see `DESIGN.md`'s per-experiment index and
//! `EXPERIMENTS.md` for recorded results).
//!
//! Each `experiments::eNN` module implements one experiment as a plain
//! function printing a paper-style table; the `harness` binary runs them
//! all, and the Criterion benches under `benches/` wrap the timed kernels
//! of the experiments that have a wall-clock dimension.

pub mod experiments;
pub mod report;
pub mod suite;
pub mod util;
