//! Small measurement helpers shared by the experiments.

use std::time::{Duration, Instant};

/// Median wall time of `runs` executions of `f` (the result is consumed
/// through `std::hint::black_box` so the work is not optimized away).
pub fn median_time<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    assert!(runs >= 1);
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Nanoseconds as a readable value.
pub fn fmt_dur(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2}s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.2}µs", d.as_secs_f64() * 1e6)
    }
}

/// Per-unit cost in nanoseconds (for the "time / size ≈ constant" rows).
pub fn per_unit(d: Duration, units: u64) -> String {
    format!("{:.1}ns", d.as_nanos() as f64 / units.max(1) as f64)
}

/// Prints an experiment header.
pub fn header(id: &str, title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{id}: {title}");
    println!("{}", "=".repeat(72));
}
