//! Regenerates every figure and table of the paper's reproduction: runs
//! experiments E1–E17 and prints the paper-style tables recorded in
//! `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p treequery-bench --release --bin harness          # all
//! cargo run -p treequery-bench --release --bin harness e07 e12 # a subset
//! ```

use treequery_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        experiments::run_all();
        return;
    }
    for arg in args {
        match arg
            .trim_start_matches('e')
            .trim_start_matches('E')
            .trim_start_matches('0')
        {
            "1" => experiments::e01_table1::run(),
            "2" => experiments::e02_xasr::run(),
            "3" => experiments::e03_minoux::run(),
            "4" => experiments::e04_decomposition::run(),
            "5" => experiments::e05_xproperty::run(),
            "6" => experiments::e06_enumeration::run(),
            "7" => experiments::e07_dichotomy::run(),
            "8" => experiments::e08_datalog::run(),
            "9" => experiments::e09_treewidth::run(),
            "10" => experiments::e10_xpath_cq::run(),
            "11" => experiments::e11_rewrite::run(),
            "12" => experiments::e12_structural::run(),
            "13" => experiments::e13_twig::run(),
            "14" => experiments::e14_streaming::run(),
            "15" => experiments::e15_hornsat::run(),
            "16" => experiments::e16_xpath_scaling::run(),
            "17" => experiments::e17_planner::run(),
            other => {
                eprintln!("unknown experiment '{other}' (expected e1..e17)");
                std::process::exit(2);
            }
        }
    }
}
