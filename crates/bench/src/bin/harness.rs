//! Regenerates every figure and table of the paper's reproduction: runs
//! experiments E1–E22 and prints the paper-style tables recorded in
//! `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p treequery-bench --release --bin harness           # all
//! cargo run -p treequery-bench --release --bin harness e07 e12  # a subset
//! cargo run -p treequery-bench --release --bin harness --report out.json
//! cargo run -p treequery-bench --release --bin harness --check-noop-overhead
//! cargo run -p treequery-bench --release --bin harness --serve-metrics 9184
//! cargo run -p treequery-bench --release --bin harness bench --baseline crates/bench/BENCH_seed.json
//! cargo run -p treequery-bench --release --bin harness fuzz --seconds 10 --seed 0xC0C4
//! ```
//!
//! `--report <file>` additionally runs each experiment under a collecting
//! span recorder and writes a machine-readable JSON report (wall times,
//! per-span latency percentiles, submitted engine counters).
//!
//! `--check-noop-overhead` measures the disabled-recorder span cost and
//! the disabled-path cost of the counting allocator; it fails (exit 1) if
//! the span cost regressed more than 5% past the recorded baseline in
//! `crates/bench/noop_baseline.json` or the allocator adds more than 10%
//! to a raw `System` alloc/free loop; `ci.sh` runs this gate.
//!
//! `bench` runs the pinned continuous-benchmark suite (one query per
//! strategy × document size × worker count) and writes
//! `BENCH_<git-sha>.json`; with `--baseline <file>` it exits 1 on >15%
//! wall or >5% allocated-byte regressions, or on any steady-state
//! kernel allocation in a set-at-a-time sweep case (hard zero cap).
//! `ci.sh` runs this gate against the committed
//! `crates/bench/BENCH_seed.json`.
//!
//! `--serve-metrics PORT` runs a small demo workload, publishes the
//! engine counters to the global metrics registry, and serves exactly one
//! HTTP scrape of the Prometheus text exposition before exiting.
//!
//! `fuzz` runs a seed-deterministic differential fuzzing campaign
//! (`--seconds N --seed S [--rate R] [--corpus DIR]`); shrunk
//! reproducers are persisted to the corpus directory (default
//! `tests/corpus`) and the process exits 1 if any discrepancy was
//! found. `ci.sh` runs this gate too.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery_bench::experiments::{self, e18_observability};
use treequery_bench::report::ReportBuilder;
use treequery_bench::suite;
use treequery_core::obs::parse_json;
use treequery_core::tree::{xmark_document, XmarkConfig};
use treequery_core::Engine;

const ALL: &[(&str, fn())] = &[
    ("e01", experiments::e01_table1::run),
    ("e02", experiments::e02_xasr::run),
    ("e03", experiments::e03_minoux::run),
    ("e04", experiments::e04_decomposition::run),
    ("e05", experiments::e05_xproperty::run),
    ("e06", experiments::e06_enumeration::run),
    ("e07", experiments::e07_dichotomy::run),
    ("e08", experiments::e08_datalog::run),
    ("e09", experiments::e09_treewidth::run),
    ("e10", experiments::e10_xpath_cq::run),
    ("e11", experiments::e11_rewrite::run),
    ("e12", experiments::e12_structural::run),
    ("e13", experiments::e13_twig::run),
    ("e14", experiments::e14_streaming::run),
    ("e15", experiments::e15_hornsat::run),
    ("e16", experiments::e16_xpath_scaling::run),
    ("e17", experiments::e17_planner::run),
    ("e18", e18_observability::run),
    ("e19", experiments::e19_parallel::run),
    ("e21", experiments::e21_memory::run),
    ("e22", experiments::e22_postings::run),
];

const USAGE: &str = "\
usage: harness [EXPERIMENT-IDS...] [--report FILE]
       harness --check-noop-overhead
       harness --serve-metrics PORT
       harness bench [--out FILE] [--baseline FILE] [--reps N] [--sizes SMALL,LARGE]
       harness fuzz [--seconds N] [--seed S] [--rate R] [--corpus DIR | --no-corpus]

With no arguments, runs all experiments (e1..e19, e21, e22) and prints
their tables. `--report` writes a machine-readable JSON report instead.
`bench` runs the pinned continuous-benchmark suite, writes
BENCH_<git-sha>.json, and (with --baseline) exits 1 on >15% wall /
>5% allocated-byte regressions or any steady-state sweep-kernel
allocation.";

fn usage_error(message: &str) -> ! {
    eprintln!("{message}\n\n{USAGE}");
    std::process::exit(2);
}

fn lookup(arg: &str) -> Option<(&'static str, fn())> {
    let digits = arg
        .trim_start_matches('e')
        .trim_start_matches('E')
        .trim_start_matches('0');
    ALL.iter()
        .find(|(id, _)| id.trim_start_matches('e').trim_start_matches('0') == digits)
        .copied()
}

/// The disabled-path cost of the counting allocator: a raw alloc/free
/// loop through the installed `#[global_allocator]` (accounting off)
/// versus the same loop straight against `System`. Interleaved reps,
/// min of each — the steady-state ratio.
fn counting_alloc_overhead() -> f64 {
    use std::alloc::{GlobalAlloc, Layout, System};
    use treequery_core::obs::alloc::CountingAlloc;
    let layout = Layout::from_size_align(256, 8).expect("static layout");
    const ITERS: usize = 200_000;
    fn timed(mut alloc_free: impl FnMut()) -> Duration {
        let started = Instant::now();
        for _ in 0..ITERS {
            alloc_free();
        }
        started.elapsed()
    }
    // Call the CountingAlloc instance's methods directly rather than
    // going through `std::alloc::alloc`: the latter adds the
    // `__rust_alloc` -> `__rg_alloc` trampoline that *any* registered
    // `#[global_allocator]` pays (even a pure forwarder), which would
    // drown the quantity under test — the marginal cost of the
    // disabled-path accounting check itself.
    let counting = CountingAlloc;
    // Ratio per *adjacent pair* of timed loops, min over reps: a machine
    // slowdown spanning one rep hits both loops of the pair and cancels
    // in the ratio, while a genuine check cost shows up in every pair.
    let mut best_ratio = f64::MAX;
    for _ in 0..15 {
        // black_box keeps LLVM from eliding the malloc/free pairs (it
        // happily deletes dead System allocations, leaving a 0ns
        // baseline and a nonsense ratio).
        let system = timed(|| unsafe {
            let p = std::hint::black_box(System.alloc(layout));
            assert!(!p.is_null());
            System.dealloc(p, layout);
        });
        let counting = timed(|| unsafe {
            let p = std::hint::black_box(counting.alloc(layout));
            assert!(!p.is_null());
            counting.dealloc(p, layout);
        });
        best_ratio = best_ratio.min(counting.as_secs_f64() / system.as_secs_f64());
    }
    best_ratio
}

/// Fails (exit 1) if the disabled-recorder span overhead regressed more
/// than 5% past the recorded baseline ratio, or if the counting
/// allocator's disabled path adds more than 10% to a raw alloc/free
/// loop.
fn check_noop_overhead() {
    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/noop_baseline.json");
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {baseline_path}: {e}"));
    let baseline = parse_json(&text).expect("noop_baseline.json is valid JSON");
    let max_ratio = baseline
        .get("max_ratio")
        .and_then(|v| v.as_f64())
        .expect("baseline has a max_ratio field");
    let budget = max_ratio * 1.05;
    let measured = e18_observability::noop_overhead();
    println!(
        "noop-recorder overhead: measured ratio {:.4} ({:.2}ns/span), \
         baseline {max_ratio:.2}, budget {budget:.4}",
        measured.ratio, measured.per_span_ns
    );
    let mut failed = false;
    if measured.ratio > budget {
        eprintln!(
            "FAIL: disabled-span overhead {:.4} exceeds budget {budget:.4} \
             (baseline {max_ratio:.2} + 5%)",
            measured.ratio
        );
        failed = true;
    }
    const ALLOC_BUDGET: f64 = 1.10;
    let alloc_ratio = counting_alloc_overhead();
    println!(
        "counting-allocator disabled-path overhead: ratio {alloc_ratio:.4} \
         vs raw System, budget {ALLOC_BUDGET:.2}"
    );
    if alloc_ratio > ALLOC_BUDGET {
        eprintln!(
            "FAIL: counting allocator adds {:.1}% to raw allocation \
             (budget 10%)",
            (alloc_ratio - 1.0) * 100.0
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("OK: disabled spans and the counting allocator are within budget");
}

/// Parses a decimal or `0x`-prefixed hexadecimal integer.
fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// The `bench` subcommand: runs the pinned suite, writes the trajectory
/// report, and optionally gates against a baseline. Exits 1 on
/// regression, 2 on bad arguments.
fn run_bench(args: &[String]) -> ! {
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut reps = 15usize;
    let mut sizes = (500usize, 5_000usize);
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |name: &str| {
            iter.next()
                .cloned()
                .unwrap_or_else(|| usage_error(&format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--out" => out = Some(take("--out")),
            "--baseline" => baseline = Some(take("--baseline")),
            "--reps" => {
                reps = parse_u64(&take("--reps"))
                    .unwrap_or_else(|| usage_error("--reps expects an integer"))
                    as usize
            }
            "--sizes" => {
                let v = take("--sizes");
                let parsed = v.split_once(',').and_then(|(s, l)| {
                    Some((parse_u64(s.trim())? as usize, parse_u64(l.trim())? as usize))
                });
                sizes =
                    parsed.unwrap_or_else(|| usage_error("--sizes expects SMALL,LARGE integers"));
            }
            other => usage_error(&format!("unknown bench option '{other}'")),
        }
    }
    let report = suite::run_suite_with(sizes.0, sizes.1, reps);
    if let Some(cases) = report.get("cases").and_then(|c| c.as_arr()) {
        println!(
            "{:<42} {:>12} {:>12} {:>12}",
            "case", "wall p50", "bytes", "peak live"
        );
        for c in cases {
            let u = |k: &str| c.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
            println!(
                "{:<42} {:>12} {:>12} {:>12}",
                c.get("id").and_then(|v| v.as_str()).unwrap_or("?"),
                treequery_bench::util::fmt_dur(Duration::from_nanos(u("wall_p50_ns"))),
                u("bytes"),
                u("peak_live_bytes"),
            );
        }
    }
    let path = out.unwrap_or_else(|| format!("BENCH_{}.json", suite::git_sha()));
    let mut rendered = report.render();
    rendered.push('\n');
    if let Err(e) = std::fs::write(&path, rendered) {
        eprintln!("cannot write bench report to {path}: {e}");
        std::process::exit(1);
    }
    println!("bench report written to {path}");
    if let Some(baseline_path) = baseline {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| usage_error(&format!("cannot read {baseline_path}: {e}")));
        let base =
            parse_json(&text).unwrap_or_else(|e| usage_error(&format!("{baseline_path}: {e:?}")));
        let mut failures = suite::compare_reports(&report, &base);
        // A genuine regression reproduces on every re-measurement; a
        // noisy-neighbor phase hits different cases each time. Keep only
        // failures that persist across up to two fresh suite runs.
        for attempt in 0..2 {
            if failures.is_empty() {
                break;
            }
            eprintln!(
                "{} possible regression(s); re-measuring (attempt {})",
                failures.len(),
                attempt + 2,
            );
            let retry = suite::run_suite_with(sizes.0, sizes.1, reps);
            let retry_failures = suite::compare_reports(&retry, &base);
            let case_of = |f: &str| f.split(": ").next().unwrap_or("").to_owned();
            let retry_cases: Vec<String> = retry_failures.iter().map(|f| case_of(f)).collect();
            failures.retain(|f| retry_cases.contains(&case_of(f)));
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("FAIL: {f}");
            }
            eprintln!(
                "{} regression(s) against baseline {baseline_path}",
                failures.len()
            );
            std::process::exit(1);
        }
        println!("OK: within budgets of baseline {baseline_path}");
    }
    std::process::exit(0);
}

/// `--serve-metrics PORT`: populate the global registry from a demo
/// workload, serve exactly one Prometheus scrape, exit.
fn serve_metrics(port: u16) -> ! {
    use std::io::{Read, Write};
    use treequery_core::obs::metrics;
    use treequery_core::obs::prom;

    let mut rng = StdRng::seed_from_u64(0xFEED);
    let tree = xmark_document(&mut rng, &XmarkConfig::scaled_to(400));
    let engine = Engine::new(&tree);
    let wall = metrics::global().histogram_family_or_existing(
        "treequery_query_wall_ns",
        "Wall time of demo-workload queries.",
        "query",
    );
    for q in [
        "//person/name",
        "//open_auction//bidder",
        "/site/regions//item",
    ] {
        let started = Instant::now();
        engine.xpath(q).expect("demo workload queries parse");
        wall.with_label(q)
            .observe(started.elapsed().as_nanos() as u64);
    }
    engine.metrics_quiesced().publish_to_registry();

    let listener = std::net::TcpListener::bind(("127.0.0.1", port))
        .unwrap_or_else(|e| usage_error(&format!("cannot bind 127.0.0.1:{port}: {e}")));
    println!(
        "serving one metrics scrape at http://{}/metrics",
        listener
            .local_addr()
            .expect("bound listener has an address")
    );
    let (mut stream, _) = listener.accept().expect("accept scrape connection");
    let mut request = [0u8; 4096];
    let _ = stream.read(&mut request);
    let body = prom::render_registry(metrics::global());
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        prom::CONTENT_TYPE,
        body.len(),
    );
    stream
        .write_all(response.as_bytes())
        .expect("write scrape response");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("fuzz") => run_fuzz(&args[1..]),
        Some("bench") => run_bench(&args[1..]),
        _ => {}
    }
    let mut report_path: Option<String> = None;
    let mut selected: Vec<(&'static str, fn())> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--check-noop-overhead" => {
                check_noop_overhead();
                return;
            }
            "--serve-metrics" => {
                let port = iter
                    .next()
                    .and_then(|p| p.parse::<u16>().ok())
                    .unwrap_or_else(|| usage_error("--serve-metrics requires a port"));
                serve_metrics(port);
            }
            "--report" => match iter.next() {
                Some(path) => report_path = Some(path.clone()),
                None => usage_error("--report requires an output file path"),
            },
            other if other.starts_with('-') => usage_error(&format!("unknown flag '{other}'")),
            other => match lookup(other) {
                Some(exp) => selected.push(exp),
                None => usage_error(&format!(
                    "unknown experiment '{other}' (expected e1..e19, e21, e22)"
                )),
            },
        }
    }
    if selected.is_empty() {
        selected = ALL.to_vec();
    }
    match report_path {
        Some(path) => {
            let mut builder = ReportBuilder::new();
            for (id, run) in selected {
                builder.run(id, run);
            }
            if let Err(e) = builder.write(&path) {
                eprintln!("cannot write report to {path}: {e}");
                std::process::exit(1);
            }
            println!("\nreport written to {path}");
        }
        None => {
            for (_, run) in selected {
                run();
            }
        }
    }
}

/// The `fuzz` subcommand: a seed-deterministic differential campaign.
/// Exits 1 on any discrepancy, 2 on bad arguments.
fn run_fuzz(args: &[String]) -> ! {
    let mut cfg = treequery_fuzz::CampaignConfig {
        corpus_dir: Some(std::path::PathBuf::from("tests/corpus")),
        ..treequery_fuzz::CampaignConfig::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |name: &str| {
            iter.next()
                .cloned()
                .unwrap_or_else(|| usage_error(&format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--seconds" => {
                cfg.seconds = parse_u64(&take("--seconds"))
                    .unwrap_or_else(|| usage_error("--seconds expects an integer"))
            }
            "--seed" => {
                cfg.seed = parse_u64(&take("--seed"))
                    .unwrap_or_else(|| usage_error("--seed expects an integer (decimal or 0x-hex)"))
            }
            "--rate" => {
                cfg.inputs_per_second = parse_u64(&take("--rate"))
                    .unwrap_or_else(|| usage_error("--rate expects an integer"))
            }
            "--corpus" => cfg.corpus_dir = Some(std::path::PathBuf::from(take("--corpus"))),
            "--no-corpus" => cfg.corpus_dir = None,
            other => usage_error(&format!("unknown fuzz option '{other}'")),
        }
    }
    let report = treequery_fuzz::run_campaign(&cfg);
    print!("{}", report.render());
    println!("elapsed: {:.2}s", report.elapsed.as_secs_f64());
    for p in &report.saved {
        println!("saved reproducer: {}", p.display());
    }
    if report.total_discrepancies() > 0 {
        eprintln!("FAIL: {} discrepancies found", report.total_discrepancies());
        std::process::exit(1);
    }
    println!("OK: all executors agreed on every input");
    std::process::exit(0);
}
