//! Regenerates every figure and table of the paper's reproduction: runs
//! experiments E1–E23 and prints the paper-style tables recorded in
//! `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p treequery-bench --release --bin harness           # all
//! cargo run -p treequery-bench --release --bin harness e07 e12  # a subset
//! cargo run -p treequery-bench --release --bin harness --report out.json
//! cargo run -p treequery-bench --release --bin harness --check-noop-overhead
//! cargo run -p treequery-bench --release --bin harness --serve-metrics 9184
//! cargo run -p treequery-bench --release --bin harness --trace out.json
//! cargo run -p treequery-bench --release --bin harness --check-trace out.json
//! cargo run -p treequery-bench --release --bin harness probe-endpoint 9184
//! cargo run -p treequery-bench --release --bin harness bench --baseline crates/bench/BENCH_seed.json
//! cargo run -p treequery-bench --release --bin harness fuzz --seconds 10 --seed 0xC0C4
//! ```
//!
//! `--report <file>` additionally runs each experiment under a collecting
//! span recorder and writes a machine-readable JSON report (wall times,
//! per-span latency percentiles, submitted engine counters).
//!
//! `--check-noop-overhead` measures the disabled-recorder span cost (with
//! and without a flight-recorder install/uninstall cycle) and the
//! disabled-path cost of the counting allocator; it fails (exit 1) if
//! the span cost regressed more than 5% past the recorded baseline in
//! `crates/bench/noop_baseline.json` or the allocator adds more than 10%
//! to a raw `System` alloc/free loop; `ci.sh` runs this gate.
//!
//! `bench` runs the pinned continuous-benchmark suite (one query per
//! strategy × document size × worker count) and writes
//! `BENCH_<git-sha>.json`; with `--baseline <file>` it exits 1 on >15%
//! wall or >5% allocated-byte regressions, or on any steady-state
//! kernel allocation in a set-at-a-time sweep case (hard zero cap).
//! `ci.sh` runs this gate against the committed
//! `crates/bench/BENCH_seed.json`.
//!
//! `--serve-metrics PORT` installs the flight recorder, runs a small demo
//! workload, and serves a persistent multi-request HTTP endpoint:
//! `/metrics` (Prometheus text), `/flight` (recent-query JSON), `/slow`
//! (slow-query JSON), and `/shutdown` (graceful stop). Unknown paths get
//! a 404 and malformed requests a 400 — connections are answered, never
//! dropped. The slow threshold follows `TREEQUERY_SLOW_MS`.
//!
//! `--trace FILE` runs the same demo workload under the flight recorder
//! and writes a Chrome trace-event JSON (`chrome://tracing`,
//! <https://ui.perfetto.dev>) with one complete span tree per query and
//! worker-attributed chunk events; `--check-trace FILE` parses a written
//! trace back and validates it (the `ci.sh` round-trip gate).
//!
//! `probe-endpoint PORT` is the client half of the `ci.sh` endpoint gate:
//! it scrapes `/metrics` twice over one server lifetime (validating the
//! exposition text), parses `/flight` and `/slow` JSON (expecting slow
//! records — run the server under `TREEQUERY_SLOW_MS=0`), checks the 404
//! and 400 paths, then asks the server to shut down.
//!
//! `fuzz` runs a seed-deterministic differential fuzzing campaign;
//! `fuzz --edits` restricts it to edit-script cases, cross-checking the
//! incrementally maintained document against a from-scratch rebuild
//! oracle after every edit
//! (`--seconds N --seed S [--rate R] [--corpus DIR]`); shrunk
//! reproducers are persisted to the corpus directory (default
//! `tests/corpus`) and the process exits 1 if any discrepancy was
//! found. `ci.sh` runs this gate too.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery_bench::experiments::{self, e18_observability};
use treequery_bench::report::ReportBuilder;
use treequery_bench::suite;
use treequery_core::obs::parse_json;
use treequery_core::tree::{xmark_document, XmarkConfig};
use treequery_core::Engine;

const ALL: &[(&str, fn())] = &[
    ("e01", experiments::e01_table1::run),
    ("e02", experiments::e02_xasr::run),
    ("e03", experiments::e03_minoux::run),
    ("e04", experiments::e04_decomposition::run),
    ("e05", experiments::e05_xproperty::run),
    ("e06", experiments::e06_enumeration::run),
    ("e07", experiments::e07_dichotomy::run),
    ("e08", experiments::e08_datalog::run),
    ("e09", experiments::e09_treewidth::run),
    ("e10", experiments::e10_xpath_cq::run),
    ("e11", experiments::e11_rewrite::run),
    ("e12", experiments::e12_structural::run),
    ("e13", experiments::e13_twig::run),
    ("e14", experiments::e14_streaming::run),
    ("e15", experiments::e15_hornsat::run),
    ("e16", experiments::e16_xpath_scaling::run),
    ("e17", experiments::e17_planner::run),
    ("e18", e18_observability::run),
    ("e19", experiments::e19_parallel::run),
    ("e21", experiments::e21_memory::run),
    ("e22", experiments::e22_postings::run),
    ("e23", experiments::e23_flight::run),
    ("e24", experiments::e24_incremental::run),
];

const USAGE: &str = "\
usage: harness [EXPERIMENT-IDS...] [--report FILE]
       harness --check-noop-overhead
       harness --serve-metrics PORT
       harness --trace FILE | --check-trace FILE
       harness probe-endpoint PORT
       harness probe-observatory PORT [--tenants A,B] [--trace ID]
       harness bench [--out FILE] [--baseline FILE] [--reps N] [--sizes SMALL,LARGE]
       harness fuzz [--seconds N] [--seed S] [--rate R] [--edits] [--corpus DIR | --no-corpus]
       harness serve PORT [--heavy-cap N] [--admit-timeout-ms N] [--drain-ms N]
                          [--flight] [--http PORT] [--slo CLASS=MS ...]
                          [--slo-target-ppm N]
       harness serve-client PORT TRANSCRIPT

With no arguments, runs all experiments (e1..e19, e21..e24) and prints
their tables. `--report` writes a machine-readable JSON report instead.
`--serve-metrics` serves a persistent endpoint (/metrics /flight /slow,
GET /shutdown stops it); `--trace` writes a Chrome trace-event JSON of
the demo workload; `probe-endpoint` is the CI client for the endpoint
gate. `bench` runs the pinned continuous-benchmark suite, writes
BENCH_<git-sha>.json, and (with --baseline) exits 1 on >15% wall /
>5% allocated-byte regressions or any steady-state sweep-kernel
allocation. `serve` runs the multi-tenant query service (line-JSON over
TCP on 127.0.0.1:PORT, verbs hello/load/query/edit/cancel/usage/slo/...);
`--flight` installs the flight recorder so replies join their span
records, `--http` adds the observatory listener (/metrics /tenants /slo
/flight /slow), `--drain-ms` bounds the graceful-shutdown drain, and
`--slo CLASS=MS` overrides a latency objective (linear,
output_sensitive, polynomial, exponential). `serve-client` replays a
transcript against it and exits 1 on any mismatch (the ci.sh serve
gate); `probe-observatory` is the CI client for the observatory gate.";

fn usage_error(message: &str) -> ! {
    eprintln!("{message}\n\n{USAGE}");
    std::process::exit(2);
}

fn lookup(arg: &str) -> Option<(&'static str, fn())> {
    let digits = arg
        .trim_start_matches('e')
        .trim_start_matches('E')
        .trim_start_matches('0');
    ALL.iter()
        .find(|(id, _)| id.trim_start_matches('e').trim_start_matches('0') == digits)
        .copied()
}

/// The disabled-path cost of the counting allocator: a raw alloc/free
/// loop through the installed `#[global_allocator]` (accounting off)
/// versus the same loop straight against `System`. Interleaved reps,
/// min of each — the steady-state ratio.
fn counting_alloc_overhead() -> f64 {
    use std::alloc::{GlobalAlloc, Layout, System};
    use treequery_core::obs::alloc::CountingAlloc;
    let layout = Layout::from_size_align(256, 8).expect("static layout");
    const ITERS: usize = 200_000;
    fn timed(mut alloc_free: impl FnMut()) -> Duration {
        let started = Instant::now();
        for _ in 0..ITERS {
            alloc_free();
        }
        started.elapsed()
    }
    // Call the CountingAlloc instance's methods directly rather than
    // going through `std::alloc::alloc`: the latter adds the
    // `__rust_alloc` -> `__rg_alloc` trampoline that *any* registered
    // `#[global_allocator]` pays (even a pure forwarder), which would
    // drown the quantity under test — the marginal cost of the
    // disabled-path accounting check itself.
    let counting = CountingAlloc;
    // Ratio per *adjacent pair* of timed loops, min over reps: a machine
    // slowdown spanning one rep hits both loops of the pair and cancels
    // in the ratio, while a genuine check cost shows up in every pair.
    let mut best_ratio = f64::MAX;
    for _ in 0..15 {
        // black_box keeps LLVM from eliding the malloc/free pairs (it
        // happily deletes dead System allocations, leaving a 0ns
        // baseline and a nonsense ratio).
        let system = timed(|| unsafe {
            let p = std::hint::black_box(System.alloc(layout));
            assert!(!p.is_null());
            System.dealloc(p, layout);
        });
        let counting = timed(|| unsafe {
            let p = std::hint::black_box(counting.alloc(layout));
            assert!(!p.is_null());
            counting.dealloc(p, layout);
        });
        best_ratio = best_ratio.min(counting.as_secs_f64() / system.as_secs_f64());
    }
    best_ratio
}

/// Fails (exit 1) if the disabled-recorder span overhead regressed more
/// than 5% past the recorded baseline ratio, or if the counting
/// allocator's disabled path adds more than 10% to a raw alloc/free
/// loop.
fn check_noop_overhead() {
    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/noop_baseline.json");
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {baseline_path}: {e}"));
    let baseline = parse_json(&text).expect("noop_baseline.json is valid JSON");
    let max_ratio = baseline
        .get("max_ratio")
        .and_then(|v| v.as_f64())
        .expect("baseline has a max_ratio field");
    let budget = max_ratio * 1.05;
    let measured = e18_observability::noop_overhead();
    println!(
        "noop-recorder overhead: measured ratio {:.4} ({:.2}ns/span), \
         baseline {max_ratio:.2}, budget {budget:.4}",
        measured.ratio, measured.per_span_ns
    );
    let mut failed = false;
    if measured.ratio > budget {
        eprintln!(
            "FAIL: disabled-span overhead {:.4} exceeds budget {budget:.4} \
             (baseline {max_ratio:.2} + 5%)",
            measured.ratio
        );
        failed = true;
    }
    // The flight recorder shares the span gate's atomic word: once
    // uninstalled, the disabled path must cost exactly what it did before
    // flight recording existed (same budget), and an install/uninstall
    // cycle must leave no residue behind.
    {
        use treequery_core::obs::flight;
        flight::install(flight::FlightConfig::default());
        flight::uninstall();
        let cycled = e18_observability::noop_overhead();
        println!(
            "flight-disabled overhead (after install/uninstall cycle): \
             ratio {:.4} ({:.2}ns/span), budget {budget:.4}",
            cycled.ratio, cycled.per_span_ns
        );
        if cycled.ratio > budget {
            eprintln!(
                "FAIL: flight-recorder-disabled span overhead {:.4} exceeds \
                 budget {budget:.4}",
                cycled.ratio
            );
            failed = true;
        }
        let idle = e18_observability::flight_idle_overhead();
        println!(
            "flight-installed idle cost (no query in scope, informational): \
             {:.2}ns/span",
            idle.per_span_ns
        );
    }
    // Request tracing rides the same flag word: after a full tracing
    // round trip (install, request-context scope, response annotation,
    // uninstall) the disabled span path must still meet the original
    // budget — tracing support cannot tax servers that never enable it.
    {
        use treequery_core::obs::flight;
        flight::install(flight::FlightConfig::default());
        let id = flight::begin_query();
        let ctx = flight::RequestCtx {
            tenant: "overhead-probe".to_owned(),
            trace_id: "overhead-probe".to_owned(),
            admission_wait_ns: 0,
        };
        flight::with_request_ctx(ctx, || {
            flight::with_current_query(id, || {
                let _span = treequery_core::obs::span("overhead.probe");
            })
        });
        let _ = flight::take_spans(id);
        flight::annotate_response(id, 1, 1);
        flight::uninstall();
        let traced = e18_observability::noop_overhead();
        println!(
            "tracing-disabled overhead (after a request-tracing round trip): \
             ratio {:.4} ({:.2}ns/span), budget {budget:.4}",
            traced.ratio, traced.per_span_ns
        );
        if traced.ratio > budget {
            eprintln!(
                "FAIL: tracing-disabled span overhead {:.4} exceeds budget \
                 {budget:.4}",
                traced.ratio
            );
            failed = true;
        }
    }
    const ALLOC_BUDGET: f64 = 1.10;
    let alloc_ratio = counting_alloc_overhead();
    println!(
        "counting-allocator disabled-path overhead: ratio {alloc_ratio:.4} \
         vs raw System, budget {ALLOC_BUDGET:.2}"
    );
    if alloc_ratio > ALLOC_BUDGET {
        eprintln!(
            "FAIL: counting allocator adds {:.1}% to raw allocation \
             (budget 10%)",
            (alloc_ratio - 1.0) * 100.0
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "OK: disabled spans (before and after a flight-recorder cycle) \
         and the counting allocator are within budget"
    );
}

/// Parses a decimal or `0x`-prefixed hexadecimal integer.
fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// The `bench` subcommand: runs the pinned suite, writes the trajectory
/// report, and optionally gates against a baseline. Exits 1 on
/// regression, 2 on bad arguments.
fn run_bench(args: &[String]) -> ! {
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut reps = 15usize;
    let mut sizes = (500usize, 5_000usize);
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |name: &str| {
            iter.next()
                .cloned()
                .unwrap_or_else(|| usage_error(&format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--out" => out = Some(take("--out")),
            "--baseline" => baseline = Some(take("--baseline")),
            "--reps" => {
                reps = parse_u64(&take("--reps"))
                    .unwrap_or_else(|| usage_error("--reps expects an integer"))
                    as usize
            }
            "--sizes" => {
                let v = take("--sizes");
                let parsed = v.split_once(',').and_then(|(s, l)| {
                    Some((parse_u64(s.trim())? as usize, parse_u64(l.trim())? as usize))
                });
                sizes =
                    parsed.unwrap_or_else(|| usage_error("--sizes expects SMALL,LARGE integers"));
            }
            other => usage_error(&format!("unknown bench option '{other}'")),
        }
    }
    let report = suite::run_suite_with(sizes.0, sizes.1, reps);
    if let Some(cases) = report.get("cases").and_then(|c| c.as_arr()) {
        println!(
            "{:<42} {:>12} {:>12} {:>12}",
            "case", "wall p50", "bytes", "peak live"
        );
        for c in cases {
            let u = |k: &str| c.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
            println!(
                "{:<42} {:>12} {:>12} {:>12}",
                c.get("id").and_then(|v| v.as_str()).unwrap_or("?"),
                treequery_bench::util::fmt_dur(Duration::from_nanos(u("wall_p50_ns"))),
                u("bytes"),
                u("peak_live_bytes"),
            );
        }
    }
    let path = out.unwrap_or_else(|| format!("BENCH_{}.json", suite::git_sha()));
    let mut rendered = report.render();
    rendered.push('\n');
    if let Err(e) = std::fs::write(&path, rendered) {
        eprintln!("cannot write bench report to {path}: {e}");
        std::process::exit(1);
    }
    println!("bench report written to {path}");
    if let Some(baseline_path) = baseline {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| usage_error(&format!("cannot read {baseline_path}: {e}")));
        let base =
            parse_json(&text).unwrap_or_else(|e| usage_error(&format!("{baseline_path}: {e:?}")));
        let mut failures = suite::compare_reports(&report, &base);
        // A genuine regression reproduces on every re-measurement; a
        // noisy-neighbor phase hits different cases each time. Keep only
        // failures that persist across up to two fresh suite runs.
        for attempt in 0..2 {
            if failures.is_empty() {
                break;
            }
            eprintln!(
                "{} possible regression(s); re-measuring (attempt {})",
                failures.len(),
                attempt + 2,
            );
            let retry = suite::run_suite_with(sizes.0, sizes.1, reps);
            let retry_failures = suite::compare_reports(&retry, &base);
            let case_of = |f: &str| f.split(": ").next().unwrap_or("").to_owned();
            let retry_cases: Vec<String> = retry_failures.iter().map(|f| case_of(f)).collect();
            failures.retain(|f| retry_cases.contains(&case_of(f)));
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("FAIL: {f}");
            }
            eprintln!(
                "{} regression(s) against baseline {baseline_path}",
                failures.len()
            );
            std::process::exit(1);
        }
        println!("OK: within budgets of baseline {baseline_path}");
    }
    std::process::exit(0);
}

/// The demo queries `--serve-metrics` and `--trace` run: three XPath
/// sweeps over a seed-pinned XMark document.
const DEMO_QUERIES: &[&str] = &[
    "//person/name",
    "//open_auction//bidder",
    "/site/regions//item",
];

/// The seed-pinned XMark document the demo workload queries.
fn demo_tree() -> treequery_core::tree::Tree {
    let mut rng = StdRng::seed_from_u64(0xFEED);
    xmark_document(&mut rng, &XmarkConfig::scaled_to(2_000))
}

/// An engine over the demo tree with parallelism pinned (4 workers, a
/// threshold the demo tree clears) so traces carry worker-attributed
/// chunk events regardless of the machine or `TREEQUERY_WORKERS`.
fn demo_engine(tree: &treequery_core::tree::Tree) -> Engine<'_> {
    use treequery_core::{EngineConfig, PlannerConfig};
    Engine::with_config(
        tree,
        EngineConfig {
            planner: PlannerConfig {
                workers: Some(4),
                parallel_threshold: 512,
                ..PlannerConfig::default()
            },
            ..EngineConfig::default()
        },
    )
}

/// Runs the demo queries (recorded by the flight recorder when it is
/// installed) and publishes the engine counters to the global registry.
fn run_demo_workload(engine: &Engine<'_>) {
    use treequery_core::obs::metrics;
    let wall = metrics::global().histogram_family_or_existing(
        "treequery_demo_query_wall_ns",
        "Wall time of demo-workload queries.",
        "query",
    );
    for q in DEMO_QUERIES {
        let started = Instant::now();
        engine.xpath(q).expect("demo workload queries parse");
        wall.with_label(q)
            .observe(started.elapsed().as_nanos() as u64);
    }
    engine.metrics_quiesced().publish_to_registry();
}

/// One routed HTTP response: status, reason, content type, body, and
/// whether the server should stop after answering.
struct Routed {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: String,
    shutdown: bool,
}

/// Routes one HTTP request line. Pure — exercised directly by the router
/// unit tests. Malformed request lines get a 400 and unknown paths a 404
/// (never a dropped connection).
fn route_request(request_line: &str) -> Routed {
    use treequery_core::obs::{flight, metrics, prom};
    let plain = "text/plain; charset=utf-8";
    let bad = |body: &str| Routed {
        status: 400,
        reason: "Bad Request",
        content_type: plain,
        body: body.to_string(),
        shutdown: false,
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return bad("malformed request line\n");
    };
    if !version.starts_with("HTTP/") {
        return bad("malformed request line: expected an HTTP version\n");
    }
    if method != "GET" {
        return Routed {
            status: 405,
            reason: "Method Not Allowed",
            content_type: plain,
            body: format!("method {method} not allowed; this endpoint is GET-only\n"),
            shutdown: false,
        };
    }
    let ok = |content_type: &'static str, body: String, shutdown: bool| Routed {
        status: 200,
        reason: "OK",
        content_type,
        body,
        shutdown,
    };
    match path.split('?').next().unwrap_or(path) {
        "/metrics" => ok(
            prom::CONTENT_TYPE,
            prom::render_registry(metrics::global()),
            false,
        ),
        "/flight" => {
            let mut body = flight::recent_json().render();
            body.push('\n');
            ok("application/json", body, false)
        }
        "/slow" => {
            let mut body = flight::slow_json().render();
            body.push('\n');
            ok("application/json", body, false)
        }
        "/shutdown" => ok(plain, "shutting down\n".to_string(), true),
        "/" => ok(
            plain,
            "treequery observatory: /metrics /flight /slow /shutdown\n".to_string(),
            false,
        ),
        other => Routed {
            status: 404,
            reason: "Not Found",
            content_type: plain,
            body: format!("no such endpoint {other} (try /metrics, /flight, /slow)\n"),
            shutdown: false,
        },
    }
}

/// Answers one accepted connection; returns whether `/shutdown` was hit.
fn answer_connection(stream: &mut std::net::TcpStream) -> bool {
    use std::io::{BufRead, BufReader, Write};
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut request_line = String::new();
    // Only the request line matters for routing; remaining header bytes
    // die with the connection (Connection: close on every response).
    let _ = BufReader::new(&mut *stream).read_line(&mut request_line);
    let routed = route_request(request_line.trim_end());
    let response = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{}",
        routed.status,
        routed.reason,
        routed.content_type,
        routed.body.len(),
        routed.body,
    );
    let _ = stream.write_all(response.as_bytes());
    routed.shutdown
}

/// `--serve-metrics PORT`: install the flight recorder, run the demo
/// workload, then serve `/metrics`, `/flight` and `/slow` over as many
/// sequential scrapes as clients ask for, until `GET /shutdown`.
fn serve_metrics(port: u16) -> ! {
    use treequery_core::obs::flight;

    flight::install(flight::FlightConfig::from_env());
    let tree = demo_tree();
    let engine = demo_engine(&tree);
    run_demo_workload(&engine);

    let listener = std::net::TcpListener::bind(("127.0.0.1", port))
        .unwrap_or_else(|e| usage_error(&format!("cannot bind 127.0.0.1:{port}: {e}")));
    println!(
        "serving http://{0}/metrics (also /flight, /slow; GET /shutdown stops)",
        listener
            .local_addr()
            .expect("bound listener has an address")
    );
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        if answer_connection(&mut stream) {
            break;
        }
    }
    flight::uninstall();
    println!("shutdown requested; exiting");
    std::process::exit(0);
}

/// `--trace FILE`: run the demo workload under the flight recorder and
/// write the Chrome trace-event JSON of every recorded query.
fn write_trace(path: &str) -> ! {
    use treequery_core::obs::{flight, traceexport};

    flight::install(flight::FlightConfig::from_env());
    let tree = demo_tree();
    let engine = demo_engine(&tree);
    run_demo_workload(&engine);
    let records = flight::recent();
    let trace = traceexport::chrome_trace(&records);
    flight::uninstall();
    let stats = match traceexport::validate_chrome_trace(&trace) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("generated trace does not validate: {e}");
            std::process::exit(1);
        }
    };
    let mut rendered = trace.render();
    rendered.push('\n');
    if let Err(e) = std::fs::write(path, rendered) {
        eprintln!("cannot write trace to {path}: {e}");
        std::process::exit(1);
    }
    println!(
        "trace written to {path}: {} events across {} queries \
         ({} worker chunk events on {} threads); load it in \
         chrome://tracing or https://ui.perfetto.dev",
        stats.events, stats.queries, stats.chunk_events, stats.threads
    );
    std::process::exit(0);
}

/// `--check-trace FILE`: parse a written trace back through the committed
/// JSON parser and validate its shape (the `ci.sh` round-trip gate).
fn check_trace(path: &str) -> ! {
    use treequery_core::obs::traceexport;

    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read trace {path}: {e}");
        std::process::exit(1);
    });
    let trace = parse_json(&text).unwrap_or_else(|e| {
        eprintln!("trace {path} is not valid JSON: {e:?}");
        std::process::exit(1);
    });
    let stats = traceexport::validate_chrome_trace(&trace).unwrap_or_else(|e| {
        eprintln!("trace {path} failed validation: {e}");
        std::process::exit(1);
    });
    let mut failed = false;
    if stats.queries < DEMO_QUERIES.len() {
        eprintln!(
            "FAIL: trace holds {} complete query span trees, expected {}",
            stats.queries,
            DEMO_QUERIES.len()
        );
        failed = true;
    }
    if stats.chunk_events == 0 {
        eprintln!("FAIL: trace has no worker-attributed chunk events");
        failed = true;
    }
    // On a single-core box one worker can legitimately drain every chunk
    // before its siblings wake, so the multi-thread requirement only
    // applies where the machine can actually run workers concurrently.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 2 && stats.threads < 2 {
        eprintln!(
            "FAIL: trace attributes events to {} thread(s); parallel chunks \
             should involve at least 2 on a {cores}-core machine",
            stats.threads
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "OK: {path} round-trips ({} events, {} queries, {} chunk events, \
         {} threads)",
        stats.events, stats.queries, stats.chunk_events, stats.threads
    );
    std::process::exit(0);
}

/// Issues one HTTP request against the local endpoint and returns the
/// status code and body. Retries the connect briefly so the CI gate can
/// start the probe as soon as it forks the server.
fn probe_request(port: u16, raw_request: &[u8]) -> Result<(u16, String), String> {
    use std::io::{Read, Write};
    let mut last_err = String::new();
    for _ in 0..50 {
        match std::net::TcpStream::connect(("127.0.0.1", port)) {
            Ok(mut stream) => {
                let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                stream
                    .write_all(raw_request)
                    .map_err(|e| format!("write request: {e}"))?;
                let mut response = String::new();
                stream
                    .read_to_string(&mut response)
                    .map_err(|e| format!("read response: {e}"))?;
                let status = response
                    .strip_prefix("HTTP/1.1 ")
                    .and_then(|rest| rest.split_whitespace().next())
                    .and_then(|code| code.parse::<u16>().ok())
                    .ok_or_else(|| format!("unparseable status line in {response:?}"))?;
                let body = response
                    .split_once("\r\n\r\n")
                    .map(|(_, b)| b.to_string())
                    .unwrap_or_default();
                return Ok((status, body));
            }
            Err(e) => {
                last_err = e.to_string();
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    Err(format!("cannot connect to 127.0.0.1:{port}: {last_err}"))
}

fn probe_get(port: u16, path: &str) -> Result<(u16, String), String> {
    let request = format!("GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n");
    probe_request(port, request.as_bytes())
}

/// `probe-endpoint PORT`: the client half of the `ci.sh` endpoint gate.
/// Exits 1 with a message on the first failed check.
fn probe_endpoint(port: u16) -> ! {
    use treequery_core::obs::prom;
    fn fail(msg: &str) -> ! {
        eprintln!("FAIL: {msg}");
        std::process::exit(1);
    }
    let expect = |what: &str, r: Result<(u16, String), String>| -> (u16, String) {
        r.unwrap_or_else(|e| fail(&format!("{what}: {e}")))
    };

    // Two sequential scrapes over one server lifetime: the endpoint must
    // survive its first response.
    for attempt in 1..=2 {
        let (status, body) = expect("/metrics", probe_get(port, "/metrics"));
        if status != 200 {
            fail(&format!("/metrics scrape {attempt} returned {status}"));
        }
        match prom::validate_exposition(&body) {
            Ok(samples) if samples > 0 => {
                println!("scrape {attempt}: {samples} samples, exposition validates")
            }
            Ok(_) => fail(&format!("/metrics scrape {attempt} exposed no samples")),
            Err(e) => fail(&format!("/metrics scrape {attempt} is malformed: {e}")),
        }
    }

    let (status, body) = expect("/flight", probe_get(port, "/flight"));
    if status != 200 {
        fail(&format!("/flight returned {status}"));
    }
    let flight = parse_json(&body)
        .unwrap_or_else(|e| fail(&format!("/flight body is not valid JSON: {e:?}")));
    let records = flight
        .get("records")
        .and_then(|r| r.as_arr())
        .unwrap_or_else(|| fail("/flight JSON has no records array"));
    if records.is_empty() {
        fail("/flight holds no records; the server's demo workload should have been recorded");
    }
    println!("/flight: {} recent query records", records.len());

    let (status, body) = expect("/slow", probe_get(port, "/slow"));
    if status != 200 {
        fail(&format!("/slow returned {status}"));
    }
    let slow =
        parse_json(&body).unwrap_or_else(|e| fail(&format!("/slow body is not valid JSON: {e:?}")));
    let slow_records = slow
        .get("records")
        .and_then(|r| r.as_arr())
        .unwrap_or_else(|| fail("/slow JSON has no records array"));
    if slow_records.is_empty() {
        fail(
            "/slow holds no records; run the server under TREEQUERY_SLOW_MS=0 \
             so the demo workload logs as slow",
        );
    }
    let has_explain = slow_records.iter().all(|r| {
        r.get("explain")
            .and_then(|e| e.as_str())
            .is_some_and(|e| !e.is_empty())
    });
    if !has_explain {
        fail("/slow records are missing their EXPLAIN ANALYZE text");
    }
    println!(
        "/slow: {} slow-query records with EXPLAIN ANALYZE",
        slow_records.len()
    );

    let (status, _) = expect("/nope", probe_get(port, "/nope"));
    if status != 404 {
        fail(&format!("unknown path should 404, got {status}"));
    }
    let (status, _) = expect("garbage request", probe_request(port, b"BLARG\r\n\r\n"));
    if status != 400 {
        fail(&format!("malformed request should 400, got {status}"));
    }
    println!("404 on unknown paths, 400 on malformed requests");

    let (status, _) = expect("/shutdown", probe_get(port, "/shutdown"));
    if status != 200 {
        fail(&format!("/shutdown returned {status}"));
    }
    println!("OK: endpoint survived 2 scrapes, served /flight and /slow, and shut down cleanly");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("fuzz") => run_fuzz(&args[1..]),
        Some("bench") => run_bench(&args[1..]),
        Some("serve") => run_serve(&args[1..]),
        Some("serve-client") => run_serve_client(&args[1..]),
        Some("probe-endpoint") => {
            let port = args
                .get(1)
                .and_then(|p| p.parse::<u16>().ok())
                .unwrap_or_else(|| usage_error("probe-endpoint requires a port"));
            probe_endpoint(port);
        }
        Some("probe-observatory") => {
            let port = args
                .get(1)
                .and_then(|p| p.parse::<u16>().ok())
                .unwrap_or_else(|| usage_error("probe-observatory requires a port"));
            probe_observatory(port, &args[2..]);
        }
        _ => {}
    }
    let mut report_path: Option<String> = None;
    let mut selected: Vec<(&'static str, fn())> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--check-noop-overhead" => {
                check_noop_overhead();
                return;
            }
            "--serve-metrics" => {
                let port = iter
                    .next()
                    .and_then(|p| p.parse::<u16>().ok())
                    .unwrap_or_else(|| usage_error("--serve-metrics requires a port"));
                serve_metrics(port);
            }
            "--trace" => match iter.next() {
                Some(path) => write_trace(path),
                None => usage_error("--trace requires an output file path"),
            },
            "--check-trace" => match iter.next() {
                Some(path) => check_trace(path),
                None => usage_error("--check-trace requires a trace file path"),
            },
            "--report" => match iter.next() {
                Some(path) => report_path = Some(path.clone()),
                None => usage_error("--report requires an output file path"),
            },
            other if other.starts_with('-') => usage_error(&format!("unknown flag '{other}'")),
            other => match lookup(other) {
                Some(exp) => selected.push(exp),
                None => usage_error(&format!(
                    "unknown experiment '{other}' (expected e1..e19, e21..e24)"
                )),
            },
        }
    }
    if selected.is_empty() {
        selected = ALL.to_vec();
    }
    match report_path {
        Some(path) => {
            let mut builder = ReportBuilder::new();
            for (id, run) in selected {
                builder.run(id, run);
            }
            if let Err(e) = builder.write(&path) {
                eprintln!("cannot write report to {path}: {e}");
                std::process::exit(1);
            }
            println!("\nreport written to {path}");
        }
        None => {
            for (_, run) in selected {
                run();
            }
        }
    }
}

/// The `serve` subcommand: runs the multi-tenant query service in the
/// foreground until a client sends the `shutdown` verb.
fn run_serve(args: &[String]) -> ! {
    let port = args
        .first()
        .and_then(|p| p.parse::<u16>().ok())
        .unwrap_or_else(|| usage_error("serve requires a port"));
    let mut config = treequery_serve::ServerConfig::default();
    let mut flight_on = false;
    let mut http_port: Option<u16> = None;
    let mut iter = args[1..].iter();
    while let Some(arg) = iter.next() {
        let mut take = |name: &str| {
            iter.next()
                .cloned()
                .unwrap_or_else(|| usage_error(&format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--heavy-cap" => {
                config.heavy_cap = take("--heavy-cap")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--heavy-cap expects an integer"))
            }
            "--admit-timeout-ms" => {
                let ms: u64 = take("--admit-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--admit-timeout-ms expects an integer"));
                config.admit_timeout = Duration::from_millis(ms);
            }
            "--drain-ms" => {
                let ms: u64 = take("--drain-ms")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--drain-ms expects an integer"));
                config.drain = Duration::from_millis(ms);
            }
            "--flight" => flight_on = true,
            "--http" => {
                http_port = Some(
                    take("--http")
                        .parse()
                        .unwrap_or_else(|_| usage_error("--http expects a port")),
                )
            }
            "--slo" => {
                let spec = take("--slo");
                let (class, ms) = spec
                    .split_once('=')
                    .and_then(|(c, m)| Some((c.trim().to_owned(), m.trim().parse::<u64>().ok()?)))
                    .unwrap_or_else(|| usage_error("--slo expects CLASS=MS"));
                let threshold_ns = ms.saturating_mul(1_000_000);
                match config.slo.objectives.iter_mut().find(|o| o.class == class) {
                    Some(o) => o.threshold_ns = threshold_ns,
                    None => config
                        .slo
                        .objectives
                        .push(treequery_core::obs::slo::Objective {
                            class,
                            threshold_ns,
                        }),
                }
            }
            "--slo-target-ppm" => {
                config.slo.target_ppm = take("--slo-target-ppm")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--slo-target-ppm expects an integer"));
            }
            other => usage_error(&format!("unknown serve option '{other}'")),
        }
    }
    if flight_on {
        use treequery_core::obs::flight;
        flight::install(flight::FlightConfig::from_env());
    }
    let server = match treequery_serve::Server::bind(&format!("127.0.0.1:{port}"), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind 127.0.0.1:{port}: {e}");
            std::process::exit(1);
        }
    };
    if let Some(http_port) = http_port {
        match treequery_serve::spawn_observatory(server.shared(), &format!("127.0.0.1:{http_port}"))
        {
            Ok(bound) => println!("observatory listening on 127.0.0.1:{bound}"),
            Err(e) => {
                eprintln!("cannot bind observatory 127.0.0.1:{http_port}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "treequery-serve listening on 127.0.0.1:{port} (protocol v{})",
        { treequery_serve::PROTOCOL_VERSION }
    );
    match server.run() {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("server error: {e}");
            std::process::exit(1);
        }
    }
}

/// `probe-observatory PORT`: the client half of the `ci.sh` tenant
/// observatory gate. Checks `/tenants` and `/slo` serve valid scoped
/// expositions (naming each `--tenants` tenant), `/metrics` includes the
/// tenant families, and (with `--trace`) that the given trace id reached
/// a `/flight` record. Exits 1 on the first failed check.
fn probe_observatory(port: u16, args: &[String]) -> ! {
    use treequery_core::obs::prom;
    let mut tenants: Vec<String> = Vec::new();
    let mut trace: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |name: &str| {
            iter.next()
                .cloned()
                .unwrap_or_else(|| usage_error(&format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--tenants" => {
                tenants = take("--tenants")
                    .split(',')
                    .map(|t| t.trim().to_owned())
                    .filter(|t| !t.is_empty())
                    .collect()
            }
            "--trace" => trace = Some(take("--trace")),
            other => usage_error(&format!("unknown probe-observatory option '{other}'")),
        }
    }
    fn fail(msg: &str) -> ! {
        eprintln!("FAIL: {msg}");
        std::process::exit(1);
    }
    let expect = |what: &str, r: Result<(u16, String), String>| -> (u16, String) {
        r.unwrap_or_else(|e| fail(&format!("{what}: {e}")))
    };

    let (status, body) = expect("/tenants", probe_get(port, "/tenants"));
    if status != 200 {
        fail(&format!("/tenants returned {status}"));
    }
    match prom::validate_exposition(&body) {
        Ok(samples) => println!("/tenants: {samples} samples, exposition validates"),
        Err(e) => fail(&format!("/tenants exposition is malformed: {e}")),
    }
    for tenant in &tenants {
        let needle = format!("treequery_tenant_queries{{tenant=\"{tenant}\"}}");
        if !body.contains(&needle) {
            fail(&format!("/tenants has no usage row for tenant {tenant:?}"));
        }
    }
    if !tenants.is_empty() {
        println!("/tenants: all of {tenants:?} accounted");
    }

    let (status, body) = expect("/slo", probe_get(port, "/slo"));
    if status != 200 {
        fail(&format!("/slo returned {status}"));
    }
    match prom::validate_exposition(&body) {
        Ok(samples) if samples > 0 => println!("/slo: {samples} samples, exposition validates"),
        Ok(_) => fail("/slo exposed no samples — no SLO classes configured?"),
        Err(e) => fail(&format!("/slo exposition is malformed: {e}")),
    }
    if !body.contains("treequery_slo_fast_burn_ppm") {
        fail("/slo is missing the fast-window burn-rate gauges");
    }

    let (status, body) = expect("/metrics", probe_get(port, "/metrics"));
    if status != 200 {
        fail(&format!("/metrics returned {status}"));
    }
    match prom::validate_exposition(&body) {
        Ok(_) => {}
        Err(e) => fail(&format!("/metrics exposition is malformed: {e}")),
    }
    if !body.contains("treequery_tenant_queries") || !body.contains("treequery_slo_") {
        fail("/metrics does not include the tenant and SLO families");
    }
    println!("/metrics: includes the tenant and SLO families");

    if let Some(trace_id) = trace {
        let (status, body) = expect("/flight", probe_get(port, "/flight"));
        if status != 200 {
            fail(&format!("/flight returned {status}"));
        }
        let flight = parse_json(&body)
            .unwrap_or_else(|e| fail(&format!("/flight body is not valid JSON: {e:?}")));
        let records = flight
            .get("records")
            .and_then(|r| r.as_arr())
            .unwrap_or_else(|| fail("/flight JSON has no records array"));
        let found = records.iter().any(|r| {
            r.get("trace_id")
                .and_then(|t| t.as_str())
                .is_some_and(|t| t == trace_id)
        });
        if !found {
            fail(&format!(
                "no /flight record carries trace_id {trace_id:?} ({} records)",
                records.len()
            ));
        }
        println!("/flight: trace id {trace_id:?} joined to a query record");
    }

    let (status, _) = expect("/nope", probe_get(port, "/nope"));
    if status != 404 {
        fail(&format!("unknown path should 404, got {status}"));
    }
    println!("OK: observatory serves scoped tenant and SLO expositions");
    std::process::exit(0);
}

/// The `serve-client` subcommand: replays a transcript against a running
/// server — the CI serve gate's client half. Exits 1 on any mismatch.
fn run_serve_client(args: &[String]) -> ! {
    let port = args
        .first()
        .and_then(|p| p.parse::<u16>().ok())
        .unwrap_or_else(|| usage_error("serve-client requires a port"));
    let path = args
        .get(1)
        .unwrap_or_else(|| usage_error("serve-client requires a transcript path"));
    match treequery_serve::replay(port, path) {
        Ok(report) => {
            println!(
                "transcript ok: {} requests sent, {} checks matched",
                report.requests, report.checks
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("transcript FAILED: {e}");
            std::process::exit(1);
        }
    }
}

/// The `fuzz` subcommand: a seed-deterministic differential campaign.
/// Exits 1 on any discrepancy, 2 on bad arguments.
fn run_fuzz(args: &[String]) -> ! {
    let mut cfg = treequery_fuzz::CampaignConfig {
        corpus_dir: Some(std::path::PathBuf::from("tests/corpus")),
        ..treequery_fuzz::CampaignConfig::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |name: &str| {
            iter.next()
                .cloned()
                .unwrap_or_else(|| usage_error(&format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--seconds" => {
                cfg.seconds = parse_u64(&take("--seconds"))
                    .unwrap_or_else(|| usage_error("--seconds expects an integer"))
            }
            "--seed" => {
                cfg.seed = parse_u64(&take("--seed"))
                    .unwrap_or_else(|| usage_error("--seed expects an integer (decimal or 0x-hex)"))
            }
            "--rate" => {
                cfg.inputs_per_second = parse_u64(&take("--rate"))
                    .unwrap_or_else(|| usage_error("--rate expects an integer"))
            }
            "--corpus" => cfg.corpus_dir = Some(std::path::PathBuf::from(take("--corpus"))),
            "--no-corpus" => cfg.corpus_dir = None,
            "--edits" => cfg.edits_only = true,
            other => usage_error(&format!("unknown fuzz option '{other}'")),
        }
    }
    let report = treequery_fuzz::run_campaign(&cfg);
    print!("{}", report.render());
    println!("elapsed: {:.2}s", report.elapsed.as_secs_f64());
    for p in &report.saved {
        println!("saved reproducer: {}", p.display());
    }
    if report.total_discrepancies() > 0 {
        eprintln!("FAIL: {} discrepancies found", report.total_discrepancies());
        std::process::exit(1);
    }
    println!("OK: all executors agreed on every input");
    std::process::exit(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_answers_every_known_path() {
        for path in ["/metrics", "/flight", "/slow", "/"] {
            let routed = route_request(&format!("GET {path} HTTP/1.1"));
            assert_eq!(routed.status, 200, "{path}");
            assert!(!routed.shutdown, "{path} must not stop the server");
        }
        let routed = route_request("GET /shutdown HTTP/1.1");
        assert_eq!(routed.status, 200);
        assert!(routed.shutdown);
    }

    #[test]
    fn router_rejects_unknown_paths_with_404() {
        let routed = route_request("GET /nope HTTP/1.1");
        assert_eq!(routed.status, 404);
        assert!(routed.body.contains("/nope"));
        assert!(!routed.shutdown);
    }

    #[test]
    fn router_rejects_malformed_requests_with_400() {
        for line in ["", "BLARG", "GET /metrics", "GET /metrics FTP/1.0"] {
            let routed = route_request(line);
            assert_eq!(routed.status, 400, "{line:?}");
            assert!(!routed.shutdown);
        }
        assert_eq!(route_request("POST /metrics HTTP/1.1").status, 405);
    }

    #[test]
    fn router_ignores_query_strings_and_sets_prom_content_type() {
        assert_eq!(route_request("GET /flight?limit=5 HTTP/1.1").status, 200);
        let routed = route_request("GET /metrics HTTP/1.1");
        assert_eq!(routed.content_type, treequery_core::obs::prom::CONTENT_TYPE);
    }
}
