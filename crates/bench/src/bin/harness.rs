//! Regenerates every figure and table of the paper's reproduction: runs
//! experiments E1–E19 and prints the paper-style tables recorded in
//! `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p treequery-bench --release --bin harness           # all
//! cargo run -p treequery-bench --release --bin harness e07 e12  # a subset
//! cargo run -p treequery-bench --release --bin harness --report out.json
//! cargo run -p treequery-bench --release --bin harness --check-noop-overhead
//! cargo run -p treequery-bench --release --bin harness fuzz --seconds 10 --seed 0xC0C4
//! ```
//!
//! `--report <file>` additionally runs each experiment under a collecting
//! span recorder and writes a machine-readable JSON report (wall times,
//! per-span latency percentiles, submitted engine counters).
//!
//! `--check-noop-overhead` measures the disabled-recorder span cost and
//! fails (exit 1) if it regressed more than 5% past the recorded baseline
//! in `crates/bench/noop_baseline.json`; `ci.sh` runs this gate.
//!
//! `fuzz` runs a seed-deterministic differential fuzzing campaign
//! (`--seconds N --seed S [--rate R] [--corpus DIR]`); shrunk
//! reproducers are persisted to the corpus directory (default
//! `tests/corpus`) and the process exits 1 if any discrepancy was
//! found. `ci.sh` runs this gate too.

use treequery_bench::experiments::{self, e18_observability};
use treequery_bench::report::ReportBuilder;
use treequery_core::obs::parse_json;

const ALL: &[(&str, fn())] = &[
    ("e01", experiments::e01_table1::run),
    ("e02", experiments::e02_xasr::run),
    ("e03", experiments::e03_minoux::run),
    ("e04", experiments::e04_decomposition::run),
    ("e05", experiments::e05_xproperty::run),
    ("e06", experiments::e06_enumeration::run),
    ("e07", experiments::e07_dichotomy::run),
    ("e08", experiments::e08_datalog::run),
    ("e09", experiments::e09_treewidth::run),
    ("e10", experiments::e10_xpath_cq::run),
    ("e11", experiments::e11_rewrite::run),
    ("e12", experiments::e12_structural::run),
    ("e13", experiments::e13_twig::run),
    ("e14", experiments::e14_streaming::run),
    ("e15", experiments::e15_hornsat::run),
    ("e16", experiments::e16_xpath_scaling::run),
    ("e17", experiments::e17_planner::run),
    ("e18", e18_observability::run),
    ("e19", experiments::e19_parallel::run),
];

fn lookup(arg: &str) -> Option<(&'static str, fn())> {
    let digits = arg
        .trim_start_matches('e')
        .trim_start_matches('E')
        .trim_start_matches('0');
    ALL.iter()
        .find(|(id, _)| id.trim_start_matches('e').trim_start_matches('0') == digits)
        .copied()
}

/// Fails (exit 1) if the disabled-recorder span overhead regressed more
/// than 5% past the recorded baseline ratio.
fn check_noop_overhead() {
    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/noop_baseline.json");
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {baseline_path}: {e}"));
    let baseline = parse_json(&text).expect("noop_baseline.json is valid JSON");
    let max_ratio = baseline
        .get("max_ratio")
        .and_then(|v| v.as_f64())
        .expect("baseline has a max_ratio field");
    let budget = max_ratio * 1.05;
    let measured = e18_observability::noop_overhead();
    println!(
        "noop-recorder overhead: measured ratio {:.4} ({:.2}ns/span), \
         baseline {max_ratio:.2}, budget {budget:.4}",
        measured.ratio, measured.per_span_ns
    );
    if measured.ratio > budget {
        eprintln!(
            "FAIL: disabled-span overhead {:.4} exceeds budget {budget:.4} \
             (baseline {max_ratio:.2} + 5%)",
            measured.ratio
        );
        std::process::exit(1);
    }
    println!("OK: disabled spans are within the overhead budget");
}

/// Parses a decimal or `0x`-prefixed hexadecimal integer.
fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// The `fuzz` subcommand: a seed-deterministic differential campaign.
/// Exits 1 on any discrepancy, 2 on bad arguments.
fn run_fuzz(args: &[String]) -> ! {
    let mut cfg = treequery_fuzz::CampaignConfig {
        corpus_dir: Some(std::path::PathBuf::from("tests/corpus")),
        ..treequery_fuzz::CampaignConfig::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |name: &str| {
            iter.next().cloned().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--seconds" => {
                cfg.seconds = parse_u64(&take("--seconds")).unwrap_or_else(|| {
                    eprintln!("--seconds expects an integer");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                cfg.seed = parse_u64(&take("--seed")).unwrap_or_else(|| {
                    eprintln!("--seed expects an integer (decimal or 0x-hex)");
                    std::process::exit(2);
                })
            }
            "--rate" => {
                cfg.inputs_per_second = parse_u64(&take("--rate")).unwrap_or_else(|| {
                    eprintln!("--rate expects an integer");
                    std::process::exit(2);
                })
            }
            "--corpus" => cfg.corpus_dir = Some(std::path::PathBuf::from(take("--corpus"))),
            "--no-corpus" => cfg.corpus_dir = None,
            other => {
                eprintln!("unknown fuzz option '{other}'");
                std::process::exit(2);
            }
        }
    }
    let report = treequery_fuzz::run_campaign(&cfg);
    print!("{}", report.render());
    println!("elapsed: {:.2}s", report.elapsed.as_secs_f64());
    for p in &report.saved {
        println!("saved reproducer: {}", p.display());
    }
    if report.total_discrepancies() > 0 {
        eprintln!("FAIL: {} discrepancies found", report.total_discrepancies());
        std::process::exit(1);
    }
    println!("OK: all executors agreed on every input");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("fuzz") {
        run_fuzz(&args[1..]);
    }
    let mut report_path: Option<String> = None;
    let mut selected: Vec<(&'static str, fn())> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--check-noop-overhead" => {
                check_noop_overhead();
                return;
            }
            "--report" => match iter.next() {
                Some(path) => report_path = Some(path.clone()),
                None => {
                    eprintln!("--report requires an output file path");
                    std::process::exit(2);
                }
            },
            other => match lookup(other) {
                Some(exp) => selected.push(exp),
                None => {
                    eprintln!("unknown experiment '{other}' (expected e1..e19)");
                    std::process::exit(2);
                }
            },
        }
    }
    if selected.is_empty() {
        selected = ALL.to_vec();
    }
    match report_path {
        Some(path) => {
            let mut builder = ReportBuilder::new();
            for (id, run) in selected {
                builder.run(id, run);
            }
            if let Err(e) = builder.write(&path) {
                eprintln!("cannot write report to {path}: {e}");
                std::process::exit(1);
            }
            println!("\nreport written to {path}");
        }
        None => {
            for (_, run) in selected {
                run();
            }
        }
    }
}
