//! E7 — Figure 7 / Theorem 6.8: the tractability landscape, operational.
//!
//! The query family is an unsatisfiable k-cycle. Over the τ1 signature
//! (`Child⁺` only) the classifier certifies the X-property w.r.t. `<pre`
//! and Theorem 6.5 decides it in `O(||A|| · |Q|)`. Exhaustive
//! backtracking on the same query explores a number of assignments that
//! grows exponentially with k — and for the mixed `{Child, Child⁺}`
//! signature, which Theorem 6.8 proves NP-complete, backtracking (or the
//! exponential rewriting of Theorem 5.1) is all there is.

use treequery_core::cq::{
    classify, eval_backtrack_with_stats, eval_x_property, parse_cq, Cq, Tractability,
};
use treequery_core::tree::full_binary;
use treequery_core::Tree;

use crate::util::{fmt_dur, header, median_time};

/// An unsatisfiable k-cycle `R(x₁,x₂), …, R(x_{k−1},x_k), R(x_k,x₁)`.
pub fn cycle_query(k: usize, axis: &str) -> Cq {
    assert!(k >= 2);
    let mut atoms: Vec<String> = (0..k - 1)
        .map(|i| format!("{axis}(x{i}, x{})", i + 1))
        .collect();
    atoms.push(format!("{axis}(x{}, x0)", k - 1));
    parse_cq(&atoms.join(", ")).unwrap()
}

/// The benchmark tree: a full binary tree (many length-k paths).
pub fn bench_tree() -> Tree {
    full_binary(8, "a")
}

pub fn run() {
    header("E7", "Theorem 6.8 — tractable vs NP-complete signatures");
    let t = bench_tree();
    println!(
        "tree: full binary, {} nodes; query: unsatisfiable k-cycle",
        t.len()
    );
    println!(
        "{:>3} {:>14} {:>14} {:>22} {:>16}",
        "k", "τ1 verdict", "Thm 6.5 time", "backtrack (τ1 cycle)", "mixed verdict"
    );
    for k in [2usize, 3, 4, 5, 6] {
        let tau1 = cycle_query(k, "child+");
        let verdict = match classify(&tau1) {
            Tractability::Tractable(o) => format!("P ({o})"),
            Tractability::NpComplete => "NP-complete".into(),
        };
        let xprop_time = median_time(3, || eval_x_property(&tau1, &t).unwrap());
        assert!(eval_x_property(&tau1, &t).unwrap().is_none());
        let (result, stats) = eval_backtrack_with_stats(&tau1, &t);
        assert!(result.is_empty());

        let mixed = cycle_query(k, "child");
        // Give the cycle one Child⁺ atom so the signature is mixed.
        let mixed_with_trans = {
            let mut q = mixed.clone();
            let extra = parse_cq(&format!("child+(x0, x{})", k - 1)).unwrap();
            q.atoms.extend(extra.atoms);
            q
        };
        let mixed_verdict = match classify(&mixed_with_trans) {
            Tractability::Tractable(_) => "P",
            Tractability::NpComplete => "NP-complete",
        };
        println!(
            "{k:>3} {verdict:>14} {:>14} {:>22} {:>16}",
            fmt_dur(xprop_time),
            stats.assignments,
            mixed_verdict
        );
    }
    println!("\nTheorem 6.5 time grows linearly in k; backtracking explodes exponentially.");
}
