//! E12 — Section 2: structural joins. The stack-based merge join against
//! the nested-loop theta join (the SQL view of Example 2.1 as written)
//! and the materialize-`Child⁺` baseline the paper argues against.

use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery_core::storage::{closure_join, nested_loop_join, stack_tree_join, Xasr};
use treequery_core::tree::random_recursive_tree;
use treequery_core::Tree;

use crate::util::{fmt_dur, header, median_time};

pub fn workload(n: usize) -> (Tree, Xasr) {
    let mut rng = StdRng::seed_from_u64(12);
    let t = random_recursive_tree(&mut rng, n, &["a", "b", "c", "d"]);
    let x = Xasr::from_tree(&t);
    (t, x)
}

pub fn run() {
    header(
        "E12",
        "Section 2 — structural joins: stack merge vs baselines",
    );
    println!(
        "{:>9} {:>9} {:>9} {:>12} {:>12} {:>14}",
        "nodes", "|A|·|D|", "output", "stack join", "nested loop", "closure join"
    );
    for n in [1_000usize, 4_000, 16_000, 64_000] {
        let (_t, x) = workload(n);
        let la = x.label_list("a");
        let lb = x.label_list("b");
        let out = stack_tree_join(la, lb).len();
        let fast = median_time(3, || stack_tree_join(la, lb));
        let slow = median_time(3, || nested_loop_join(la, lb));
        // The closure baseline materializes Child⁺: quadratic memory; cap.
        let closure = if n <= 4_000 {
            let child = x.child_view();
            fmt_dur(median_time(1, || closure_join(&child, la, lb)))
        } else {
            "(too large)".into()
        };
        println!(
            "{n:>9} {:>9} {out:>9} {:>12} {:>12} {:>14}",
            la.len() * lb.len(),
            fmt_dur(fast),
            fmt_dur(slow),
            closure
        );
    }
    println!("the stack join is linear in input+output; the baselines blow up quadratically.");
}
