//! E24 — incremental re-evaluation: maintenance work after an edit is
//! linear in the *change*, flat in the *document*.
//!
//! A [`Document`] keeps a watched datalog program incrementally
//! maintained: every [`Document::edit`] runs a DRed overdeletion +
//! semi-naive rederivation pass pinned to the edit site instead of
//! re-evaluating the program on the whole tree. For connected rule
//! bodies each pinned probe is O(1) traversals, so a script of `k`
//! relabel edits should cost O(k · |P|) probes *independent of the
//! document size*. Two ladders make the claim measurable with the E21
//! log-log slope harness, using the deterministic probe counter
//! [`Document::watch_work`] rather than wall time:
//!
//! * growing the document under a *fixed* edit script must leave the
//!   maintenance work flat (slope ≈ 0), and
//! * growing the edit script over a *fixed* document must scale the
//!   work linearly (slope ≈ 1).
//!
//! A wall-clock postscript compares one edit + re-query against the
//! from-scratch alternative (rebuild the model, re-run the query); the
//! pinned bench suite gates that same ratio (< 30%) per commit.

use std::time::Instant;

use treequery_core::document::Document;
use treequery_core::tree::{EditOp, TreeBuilder};
use treequery_core::Tree;

use super::e21_memory::{log_log_fit, ScalingFit};
use crate::util::header;

/// The watched program. The first rule guarantees every relabel-to-`a`
/// maintains at least one fact; the second has a connected two-atom
/// body, so its pinned probes touch the edit site's constant-size
/// neighborhood (the node and its parent) only.
pub const WATCHED: &str =
    "P0(x) :- label(x, a). P0(x) :- label(x, b), child(y, x), label(y, a). ?- P0.";

/// A balanced fanout-8 tree of exactly `n` nodes. Labels are the filler
/// `x` except every 17th node, which alternates `a`/`b` so the watched
/// program has real matches to maintain. Bounded fanout keeps every
/// edit site structurally comparable as `n` grows — the point of the
/// flat ladder is that *only* the script length may move the work.
pub fn doc_of(n: usize) -> Tree {
    assert!(n >= 2);
    let mut b = TreeBuilder::with_capacity(n);
    let label = |i: usize| match (i % 17, i % 2) {
        (0, 0) => "a",
        (0, _) => "b",
        _ => "x",
    };
    let mut nodes = Vec::with_capacity(n);
    nodes.push(b.root("r"));
    for i in 1..n {
        // Parent of node i in a complete 8-ary tree.
        let parent = nodes[(i - 1) / 8];
        nodes.push(b.child(parent, label(i)));
    }
    b.freeze()
}

/// A script of `k` relabel edits strided across the *leaves* of `t`
/// (bounded-fanout sites: the pinned probes of the delta pass touch the
/// leaf and its parent only). Each relabel flips the leaf to `a`, which
/// perturbs the watched program's matches.
pub fn relabel_script(t: &Tree, k: usize) -> Vec<EditOp> {
    let leaves: Vec<u32> = (0..t.len() as u32)
        .filter(|&pre| t.first_child(t.node_at_pre(pre)).is_none())
        .collect();
    assert!(!leaves.is_empty());
    (0..k)
        .map(|j| EditOp::Relabel {
            pre: leaves[(j * leaves.len()) / k.max(1)],
            label: "a".to_owned(),
        })
        .collect()
}

/// Maintenance work (pinned probes) a `k`-edit relabel script costs on
/// an `n`-node document with the watched program live.
pub fn script_work(n: usize, k: usize) -> u64 {
    let mut doc = Document::new(doc_of(n));
    let id = doc.watch_datalog(WATCHED).expect("watched program parses");
    for op in relabel_script(doc.tree(), k) {
        doc.edit(&op);
    }
    doc.watch_work(id)
}

/// Ladder A: fixed 32-edit script, growing document. Returns `(n, work)`
/// points and their log-log fit (expected slope ≈ 0).
pub fn document_ladder(ns: &[usize]) -> (Vec<(u64, u64)>, ScalingFit) {
    let points: Vec<(u64, u64)> = ns.iter().map(|&n| (n as u64, script_work(n, 32))).collect();
    let fit = log_log_fit(&to_f64(&points));
    (points, fit)
}

/// Ladder B: fixed 8192-node document, growing script. Returns
/// `(k, work)` points and their fit (expected slope ≈ 1).
pub fn script_ladder(ks: &[usize]) -> (Vec<(u64, u64)>, ScalingFit) {
    let points: Vec<(u64, u64)> = ks
        .iter()
        .map(|&k| (k as u64, script_work(8_192, k)))
        .collect();
    let fit = log_log_fit(&to_f64(&points));
    (points, fit)
}

fn to_f64(points: &[(u64, u64)]) -> Vec<(f64, f64)> {
    points.iter().map(|&(x, y)| (x as f64, y as f64)).collect()
}

/// Wall time of one relabel edit + watched re-read on a live document,
/// vs. the from-scratch alternative (rebuild the incremental model on
/// the edited tree). Min of `reps`, in nanoseconds.
pub fn edit_requery_walls(n: usize, reps: usize) -> (u64, u64) {
    use treequery_core::datalog;
    use treequery_core::tree::EditableTree;

    let tree = doc_of(n);
    let mut doc = Document::new(tree.clone());
    let id = doc.watch_datalog(WATCHED).expect("watched program parses");
    // Flip one leaf between `a` and the filler so every rep maintains a
    // real change (re-applying an identical relabel would be a no-op).
    let site = match &relabel_script(doc.tree(), 1)[0] {
        EditOp::Relabel { pre, .. } => *pre,
        _ => unreachable!(),
    };
    let ops = [
        EditOp::Relabel {
            pre: site,
            label: "a".to_owned(),
        },
        EditOp::Relabel {
            pre: site,
            label: "x".to_owned(),
        },
    ];
    let mut inc = u64::MAX;
    for rep in 0..reps.max(1) {
        let op = &ops[rep % 2];
        let started = Instant::now();
        doc.edit(op);
        std::hint::black_box(doc.watched(id));
        inc = inc.min(started.elapsed().as_nanos() as u64);
    }

    let prog = datalog::parse_program(WATCHED).expect("watched program parses");
    let mut et = EditableTree::new(tree);
    let mut rebuild = u64::MAX;
    for rep in 0..reps.max(1) {
        let op = &ops[rep % 2];
        let started = Instant::now();
        et.apply(op);
        let model = datalog::IncrementalEval::new(prog.clone(), et.tree());
        std::hint::black_box(model.query().len());
        rebuild = rebuild.min(started.elapsed().as_nanos() as u64);
    }
    (inc, rebuild)
}

pub fn run() {
    header(
        "E24",
        "Incremental re-evaluation — work scales with the change, not the document",
    );
    println!("fixed 32-edit relabel script, growing document:");
    println!("{:>10} {:>14}", "nodes", "probes");
    let (points, fit) = document_ladder(&[1_000, 2_000, 4_000, 8_000, 16_000]);
    for (n, w) in &points {
        println!("{n:>10} {w:>14}");
    }
    println!(
        "log-log fit: slope {:.3} (0.0 = independent of |D|), R^2 {:.4}",
        fit.slope, fit.r2
    );
    println!("\nfixed 8192-node document, growing edit script:");
    println!("{:>10} {:>14}", "edits", "probes");
    let (points, fit) = script_ladder(&[8, 16, 32, 64, 128]);
    for (k, w) in &points {
        println!("{k:>10} {w:>14}");
    }
    println!(
        "log-log fit: slope {:.3} (1.0 = linear in |change|), R^2 {:.4}",
        fit.slope, fit.r2
    );
    let (inc, rebuild) = edit_requery_walls(16_384, 20);
    println!(
        "\nedit + re-query at 16384 nodes: incremental {inc}ns vs rebuild {rebuild}ns \
         ({:.1}% of rebuild)",
        inc as f64 / rebuild as f64 * 100.0
    );
    println!("the delta pass probes the edit site's neighborhood; the document never re-grounds.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_bounded_fanout_and_labeled() {
        let t = doc_of(2_000);
        assert_eq!(t.len(), 2_000);
        for pre in 0..t.len() as u32 {
            let v = t.node_at_pre(pre);
            assert!(t.children(v).count() <= 8, "fanout bound at pre {pre}");
        }
        assert!(!t.nodes_with_label_name("a").is_empty());
        assert!(!t.nodes_with_label_name("b").is_empty());
    }

    /// The debug-ladder bound the issue asks for: the same edit script
    /// on a 16x larger document must not even double the maintenance
    /// work.
    #[test]
    fn same_script_work_is_flat_in_document_size() {
        let (small, large) = (script_work(1_000, 32), script_work(16_000, 32));
        assert!(small > 0, "the script must do real maintenance work");
        assert!(
            large <= small * 2,
            "32-edit maintenance work grew with |D|: {small} -> {large}"
        );
    }

    /// The experiment's claims on reduced ladders: probes flat in |D|,
    /// linear in |change|.
    #[test]
    fn work_tracks_script_length_not_document_size() {
        let (points, fit) = document_ladder(&[1_000, 2_000, 4_000, 8_000]);
        assert!(
            fit.slope < 0.3,
            "document slope {:.3} should be ~flat; points: {points:?}",
            fit.slope
        );
        let (points, fit) = script_ladder(&[8, 16, 32, 64]);
        assert!(
            (0.75..=1.25).contains(&fit.slope),
            "script slope {:.3} not ~linear; points: {points:?}",
            fit.slope
        );
        assert!(fit.r2 >= 0.95, "R^2 {:.4}; points: {points:?}", fit.r2);
    }
}
