//! E8 — Theorem 3.2: monadic datalog over τ⁺ in `O(|P| · |Dom|)` combined
//! complexity. Time is measured over a grid of program sizes × tree sizes;
//! the cost per `|P| · |Dom|` unit stays flat.

use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery_core::datalog::{eval_query, parse_program, Program};
use treequery_core::tree::random_recursive_tree;
use treequery_core::Tree;

use crate::util::{fmt_dur, header, median_time};

/// A TMNF program of ~`4k` rules: `k` copies of the Example 3.1 marking
/// pattern for different labels, whose results are chained.
pub fn marking_program(k: usize) -> Program {
    let mut text = String::new();
    for i in 0..k {
        let lab = ["a", "b", "c"][i % 3];
        text.push_str(&format!(
            "P{i}0(x) :- label(x, {lab}).
             P{i}0(x0) :- nextsibling(x0, x), P{i}0(x).
             P{i}(x0) :- firstchild(x0, x), P{i}0(x).
             P{i}0(x) :- P{i}(x).\n"
        ));
        if i > 0 {
            text.push_str(&format!("Acc{i}(x) :- Acc{}(x), P{i}(x).\n", i - 1));
        } else {
            text.push_str("Acc0(x) :- P0(x).\n");
        }
    }
    text.push_str(&format!("?- Acc{}.\n", k - 1));
    parse_program(&text).unwrap()
}

/// A tree of `n` nodes for the grid.
pub fn grid_tree(n: usize, seed: u64) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    random_recursive_tree(&mut rng, n, &["a", "b", "c", "d"])
}

pub fn run() {
    header("E8", "Theorem 3.2 — monadic datalog in O(|P| · |Dom|)");
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>16}",
        "|P|", "|Dom|", "|P|·|Dom|", "time", "ns per unit"
    );
    for k in [2usize, 4, 8] {
        let prog = marking_program(k);
        let psize = prog.size() as u64;
        for n in [2_000usize, 8_000, 32_000] {
            let t = grid_tree(n, 8);
            let d = median_time(3, || eval_query(&prog, &t));
            let units = psize * n as u64;
            println!(
                "{psize:>8} {n:>8} {units:>12} {:>12} {:>16.1}",
                fmt_dur(d),
                d.as_nanos() as f64 / units as f64
            );
        }
    }
    println!("cost per |P|·|Dom| unit is flat across the grid (combined linearity).");
}
