//! E2 — Figure 2: the XASR table of the example tree, and Example 2.1's
//! descendant/child views.

use treequery_core::storage::Xasr;
use treequery_core::tree::parse_term;

use crate::util::header;

pub fn run() {
    header("E2", "Figure 2 — XASR of the example tree");
    let t = parse_term("a(b(a c) a(b d))").unwrap();
    let x = Xasr::from_tree(&t);
    print!("{x}");
    let expected: [(u32, u32, Option<u32>, &str); 7] = [
        (1, 7, None, "a"),
        (2, 3, Some(1), "b"),
        (3, 1, Some(2), "a"),
        (4, 2, Some(2), "c"),
        (5, 6, Some(1), "a"),
        (6, 4, Some(5), "b"),
        (7, 5, Some(5), "d"),
    ];
    for (row, e) in x.rows().iter().zip(expected) {
        assert_eq!((row.pre, row.post, row.parent_pre, row.label.as_str()), e);
    }
    println!(
        "descendant view: {} pairs; child view: {} pairs (Example 2.1)",
        x.descendant_view().len(),
        x.child_view().len()
    );
    println!("matches Figure 2(b) cell for cell ✓");
}
