//! E10 — Proposition 4.2: unary conjunctive Core XPath in
//! `O(||A|| · |Q|)` via translation to acyclic CQs + Yannakakis, against
//! the naive per-node reference semantics.

use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery_core::tree::{xmark_document, XmarkConfig};
use treequery_core::xpath::{eval_query, eval_reference, parse_xpath, to_cq};
use treequery_core::{cq, NodeSet, Tree};

use crate::util::{fmt_dur, header, median_time};

pub const QUERY: &str = "//person[address/city]/profile";

pub fn doc(scale: usize) -> Tree {
    let mut rng = StdRng::seed_from_u64(10);
    xmark_document(&mut rng, &XmarkConfig::scaled_to(scale))
}

pub fn run() {
    header(
        "E10",
        "Proposition 4.2 — conjunctive Core XPath via acyclic CQs",
    );
    let path = parse_xpath(QUERY).unwrap();
    let q = to_cq(&path).expect("conjunctive");
    println!("query: {QUERY}   (as CQ: {q})");
    println!(
        "{:>9} {:>8} {:>14} {:>14} {:>14}",
        "nodes", "results", "CQ+Yannakakis", "set-at-a-time", "naive (P1–P4)"
    );
    for scale in [1_000usize, 4_000, 16_000] {
        let t = doc(scale);
        let via_cq = median_time(3, || cq::eval_acyclic(&q, &t).unwrap());
        let fast = median_time(3, || eval_query(&path, &t));
        // The reference evaluator is quadratic-ish; keep it to small sizes.
        let naive = if t.len() <= 10_000 {
            fmt_dur(median_time(1, || eval_reference(&path, &t)))
        } else {
            "(skipped)".into()
        };
        let result = cq::eval_acyclic(&q, &t).unwrap();
        let as_set = NodeSet::from_iter(t.len(), result.iter().map(|tu| tu[0]));
        assert_eq!(as_set, eval_query(&path, &t));
        println!(
            "{:>9} {:>8} {:>14} {:>14} {:>14}",
            t.len(),
            result.len(),
            fmt_dur(via_cq),
            fmt_dur(fast),
            naive
        );
    }
    println!("both linear engines scale with ||A||; the naive semantics does not.");
}
