//! E22 — columnar storage: the bytes a structural-join sweep scans are
//! linear in the *posting-list length*, not the tree size.
//!
//! With the per-label `(pre, post)` posting lists of the XASR layer,
//! `Xasr::label_list` hands the stack-tree join a borrowed slice: the
//! sweep reads exactly the two posting lists plus its output, never the
//! other nodes of the document. Two geometric ladders make the claim
//! measurable with the E21 log-log slope harness:
//!
//! * growing the number of `a`/`b` nodes at a fixed tree size must scale
//!   the scanned bytes linearly (slope ≈ 1), and
//! * growing the tree around a *fixed* number of `a`/`b` nodes must
//!   leave the scanned bytes flat (slope ≈ 0),
//!
//! where "scanned bytes" is the deterministic work measure of the
//! sweep: 8 bytes per `(pre, post)` pair read from either posting list
//! or emitted into the output. A third check pins the access path
//! itself: repeated `label_list` + joins over a warm `Xasr` perform
//! zero allocations under the counting allocator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use treequery_core::obs::alloc::{self, AccountingGuard};
use treequery_core::storage::{stack_tree_join_into, Xasr};
use treequery_core::tree::TreeBuilder;
use treequery_core::Tree;

use super::e21_memory::{log_log_fit, ScalingFit};
use crate::util::header;

/// A random recursive tree of `n` nodes carrying exactly `k` nodes
/// labeled `a` and `k` labeled `b` (evenly strided through insertion
/// order so they spread over the whole document); all other nodes get
/// the filler label `x`.
pub fn doc_with_postings(seed: u64, n: usize, k: usize) -> Tree {
    assert!(n > 2 * k, "need room for 2k labeled nodes plus filler");
    let mut labels = vec!["x"; n];
    let step = (n - 1) / (2 * k);
    for j in 0..k {
        labels[1 + 2 * j * step] = "a";
        labels[1 + (2 * j + 1) * step] = "b";
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TreeBuilder::with_capacity(n);
    let mut nodes = Vec::with_capacity(n);
    nodes.push(b.root("r"));
    for (i, label) in labels.iter().enumerate().skip(1) {
        let parent = nodes[rng.gen_range(0..i)];
        nodes.push(b.child(parent, label));
    }
    b.freeze()
}

/// Joins `a` ancestors with `b` descendants over the XASR posting lists
/// and returns the sweep's scanned bytes: 8 per posting-pair read plus
/// 8 per output pair. Buffers are caller-provided so the measurement
/// can also drive the zero-allocation check.
pub fn sweep_bytes(x: &Xasr, stack: &mut Vec<(u32, u32)>, out: &mut Vec<(u32, u32)>) -> u64 {
    let la = x.label_list("a");
    let lb = x.label_list("b");
    stack_tree_join_into(la, lb, stack, out);
    (la.len() + lb.len() + out.len()) as u64 * std::mem::size_of::<(u32, u32)>() as u64
}

/// Ladder A: fixed tree size, growing posting lists. Returns
/// `(2k, bytes)` points and their log-log fit (expected slope ≈ 1).
pub fn posting_ladder(n: usize, ks: &[usize]) -> (Vec<(u64, u64)>, ScalingFit) {
    let mut stack = Vec::new();
    let mut out = Vec::new();
    let points: Vec<(u64, u64)> = ks
        .iter()
        .map(|&k| {
            let t = doc_with_postings(22, n, k);
            let x = Xasr::from_tree(&t);
            (2 * k as u64, sweep_bytes(&x, &mut stack, &mut out))
        })
        .collect();
    let fit = log_log_fit(&to_f64(&points));
    (points, fit)
}

/// Ladder B: fixed posting lists, growing tree. Returns `(n, bytes)`
/// points and their fit (expected slope ≈ 0: the sweep never touches
/// the filler nodes).
pub fn tree_ladder(k: usize, ns: &[usize]) -> (Vec<(u64, u64)>, ScalingFit) {
    let mut stack = Vec::new();
    let mut out = Vec::new();
    let points: Vec<(u64, u64)> = ns
        .iter()
        .map(|&n| {
            let t = doc_with_postings(22, n, k);
            let x = Xasr::from_tree(&t);
            (n as u64, sweep_bytes(&x, &mut stack, &mut out))
        })
        .collect();
    let fit = log_log_fit(&to_f64(&points));
    (points, fit)
}

fn to_f64(points: &[(u64, u64)]) -> Vec<(f64, f64)> {
    points.iter().map(|&(x, y)| (x as f64, y as f64)).collect()
}

/// Allocations of `reps` warm `label_list` + join sweeps with reused
/// buffers (warm-up pass included before counting starts). Must be 0:
/// the posting lists are borrowed slices and the join writes into
/// caller buffers.
pub fn steady_state_allocs(x: &Xasr, reps: usize) -> u64 {
    let _accounting = AccountingGuard::begin();
    let mut stack = Vec::new();
    let mut out = Vec::new();
    std::hint::black_box(sweep_bytes(x, &mut stack, &mut out));
    let before = alloc::global_stats();
    for _ in 0..reps {
        std::hint::black_box(sweep_bytes(x, &mut stack, &mut out));
    }
    alloc::global_stats().allocs - before.allocs
}

pub fn run() {
    header(
        "E22",
        "Columnar postings — sweep bytes scale with posting length, not tree size",
    );
    println!("fixed tree of 40000 nodes, growing a/b postings:");
    println!("{:>10} {:>14}", "|postings|", "bytes scanned");
    let (points, fit) = posting_ladder(40_000, &[100, 200, 400, 800, 1_600]);
    for (len, bytes) in &points {
        println!("{len:>10} {bytes:>14}");
    }
    println!(
        "log-log fit: slope {:.3} (1.0 = linear in posting length), R^2 {:.4}",
        fit.slope, fit.r2
    );
    println!("\nfixed 128+128 a/b postings, growing tree:");
    println!("{:>10} {:>14}", "nodes", "bytes scanned");
    let (points, fit) = tree_ladder(128, &[5_000, 10_000, 20_000, 40_000, 80_000]);
    for (n, bytes) in &points {
        println!("{n:>10} {bytes:>14}");
    }
    println!(
        "log-log fit: slope {:.3} (0.0 = independent of tree size)",
        fit.slope
    );
    let t = doc_with_postings(22, 20_000, 256);
    let x = Xasr::from_tree(&t);
    let allocs = steady_state_allocs(&x, 50);
    println!("steady-state allocations of 50 warm sweeps: {allocs}");
    println!("the sweep reads the posting columns only; label_list is a borrowed slice.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_places_exactly_k_postings() {
        for (n, k) in [(500, 10), (2_000, 64), (999, 1)] {
            let t = doc_with_postings(7, n, k);
            assert_eq!(t.len(), n);
            assert_eq!(t.nodes_with_label_name("a").len(), k);
            assert_eq!(t.nodes_with_label_name("b").len(), k);
        }
    }

    /// The experiment's claim on reduced ladders: bytes scanned grow
    /// linearly in the posting length and stay flat in the tree size.
    #[test]
    fn sweep_bytes_track_posting_length_not_tree_size() {
        let (points, fit) = posting_ladder(8_000, &[25, 50, 100, 200, 400]);
        assert!(
            (0.75..=1.25).contains(&fit.slope),
            "posting slope {:.3} not ~linear; points: {points:?}",
            fit.slope
        );
        assert!(fit.r2 >= 0.95, "R^2 {:.4}; points: {points:?}", fit.r2);
        let (points, fit) = tree_ladder(64, &[2_000, 4_000, 8_000, 16_000]);
        assert!(
            fit.slope < 0.3,
            "tree-size slope {:.3} should be ~flat; points: {points:?}",
            fit.slope
        );
    }

    /// Warm sweeps over the posting columns are allocation-free: the
    /// lists are borrowed slices and the join reuses its buffers.
    #[test]
    fn warm_sweeps_do_not_allocate() {
        let t = doc_with_postings(7, 4_000, 64);
        let x = Xasr::from_tree(&t);
        assert_eq!(steady_state_allocs(&x, 20), 0);
    }
}
