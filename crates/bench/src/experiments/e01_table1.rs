//! E1 — Table 1: satisfiability of `R(x,z) ∧ S(y,z) ∧ x <pre y`.
//!
//! Each of the 16 cells is decided by exhaustive search over all ordered
//! trees with up to 5 nodes (constant-size witnesses suffice) and checked
//! against the `sat_table` the rewrite engine uses.

use treequery_core::cq::sat_table;
use treequery_core::tree::all_trees;
use treequery_core::Axis;

use crate::util::header;

const AXES: [Axis; 4] = [
    Axis::Child,
    Axis::Descendant,
    Axis::NextSibling,
    Axis::FollowingSibling,
];

/// Decides one cell by brute force.
pub fn cell_by_search(r: Axis, s: Axis, max_nodes: usize) -> bool {
    for n in 1..=max_nodes {
        for t in all_trees(n, "x") {
            for x in t.nodes() {
                for y in t.nodes() {
                    if t.pre(x) >= t.pre(y) {
                        continue;
                    }
                    for z in t.nodes() {
                        if r.holds(&t, x, z) && s.holds(&t, y, z) {
                            return true;
                        }
                    }
                }
            }
        }
    }
    false
}

pub fn run() {
    header(
        "E1",
        "Table 1 — satisfiability of R(x,z) ∧ S(y,z) ∧ x <pre y",
    );
    println!(
        "{:<14}{}",
        "R \\ S",
        AXES.map(|a| format!("{:>14}", a.name())).join("")
    );
    let mut mismatches = 0;
    for r in AXES {
        print!("{:<14}", r.name());
        for s in AXES {
            let searched = cell_by_search(r, s, 5);
            let table = sat_table(r, s);
            if searched != table {
                mismatches += 1;
            }
            print!("{:>14}", if searched { "sat" } else { "unsat" });
        }
        println!();
    }
    println!(
        "\nexhaustive search (all trees ≤ 5 nodes) vs paper's table: {} mismatches",
        mismatches
    );
    assert_eq!(mismatches, 0);
}
