//! E15 — Figure 3's bound: Minoux's algorithm runs in time linear in the
//! formula size, across formula shapes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use treequery_core::hornsat::{HornFormula, Var};

use crate::util::{fmt_dur, header, median_time, per_unit};

/// A random definite Horn formula with `m` rules over `m/4` variables,
/// bodies of size ≤ 3.
pub fn random_formula(m: usize, seed: u64) -> HornFormula {
    let mut rng = StdRng::seed_from_u64(seed);
    let nv = (m / 4).max(2) as u32;
    let mut f = HornFormula::new();
    let vars: Vec<Var> = (0..nv).map(|_| f.fresh_var()).collect();
    for _ in 0..m / 50 + 1 {
        let v = vars[rng.gen_range(0..vars.len())];
        f.add_fact(v);
    }
    for _ in 0..m {
        let head = vars[rng.gen_range(0..vars.len())];
        let blen = rng.gen_range(1..=3);
        let body: Vec<Var> = (0..blen)
            .map(|_| vars[rng.gen_range(0..vars.len())])
            .collect();
        f.add_rule(head, &body);
    }
    f
}

pub fn run() {
    header(
        "E15",
        "Minoux's algorithm — linear time in the formula size",
    );
    println!(
        "{:>12} {:>10} {:>12} {:>14}",
        "|Φ| literals", "derived", "time", "per literal"
    );
    for m in [20_000usize, 80_000, 320_000, 1_280_000] {
        let f = random_formula(m, 15);
        let size = f.size() as u64;
        let derived = f.solve().num_true();
        let d = median_time(3, || f.solve());
        println!(
            "{size:>12} {derived:>10} {:>12} {:>14}",
            fmt_dur(d),
            per_unit(d, size)
        );
    }
    println!("cost per literal is flat: the Figure 3 algorithm is linear.");
}
