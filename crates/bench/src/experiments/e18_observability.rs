//! E18 — observability: measured span counts vs the paper's predicted
//! bounds, and the noop-recorder overhead budget.
//!
//! Three validations on synthetic workloads:
//!
//! 1. **Semijoin passes.** For an acyclic CQ the Yannakakis full reducer
//!    runs exactly `2·|atoms|` semijoin passes (one bottom-up, one
//!    top-down sweep over the join forest); `explain_analyze`'s measured
//!    counter must equal that bound for every generated chain query.
//! 2. **Horn-SAT linearity (Theorem 3.2).** Grounding a fixed monadic
//!    datalog program over trees of doubling size must produce Horn
//!    formulas whose size — the quantity Minoux's algorithm is linear in
//!    — grows proportionally to the tree: the measured
//!    `hornsat.solve.formula_size` per node stays constant.
//! 3. **Noop overhead.** With no recorder installed a span is one relaxed
//!    atomic load; the instrumented hot loop must run within a few
//!    percent of the uninstrumented one (the budget `ci.sh` enforces via
//!    `--check-noop-overhead`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery_core::obs;
use treequery_core::tree::random_recursive_tree;
use treequery_core::{Engine, Query, Strategy};

use crate::util::{fmt_dur, header};

/// Builds the chain CQ `q(x0) :- child(x0,x1), …, child(x_{k-1},x_k).`
/// — acyclic with exactly `k` atoms.
fn chain_cq(k: usize) -> String {
    let body: Vec<String> = (0..k).map(|i| format!("child(x{i}, x{})", i + 1)).collect();
    format!("q(x0) :- {}.", body.join(", "))
}

const DATALOG_PROG: &str = "P(x) :- label(x, a). \
     P(x0) :- firstchild(x0, x), P(x). \
     P(x0) :- nextsibling(x0, x), P(x). \
     ?- P.";

/// Result of the disabled-path overhead measurement.
#[derive(Clone, Copy, Debug)]
pub struct NoopOverhead {
    /// Instrumented / uninstrumented wall-time ratio (1.0 = free).
    pub ratio: f64,
    /// Absolute per-span cost of the disabled path, in nanoseconds.
    pub per_span_ns: f64,
}

#[inline(never)]
fn payload(seed: u64) -> u64 {
    let mut acc = seed | 1;
    for i in 0..128u64 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i ^ seed);
    }
    acc
}

fn time_loop(iters: u64, instrumented: bool) -> std::time::Duration {
    let started = std::time::Instant::now();
    let mut acc = 0u64;
    for i in 0..iters {
        if instrumented {
            let _span = obs::span("bench.noop");
            acc ^= payload(i);
        } else {
            acc ^= payload(i);
        }
    }
    std::hint::black_box(acc);
    started.elapsed()
}

/// Measures the disabled-span overhead: the same arithmetic hot loop with
/// and without a span guard per iteration, medians over several reps,
/// with any installed recorder temporarily removed (so the measurement
/// covers the *disabled* path even under `--report`).
pub fn noop_overhead() -> NoopOverhead {
    let previous = obs::current_recorder();
    obs::clear_recorder();
    const ITERS: u64 = 100_000;
    const REPS: usize = 9;
    // Warm both paths once before measuring.
    time_loop(ITERS / 10, true);
    time_loop(ITERS / 10, false);
    // Interleave instrumented/plain reps so frequency drift hits both
    // sides alike, and keep the minimum of each: the least-disturbed rep
    // is the closest estimate of the true per-iteration cost.
    let mut plain = std::time::Duration::MAX;
    let mut instrumented = std::time::Duration::MAX;
    for _ in 0..REPS {
        plain = plain.min(time_loop(ITERS, false));
        instrumented = instrumented.min(time_loop(ITERS, true));
    }
    if let Some(recorder) = previous {
        obs::set_recorder(recorder);
    }
    let ratio = instrumented.as_secs_f64() / plain.as_secs_f64().max(1e-12);
    let per_span_ns =
        (instrumented.as_secs_f64() - plain.as_secs_f64()).max(0.0) * 1e9 / ITERS as f64;
    NoopOverhead { ratio, per_span_ns }
}

/// Measures the span cost with the flight recorder *installed* but no
/// query in scope — the flag is set, so spans take the slow path, find no
/// current query, and come back inert. `--check-noop-overhead` reports
/// this informationally alongside the gated disabled-path measurement.
pub fn flight_idle_overhead() -> NoopOverhead {
    obs::flight::install(obs::flight::FlightConfig::default());
    let measured = noop_overhead();
    obs::flight::uninstall();
    measured
}

pub fn run() {
    header("E18", "observability: measured spans vs predicted bounds");
    let mut rng = StdRng::seed_from_u64(18);
    let alphabet = ["a", "b", "c", "d"];

    // (1) semijoin passes = 2·|atoms| on acyclic chain queries.
    let t = random_recursive_tree(&mut rng, 20_000, &alphabet);
    let e = Engine::new(&t);
    println!("\nsemijoin passes on acyclic chains ({} nodes):", t.len());
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>8}",
        "atoms", "predicted", "measured", "candidates", "ok"
    );
    for k in [1usize, 2, 3, 5, 8] {
        let analyzed = e.explain_analyze(&Query::cq(chain_cq(k))).unwrap();
        assert_eq!(
            analyzed.plan.strategy,
            Strategy::CqAcyclic,
            "chain queries are acyclic"
        );
        let predicted = 2 * k as u64;
        let measured = analyzed.counters.semijoin_passes;
        assert_eq!(
            measured, predicted,
            "Yannakakis full reducer runs 2·|atoms| semijoin passes"
        );
        println!(
            "{:>6} {:>10} {:>10} {:>12} {:>8}",
            k, predicted, measured, analyzed.counters.candidate_nodes, "✓"
        );
    }

    // (2) Horn-SAT work is linear in tree size (Theorem 3.2): the ground
    // formula size per node stays constant as the tree doubles.
    println!("\nHorn-SAT work vs tree size (fixed datalog program):");
    println!(
        "{:>8} {:>14} {:>12} {:>10}",
        "nodes", "formula size", "size/node", "derived"
    );
    let mut ratios: Vec<f64> = Vec::new();
    for n in [4_000usize, 8_000, 16_000, 32_000] {
        let t = random_recursive_tree(&mut rng, n, &alphabet);
        let e = Engine::new(&t);
        let analyzed = e.explain_analyze(&Query::datalog(DATALOG_PROG)).unwrap();
        let solve = analyzed
            .stages
            .iter()
            .find(|s| s.name == "hornsat.solve")
            .expect("datalog route runs Minoux");
        let field = |key: &str| {
            solve
                .fields
                .iter()
                .find(|(k, _)| *k == key)
                .map_or(0, |(_, v)| *v)
        };
        let size = field("formula_size");
        let ratio = size as f64 / t.len() as f64;
        ratios.push(ratio);
        println!(
            "{:>8} {:>14} {:>12.2} {:>10}",
            t.len(),
            size,
            ratio,
            field("derived")
        );
    }
    let (min, max) = ratios
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &r| (lo.min(r), hi.max(r)));
    assert!(
        max / min < 1.5,
        "ground formula size must be linear in tree size (per-node ratio \
         spread {min:.2}..{max:.2})"
    );
    println!(
        "per-node ratio spread {:.2}..{:.2} (linear: stays within 1.5x) ✓",
        min, max
    );

    // (3) the disabled-recorder overhead budget.
    let overhead = noop_overhead();
    println!(
        "\nnoop-recorder overhead: {:.2}% on the hot loop \
         ({:.2}ns per span; budget enforced by --check-noop-overhead)",
        (overhead.ratio - 1.0) * 100.0,
        overhead.per_span_ns
    );

    let sample = "//a[b]/c";
    let analyzed = e.explain_analyze(&Query::xpath(sample)).unwrap();
    println!("\nsample EXPLAIN ANALYZE ({sample}):");
    print!("{}", analyzed.render());
    println!(
        "\nspan counts match the paper's bounds; tracing is free when \
         disabled and {} when collecting.",
        fmt_dur(std::time::Duration::from_nanos(analyzed.total_ns))
    );
    crate::report::submit_metrics("e18", e.metrics().to_json());
}

#[cfg(test)]
mod tests {
    use super::*;
    use treequery_core::parse_term;

    #[test]
    fn chain_queries_have_exactly_k_atoms_and_validate_the_bound() {
        let t = parse_term("r(a(b(c)) a(b) d)").unwrap();
        let e = Engine::new(&t);
        for k in [1usize, 2, 4] {
            let analyzed = e.explain_analyze(&Query::cq(chain_cq(k))).unwrap();
            assert_eq!(analyzed.plan.strategy, Strategy::CqAcyclic);
            assert_eq!(analyzed.counters.semijoin_passes, 2 * k as u64);
        }
    }

    #[test]
    fn hornsat_span_reports_formula_size() {
        let t = parse_term("r(a(b) a b)").unwrap();
        let e = Engine::new(&t);
        let analyzed = e.explain_analyze(&Query::datalog(DATALOG_PROG)).unwrap();
        let solve = analyzed
            .stages
            .iter()
            .find(|s| s.name == "hornsat.solve")
            .expect("hornsat.solve span recorded");
        let size = solve
            .fields
            .iter()
            .find(|(k, _)| *k == "formula_size")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(size > 0);
    }
}
