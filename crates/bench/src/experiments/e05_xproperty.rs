//! E5 — Figure 5 / Proposition 6.6: the complete axis × order X-property
//! matrix, decided by exhaustive counterexample search over all small
//! trees.

use treequery_core::cq::dichotomy::axis_compatible;
use treequery_core::cq::x_property_counterexample;
use treequery_core::tree::all_trees;
use treequery_core::{Axis, Order};

use crate::util::header;

const FORWARD: [Axis; 7] = [
    Axis::Child,
    Axis::Descendant,
    Axis::DescendantOrSelf,
    Axis::NextSibling,
    Axis::FollowingSibling,
    Axis::FollowingSiblingOrSelf,
    Axis::Following,
];

pub fn run() {
    header(
        "E5",
        "Proposition 6.6 — the X-property matrix (axis × order)",
    );
    println!("{:<20}{:>10}{:>10}{:>10}", "axis", "<pre", "<post", "<bflr");
    let mut mismatches = 0;
    for axis in FORWARD {
        print!("{:<20}", axis.name());
        for order in Order::ALL {
            let counterexample = (1..=7).find_map(|n| {
                all_trees(n, "x")
                    .iter()
                    .find_map(|t| x_property_counterexample(t, axis, order))
            });
            let holds = counterexample.is_none();
            if holds != axis_compatible(axis, order) {
                mismatches += 1;
            }
            print!("{:>10}", if holds { "X̲" } else { "—" });
        }
        println!();
    }
    println!("\nexhaustive over all trees ≤ 7 nodes; vs Proposition 6.6: {mismatches} mismatches");
    println!("τ1 = {{Child+, Child*}} @ <pre; τ2 = {{Following}} @ <post;");
    println!("τ3 = {{Child, NextSibling, NextSibling*, NextSibling+}} @ <bflr");
    assert_eq!(mismatches, 0);
}
