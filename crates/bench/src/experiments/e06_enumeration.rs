//! E6 — Figure 6 / Propositions 6.9–6.10: backtrack-free, output-linear
//! enumeration of acyclic-query solutions.
//!
//! The query `Child⁺(x, y) ∧ Child⁺(y, z)` on a caterpillar produces a
//! cubically growing output; time per produced valuation stays flat and
//! the dead-branch counter stays at zero.

use treequery_core::cq::{parse_cq, Enumerator, Reduction};
use treequery_core::tree::caterpillar;
use treequery_core::Tree;

use crate::util::{fmt_dur, header, median_time, per_unit};

/// The workload: caterpillar trees and the two-descendant chain query.
pub fn workload(spine: usize) -> (Tree, treequery_core::cq::Cq) {
    let t = caterpillar(spine, 2, "a");
    let q = parse_cq("q(x, y, z) :- child+(x, y), child+(y, z).").unwrap();
    (t, q)
}

pub fn run() {
    header(
        "E6",
        "Figure 6 — backtrack-free enumeration, output-linear time",
    );
    println!(
        "{:>8} {:>12} {:>10} {:>12} {:>14}",
        "nodes", "valuations", "dead", "time", "per valuation"
    );
    for spine in [20usize, 40, 80, 160] {
        let (t, q) = workload(spine);
        let e = Enumerator::new(&q, &t).expect("acyclic");
        let stats = e.count();
        let d = median_time(3, || Enumerator::new(&q, &t).expect("acyclic").count());
        println!(
            "{:>8} {:>12} {:>10} {:>12} {:>14}",
            t.len(),
            stats.valuations,
            stats.dead_branches,
            fmt_dur(d),
            per_unit(d, stats.valuations)
        );
        assert_eq!(stats.dead_branches, 0, "Proposition 6.9 violated");
    }
    println!("dead branches = 0 everywhere (Prop. 6.9); per-valuation cost flat (Prop. 6.10)");

    // Ablation: how much reduction does backtrack-freeness need?
    println!("\nablation — dead branches by reduction level (query with a label filter):");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>10}",
        "nodes", "valuations", "full", "bottom-up", "none"
    );
    for spine in [20usize, 40, 80] {
        let t = treequery_core::tree::caterpillar(spine, 2, "a");
        // Add a selective label filter so unreduced sets dead-end often.
        let q = parse_cq("q(x, y, z) :- child+(x, y), child+(y, z), leaf(z).").unwrap();
        let full = Enumerator::new(&q, &t).expect("acyclic").count();
        let bottom_up = Enumerator::with_reduction(&q, &t, Reduction::BottomUpOnly)
            .expect("acyclic")
            .count();
        let none = Enumerator::with_reduction(&q, &t, Reduction::None)
            .expect("acyclic")
            .count();
        assert_eq!(
            full.valuations, none.valuations,
            "results agree in every mode"
        );
        println!(
            "{:>8} {:>12} {:>12} {:>14} {:>10}",
            t.len(),
            full.valuations,
            full.dead_branches,
            bottom_up.dead_branches,
            none.dead_branches
        );
        assert_eq!(full.dead_branches, 0);
        assert_eq!(bottom_up.dead_branches, 0);
        assert!(
            none.dead_branches > 0,
            "unreduced enumeration should dead-end"
        );
    }
    println!("bottom-up reduction already suffices under root-down enumeration (the");
    println!("join-tree orientation point after Theorem 4.1); no reduction backtracks.");
}
