//! E14 — Sections 5 & 7: streaming memory is Θ(depth · |Q|) — linear in
//! document depth (\[40\]'s lower bound met from above by \[60, 70\]) and
//! independent of document size.

use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery_core::streaming::{compile, matches_events, select_events, tree_events, FilterQuery};
use treequery_core::tree::random_tree_with_depth;
use treequery_core::xpath::parse_xpath;

use crate::util::{fmt_dur, header, median_time};

pub const QUERY: &str = "//a[b]//c[not(d)]";

pub fn filter() -> FilterQuery {
    compile(&parse_xpath(QUERY).unwrap()).unwrap()
}

pub fn run() {
    header(
        "E14",
        "Streaming XPath: memory = Θ(depth · |Q|), size-independent",
    );
    let f = filter();
    let mut rng = StdRng::seed_from_u64(14);
    println!("query: {QUERY} (step-table width {})", f.width());

    println!("\nfixed depth 8, growing size:");
    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>12}",
        "nodes", "depth", "peak frames", "peak bits", "time"
    );
    for n in [1_000usize, 10_000, 100_000, 400_000] {
        let t = random_tree_with_depth(&mut rng, n, 8, &["a", "b", "c", "d"]);
        let events = tree_events(&t);
        let (_m, stats) = matches_events(&f, &events);
        let d = median_time(3, || matches_events(&f, &events));
        println!(
            "{n:>10} {:>8} {:>12} {:>12} {:>12}",
            t.height(),
            stats.peak_frames,
            stats.peak_frames * stats.frame_bits,
            fmt_dur(d)
        );
        assert!(stats.peak_frames <= 9);
    }

    println!("\nfixed size 50k, growing depth:");
    println!(
        "{:>10} {:>8} {:>12} {:>12}",
        "nodes", "depth", "peak frames", "peak bits"
    );
    for depth in [4u32, 16, 64, 256, 1024] {
        let t = random_tree_with_depth(&mut rng, 50_000, depth, &["a", "b", "c", "d"]);
        let events = tree_events(&t);
        let (_m, stats) = matches_events(&f, &events);
        println!(
            "{:>10} {depth:>8} {:>12} {:>12}",
            t.len(),
            stats.peak_frames,
            stats.peak_frames * stats.frame_bits
        );
        assert_eq!(stats.peak_frames as u32, depth + 1);
    }
    println!("\npeak memory tracks depth exactly and ignores size — the Section 7 picture.");

    // The contrast: node-*selection* needs candidate buffers that grow
    // with the data (the [40] lower-bound story) even at fixed depth.
    println!(
        "\nselection (not filtering) on r(a a a …) with query //r[b]/a — buffered candidates:"
    );
    println!(
        "{:>10} {:>14} {:>14}",
        "children", "peak pending", "peak frames"
    );
    let sel = compile(&parse_xpath("//r[b]/a").unwrap()).unwrap();
    for n in [100usize, 1_000, 10_000] {
        let mut term = String::from("r(");
        term.push_str(&"a ".repeat(n));
        term.push(')');
        let t = treequery_core::parse_term(&term).unwrap();
        let events = tree_events(&t);
        let (_res, stats) = select_events(&sel, &events);
        println!(
            "{n:>10} {:>14} {:>14}",
            stats.peak_pending, stats.memory.peak_frames
        );
    }
    println!("filtering memory is flat; selection buffering grows with the data.");
}
