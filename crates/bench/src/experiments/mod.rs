//! One module per experiment; ids match `DESIGN.md` and `EXPERIMENTS.md`.

pub mod e01_table1;
pub mod e02_xasr;
pub mod e03_minoux;
pub mod e04_decomposition;
pub mod e05_xproperty;
pub mod e06_enumeration;
pub mod e07_dichotomy;
pub mod e08_datalog;
pub mod e09_treewidth;
pub mod e10_xpath_cq;
pub mod e11_rewrite;
pub mod e12_structural;
pub mod e13_twig;
pub mod e14_streaming;
pub mod e15_hornsat;
pub mod e16_xpath_scaling;
pub mod e17_planner;
pub mod e18_observability;
pub mod e19_parallel;
pub mod e21_memory;
pub mod e22_postings;
pub mod e23_flight;
pub mod e24_incremental;

/// Runs every experiment in order.
pub fn run_all() {
    e01_table1::run();
    e02_xasr::run();
    e03_minoux::run();
    e04_decomposition::run();
    e05_xproperty::run();
    e06_enumeration::run();
    e07_dichotomy::run();
    e08_datalog::run();
    e09_treewidth::run();
    e10_xpath_cq::run();
    e11_rewrite::run();
    e12_structural::run();
    e13_twig::run();
    e14_streaming::run();
    e15_hornsat::run();
    e16_xpath_scaling::run();
    e17_planner::run();
    e18_observability::run();
    e19_parallel::run();
    e21_memory::run();
    e22_postings::run();
    e23_flight::run();
    e24_incremental::run();
}
