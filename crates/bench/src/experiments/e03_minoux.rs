//! E3 — Figure 3 / Example 3.3: Minoux's algorithm, the worked trace and
//! its linear-time behavior.

use treequery_core::hornsat::{HornFormula, Var};

use crate::util::{fmt_dur, header, median_time, per_unit};

/// Builds the relabeled ground program of Example 3.3.
pub fn example_formula() -> (HornFormula, Vec<Var>) {
    let mut f = HornFormula::new();
    let v: Vec<Var> = (0..7).map(|_| f.fresh_var()).collect();
    f.add_fact(v[1]);
    f.add_fact(v[2]);
    f.add_fact(v[3]);
    f.add_rule(v[4], &[v[1]]);
    f.add_rule(v[5], &[v[3], v[4]]);
    f.add_rule(v[6], &[v[2], v[5]]);
    (f, v)
}

/// A formula stressing the queue: `m` rules forming interleaved chains.
pub fn chain_formula(m: usize) -> HornFormula {
    let mut f = HornFormula::new();
    let vars: Vec<Var> = (0..m + 1).map(|_| f.fresh_var()).collect();
    f.add_fact(vars[0]);
    for i in 1..=m {
        // Each head depends on up to two earlier variables.
        let a = vars[i - 1];
        let b = vars[i / 2];
        f.add_rule(vars[i], &[a, b]);
    }
    f
}

pub fn run() {
    header(
        "E3",
        "Figure 3 / Example 3.3 — Minoux's linear-time Horn-SAT",
    );
    let (f, _) = example_formula();
    let st = f.initial_state();
    println!("initial data structures (Example 3.3):");
    println!("  size  = {:?}", st.size);
    println!(
        "  head  = {:?}",
        st.heads.iter().map(|v| v.0).collect::<Vec<_>>()
    );
    for (p, rules) in st.rules.iter().enumerate().skip(1) {
        println!(
            "  rules[{p}] = {:?}",
            rules
                .iter()
                .map(|r| format!("r{}", r.0 + 1))
                .collect::<Vec<_>>()
        );
    }
    println!(
        "  q     = {:?}",
        st.queue.iter().map(|v| v.0).collect::<Vec<_>>()
    );
    let sol = f.solve();
    println!(
        "derivation order: {:?} (paper: 1, 2, 3, 4, 5, 6)",
        sol.derivation_order()
            .iter()
            .map(|v| v.0)
            .collect::<Vec<_>>()
    );

    println!("\nlinear-time scaling (time / formula size ≈ constant):");
    println!("{:>12} {:>12} {:>12}", "|Φ|", "time", "per literal");
    for m in [10_000usize, 40_000, 160_000, 640_000] {
        let f = chain_formula(m);
        let size = f.size() as u64;
        let d = median_time(5, || f.solve());
        println!("{size:>12} {:>12} {:>12}", fmt_dur(d), per_unit(d, size));
    }
}
