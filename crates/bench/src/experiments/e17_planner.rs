//! E17 — the statistics-driven planner: planner-chosen strategies vs
//! forced ones on an XMark document, plan-cache behaviour, and the
//! `eval_batch` speedup on scoped worker threads.

use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery_core::tree::{xmark_document, XmarkConfig};
use treequery_core::{Engine, EngineConfig, Query, XPathStrategy};

use crate::util::{fmt_dur, header, median_time};

const XPATH_QUERIES: [&str; 6] = [
    "//site[people]",
    "//people/person[name]",
    "//open_auction[bidder]/seller",
    "//person[address and not(watches)]",
    "//person[phantom]",
    "//phantom[also_absent]/child",
];

const CQ_QUERIES: [&str; 3] = [
    "q(x) :- label(x, person), child(x, y), label(y, name).",
    "child+(x, y), child+(y, z), child+(x, z)",
    "q(x) :- child+(x, y), child+(x, z), child+(y, w), child+(z, w), label(x, person).",
];

pub fn doc(scale: usize) -> treequery_core::Tree {
    let mut rng = StdRng::seed_from_u64(17);
    xmark_document(&mut rng, &XmarkConfig::scaled_to(scale))
}

pub fn run() {
    header("E17", "statistics-driven planner vs forced strategies");
    let t = doc(60_000);
    let e = Engine::new(&t);
    println!("document: {} nodes (XMark)", t.len());

    println!(
        "\n{:<38} {:>22} {:>10} {:>10} {:>10}",
        "xpath query", "chosen strategy", "planned", "sweep", "via-cq"
    );
    for q in XPATH_QUERIES {
        let explained = e.explain(&Query::xpath(q)).unwrap();
        let planned = median_time(3, || e.xpath(q).unwrap());
        let sweep = median_time(3, || e.xpath_via(q, XPathStrategy::SetAtATime).unwrap());
        let via_cq = match e.xpath_via(q, XPathStrategy::AcyclicCq) {
            Ok(_) => fmt_dur(median_time(3, || {
                e.xpath_via(q, XPathStrategy::AcyclicCq).unwrap()
            })),
            Err(_) => "—".to_owned(),
        };
        println!(
            "{:<38} {:>22} {:>10} {:>10} {:>10}",
            q,
            explained.strategy.to_string(),
            fmt_dur(planned),
            fmt_dur(sweep),
            via_cq
        );
    }

    println!("\n{:<78} {:>22}", "cq query", "chosen strategy");
    for q in CQ_QUERIES {
        let explained = e.explain(&Query::cq(q)).unwrap();
        println!("{:<78} {:>22}", q, explained.strategy.to_string());
        println!("    why: {} [{}]", explained.rationale, explained.cost);
    }

    // Batched evaluation: the same mixed workload sequentially and on the
    // scoped worker pool, answers asserted identical.
    let mut workload: Vec<Query> = Vec::new();
    let labels = [
        "site",
        "people",
        "person",
        "name",
        "open_auction",
        "bidder",
        "item",
        "description",
        "category",
        "increase",
    ];
    for a in labels {
        for b in labels {
            workload.push(Query::xpath(format!("//{a}[{b}]")));
        }
    }
    for q in XPATH_QUERIES {
        workload.push(Query::xpath(q));
    }
    for q in CQ_QUERIES {
        workload.push(Query::cq(q));
    }
    let seq_engine = Engine::with_config(
        &t,
        EngineConfig {
            batch_threads: Some(1),
            ..EngineConfig::default()
        },
    );
    let par_engine = Engine::new(&t);
    let seq_out = seq_engine.eval_batch(&workload);
    let par_out = par_engine.eval_batch(&workload);
    for (i, (s, p)) in seq_out.iter().zip(&par_out).enumerate() {
        assert_eq!(
            s.as_ref().ok(),
            p.as_ref().ok(),
            "batch result {i} diverged"
        );
    }
    let seq = median_time(3, || seq_engine.eval_batch(&workload));
    let par = median_time(3, || par_engine.eval_batch(&workload));
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "\neval_batch: {} queries  1 thread {}  {} thread(s) {}  speedup {:.2}x on {} core(s)",
        workload.len(),
        fmt_dur(seq),
        threads,
        fmt_dur(par),
        seq.as_secs_f64() / par.as_secs_f64().max(1e-9),
        threads
    );

    let m = par_engine.metrics();
    println!(
        "plan cache: {} plans for {} executions ({} hits, {} misses); \
         {} semijoin passes, {} nodes in reduced candidate sets",
        par_engine.cached_plans(),
        m.queries_executed,
        m.plan_cache_hits,
        m.plan_cache_misses,
        m.semijoin_passes,
        m.candidate_nodes
    );
    println!(
        "the planner keeps the sweep for common labels and short-circuits absent \
         ones through the reducer; batching scales with available cores."
    );
    crate::report::submit_metrics("e17", par_engine.metrics().to_json());
}
