//! E9 — Theorem 4.1: Boolean CQs of tree-width k on arbitrary structures
//! in `O((|A|^(k+1) + ||A||) · |Q|)`: time tracks `|A|^(k+1)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use treequery_core::cq::relational::{eval_treewidth_auto, GenAtom, GenCq, RelStructure};

use crate::util::{fmt_dur, header, median_time};

/// A random directed graph structure with edge probability 0.3.
pub fn random_structure(domain: usize, seed: u64) -> RelStructure {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = RelStructure::new(domain);
    let mut pairs = Vec::new();
    for x in 0..domain as u32 {
        for y in 0..domain as u32 {
            if x != y && rng.gen_bool(0.3) {
                pairs.push((x, y));
            }
        }
    }
    a.add_binary("E", pairs);
    a
}

/// A cycle query with `vars` variables (tree-width 2).
pub fn cycle_cq(vars: usize) -> GenCq {
    let mut atoms = Vec::new();
    for i in 0..vars {
        atoms.push(GenAtom::Binary("E".into(), i, (i + 1) % vars));
    }
    GenCq {
        num_vars: vars,
        atoms,
    }
}

/// The k-clique query (tree-width k − 1).
pub fn clique_cq(k: usize) -> GenCq {
    let mut atoms = Vec::new();
    for i in 0..k {
        for j in 0..k {
            if i != j {
                atoms.push(GenAtom::Binary("E".into(), i, j));
            }
        }
    }
    GenCq { num_vars: k, atoms }
}

pub fn run() {
    header(
        "E9",
        "Theorem 4.1 — bounded-tree-width CQs on arbitrary structures",
    );
    println!(
        "{:>14} {:>6} {:>4} {:>12} {:>12} {:>14}",
        "query", "|A|", "k", "|A|^(k+1)", "time", "ns per unit"
    );
    for (name, q, k) in [
        ("5-cycle", cycle_cq(5), 2usize),
        ("4-clique", clique_cq(4), 3usize),
    ] {
        for domain in [8usize, 16, 32] {
            let a = random_structure(domain, 99);
            let units = (domain as u64).pow(k as u32 + 1);
            let d = median_time(3, || eval_treewidth_auto(&q, &a));
            println!(
                "{name:>14} {domain:>6} {k:>4} {units:>12} {:>12} {:>14.1}",
                fmt_dur(d),
                d.as_nanos() as f64 / units as f64
            );
        }
    }
    println!("time scales with |A|^(k+1) for fixed k, as Theorem 4.1 predicts.");
}
