//! E11 — Theorem 5.1: rewriting CQs into unions of acyclic queries.
//!
//! The union size grows exponentially in the number of `Child⁺`
//! conflicts (as \[35\] proves it must, in the worst case), yet
//! rewrite + Yannakakis still beats exhaustive backtracking on the
//! evaluation side.

use treequery_core::cq::{
    eval_backtrack_with_stats, parse_cq, rewrite::eval_via_rewrite, rewrite_to_acyclic, Cq,
};
use treequery_core::tree::random_recursive_tree;
use treequery_core::Tree;

use crate::util::{fmt_dur, header, median_time};

/// k ancestors (with distinct labels) of a common node: the branching
/// query family of the proof.
pub fn ancestors_query(k: usize) -> Cq {
    let atoms: Vec<String> = (0..k)
        .map(|i| format!("child+(x{i}, z), label(x{i}, a{})", i % 3))
        .collect();
    parse_cq(&format!("q(z) :- {}.", atoms.join(", "))).unwrap()
}

pub fn bench_tree() -> Tree {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    use rand::SeedableRng;
    random_recursive_tree(&mut rng, 400, &["a0", "a1", "a2", "b"])
}

pub fn run() {
    header("E11", "Theorem 5.1 — CQ → union of acyclic queries");
    let t = bench_tree();
    println!("tree: {} nodes", t.len());
    println!(
        "{:>3} {:>10} {:>10} {:>12} {:>14} {:>18}",
        "k", "branches", "emitted", "rewrite time", "rewrite+eval", "backtrack assg."
    );
    for k in [1usize, 2, 3, 4, 5] {
        let q = ancestors_query(k);
        let (union, stats) = rewrite_to_acyclic(&q).unwrap();
        let rw_time = median_time(3, || rewrite_to_acyclic(&q).unwrap());
        let eval_time = median_time(3, || eval_via_rewrite(&q, &t).unwrap());
        let (slow_result, slow_stats) = eval_backtrack_with_stats(&q, &t);
        assert_eq!(eval_via_rewrite(&q, &t).unwrap(), slow_result);
        println!(
            "{k:>3} {:>10} {:>10} {:>12} {:>14} {:>18}",
            stats.branches,
            union.len(),
            fmt_dur(rw_time),
            fmt_dur(eval_time),
            slow_stats.assignments
        );
    }
    println!("union size grows exponentially in k (the [35] lower bound);");
    println!("each member is acyclic and evaluates in linear time.");
}
