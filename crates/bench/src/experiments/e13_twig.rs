//! E13 — Section 6 / \[13\]: holistic twig joins vs binary structural-join
//! plans: intermediate-result sizes and times on the XMark workload.

use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery_core::cq::twigjoin::{structural_join_plan, twig_stack, TwigEdge, TwigQuery};
use treequery_core::tree::{xmark_document, XmarkConfig};
use treequery_core::Tree;

use crate::util::{fmt_dur, header, median_time};

/// The pattern `site//open_auction[//bidder/increase][seller]` — branchy
/// with both `/` and `//` edges.
pub fn pattern() -> TwigQuery {
    let mut tq = TwigQuery::new("site");
    let auction = tq.add_child(0, "open_auction", TwigEdge::Descendant);
    let bidder = tq.add_child(auction, "bidder", TwigEdge::Descendant);
    tq.add_child(bidder, "increase", TwigEdge::Child);
    tq.add_child(auction, "seller", TwigEdge::Child);
    tq
}

pub fn doc(scale: usize) -> Tree {
    let mut rng = StdRng::seed_from_u64(13);
    xmark_document(&mut rng, &XmarkConfig::scaled_to(scale))
}

pub fn run() {
    header(
        "E13",
        "Holistic twig joins [13] vs binary structural-join plans",
    );
    let tq = pattern();
    println!("pattern: site//open_auction[.//bidder/increase][seller]");
    println!(
        "{:>9} {:>9} {:>10} {:>12} {:>14} {:>12} {:>12}",
        "nodes", "matches", "ts pushed", "ts path-sol", "plan intermed.", "twig time", "plan time"
    );
    for scale in [2_000usize, 8_000, 32_000] {
        let t = doc(scale);
        let (matches, stats) = twig_stack(&tq, &t);
        let (plan_matches, intermediate) = structural_join_plan(&tq, &t);
        let mut pm = plan_matches;
        pm.sort_unstable();
        pm.dedup();
        assert_eq!(matches.len(), pm.len(), "algorithms disagree");
        let twig_time = median_time(3, || twig_stack(&tq, &t));
        let plan_time = median_time(3, || structural_join_plan(&tq, &t));
        println!(
            "{:>9} {:>9} {:>10} {:>12} {:>14} {:>12} {:>12}",
            t.len(),
            matches.len(),
            stats.pushed,
            stats.path_solutions,
            intermediate,
            fmt_dur(twig_time),
            fmt_dur(plan_time)
        );
    }
    println!("the holistic join touches far fewer intermediate tuples than the binary plan.");
}
