//! E23 — the workload observatory: flight-ring retention, the slow-query
//! log, and the disabled-path cost of flight recording.
//!
//! Three demonstrations on a seed-pinned workload:
//!
//! 1. **Bounded retention.** With a capacity-8 ring and 20 evaluations,
//!    the flight recorder retains exactly the newest 8 records (ids
//!    13..=20) — eviction is by query id, never by completion order.
//! 2. **Slow-query log.** With the per-engine threshold at 0ms every
//!    query logs as slow; the separate slow ring (capacity 4) keeps the
//!    newest entries with their full `EXPLAIN ANALYZE` text and a
//!    re-runnable reproducer.
//! 3. **Disabled path.** After `uninstall` the span gate is back to one
//!    relaxed load; the measured overhead must sit in the same ~2ns
//!    regime `--check-noop-overhead` budgets.

use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery_core::obs::flight;
use treequery_core::tree::random_recursive_tree;
use treequery_core::{Engine, EngineConfig, PlannerConfig, Query};

use super::e18_observability;
use crate::util::{fmt_dur, header};

/// The pinned workload: 20 two-step XPath queries, the last 4 repeating
/// earlier ones (so the table shows plan-cache hits).
fn demo_query(i: usize) -> Query {
    let labels = ["a", "b", "c", "d"];
    Query::xpath(format!("//{}/{}", labels[i % 4], labels[(i / 4) % 4]))
}

pub fn run() {
    header(
        "E23",
        "workload observatory: flight recorder, slow log, disabled path",
    );
    flight::install(flight::FlightConfig {
        capacity: 8,
        slow_capacity: 4,
        ..flight::FlightConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(23);
    let tree = random_recursive_tree(&mut rng, 4_000, &["a", "b", "c", "d"]);
    let engine = Engine::with_config(
        &tree,
        EngineConfig {
            planner: PlannerConfig {
                // 0ms: every query crosses the slow threshold.
                slow_query_ms: Some(0),
                ..PlannerConfig::default()
            },
            ..EngineConfig::default()
        },
    );

    const QUERIES: usize = 20;
    for i in 0..QUERIES {
        engine.eval(&demo_query(i)).expect("demo queries evaluate");
    }

    let recent = flight::recent();
    println!(
        "\nflight ring after {QUERIES} queries (capacity 8, {} submitted):",
        flight::submitted_total()
    );
    println!(
        "{:>4} {:<10} {:<26} {:>6} {:>10} {:>7}",
        "id", "query", "strategy", "rows", "wall", "cache"
    );
    for r in &recent {
        println!(
            "{:>4} {:<10} {:<26} {:>6} {:>10} {:>7}",
            r.id,
            r.query,
            r.strategy,
            r.rows,
            fmt_dur(std::time::Duration::from_nanos(r.wall_ns)),
            if r.cache_hit { "hit" } else { "miss" },
        );
    }
    assert_eq!(recent.len(), 8, "ring retains exactly its capacity");
    let ids: Vec<u64> = recent.iter().map(|r| r.id).collect();
    assert_eq!(
        ids,
        (13..=20).collect::<Vec<u64>>(),
        "ring holds exactly the newest 8 query ids"
    );
    println!(
        "retained ids {}..={} — the 12 oldest were evicted ✓",
        13, 20
    );

    let slow = flight::slow_recent();
    assert_eq!(slow.len(), 4, "slow ring retains its own capacity");
    println!(
        "\nslow-query log (threshold 0ms, capacity 4): {} entries",
        slow.len()
    );
    let newest = slow.last().expect("slow log is non-empty");
    println!("newest reproducer:");
    for line in newest.detail.reproducer.lines() {
        println!("  {line}");
    }
    println!("EXPLAIN ANALYZE (first lines):");
    for line in newest.detail.explain.lines().take(5) {
        println!("  {line}");
    }

    flight::uninstall();
    let overhead = e18_observability::noop_overhead();
    println!(
        "\ndisabled-path cost after uninstall: {:.2}ns per span \
         ({:+.2}% on the hot loop; the --check-noop-overhead gate budgets \
         this against crates/bench/noop_baseline.json)",
        overhead.per_span_ns,
        (overhead.ratio - 1.0) * 100.0
    );
    crate::report::submit_metrics("e23", engine.metrics().to_json());
}

#[cfg(test)]
mod tests {
    use super::*;

    // The only treequery-bench test touching the process-global flight
    // state; keep it that way (or add a lock) if more are added.
    #[test]
    fn twenty_queries_leave_the_newest_eight_records() {
        flight::install(flight::FlightConfig {
            capacity: 8,
            slow_capacity: 4,
            ..flight::FlightConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(23);
        let tree = random_recursive_tree(&mut rng, 200, &["a", "b", "c", "d"]);
        let engine = Engine::new(&tree);
        for i in 0..20 {
            engine.eval(&demo_query(i)).unwrap();
        }
        let ids: Vec<u64> = flight::recent().iter().map(|r| r.id).collect();
        assert_eq!(ids, (13..=20).collect::<Vec<u64>>());
        flight::uninstall();
    }
}
