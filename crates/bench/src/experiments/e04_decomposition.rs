//! E4 — Figure 4: (Child, NextSibling) tree graphs have tree-width 2,
//! witnessed by an explicit valid decomposition at every scale.

use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery_core::cq::decomposition::{decompose_tree_structure, Graph};
use treequery_core::tree::random_recursive_tree;

use crate::util::{fmt_dur, header, median_time};

pub fn run() {
    header(
        "E4",
        "Figure 4 — width-2 decompositions of (Child, NextSibling) graphs",
    );
    let mut rng = StdRng::seed_from_u64(4);
    println!(
        "{:>10} {:>8} {:>8} {:>12}",
        "nodes", "width", "valid", "build time"
    );
    for n in [100usize, 1_000, 10_000, 100_000] {
        let t = random_recursive_tree(&mut rng, n, &["a", "b"]);
        let g = Graph::of_tree_structure(&t);
        let d = decompose_tree_structure(&t);
        let valid = d.is_valid_for(&g);
        let dur = median_time(3, || decompose_tree_structure(&t));
        println!("{n:>10} {:>8} {valid:>8} {:>12}", d.width(), fmt_dur(dur));
        assert!(valid && d.width() <= 2);
    }
    println!("every decomposition is valid with width ≤ 2 ✓ (Figure 4)");
}
