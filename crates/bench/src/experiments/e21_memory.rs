//! E21 — the resource observatory's headline measurement: Horn-SAT
//! grounding + Minoux solving needs peak-live memory *linear* in the
//! formula size `|D|`.
//!
//! The counting allocator's peak-live watermark is reset before each
//! solve, so the measurement is "how many extra live bytes did this run
//! need at its worst moment". A log-log least-squares fit over a
//! geometric size ladder should come out with slope ≈ 1 (linear) and an
//! R² near 1 (a genuine power law, not noise).

use treequery_core::obs::alloc::{self, AccountingGuard};

use super::e15_hornsat::random_formula;
use crate::util::header;

/// A least-squares fit of `log y = slope · log x + c`.
#[derive(Clone, Copy, Debug)]
pub struct ScalingFit {
    /// Exponent of the fitted power law (1.0 = linear).
    pub slope: f64,
    /// Coefficient of determination of the log-log fit.
    pub r2: f64,
}

/// Fits a power law through `(x, y)` points via least squares in
/// log-log space. Points with a zero coordinate are skipped.
pub fn log_log_fit(points: &[(f64, f64)]) -> ScalingFit {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = logs.len() as f64;
    assert!(n >= 2.0, "need at least two positive points to fit");
    let mean_x = logs.iter().map(|(x, _)| x).sum::<f64>() / n;
    let mean_y = logs.iter().map(|(_, y)| y).sum::<f64>() / n;
    let sxy: f64 = logs.iter().map(|(x, y)| (x - mean_x) * (y - mean_y)).sum();
    let sxx: f64 = logs.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
    let syy: f64 = logs.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let slope = sxy / sxx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    ScalingFit { slope, r2 }
}

/// Solves a random definite Horn formula of `m` rules and returns
/// `(|D| in literals, peak-live bytes of the solve)`.
pub fn measure_peak_live(m: usize) -> (u64, u64) {
    let f = random_formula(m, 21);
    let size = f.size() as u64;
    let _accounting = AccountingGuard::begin();
    // One warm solve so lazy one-time allocations don't pollute the
    // smallest size's watermark.
    let _ = f.solve();
    alloc::reset_peak_live();
    let before = alloc::global_stats();
    let solved = f.solve();
    let after = alloc::global_stats();
    std::hint::black_box(solved.num_true());
    (size, after.peak_live.saturating_sub(before.live_bytes))
}

/// Measures the ladder and returns the points plus the fit.
pub fn scaling(sizes: &[usize]) -> (Vec<(u64, u64)>, ScalingFit) {
    let points: Vec<(u64, u64)> = sizes.iter().map(|&m| measure_peak_live(m)).collect();
    let fit = log_log_fit(
        &points
            .iter()
            .map(|&(x, y)| (x as f64, y as f64))
            .collect::<Vec<_>>(),
    );
    (points, fit)
}

pub fn run() {
    header(
        "E21",
        "Peak-live memory of Horn-SAT solving is linear in |D|",
    );
    println!(
        "{:>12} {:>16} {:>14}",
        "|D| literals", "peak-live bytes", "bytes per lit"
    );
    let (points, fit) = scaling(&[20_000, 40_000, 80_000, 160_000, 320_000]);
    for (size, peak) in &points {
        println!(
            "{size:>12} {peak:>16} {:>14.2}",
            *peak as f64 / *size as f64
        );
    }
    println!(
        "log-log fit: slope {:.3} (1.0 = linear), R^2 {:.4}",
        fit.slope, fit.r2
    );
    println!("peak-live memory grows linearly with the formula size.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_known_power_laws() {
        let linear: Vec<(f64, f64)> = (1..=6).map(|i| (i as f64, 3.0 * i as f64)).collect();
        let fit = log_log_fit(&linear);
        assert!((fit.slope - 1.0).abs() < 1e-9, "{fit:?}");
        assert!(fit.r2 > 0.999, "{fit:?}");
        let quadratic: Vec<(f64, f64)> = (1..=6).map(|i| (i as f64, (i * i) as f64)).collect();
        let fit = log_log_fit(&quadratic);
        assert!((fit.slope - 2.0).abs() < 1e-9, "{fit:?}");
    }

    /// The experiment's claim, on a reduced ladder so the test stays
    /// fast in debug builds: peak-live bytes scale linearly in |D|.
    #[test]
    fn horn_sat_peak_live_is_linear() {
        let (points, fit) = scaling(&[8_000, 16_000, 32_000, 64_000]);
        assert!(
            (0.75..=1.25).contains(&fit.slope),
            "slope {:.3} not ~linear; points: {points:?}",
            fit.slope
        );
        assert!(fit.r2 >= 0.95, "R^2 {:.4}; points: {points:?}", fit.r2);
    }
}
