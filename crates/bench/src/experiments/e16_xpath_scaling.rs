//! E16 — linear data complexity of Core XPath (Sections 3–4): both the
//! set-at-a-time evaluator and the monadic-datalog route scale linearly
//! in the document size for a fixed query — including negation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery_core::datalog::eval_query as datalog_eval;
use treequery_core::tree::{xmark_document, XmarkConfig};
use treequery_core::xpath::{eval_query, parse_xpath, to_datalog};
use treequery_core::Tree;

use crate::util::{fmt_dur, header, median_time, per_unit};

pub const QUERY: &str = "//person[address and not(watches)]/profile";

pub fn doc(scale: usize) -> Tree {
    let mut rng = StdRng::seed_from_u64(16);
    xmark_document(&mut rng, &XmarkConfig::scaled_to(scale))
}

pub fn run() {
    header(
        "E16",
        "Core XPath data complexity is linear (incl. negation)",
    );
    let path = parse_xpath(QUERY).unwrap();
    let prog = to_datalog(&path);
    println!(
        "query: {QUERY}  (datalog translation: {} rules)",
        prog.rules.len()
    );
    println!(
        "{:>9} {:>8} {:>13} {:>13} {:>13} {:>13}",
        "nodes", "results", "set-at-time", "ns/node", "via datalog", "ns/node"
    );
    for scale in [5_000usize, 20_000, 80_000, 160_000] {
        let t = doc(scale);
        let fast = median_time(3, || eval_query(&path, &t));
        let via_datalog = median_time(3, || datalog_eval(&prog, &t));
        let result = eval_query(&path, &t);
        assert_eq!(datalog_eval(&prog, &t), result);
        println!(
            "{:>9} {:>8} {:>13} {:>13} {:>13} {:>13}",
            t.len(),
            result.len(),
            fmt_dur(fast),
            per_unit(fast, t.len() as u64),
            fmt_dur(via_datalog),
            per_unit(via_datalog, t.len() as u64)
        );
    }
    println!("both engines are linear in ||A||; the datalog constant is larger (grounding).");
}
