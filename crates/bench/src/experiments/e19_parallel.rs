//! E19 — intra-query parallelism: speedup scaling of the shared-pool
//! kernels over their sequential counterparts, with the parallel output
//! asserted identical (same bytes, same order) to sequential inside the
//! experiment.
//!
//! Two workloads, both at ≥64k nodes: the E12 structural join (chunked
//! Stack-Tree-Desc with stitched stack seeds) and the E10 XPath sweep
//! run through the engine with the planner's parallelism decision forced
//! to 1 / 2 / 4 workers.

use treequery_core::plan::par::par_stack_tree_join;
use treequery_core::storage::stack_tree_join;
use treequery_core::{Engine, EngineConfig, Metrics, PlannerConfig};

use super::{e10_xpath_cq, e12_structural};
use crate::util::{fmt_dur, header, median_time};

const JOIN_NODES: usize = 65_536;

fn machine_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn engine_config(workers: usize) -> EngineConfig {
    EngineConfig {
        planner: PlannerConfig {
            workers: Some(workers),
            ..PlannerConfig::default()
        },
        ..EngineConfig::default()
    }
}

pub fn run() {
    header(
        "E19",
        "intra-query parallelism — speedup scaling on the shared pool",
    );
    let cores = machine_parallelism();
    println!("machine parallelism: {cores} (the 2x-at-4-workers gate applies at >= 4 cores)");

    // Workload 1: the E12 structural-join inputs.
    let (_t, x) = e12_structural::workload(JOIN_NODES);
    let la = x.label_list("a");
    let lb = x.label_list("b");
    let seq_out = stack_tree_join(la, lb);
    let seq = median_time(3, || stack_tree_join(la, lb));
    println!(
        "\nE12 structural join: {JOIN_NODES} nodes, {} ancestors x {} descendants, {} output pairs",
        la.len(),
        lb.len(),
        seq_out.len()
    );
    println!("{:>9} {:>12} {:>9}", "workers", "time", "speedup");
    println!("{:>9} {:>12} {:>9}", 1, fmt_dur(seq), "1.00x");
    for w in [2usize, 4] {
        let m = Metrics::default();
        let par_out = par_stack_tree_join(la, lb, w, &m);
        assert_eq!(
            par_out, seq_out,
            "parallel join output must equal sequential at {w} workers"
        );
        let t = median_time(3, || par_stack_tree_join(la, lb, w, &m));
        let speedup = seq.as_secs_f64() / t.as_secs_f64();
        println!("{w:>9} {:>12} {speedup:>8.2}x", fmt_dur(t));
        if w == 4 && cores >= 4 {
            assert!(
                speedup >= 2.0,
                "expected >= 2x speedup at 4 workers on {cores} cores, got {speedup:.2}x"
            );
        }
    }

    // Workload 2: the E10 XPath query through the engine, with the
    // planner's parallelism decision forced per engine.
    let doc = e10_xpath_cq::doc(80_000);
    assert!(doc.len() >= 64_000, "XMark document too small");
    let query = e10_xpath_cq::QUERY;
    let sequential = Engine::with_config(&doc, engine_config(1));
    let seq_nodes = sequential.xpath(query).unwrap();
    let seq = median_time(3, || sequential.xpath(query).unwrap());
    println!(
        "\nE10 XPath sweep: {} nodes, query {query}, {} result nodes",
        doc.len(),
        seq_nodes.len()
    );
    println!("{:>9} {:>12} {:>9}", "workers", "time", "speedup");
    println!("{:>9} {:>12} {:>9}", 1, fmt_dur(seq), "1.00x");
    for w in [2usize, 4] {
        let engine = Engine::with_config(&doc, engine_config(w));
        let par_nodes = engine.xpath(query).unwrap();
        assert_eq!(
            par_nodes, seq_nodes,
            "parallel XPath result must equal sequential (same order) at {w} workers"
        );
        let t = median_time(3, || engine.xpath(query).unwrap());
        let speedup = seq.as_secs_f64() / t.as_secs_f64();
        let kernels = engine.metrics().parallel_kernels;
        assert!(
            kernels > 0,
            "the engine should have dispatched parallel kernels at {w} workers"
        );
        println!("{w:>9} {:>12} {speedup:>8.2}x", fmt_dur(t));
        if w == 4 && cores >= 4 {
            assert!(
                speedup >= 2.0,
                "expected >= 2x speedup at 4 workers on {cores} cores, got {speedup:.2}x"
            );
        }
    }
    println!("parallel output is asserted identical to sequential in both workloads.");
}
