//! The pinned benchmark suite behind `harness bench`: the continuous
//! performance trajectory.
//!
//! One representative query per executor strategy × {small, large}
//! XMark-like documents × {1, 4} workers, each measured for wall time
//! (p50 over the reps), allocations, bytes, and peak-live bytes under
//! the counting allocator. The result is a deterministic-schema JSON
//! report (`BENCH_<git-sha>.json`); [`compare_reports`] is the CI gate
//! that diffs a fresh run against the committed baseline and flags
//! regressions above 15% wall or 5% bytes. Set-at-a-time sweep cases
//! additionally carry a `kernel_allocs` count (steady-state allocations
//! attributed to the kernel's `AllocScope`) that is hard-capped at zero.
//!
//! The suite is *pinned*: documents come from fixed seeds, queries are
//! fixed strings, and strategies are forced through
//! `Engine::eval_ir_via` so planner changes do not silently move a case
//! to a different executor. [`build_suite`] self-checks that every
//! strategy stays covered.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery_core::obs::alloc::{self, AccountingGuard};
use treequery_core::obs::{self, CollectingRecorder, Json};
use treequery_core::plan::{applicable_strategies, lower, Strategy};
use treequery_core::tree::{xmark_document, XmarkConfig};
use treequery_core::{Engine, Query, Tree};

/// Schema tag of the emitted report.
pub const SCHEMA: &str = "treequery-bench-trajectory/v1";

/// Wall-time regression threshold for [`compare_reports`] (+15%).
pub const WALL_RATIO_LIMIT: f64 = 1.15;
/// Allocated-bytes regression threshold for [`compare_reports`] (+5%).
/// Tightened from +10% once the executor kernels went zero-alloc in
/// steady state: byte counts are now deterministic enough to ratchet.
pub const BYTES_RATIO_LIMIT: f64 = 1.05;
/// Incremental re-query budget: on each document size, one edit plus a
/// watched re-read must cost less than this fraction of rebuilding the
/// model from scratch. Checked within the *current* run (both sides
/// share any machine noise), so it is a hard cap, not a ratio against
/// the baseline.
pub const INCREMENTAL_WALL_RATIO: f64 = 0.30;
/// The incremental cap only applies when the rebuild side takes at
/// least this long: below it (toy documents, debug builds) the ratio is
/// dominated by fixed per-edit overhead, not asymptotics. Matches
/// [`WALL_FLOOR_NS`]; at the production sizes the large-document
/// rebuild sits well above it.
pub const INCREMENTAL_REBUILD_FLOOR_NS: u64 = WALL_FLOOR_NS;
/// Documents below this size skip the requery pair entirely: on toy
/// trees (debug test runs) both sides are dominated by fixed per-edit
/// overhead and the ratio is noise-bound under parallel test load.
pub const REQUERY_MIN_NODES: usize = 300;
/// Baseline cases faster than this are excluded from the *wall* check —
/// below a couple hundred microseconds, scheduler noise swamps any real
/// signal. The byte counts of such cases are still compared (they are
/// deterministic).
pub const WALL_FLOOR_NS: u64 = 150_000;

/// One pinned case: a strategy forced over a fixed query/document/worker
/// combination.
#[derive(Clone, Debug)]
pub struct BenchCase {
    /// Stable identifier (`<strategy>/<doc>/w<workers>`), the join key
    /// for baseline comparison.
    pub id: String,
    /// The forced executor strategy.
    pub strategy: Strategy,
    /// The query text (parsed per run).
    pub query: Query,
    /// Which pinned document: `"small"` or `"large"`.
    pub doc: &'static str,
    /// Worker count forced on the executor.
    pub workers: usize,
}

/// The candidate queries the suite draws from; each strategy binds to
/// the first candidate it applies to.
fn candidates() -> Vec<Query> {
    vec![
        Query::xpath("//person/name"),
        Query::cq("q(x) :- label(x, person), child(x, y), label(y, name)."),
        Query::cq("child+(x, y), child+(y, z), child+(x, z)"),
        Query::datalog(
            "P(x) :- label(x, name). \
             P(x0) :- firstchild(x0, x), P(x). \
             P(x0) :- nextsibling(x0, x), P(x). \
             ?- P.",
        ),
    ]
}

fn strategy_slug(s: Strategy) -> String {
    s.to_string()
}

/// The executor stage (`AllocScope` name) that wraps a strategy's kernel
/// call, for attributed steady-state allocation measurement. The
/// reference evaluator has no kernel scope.
fn kernel_stage(s: Strategy) -> Option<&'static str> {
    match s {
        Strategy::XPathSetAtATime => Some("exec.sweep"),
        Strategy::XPathViaDatalog | Strategy::DatalogGround => Some("exec.ground_minoux"),
        Strategy::XPathViaAcyclicCq | Strategy::CqAcyclic => Some("exec.semijoin"),
        Strategy::CqRewriteUnion(_) => Some("exec.union"),
        Strategy::CqXProperty(_) => Some("exec.arc_consistency"),
        Strategy::CqBacktrack => Some("exec.backtrack"),
        Strategy::XPathReference => None,
    }
}

/// Builds the pinned case list. Panics if any executor strategy lost
/// coverage — the suite must keep tracking every strategy as the
/// planner evolves.
pub fn build_suite() -> Vec<BenchCase> {
    let queries = candidates();
    // Pair every strategy with the first candidate query it applies to.
    let mut chosen: Vec<(Strategy, Query)> = Vec::new();
    for q in &queries {
        let ir = lower(q).expect("pinned suite queries lower");
        for s in applicable_strategies(&ir) {
            if !chosen
                .iter()
                .any(|(have, _)| std::mem::discriminant(have) == std::mem::discriminant(&s))
            {
                chosen.push((s, q.clone()));
            }
        }
    }
    const EXPECTED: usize = 9;
    assert_eq!(
        chosen.len(),
        EXPECTED,
        "pinned suite lost strategy coverage; have: {:?}",
        chosen
            .iter()
            .map(|(s, _)| s.to_string())
            .collect::<Vec<_>>()
    );
    let mut cases = Vec::new();
    for (strategy, query) in chosen {
        // The reference evaluator is the quadratic oracle; it exists for
        // differential checks, not speed, so it is tracked only on the
        // small document at one worker.
        let docs: &[&str] = if strategy == Strategy::XPathReference {
            &["small"]
        } else {
            &["small", "large"]
        };
        let workers: &[usize] = if strategy == Strategy::XPathReference {
            &[1]
        } else {
            &[1, 4]
        };
        for doc in docs {
            for &w in workers {
                cases.push(BenchCase {
                    id: format!("{}/{doc}/w{w}", strategy_slug(strategy)),
                    strategy,
                    query: query.clone(),
                    doc,
                    workers: w,
                });
            }
        }
    }
    cases
}

fn pinned_doc(nodes: usize) -> Tree {
    let mut rng = StdRng::seed_from_u64(0xBE9C);
    xmark_document(&mut rng, &XmarkConfig::scaled_to(nodes))
}

/// A fixed CPU-and-memory-bound workload (Horn-SAT solving, min of 5
/// runs) measured in the same process as the suite. Baseline comparison
/// scales wall times by the ratio of calibrations, so a machine that is
/// globally 40% slower today (noisy neighbors, frequency scaling) does
/// not read as 33 wall regressions.
pub fn calibration_ns() -> u64 {
    let formula = crate::experiments::e15_hornsat::random_formula(60_000, 7);
    let mut best = u64::MAX;
    for _ in 0..5 {
        let started = Instant::now();
        std::hint::black_box(formula.solve().num_true());
        best = best.min(started.elapsed().as_nanos() as u64);
    }
    best
}

/// A short calibration probe run immediately before each case, so every
/// case carries a measurement of how fast the machine was *right then*.
/// Noisy-neighbor phases last seconds — long enough to span a whole case
/// but not the probe-to-case gap — so the per-case ratio corrects what a
/// single whole-run calibration cannot.
struct Probe(treequery_core::hornsat::HornFormula);

impl Probe {
    fn new() -> Probe {
        Probe(crate::experiments::e15_hornsat::random_formula(20_000, 7))
    }

    fn measure(&self) -> u64 {
        let mut best = u64::MAX;
        for _ in 0..3 {
            let started = Instant::now();
            std::hint::black_box(self.0.solve().num_true());
            best = best.min(started.elapsed().as_nanos() as u64);
        }
        best
    }
}

/// Runs the pinned suite at the production document sizes (500 / 5000
/// nodes).
pub fn run_suite(reps: usize) -> Json {
    run_suite_with(500, 5_000, reps)
}

/// Runs the pinned suite with explicit document sizes (tests use small
/// ones to stay fast; the emitted schema is identical).
pub fn run_suite_with(small_nodes: usize, large_nodes: usize, reps: usize) -> Json {
    let reps = reps.max(1);
    let small = pinned_doc(small_nodes);
    let large = pinned_doc(large_nodes);
    let engine_small = Engine::new(&small);
    let engine_large = Engine::new(&large);
    let _accounting = AccountingGuard::begin();
    let wall_family = obs::metrics::global().histogram_family_or_existing(
        "treequery_bench_wall_ns",
        "Per-case wall time of the pinned bench suite.",
        "case",
    );

    let probe = Probe::new();
    let mut cases = Vec::new();
    for case in build_suite() {
        let engine = match case.doc {
            "small" => &engine_small,
            _ => &engine_large,
        };
        let probe_ns = probe.measure();
        let ir = lower(&case.query).expect("pinned suite queries lower");
        // Warm up once outside the measured reps (first-touch effects:
        // lazy pool spawn, allocator warmup).
        let warm = engine
            .eval_ir_via(&ir, case.strategy, case.workers)
            .expect("pinned suite cases execute");
        let output_rows = match &warm {
            treequery_core::QueryOutput::Nodes(v) => v.len() as u64,
            treequery_core::QueryOutput::Answer(a) => a.tuples.len() as u64,
        };

        let recorder = std::sync::Arc::new(CollectingRecorder::default());
        // Exact samples, not the power-of-two histogram: bucket-quantized
        // percentiles jump ~2x whenever a case straddles a bucket edge,
        // which would wreck baseline comparison.
        let mut wall: Vec<u64> = Vec::with_capacity(reps);
        let (mut allocs, mut bytes, mut peak) = (u64::MAX, u64::MAX, u64::MAX);
        // Microsecond-scale cases are repped until a wall-clock floor
        // (they are nearly free, and their percentiles need the extra
        // samples to ride out scheduler noise); expensive cases run the
        // configured rep count. Test runs (tiny rep counts) stay exact.
        let time_floor = if reps >= 5 {
            std::time::Duration::from_millis(20)
        } else {
            std::time::Duration::ZERO
        };
        obs::with_recorder(recorder.clone(), || {
            let case_started = Instant::now();
            while wall.len() < reps || (case_started.elapsed() < time_floor && wall.len() < 400) {
                alloc::reset_peak_live();
                let before = alloc::global_stats();
                let started = Instant::now();
                let out = engine
                    .eval_ir_via(&ir, case.strategy, case.workers)
                    .expect("pinned suite cases execute");
                wall.push(started.elapsed().as_nanos() as u64);
                let after = alloc::global_stats();
                // Min over reps: the steady-state cost, immune to one-off
                // noise (a stray lazy init, an OS hiccup mid-rep).
                allocs = allocs.min(after.allocs - before.allocs);
                bytes = bytes.min(after.bytes - before.bytes);
                peak = peak.min(after.peak_live.saturating_sub(before.live_bytes));
                drop(out);
            }
        });
        wall.sort_unstable();
        let wall_p50 = wall[wall.len() / 2];
        let wall_p95 = wall[(wall.len() * 95 / 100).min(wall.len() - 1)];
        wall_family.with_label(&case.id).observe(wall_p50);
        let spans: Vec<Json> = recorder.summary().iter().map(|s| s.to_json()).collect();
        // Steady-state kernel allocations: extra reps run *without* the
        // span recorder (its bookkeeping would be charged to the stage
        // scope), attributed per executor stage by the `AllocScope`
        // totals. A few warm reps first so every pool worker has touched
        // its scratch before the measured rep.
        let kernel_allocs = kernel_stage(case.strategy).map(|stage| {
            for _ in 0..5 {
                drop(
                    engine
                        .eval_ir_via(&ir, case.strategy, case.workers)
                        .expect("pinned suite cases execute"),
                );
            }
            let _ = alloc::take_scope_totals();
            drop(
                engine
                    .eval_ir_via(&ir, case.strategy, case.workers)
                    .expect("pinned suite cases execute"),
            );
            alloc::take_scope_totals()
                .iter()
                .find(|(name, _)| *name == stage)
                .map_or(0, |(_, s)| s.allocs)
        });
        let mut case_json = Json::obj()
            .set("id", case.id.as_str())
            .set("strategy", strategy_slug(case.strategy))
            .set("query", case.query.text())
            .set("doc", case.doc)
            .set("workers", case.workers as u64)
            .set("reps", wall.len() as u64)
            .set("output_rows", output_rows)
            .set("wall_p50_ns", wall_p50)
            .set("wall_p95_ns", wall_p95)
            .set("wall_min_ns", wall[0])
            .set("probe_ns", probe_ns)
            .set("allocs", allocs)
            .set("bytes", bytes)
            .set("peak_live_bytes", peak)
            .set("spans", Json::Arr(spans));
        if let Some(k) = kernel_allocs {
            case_json = case_json.set("kernel_allocs", k);
        }
        cases.push(case_json);
    }
    for (doc, nodes) in [("small", small_nodes), ("large", large_nodes)] {
        if nodes >= REQUERY_MIN_NODES {
            for case in edit_requery_cases(doc, nodes, reps, &probe) {
                cases.push(case);
            }
        }
    }
    engine_small.metrics_quiesced().publish_to_registry();
    Json::obj()
        .set("schema", SCHEMA)
        .set("git_sha", git_sha())
        .set("small_nodes", small_nodes as u64)
        .set("large_nodes", large_nodes as u64)
        .set("calibration_ns", calibration_ns())
        .set("cases", Json::Arr(cases))
}

/// The incremental-vs-rebuild pair for one pinned document size: one
/// relabel edit plus a watched re-query on a live [`Document`] against
/// rebuilding the incremental model from scratch on the edited tree.
/// [`compare_reports`] caps the pair's wall ratio at
/// [`INCREMENTAL_WALL_RATIO`].
fn edit_requery_cases(doc: &str, nodes: usize, reps: usize, probe: &Probe) -> Vec<Json> {
    use crate::experiments::e24_incremental::{doc_of, relabel_script, WATCHED};
    use treequery_core::tree::{EditOp, EditableTree};
    use treequery_core::{datalog, Document};

    let reps = reps.max(2);
    let tree = doc_of(nodes);
    let site = match &relabel_script(&tree, 1)[0] {
        EditOp::Relabel { pre, .. } => *pre,
        _ => unreachable!(),
    };
    // Flip one leaf between `a` and the filler so every rep maintains a
    // real change (an identical relabel would be a no-op).
    let flip = |rep: usize| EditOp::Relabel {
        pre: site,
        label: if rep.is_multiple_of(2) { "a" } else { "x" }.to_owned(),
    };

    let emit = |kind: &str, wall: &mut Vec<u64>, stats: (u64, u64, u64), rows: u64| {
        wall.sort_unstable();
        Json::obj()
            .set("id", format!("{kind}/requery/{doc}/w1"))
            .set("strategy", kind)
            .set("query", WATCHED)
            .set("doc", doc)
            .set("workers", 1u64)
            .set("reps", wall.len() as u64)
            .set("output_rows", rows)
            .set("wall_p50_ns", wall[wall.len() / 2])
            .set(
                "wall_p95_ns",
                wall[(wall.len() * 95 / 100).min(wall.len() - 1)],
            )
            .set("wall_min_ns", wall[0])
            .set("probe_ns", probe.measure())
            .set("allocs", stats.0)
            .set("bytes", stats.1)
            .set("peak_live_bytes", stats.2)
            .set("spans", Json::Arr(Vec::new()))
    };

    let mut document = Document::new(tree.clone());
    let id = document
        .watch_datalog(WATCHED)
        .expect("pinned watch program parses");
    let mut wall = Vec::with_capacity(reps);
    let (mut allocs, mut bytes, mut peak) = (u64::MAX, u64::MAX, u64::MAX);
    let mut rows = 0;
    for rep in 0..reps {
        let op = flip(rep);
        alloc::reset_peak_live();
        let before = alloc::global_stats();
        let started = Instant::now();
        document.edit(&op);
        rows = std::hint::black_box(document.watched(id)).len() as u64;
        wall.push(started.elapsed().as_nanos() as u64);
        let after = alloc::global_stats();
        allocs = allocs.min(after.allocs - before.allocs);
        bytes = bytes.min(after.bytes - before.bytes);
        peak = peak.min(after.peak_live.saturating_sub(before.live_bytes));
    }
    let incremental = emit("incremental", &mut wall, (allocs, bytes, peak), rows);

    let prog = datalog::parse_program(WATCHED).expect("pinned watch program parses");
    let mut et = EditableTree::new(tree);
    let mut wall = Vec::with_capacity(reps);
    let (mut allocs, mut bytes, mut peak) = (u64::MAX, u64::MAX, u64::MAX);
    let mut rows = 0;
    for rep in 0..reps {
        let op = flip(rep);
        alloc::reset_peak_live();
        let before = alloc::global_stats();
        let started = Instant::now();
        et.apply(&op);
        let model = datalog::IncrementalEval::new(prog.clone(), et.tree());
        rows = std::hint::black_box(model.query()).len() as u64;
        wall.push(started.elapsed().as_nanos() as u64);
        let after = alloc::global_stats();
        allocs = allocs.min(after.allocs - before.allocs);
        bytes = bytes.min(after.bytes - before.bytes);
        peak = peak.min(after.peak_live.saturating_sub(before.live_bytes));
    }
    let rebuild = emit("rebuild", &mut wall, (allocs, bytes, peak), rows);

    vec![incremental, rebuild]
}

/// The current commit's short hash (`unknown` outside a git checkout).
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn case_map(report: &Json) -> Vec<(&str, &Json)> {
    report
        .get("cases")
        .and_then(Json::as_arr)
        .map(|cases| {
            cases
                .iter()
                .filter_map(|c| c.get("id").and_then(Json::as_str).map(|id| (id, c)))
                .collect()
        })
        .unwrap_or_default()
}

/// Diffs a fresh suite run against a baseline report. Returns one
/// human-readable line per regression (empty = gate passes): a case
/// missing from the current run, wall time above [`WALL_RATIO_LIMIT`] ×
/// baseline (for baselines ≥ [`WALL_FLOOR_NS`]), or allocated bytes
/// above [`BYTES_RATIO_LIMIT`] × baseline.
///
/// Two defenses keep the wall check meaningful on shared hardware. Wall
/// times are first rescaled by a calibration ratio — per-case `probe_ns`
/// when both reports carry it, the whole-run `calibration_ns` otherwise —
/// so a machine (or a noisy-neighbor phase) that is slower today doesn't
/// read as a regression; reports without either field compare raw. Then
/// a regression must show in *both* the p50 and the min-of-reps: a
/// genuine slowdown shifts the whole distribution, while residual
/// scheduler noise inflates the median long before it touches the
/// fastest rep. (Baselines without a `wall_min_ns` field gate on p50
/// alone.)
pub fn compare_reports(current: &Json, baseline: &Json) -> Vec<String> {
    let mut failures = Vec::new();
    let current_cases = case_map(current);
    let calib = |r: &Json| r.get("calibration_ns").and_then(Json::as_u64).unwrap_or(0);
    let (base_calib, cur_calib) = (calib(baseline), calib(current));
    // Whole-run fallback scale; clamped so a broken calibration can't
    // mask (or invent) arbitrary regressions.
    let run_scale = if base_calib > 0 && cur_calib > 0 {
        (base_calib as f64 / cur_calib as f64).clamp(0.25, 4.0)
    } else {
        1.0
    };
    for (id, base) in case_map(baseline) {
        let Some((_, cur)) = current_cases.iter().find(|(cid, _)| *cid == id) else {
            failures.push(format!("{id}: case missing from current run"));
            continue;
        };
        let field = |c: &Json, key: &str| c.get(key).and_then(Json::as_u64).unwrap_or(0);
        let (base_probe, cur_probe) = (field(base, "probe_ns"), field(cur, "probe_ns"));
        let speed_scale = if base_probe > 0 && cur_probe > 0 {
            (base_probe as f64 / cur_probe as f64).clamp(0.25, 4.0)
        } else {
            run_scale
        };
        let over = |cur: u64, base: u64| cur as f64 * speed_scale > base as f64 * WALL_RATIO_LIMIT;
        let base_wall = field(base, "wall_p50_ns");
        let cur_wall = field(cur, "wall_p50_ns");
        let base_min = field(base, "wall_min_ns");
        let min_regressed = base_min == 0 || over(field(cur, "wall_min_ns"), base_min);
        if base_wall >= WALL_FLOOR_NS && over(cur_wall, base_wall) && min_regressed {
            failures.push(format!(
                "{id}: wall p50 regressed {base_wall}ns -> {cur_wall}ns \
                 (calibration-scaled +{:.1}% > +{:.0}% budget, min-of-reps \
                 regressed too)",
                (cur_wall as f64 * speed_scale / base_wall as f64 - 1.0) * 100.0,
                (WALL_RATIO_LIMIT - 1.0) * 100.0,
            ));
        }
        // Zero-alloc ratchet: set-at-a-time sweep cases must report a
        // steady-state kernel allocation count of exactly zero — a hard
        // cap, not a ratio, so the columnar/scratch machinery cannot
        // silently regress into per-query allocation.
        if id.starts_with("xpath/set-at-a-time/") {
            match cur.get("kernel_allocs").and_then(Json::as_u64) {
                Some(0) => {}
                Some(n) => failures.push(format!(
                    "{id}: steady-state kernel allocations must be 0, got {n}"
                )),
                None => failures.push(format!(
                    "{id}: kernel_allocs missing from current run (zero-alloc ratchet)"
                )),
            }
        }
        // Incremental re-query cap: the live document's edit + re-read
        // must stay under a fixed fraction of the from-scratch rebuild
        // measured in the same run (same machine, same noise phase).
        if let Some(doc) = id
            .strip_prefix("incremental/requery/")
            .and_then(|rest| rest.strip_suffix("/w1"))
        {
            let rebuild_id = format!("rebuild/requery/{doc}/w1");
            let rebuild_wall = current_cases
                .iter()
                .find(|(cid, _)| *cid == rebuild_id)
                .map_or(0, |(_, c)| field(c, "wall_min_ns"));
            let inc_wall = field(cur, "wall_min_ns");
            if rebuild_wall == 0 {
                failures.push(format!(
                    "{id}: {rebuild_id} missing from current run (incremental cap)"
                ));
            } else if rebuild_wall >= INCREMENTAL_REBUILD_FLOOR_NS
                && inc_wall as f64 >= rebuild_wall as f64 * INCREMENTAL_WALL_RATIO
            {
                failures.push(format!(
                    "{id}: incremental re-query {inc_wall}ns is {:.0}% of the                      {rebuild_wall}ns rebuild (cap {:.0}%)",
                    inc_wall as f64 / rebuild_wall as f64 * 100.0,
                    INCREMENTAL_WALL_RATIO * 100.0,
                ));
            }
        }
        let base_bytes = field(base, "bytes");
        let cur_bytes = field(cur, "bytes");
        if base_bytes > 0 && cur_bytes as f64 > base_bytes as f64 * BYTES_RATIO_LIMIT {
            failures.push(format!(
                "{id}: allocated bytes regressed {base_bytes} -> {cur_bytes} \
                 (+{:.1}% > +{:.0}% budget)",
                (cur_bytes as f64 / base_bytes as f64 - 1.0) * 100.0,
                (BYTES_RATIO_LIMIT - 1.0) * 100.0,
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_every_strategy_and_pins_ids() {
        let cases = build_suite();
        let slugs: Vec<&str> = [
            "xpath/set-at-a-time",
            "xpath/reference",
            "xpath/via-datalog",
            "xpath/via-acyclic-cq",
            "cq/acyclic",
            "cq/backtrack",
            "datalog/ground+minoux",
        ]
        .to_vec();
        for slug in slugs {
            assert!(
                cases.iter().any(|c| c.id.starts_with(slug)),
                "strategy {slug} missing from suite"
            );
        }
        // The parameterized strategies are covered too (exact parameter
        // pinned by the candidate queries).
        assert!(cases.iter().any(|c| c.id.starts_with("cq/x-property(")));
        assert!(cases.iter().any(|c| c.id.starts_with("cq/rewrite-union(")));
        // Ids are unique (they are the baseline join key).
        let mut ids: Vec<&str> = cases.iter().map(|c| c.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), cases.len());
    }

    #[test]
    fn suite_report_round_trips_and_compares_clean_against_itself() {
        let report = run_suite_with(80, 160, 2);
        let parsed = obs::parse_json(&report.render()).expect("report is valid JSON");
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some(SCHEMA));
        let cases = parsed.get("cases").unwrap().as_arr().unwrap();
        assert!(!cases.is_empty());
        for c in cases {
            for key in [
                "wall_p50_ns",
                "wall_p95_ns",
                "wall_min_ns",
                "allocs",
                "bytes",
                "peak_live_bytes",
                "output_rows",
            ] {
                assert!(c.get(key).unwrap().as_u64().is_some(), "{key}");
            }
            assert!(c.get("bytes").unwrap().as_u64().unwrap() > 0);
        }
        let failures = compare_reports(&parsed, &parsed);
        assert!(failures.is_empty(), "{failures:?}");
    }

    /// The requery pair rides along at production document sizes (and
    /// reports the same answer rows on both sides) but is absent from
    /// toy-size runs, whose walls are all fixed overhead.
    #[test]
    fn requery_cases_emitted_at_production_sizes_only() {
        let report = run_suite_with(80, 160, 1);
        assert!(case_map(&report)
            .iter()
            .all(|(id, _)| !id.contains("/requery/")));
        let report = run_suite_with(80, 400, 1);
        let cases = case_map(&report);
        let wall = |id: &str| {
            cases
                .iter()
                .find(|(cid, _)| *cid == id)
                .and_then(|(_, c)| c.get("output_rows"))
                .and_then(Json::as_u64)
                .expect("requery case present")
        };
        assert!(!cases.iter().any(|(id, _)| id.contains("/requery/small/")));
        assert_eq!(
            wall("incremental/requery/large/w1"),
            wall("rebuild/requery/large/w1"),
            "both sides must answer identically"
        );
    }

    /// The incremental cap: an edit + re-query that costs a third of a
    /// full rebuild (or whose rebuild pair vanished) fails the gate.
    #[test]
    fn incremental_cap_fires_on_slow_requery() {
        fn fake(inc_wall: u64, with_rebuild: bool) -> Json {
            let mut cases = vec![Json::obj()
                .set("id", "incremental/requery/large/w1")
                .set("wall_min_ns", inc_wall)
                .set("wall_p50_ns", inc_wall)];
            if with_rebuild {
                cases.push(
                    Json::obj()
                        .set("id", "rebuild/requery/large/w1")
                        .set("wall_min_ns", 1_000_000u64)
                        .set("wall_p50_ns", 1_000_000u64),
                );
            }
            Json::obj()
                .set("schema", SCHEMA)
                .set("cases", Json::Arr(cases))
        }
        let ok = fake(100_000, true);
        assert!(compare_reports(&ok, &ok).is_empty());
        let slow = fake(500_000, true);
        let failures = compare_reports(&slow, &slow);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("cap 30%"), "{failures:?}");
        let orphaned = fake(100_000, false);
        let failures = compare_reports(&orphaned, &orphaned);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("missing"), "{failures:?}");
    }

    /// The acceptance-criteria test: the gate fires on an injected 2×
    /// allocation regression.
    #[test]
    fn gate_fires_on_doubled_allocations() {
        fn fake(bytes: u64, wall: u64) -> Json {
            Json::obj().set("schema", SCHEMA).set(
                "cases",
                Json::Arr(vec![Json::obj()
                    .set("id", "cq/acyclic/small/w1")
                    .set("wall_p50_ns", wall)
                    .set("bytes", bytes)]),
            )
        }
        let baseline = fake(100_000, 1_000_000);
        let doubled = fake(200_000, 1_000_000);
        let failures = compare_reports(&doubled, &baseline);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(
            failures[0].contains("allocated bytes regressed"),
            "{failures:?}"
        );
        // And on a 2× wall regression.
        let slow = fake(100_000, 2_000_000);
        let failures = compare_reports(&slow, &baseline);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("wall p50 regressed"), "{failures:?}");
        // Within budget passes.
        assert!(compare_reports(&fake(105_000, 1_100_000), &baseline).is_empty());
    }

    /// The zero-alloc ratchet: sweep cases fail the gate when their
    /// steady-state kernel allocation count is nonzero or missing.
    #[test]
    fn zero_alloc_ratchet_gates_sweep_cases() {
        fn fake(kernel: Option<u64>) -> Json {
            let mut c = Json::obj()
                .set("id", "xpath/set-at-a-time/small/w1")
                .set("wall_p50_ns", 1_000u64)
                .set("bytes", 1_000u64);
            if let Some(k) = kernel {
                c = c.set("kernel_allocs", k);
            }
            Json::obj()
                .set("schema", SCHEMA)
                .set("cases", Json::Arr(vec![c]))
        }
        let baseline = fake(Some(0));
        assert!(compare_reports(&fake(Some(0)), &baseline).is_empty());
        let failures = compare_reports(&fake(Some(3)), &baseline);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("must be 0"), "{failures:?}");
        let failures = compare_reports(&fake(None), &baseline);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("missing"), "{failures:?}");
    }

    #[test]
    fn calibration_scaling_cancels_machine_speed_shifts() {
        fn report(wall: u64, calib: u64) -> Json {
            Json::obj()
                .set("schema", SCHEMA)
                .set("calibration_ns", calib)
                .set(
                    "cases",
                    Json::Arr(vec![Json::obj()
                        .set("id", "cq/acyclic/large/w1")
                        .set("wall_p50_ns", wall)
                        .set("wall_min_ns", wall)
                        .set("bytes", 1_000u64)]),
                )
        }
        let baseline = report(1_000_000, 500_000);
        // The whole machine is 2x slower: cases and calibration double
        // together, so nothing regressed.
        assert!(compare_reports(&report(2_000_000, 1_000_000), &baseline).is_empty());
        // A genuine 2x regression: calibration unchanged, gate fires.
        let failures = compare_reports(&report(2_000_000, 500_000), &baseline);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("wall p50 regressed"), "{failures:?}");
    }

    #[test]
    fn missing_cases_fail_the_gate() {
        let baseline = Json::obj().set("schema", SCHEMA).set(
            "cases",
            Json::Arr(vec![Json::obj()
                .set("id", "gone/small/w1")
                .set("wall_p50_ns", 50_000u64)
                .set("bytes", 1_000u64)]),
        );
        let current = Json::obj()
            .set("schema", SCHEMA)
            .set("cases", Json::Arr(vec![]));
        let failures = compare_reports(&current, &baseline);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("missing"));
    }

    #[test]
    fn wall_noise_floor_skips_microsecond_cases() {
        let mk = |wall: u64| {
            Json::obj().set("schema", SCHEMA).set(
                "cases",
                Json::Arr(vec![Json::obj()
                    .set("id", "tiny/small/w1")
                    .set("wall_p50_ns", wall)
                    .set("bytes", 1_000u64)]),
            )
        };
        // 100µs baseline: even a 5× wall blowup is below the floor…
        assert!(compare_reports(&mk(500_000), &mk(100_000)).is_empty());
        // …but at the floor the ratio check applies.
        assert!(!compare_reports(&mk(500_000), &mk(150_000)).is_empty());
    }
}
