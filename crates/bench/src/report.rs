//! Machine-readable run reports: `harness --report out.json` writes one
//! JSON entry per experiment — wall time, per-span-name latency
//! summaries (count, total, p50/p95/p99), and any engine metric
//! snapshots the experiment submitted — so `BENCH_*.json` trajectories
//! can be produced and diffed across PRs.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use treequery_core::obs::{self, CollectingRecorder, Json};

/// Engine metric snapshots submitted by the currently running
/// experiment (see [`submit_metrics`]); drained by the builder after
/// each experiment.
static SUBMITTED: Mutex<Vec<Json>> = Mutex::new(Vec::new());

/// Called by experiments that hold an `Engine`: attaches that engine's
/// counter snapshot (as JSON, via `MetricsSnapshot::to_json`) to the
/// current report entry. A no-op burden-wise when no report is being
/// built — the JSON is small and simply discarded at the next drain.
pub fn submit_metrics(label: &str, metrics: Json) {
    let entry = Json::obj().set("label", label).set("metrics", metrics);
    SUBMITTED.lock().expect("report sink poisoned").push(entry);
}

fn drain_submitted() -> Vec<Json> {
    std::mem::take(&mut *SUBMITTED.lock().expect("report sink poisoned"))
}

/// Accumulates per-experiment entries and writes the final report file.
#[derive(Default)]
pub struct ReportBuilder {
    entries: Vec<Json>,
}

impl ReportBuilder {
    /// A builder with no entries.
    pub fn new() -> Self {
        ReportBuilder::default()
    }

    /// Runs one experiment under a collecting span recorder and appends
    /// its entry: id, wall time, span summaries with latency
    /// percentiles, and the metric snapshots the experiment submitted.
    pub fn run(&mut self, id: &str, f: impl FnOnce()) {
        drain_submitted(); // stray submissions from unreported runs
        let recorder = Arc::new(CollectingRecorder::default());
        let started = Instant::now();
        obs::with_recorder(recorder.clone(), f);
        let wall_ns = started.elapsed().as_nanos() as u64;
        let spans: Vec<Json> = recorder.summary().iter().map(|s| s.to_json()).collect();
        self.entries.push(
            Json::obj()
                .set("id", id)
                .set("wall_ns", wall_ns)
                .set("spans", Json::Arr(spans))
                .set("metrics", Json::Arr(drain_submitted())),
        );
    }

    /// The whole report as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("schema", "treequery-bench-report/v1")
            .set("experiments", Json::Arr(self.entries.clone()))
    }

    /// Renders and writes the report.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().render() + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treequery_core::{parse_term, Engine};

    /// The acceptance-criteria test: a report produced through the same
    /// path as `harness --report` is valid JSON (parsed back here) and
    /// carries timings, span percentiles, and metric snapshots.
    #[test]
    fn report_round_trips_through_the_parser() {
        let mut builder = ReportBuilder::new();
        builder.run("e00", || {
            let t = parse_term("r(a(b) a(c) b)").unwrap();
            let e = Engine::new(&t);
            e.xpath("//a[b]").unwrap();
            e.cq("q(x) :- label(x, a), child(x, y), label(y, b).")
                .unwrap();
            submit_metrics("e00", e.metrics().to_json());
        });
        let tmp = std::env::temp_dir().join("treequery_report_test.json");
        let path = tmp.to_str().unwrap();
        builder.write(path).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        std::fs::remove_file(path).ok();

        let report = obs::parse_json(&text).unwrap();
        assert_eq!(
            report.get("schema").unwrap().as_str(),
            Some("treequery-bench-report/v1")
        );
        let experiments = report.get("experiments").unwrap().as_arr().unwrap();
        assert_eq!(experiments.len(), 1);
        let entry = &experiments[0];
        assert_eq!(entry.get("id").unwrap().as_str(), Some("e00"));
        assert!(entry.get("wall_ns").unwrap().as_u64().is_some());
        // Per-span rows carry calls + latency percentiles.
        let spans = entry.get("spans").unwrap().as_arr().unwrap();
        let lower = spans
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some("pipeline.lower"))
            .expect("pipeline.lower span present");
        assert_eq!(lower.get("calls").unwrap().as_u64(), Some(2));
        for key in ["total_ns", "p50_ns", "p95_ns", "p99_ns", "max_ns"] {
            assert!(lower.get(key).unwrap().as_u64().is_some(), "{key}");
        }
        // The submitted engine snapshot rode along.
        let metrics = entry.get("metrics").unwrap().as_arr().unwrap();
        assert_eq!(metrics.len(), 1);
        let m = metrics[0].get("metrics").unwrap();
        assert_eq!(m.get("queries_executed").unwrap().as_u64(), Some(2));
        assert_eq!(m.get("semijoin_passes").unwrap().as_u64(), Some(6));
    }
}
