//! The efficient set-at-a-time Core XPath evaluator.
//!
//! Every construct is evaluated on whole node sets: a step is one O(n)
//! axis-image sweep plus qualifier intersections, a qualifier is one node
//! set (the nodes where it holds), and existential path qualifiers are
//! computed *backwards* through [`sources`] (preimages). Total time
//! `O(|D| · |Q|)` — the combined complexity discussed in Section 4 for
//! Core XPath via FO² (the PTime upper bound; data complexity is linear).

use treequery_tree::{cancel, scratch, Axis, NodeSet, Tree};

use crate::ast::{Path, Qual};

/// The nodes on which a qualifier holds. O(n · |q|). Returns a pooled set.
fn qual_nodes(q: &Qual, t: &Tree) -> NodeSet {
    match q {
        Qual::Label(l) => {
            let mut s = scratch::take_set(t.len());
            for &v in t.nodes_with_label_name(l) {
                s.insert(v);
            }
            s
        }
        Qual::Path(p) => {
            let full = scratch::take_full(t.len());
            let out = sources(p, t, &full);
            scratch::put_set(full);
            out
        }
        Qual::And(a, b) => {
            let mut s = qual_nodes(a, t);
            let other = qual_nodes(b, t);
            s.intersect_with(&other);
            scratch::put_set(other);
            s
        }
        Qual::Or(a, b) => {
            let mut s = qual_nodes(a, t);
            let other = qual_nodes(b, t);
            s.union_with(&other);
            scratch::put_set(other);
            s
        }
        Qual::Not(inner) => {
            let mut s = qual_nodes(inner, t);
            s.complement();
            s
        }
    }
}

/// The nodes a step can land on: all nodes passing the step's qualifiers.
/// Returns a pooled set.
fn step_filter(quals: &[Qual], t: &Tree) -> NodeSet {
    let mut s = scratch::take_full(t.len());
    for q in quals {
        let qn = qual_nodes(q, t);
        s.intersect_with(&qn);
        scratch::put_set(qn);
    }
    s
}

/// Forward image: `⋃ { [[p]](n) : n ∈ from }`. O(n · |p|).
///
/// The result comes from the thread-local scratch pools; recycle it with
/// [`scratch::put_set`] to keep repeated evaluation allocation-free.
pub fn select(p: &Path, t: &Tree, from: &NodeSet) -> NodeSet {
    // Cancellation checkpoint, once per location step (each step is one
    // O(n) sweep — the sweep chunk). A cancelled query unwinds the step
    // recursion with empty sets; the executor discards the partial.
    if cancel::cancelled() {
        return scratch::take_set(t.len());
    }
    match p {
        Path::Step { axis, quals } => {
            let mut img = scratch::take_set(t.len());
            axis.image_into(t, from, &mut img);
            let filter = step_filter(quals, t);
            img.intersect_with(&filter);
            scratch::put_set(filter);
            img
        }
        Path::Seq(p1, p2) => {
            let mid = select(p1, t, from);
            let out = select(p2, t, &mid);
            scratch::put_set(mid);
            out
        }
        Path::Union(p1, p2) => {
            let mut s = select(p1, t, from);
            let other = select(p2, t, from);
            s.union_with(&other);
            scratch::put_set(other);
            s
        }
    }
}

/// Backward image: `{ n : [[p]](n) ∩ targets ≠ ∅ }`. O(n · |p|).
/// Returns a pooled set (see [`select`]).
pub fn sources(p: &Path, t: &Tree, targets: &NodeSet) -> NodeSet {
    // Checkpoint per backward step; see `select`.
    if cancel::cancelled() {
        return scratch::take_set(t.len());
    }
    match p {
        Path::Step { axis, quals } => {
            let mut tgt = scratch::take_set(t.len());
            tgt.copy_from(targets);
            let filter = step_filter(quals, t);
            tgt.intersect_with(&filter);
            scratch::put_set(filter);
            let mut out = scratch::take_set(t.len());
            axis.preimage_into(t, &tgt, &mut out);
            scratch::put_set(tgt);
            out
        }
        Path::Seq(p1, p2) => {
            let mid = sources(p2, t, targets);
            let out = sources(p1, t, &mid);
            scratch::put_set(mid);
            out
        }
        Path::Union(p1, p2) => {
            let mut s = sources(p1, t, targets);
            let other = sources(p2, t, targets);
            s.union_with(&other);
            scratch::put_set(other);
            s
        }
    }
}

/// Evaluates `p` relative to a set of context nodes (the paper's
/// `[[p]]NodeSet` lifted to sets). Returns a pooled set (see [`select`]).
pub fn eval(p: &Path, t: &Tree, context: &NodeSet) -> NodeSet {
    select(p, t, context)
}

/// Evaluates the unary query from the virtual document node: `/a` tests
/// the root element, `//a` selects all `a` nodes (same convention as
/// [`crate::eval_reference`]). Returns a pooled set (see [`select`]).
pub fn eval_query(p: &Path, t: &Tree) -> NodeSet {
    match p {
        Path::Step { axis, quals } => {
            let mut out = match axis {
                Axis::Child => {
                    let mut s = scratch::take_set(t.len());
                    s.insert(t.root());
                    s
                }
                Axis::Descendant | Axis::DescendantOrSelf => scratch::take_full(t.len()),
                _ => scratch::take_set(t.len()),
            };
            let filter = step_filter(quals, t);
            out.intersect_with(&filter);
            scratch::put_set(filter);
            out
        }
        Path::Seq(p1, p2) => {
            let first = eval_query(p1, t);
            let out = select(p2, t, &first);
            scratch::put_set(first);
            out
        }
        Path::Union(p1, p2) => {
            let mut s = eval_query(p1, t);
            let other = eval_query(p2, t);
            s.union_with(&other);
            scratch::put_set(other);
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xpath;
    use crate::reference::eval_reference;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use treequery_tree::{parse_term, random_recursive_tree, xmark_document, XmarkConfig};

    /// The fast evaluator agrees with the literal (P1)–(P4)/(Q1)–(Q5)
    /// semantics across a battery of queries and trees.
    #[test]
    fn agrees_with_reference() {
        let queries = [
            "/r",
            "//a",
            "//a/b",
            "//a[b]/c",
            "//a[not(b)]",
            "//a[b or not(c and lab()=a)]",
            "//a/following-sibling::b",
            "//b/parent::a",
            "//a[ancestor::b]",
            "//a/descendant-or-self::*[lab()=c]",
            "//a[following::c]",
            "//c/preceding::a",
            "//a | //b[c]",
            "/r/*[not(following-sibling::*)]",
            "//a[./b/..[c]]",
            "//*[self::a or self::b]/child::c",
        ];
        let trees = [
            "r(a(b c) b(a(c) c) a)",
            "r(a(a(a(b))) c)",
            "r(x y z)",
            "a",
            "r(a(b(c) b) a(c(b)) b(a))",
        ];
        for qs in queries {
            let q = parse_xpath(qs).unwrap();
            for ts in trees {
                let t = parse_term(ts).unwrap();
                assert_eq!(eval_query(&q, &t), eval_reference(&q, &t), "{qs} on {ts}");
            }
        }
    }

    #[test]
    fn agrees_with_reference_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(21);
        let queries = [
            "//a[b]/c",
            "//a[not(b or c)]",
            "//b/ancestor::a[following-sibling::c]",
            "//a//b[not(parent::a)]",
        ];
        for _ in 0..10 {
            let t = random_recursive_tree(&mut rng, 80, &["a", "b", "c", "r"]);
            for qs in queries {
                let q = parse_xpath(qs).unwrap();
                assert_eq!(eval_query(&q, &t), eval_reference(&q, &t), "{qs} on {t}");
            }
        }
    }

    #[test]
    fn xmark_queries() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = xmark_document(&mut rng, &XmarkConfig::default());
        // Every person with an address has street and city.
        let q = parse_xpath("//person[address]").unwrap();
        let with_addr = eval_query(&q, &t);
        let q2 = parse_xpath("//person[address/street and address/city]").unwrap();
        assert_eq!(eval_query(&q2, &t), with_addr);
        // Auctions with at least one bidder.
        let q3 = parse_xpath("//open_auction[bidder]").unwrap();
        let q4 = parse_xpath("//open_auction[not(not(bidder/increase))]").unwrap();
        assert_eq!(eval_query(&q3, &t), eval_query(&q4, &t));
        // Items in African region.
        let q5 = parse_xpath("/site/regions/africa/item").unwrap();
        assert_eq!(
            eval_query(&q5, &t).len(),
            XmarkConfig::default().items_per_region
        );
    }

    #[test]
    fn relative_eval_from_context() {
        let t = parse_term("r(a(b) a(c))").unwrap();
        let ctx = NodeSet::from_iter(t.len(), t.nodes_with_label_name("a").iter().copied());
        let q = parse_xpath("child::*").unwrap();
        let res = eval(&q, &t, &ctx);
        assert_eq!(res.len(), 2); // b and c
    }

    #[test]
    fn sources_is_preimage_of_select() {
        let t = parse_term("r(a(b c) b(c))").unwrap();
        let q = parse_xpath("child::b/child::c").unwrap();
        let src = sources(&q, &t, &NodeSet::full(t.len()));
        // Exactly the nodes from which the path selects something.
        for n in t.nodes() {
            let sel = select(&q, &t, &NodeSet::singleton(t.len(), n));
            assert_eq!(src.contains(n), !sel.is_empty(), "{n:?}");
        }
    }
}
