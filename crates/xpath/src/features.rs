//! Structural features of a Core XPath expression — the lowering seam the
//! planner in `treequery-core` consumes.
//!
//! The planner never pattern-matches on [`Path`] directly; it reads this
//! summary, which names exactly the properties the paper's complexity
//! landscape (Figure 7) dispatches on: conjunctiveness (Proposition 4.2),
//! positivity (the LOGCFL fragment), forwardness (streamability, Section
//! 5), and the label tests used (for selectivity estimation against the
//! tree's label histogram).

use crate::ast::{Path, Qual};
use treequery_tree::Axis;

/// A flat summary of one Core XPath expression.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PathFeatures {
    /// AST size `|Q|`.
    pub size: usize,
    /// Number of axis steps (including steps inside qualifiers).
    pub steps: usize,
    /// Steps over backward axes (parent/ancestor/preceding…).
    pub backward_steps: usize,
    /// Number of top-level union arms (1 when there is no union).
    pub union_arms: usize,
    /// Any `not(...)` anywhere.
    pub has_negation: bool,
    /// Any `or` anywhere.
    pub has_disjunction: bool,
    /// Conjunctive Core XPath (no union/or/not) — the Proposition 4.2
    /// fragment that lowers into an acyclic CQ.
    pub conjunctive: bool,
    /// Positive Core XPath (no negation).
    pub positive: bool,
    /// Forward Core XPath (only forward axes) — streamable as-is.
    pub forward: bool,
    /// Every label mentioned in a `lab() = L` test or step label sugar, in
    /// syntax order, duplicates preserved.
    pub labels: Vec<String>,
}

/// Computes the feature summary in one pass over the AST.
pub fn features(p: &Path) -> PathFeatures {
    let mut f = PathFeatures {
        size: p.size(),
        union_arms: 1,
        conjunctive: p.is_conjunctive(),
        positive: p.is_positive(),
        forward: p.is_forward(),
        ..PathFeatures::default()
    };
    walk_path(p, true, &mut f);
    f
}

fn walk_path(p: &Path, top: bool, f: &mut PathFeatures) {
    match p {
        Path::Step { axis, quals } => {
            f.steps += 1;
            if !axis.is_forward() && *axis != Axis::SelfAxis {
                f.backward_steps += 1;
            }
            for q in quals {
                walk_qual(q, f);
            }
        }
        Path::Seq(a, b) => {
            walk_path(a, false, f);
            walk_path(b, false, f);
        }
        Path::Union(a, b) => {
            if top {
                f.union_arms += 1;
            }
            walk_path(a, top, f);
            walk_path(b, false, f);
        }
    }
}

fn walk_qual(q: &Qual, f: &mut PathFeatures) {
    match q {
        Qual::Path(p) => walk_path(p, false, f),
        Qual::Label(l) => f.labels.push(l.clone()),
        Qual::And(a, b) => {
            walk_qual(a, f);
            walk_qual(b, f);
        }
        Qual::Or(a, b) => {
            f.has_disjunction = true;
            walk_qual(a, f);
            walk_qual(b, f);
        }
        Qual::Not(inner) => {
            f.has_negation = true;
            walk_qual(inner, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xpath;

    #[test]
    fn summarizes_a_mixed_query() {
        let p = parse_xpath("//a[b or not(c)]/d").unwrap();
        let f = features(&p);
        assert!(f.has_negation && f.has_disjunction);
        assert!(!f.conjunctive && !f.positive);
        assert!(f.forward);
        assert_eq!(f.union_arms, 1);
        assert_eq!(
            f.labels,
            vec!["a".to_string(), "b".into(), "c".into(), "d".into()]
        );
    }

    #[test]
    fn counts_backward_steps_and_union_arms() {
        let p = parse_xpath("//b/ancestor::a | //c/parent::*").unwrap();
        let f = features(&p);
        assert_eq!(f.union_arms, 2);
        assert_eq!(f.backward_steps, 2);
        assert!(!f.forward);
        assert!(!f.conjunctive);
        assert!(f.positive);
    }

    #[test]
    fn conjunctive_forward_query() {
        let p = parse_xpath("//a[b]/c").unwrap();
        let f = features(&p);
        assert!(f.conjunctive && f.positive && f.forward);
        assert!(!f.has_negation && !f.has_disjunction);
        assert_eq!(f.backward_steps, 0);
    }
}
