//! Translation of *conjunctive* Core XPath into acyclic conjunctive
//! queries (Proposition 4.2).
//!
//! A Core XPath query without union, disjunction, or negation is a tree
//! pattern; its natural translation introduces one variable per step and
//! is acyclic by construction, so Yannakakis' algorithm evaluates it in
//! `O(||A|| · |Q|)`.

use treequery_cq::{Cq, CqAtom, CqVar};

use crate::ast::{Path, Qual};

/// Why a query could not be translated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NotConjunctive {
    /// The query uses union.
    Union,
    /// A qualifier uses disjunction.
    Or,
    /// A qualifier uses negation.
    Not,
    /// The first step's axis cannot apply to the virtual document node.
    BadDocumentStep,
}

impl std::fmt::Display for NotConjunctive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self {
            NotConjunctive::Union => "union",
            NotConjunctive::Or => "disjunction",
            NotConjunctive::Not => "negation",
            NotConjunctive::BadDocumentStep => "a non-downward first step",
        };
        write!(f, "query is not conjunctive Core XPath: it uses {what}")
    }
}

impl std::error::Error for NotConjunctive {}

fn tr_path(q: &mut Cq, p: &Path, ctx: CqVar) -> Result<CqVar, NotConjunctive> {
    match p {
        Path::Step { axis, quals } => {
            let v = q.add_var(format!("s{}", q.num_vars()));
            q.atoms.push(CqAtom::Axis(*axis, ctx, v));
            for qu in quals {
                tr_qual(q, qu, v)?;
            }
            Ok(v)
        }
        Path::Seq(p1, p2) => {
            let mid = tr_path(q, p1, ctx)?;
            tr_path(q, p2, mid)
        }
        Path::Union(..) => Err(NotConjunctive::Union),
    }
}

fn tr_qual(q: &mut Cq, qu: &Qual, at: CqVar) -> Result<(), NotConjunctive> {
    match qu {
        Qual::Label(l) => {
            q.atoms.push(CqAtom::Label(l.clone(), at));
            Ok(())
        }
        Qual::Path(p) => {
            tr_path(q, p, at)?; // existential: the fresh variables are not in the head
            Ok(())
        }
        Qual::And(a, b) => {
            tr_qual(q, a, at)?;
            tr_qual(q, b, at)
        }
        Qual::Or(..) => Err(NotConjunctive::Or),
        Qual::Not(..) => Err(NotConjunctive::Not),
    }
}

/// Translates a conjunctive Core XPath query (evaluated from the virtual
/// document node) into a unary acyclic conjunctive query whose single head
/// variable holds the selected node.
pub fn to_cq(p: &Path) -> Result<Cq, NotConjunctive> {
    let mut q = Cq::new();
    let result = tr_top(&mut q, p)?;
    q.head = vec![result];
    Ok(q)
}

/// Top-level (document node) dispatch, mirroring
/// [`crate::eval::eval_query`].
fn tr_top(q: &mut Cq, p: &Path) -> Result<CqVar, NotConjunctive> {
    match p {
        Path::Step { axis, quals } => {
            let v = q.add_var("v0");
            match axis {
                treequery_tree::Axis::Child => q.atoms.push(CqAtom::Root(v)),
                treequery_tree::Axis::Descendant | treequery_tree::Axis::DescendantOrSelf => {
                    // Any node: no structural constraint needed.
                }
                _ => return Err(NotConjunctive::BadDocumentStep),
            }
            for qu in quals {
                tr_qual(q, qu, v)?;
            }
            Ok(v)
        }
        Path::Seq(p1, p2) => {
            let mid = tr_top(q, p1)?;
            tr_path(q, p2, mid)
        }
        Path::Union(..) => Err(NotConjunctive::Union),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_query;
    use crate::parser::parse_xpath;
    use treequery_cq::eval_acyclic;
    use treequery_tree::{parse_term, NodeSet};

    /// Proposition 4.2: conjunctive Core XPath evaluated through the
    /// acyclic-CQ machinery agrees with the direct evaluator.
    #[test]
    fn cq_translation_agrees_with_evaluator() {
        let queries = [
            "/r",
            "//a",
            "/r/a/b",
            "//a[b]/c",
            "//a[b/c and lab()=a]",
            "//a/following-sibling::b[c]",
            "//b/parent::a",
            "//a[ancestor::b][following::c]",
        ];
        let trees = [
            "r(a(b(c) c) b(a(c) c) a)",
            "r(a(a(b(c))) c)",
            "a",
            "r(a(b) c a(b(c)))",
        ];
        for qs in queries {
            let p = parse_xpath(qs).unwrap();
            let cq = to_cq(&p).expect("conjunctive");
            assert!(treequery_cq::is_acyclic(&cq), "{qs} should be acyclic");
            for ts in trees {
                let t = parse_term(ts).unwrap();
                let via_cq = eval_acyclic(&cq, &t).expect("acyclic");
                let nodes: NodeSet =
                    NodeSet::from_iter(t.len(), via_cq.iter().map(|tuple| tuple[0]));
                assert_eq!(nodes, eval_query(&p, &t), "{qs} on {ts}");
            }
        }
    }

    #[test]
    fn non_conjunctive_is_rejected() {
        assert_eq!(
            to_cq(&parse_xpath("//a | //b").unwrap()).unwrap_err(),
            NotConjunctive::Union
        );
        assert_eq!(
            to_cq(&parse_xpath("//a[b or c]").unwrap()).unwrap_err(),
            NotConjunctive::Or
        );
        assert_eq!(
            to_cq(&parse_xpath("//a[not(b)]").unwrap()).unwrap_err(),
            NotConjunctive::Not
        );
        assert_eq!(
            to_cq(&parse_xpath("self::a").unwrap()).unwrap_err(),
            NotConjunctive::BadDocumentStep
        );
    }

    #[test]
    fn translation_shape() {
        let p = parse_xpath("/r/a[b]").unwrap();
        let cq = to_cq(&p).unwrap();
        // root var + a var + b var; atoms: Root, label r, Child, label a,
        // Child, label b.
        assert_eq!(cq.num_vars(), 3);
        assert_eq!(cq.atoms.len(), 6);
        assert_eq!(cq.head.len(), 1);
    }
}
