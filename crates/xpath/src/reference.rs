//! The reference semantics: a literal transcription of rules (P1)–(P4)
//! and (Q1)–(Q5) from Section 3 of the paper.
//!
//! No sharing, no memoization — `[[p]]` is computed node by node exactly
//! as the denotational definition reads. Used as the differential-testing
//! oracle for the efficient evaluator.

use treequery_tree::{NodeId, NodeSet, Tree};

use crate::ast::{Path, Qual};

/// `[[p]]NodeSet(n)` — rules (P1)–(P4).
pub(crate) fn nodeset(p: &Path, t: &Tree, n: NodeId) -> NodeSet {
    match p {
        // (P1) [[χ]](n) = {n' : χ(n, n')} and (P2) step qualifiers.
        Path::Step { axis, quals } => {
            let mut out = NodeSet::empty(t.len());
            for succ in axis.successors(t, n) {
                if quals.iter().all(|q| boolean(q, t, succ)) {
                    out.insert(succ);
                }
            }
            out
        }
        // (P3) [[p1/p2]](n) = {v : ∃w ∈ [[p1]](n) ∧ v ∈ [[p2]](w)}.
        Path::Seq(p1, p2) => {
            let mut out = NodeSet::empty(t.len());
            for w in &nodeset(p1, t, n) {
                out.union_with(&nodeset(p2, t, w));
            }
            out
        }
        // (P4) union.
        Path::Union(p1, p2) => {
            let mut out = nodeset(p1, t, n);
            out.union_with(&nodeset(p2, t, n));
            out
        }
    }
}

/// `[[q]]Boolean(n)` — rules (Q1)–(Q5).
pub(crate) fn boolean(q: &Qual, t: &Tree, n: NodeId) -> bool {
    match q {
        // (Q1) lab() = L.
        Qual::Label(l) => t.has_label_name(n, l),
        // (Q2) [[p]](n) ≠ ∅.
        Qual::Path(p) => !nodeset(p, t, n).is_empty(),
        // (Q3)–(Q5).
        Qual::And(a, b) => boolean(a, t, n) && boolean(b, t, n),
        Qual::Or(a, b) => boolean(a, t, n) || boolean(b, t, n),
        Qual::Not(inner) => !boolean(inner, t, n),
    }
}

/// Evaluates the unary query `[[p]]` from the virtual document node (whose
/// only child is the root and whose descendants are all nodes), per the
/// standard absolute-path convention: `/a` tests the root element's label,
/// `//a` selects all `a` nodes.
pub fn eval_reference(p: &Path, t: &Tree) -> NodeSet {
    use treequery_tree::Axis;
    match p {
        Path::Step { axis, quals } => {
            let candidates: Vec<NodeId> = match axis {
                Axis::Child => vec![t.root()],
                Axis::Descendant | Axis::DescendantOrSelf => t.nodes().collect(),
                _ => Vec::new(),
            };
            NodeSet::from_iter(
                t.len(),
                candidates
                    .into_iter()
                    .filter(|&v| quals.iter().all(|q| boolean(q, t, v))),
            )
        }
        Path::Seq(p1, p2) => {
            let first = eval_reference(p1, t);
            let mut out = NodeSet::empty(t.len());
            for w in &first {
                out.union_with(&nodeset(p2, t, w));
            }
            out
        }
        Path::Union(p1, p2) => {
            let mut out = eval_reference(p1, t);
            out.union_with(&eval_reference(p2, t));
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xpath;
    use treequery_tree::parse_term;

    fn labels(t: &Tree, s: &NodeSet) -> Vec<String> {
        let mut v: Vec<NodeId> = s.to_vec();
        t.sort_by_pre(&mut v);
        v.into_iter().map(|n| t.label_name(n).to_owned()).collect()
    }

    #[test]
    fn absolute_paths() {
        let t = parse_term("site(people(person person) regions)").unwrap();
        let q = parse_xpath("/site/people/person").unwrap();
        assert_eq!(eval_reference(&q, &t).len(), 2);
        let q2 = parse_xpath("/wrong/people").unwrap();
        assert!(eval_reference(&q2, &t).is_empty());
        let q3 = parse_xpath("//person").unwrap();
        assert_eq!(eval_reference(&q3, &t).len(), 2);
    }

    #[test]
    fn qualifiers_and_negation() {
        let t = parse_term("r(a(b) a(c) a)").unwrap();
        // a-children with a b-child.
        let q = parse_xpath("/r/a[b]").unwrap();
        assert_eq!(eval_reference(&q, &t).len(), 1);
        // a-children without a b-child.
        let q2 = parse_xpath("/r/a[not(b)]").unwrap();
        assert_eq!(eval_reference(&q2, &t).len(), 2);
        // Mixed boolean structure.
        let q3 = parse_xpath("/r/a[b or c]").unwrap();
        assert_eq!(eval_reference(&q3, &t).len(), 2);
        let q4 = parse_xpath("/r/a[not(b) and not(c)]").unwrap();
        assert_eq!(eval_reference(&q4, &t).len(), 1);
    }

    #[test]
    fn reverse_axes_in_qualifiers() {
        let t = parse_term("r(a(x) b(x))").unwrap();
        // x nodes whose parent is labeled a.
        let q = parse_xpath("//x[parent::a]").unwrap();
        let res = eval_reference(&q, &t);
        assert_eq!(res.len(), 1);
        assert_eq!(labels(&t, &res), ["x"]);
    }

    #[test]
    fn sibling_axes() {
        let t = parse_term("r(a b c)").unwrap();
        let q = parse_xpath("/r/a/following-sibling::*").unwrap();
        assert_eq!(labels(&t, &eval_reference(&q, &t)), ["b", "c"]);
        let q2 = parse_xpath("//c/preceding-sibling::a").unwrap();
        assert_eq!(labels(&t, &eval_reference(&q2, &t)), ["a"]);
    }

    #[test]
    fn union_semantics() {
        let t = parse_term("r(a b c)").unwrap();
        let q = parse_xpath("//a | //c").unwrap();
        assert_eq!(labels(&t, &eval_reference(&q, &t)), ["a", "c"]);
    }

    #[test]
    fn lab_test_on_self() {
        let t = parse_term("r(a b)").unwrap();
        let q = parse_xpath("/r/*[lab()=b]").unwrap();
        assert_eq!(labels(&t, &eval_reference(&q, &t)), ["b"]);
    }
}
