//! Parser for Core XPath.
//!
//! Accepts both the paper's explicit notation and abbreviated XPath:
//!
//! * `child::a`, `descendant::*`, `following-sibling::b`, `parent::*` —
//!   explicit axes (all [`Axis::parse`] names work, including `child+`);
//! * `/a/b`, `//a`, `a//b` — abbreviated steps (default axis `child`,
//!   `//` for `descendant`); `.` is `self::*`, `..` is `parent::*`;
//! * qualifiers `[...]` containing `and`, `or`, `not(...)`, nested
//!   relative paths, and label tests `lab()=a` (also `self::a`);
//! * unions with `|` (or `∪`).

use treequery_tree::Axis;

use crate::ast::{Path, Qual};

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for XPathParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "xpath parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for XPathParseError {}

struct P<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, XPathParseError> {
        Err(XPathParseError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn ws(&mut self) {
        while self.input[self.pos..]
            .chars()
            .next()
            .is_some_and(char::is_whitespace)
        {
            self.pos += 1;
        }
    }

    fn peek_str(&mut self, pat: &str) -> bool {
        self.ws();
        self.input[self.pos..].starts_with(pat)
    }

    fn eat(&mut self, pat: &str) -> bool {
        if self.peek_str(pat) {
            self.pos += pat.len();
            true
        } else {
            false
        }
    }

    /// A name: letters/digits/underscore/hyphen with optional trailing
    /// `+`/`*` (for the paper's axis names).
    fn name(&mut self) -> Result<&'a str, XPathParseError> {
        self.ws();
        let start = self.pos;
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len()
            && (bytes[self.pos].is_ascii_alphanumeric() || matches!(bytes[self.pos], b'_' | b'-'))
        {
            self.pos += 1;
        }
        while self.pos < bytes.len() && matches!(bytes[self.pos], b'+' | b'*') {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(&self.input[start..self.pos])
    }

    /// union := sequence ( '|' sequence )*
    fn union(&mut self) -> Result<Path, XPathParseError> {
        let mut p = self.sequence()?;
        loop {
            self.ws();
            if self.eat("|") || self.eat("∪") {
                let rhs = self.sequence()?;
                p = p.union(rhs);
            } else {
                return Ok(p);
            }
        }
    }

    /// sequence := ('/' | '//')? step ( ('/' | '//') step )*
    ///
    /// A leading `/` is allowed and ignored (queries are evaluated from
    /// the virtual document node either way); `//` turns the following
    /// abbreviated step's axis into `descendant`.
    fn sequence(&mut self) -> Result<Path, XPathParseError> {
        let mut descendant_prefix = false;
        if self.eat("//") {
            descendant_prefix = true;
        } else {
            let _ = self.eat("/");
        }
        let mut p = self.step(descendant_prefix)?;
        loop {
            self.ws();
            if self.peek_str("//") {
                self.eat("//");
                let s = self.step(true)?;
                p = p.then(s);
            } else if self.peek_str("/") && !self.peek_str("/)") {
                self.eat("/");
                let s = self.step(false)?;
                p = p.then(s);
            } else {
                return Ok(p);
            }
        }
    }

    /// step := '(' union ')' | axis_spec, followed by ('[' qual ']')*
    ///
    /// The parenthesized form makes the [`Path`] `Display` output (which
    /// prints unions as `(a | b)`) re-parseable wherever a step can
    /// appear, e.g. `x/(a | b)/y`.
    fn step(&mut self, descendant: bool) -> Result<Path, XPathParseError> {
        self.ws();
        let mut path = if self.eat("(") {
            let inner = self.union()?;
            if !self.eat(")") {
                return self.err("expected ')' after path group");
            }
            if descendant {
                // `//(a | b)` — insert a descendant-or-self hop, as for
                // `//axis::x`.
                Path::step(Axis::DescendantOrSelf).then(inner)
            } else {
                inner
            }
        } else if self.eat("..") {
            Path::step(Axis::Parent)
        } else if self.eat(".") {
            Path::step(Axis::SelfAxis)
        } else if self.eat("*") {
            Path::step(if descendant {
                Axis::Descendant
            } else {
                Axis::Child
            })
        } else {
            let save = self.pos;
            let n = self.name()?;
            if self.eat("::") {
                // Explicit axis.
                let Some(axis) = Axis::parse(n) else {
                    self.pos = save;
                    return self.err(format!("unknown axis '{n}'"));
                };
                let test = self.node_test(axis)?;
                if descendant {
                    // `//axis::x` — insert a descendant-or-self hop.
                    Path::step(Axis::DescendantOrSelf).then(test)
                } else {
                    test
                }
            } else {
                // Abbreviated name step.
                let axis = if descendant {
                    Axis::Descendant
                } else {
                    Axis::Child
                };
                Path::labeled_step(axis, n)
            }
        };
        while self.eat("[") {
            let q = self.qual()?;
            if !self.eat("]") {
                return self.err("expected ']'");
            }
            path = path.filtered(q);
        }
        Ok(path)
    }

    /// The node test after `axis::` — `*` or a label name.
    fn node_test(&mut self, axis: Axis) -> Result<Path, XPathParseError> {
        self.ws();
        if self.eat("*") {
            Ok(Path::step(axis))
        } else {
            let label = self.name()?;
            Ok(Path::labeled_step(axis, label))
        }
    }

    /// qual := and_expr ('or' and_expr)*
    fn qual(&mut self) -> Result<Qual, XPathParseError> {
        let mut q = self.and_expr()?;
        while self.eat_word("or") {
            let rhs = self.and_expr()?;
            q = Qual::Or(Box::new(q), Box::new(rhs));
        }
        Ok(q)
    }

    fn and_expr(&mut self) -> Result<Qual, XPathParseError> {
        let mut q = self.unary_qual()?;
        while self.eat_word("and") {
            let rhs = self.unary_qual()?;
            q = Qual::And(Box::new(q), Box::new(rhs));
        }
        Ok(q)
    }

    /// Keyword match that does not eat prefixes of longer names.
    fn eat_word(&mut self, w: &str) -> bool {
        self.ws();
        let rest = &self.input[self.pos..];
        if let Some(after_str) = rest.strip_prefix(w) {
            let after = after_str.chars().next();
            if !after.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-') {
                self.pos += w.len();
                return true;
            }
        }
        false
    }

    fn unary_qual(&mut self) -> Result<Qual, XPathParseError> {
        self.ws();
        if self.eat_word("not") {
            if !self.eat("(") {
                return self.err("expected '(' after not");
            }
            let q = self.qual()?;
            if !self.eat(")") {
                return self.err("expected ')'");
            }
            return Ok(Qual::Not(Box::new(q)));
        }
        if self.peek_str("(") {
            // Ambiguous: `(...)` may group a qualifier (`(a and b)`) or
            // start a path whose head is a parenthesized group
            // (`(a | b)/c`). Try the qualifier reading; if the close
            // paren is followed by more path syntax, re-parse as a path.
            let save = self.pos;
            self.eat("(");
            if let Ok(q) = self.qual() {
                if self.eat(")") && !(self.peek_str("/") || self.peek_str("[")) {
                    return Ok(q);
                }
            }
            self.pos = save;
            let p = self.union()?;
            return Ok(Qual::Path(p));
        }
        if self.eat_word("lab") {
            if !(self.eat("(") && self.eat(")") && self.eat("=")) {
                return self.err("expected lab()=label");
            }
            let label = self.name()?;
            return Ok(Qual::Label(label.to_owned()));
        }
        // A relative path qualifier.
        let p = self.union()?;
        Ok(Qual::Path(p))
    }
}

/// Parses a Core XPath expression.
pub fn parse_xpath(input: &str) -> Result<Path, XPathParseError> {
    let mut p = P { input, pos: 0 };
    let path = p.union()?;
    p.ws();
    if p.pos != input.len() {
        return p.err("trailing input");
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbreviated_steps() {
        let p = parse_xpath("/site/people/person").unwrap();
        assert_eq!(
            p,
            Path::labeled_step(Axis::Child, "site")
                .then(Path::labeled_step(Axis::Child, "people"))
                .then(Path::labeled_step(Axis::Child, "person"))
        );
    }

    #[test]
    fn descendant_abbreviation() {
        let p = parse_xpath("//person//name").unwrap();
        assert_eq!(
            p,
            Path::labeled_step(Axis::Descendant, "person")
                .then(Path::labeled_step(Axis::Descendant, "name"))
        );
    }

    #[test]
    fn explicit_axes() {
        let p = parse_xpath("child::a/following-sibling::*/parent::b").unwrap();
        assert_eq!(
            p,
            Path::labeled_step(Axis::Child, "a")
                .then(Path::step(Axis::FollowingSibling))
                .then(Path::labeled_step(Axis::Parent, "b"))
        );
    }

    #[test]
    fn paper_axis_names() {
        let p = parse_xpath("child+::a").unwrap();
        assert_eq!(p, Path::labeled_step(Axis::Descendant, "a"));
    }

    #[test]
    fn qualifiers() {
        let p = parse_xpath("//a[b and not(c or lab()=d)]").unwrap();
        let Path::Step { axis, quals } = &p else {
            panic!("expected step")
        };
        assert_eq!(*axis, Axis::Descendant);
        assert_eq!(quals.len(), 2); // label test + the bracket qualifier
        let Qual::And(lhs, rhs) = &quals[1] else {
            panic!("expected And, got {:?}", quals[1])
        };
        assert!(matches!(**lhs, Qual::Path(_)));
        assert!(matches!(**rhs, Qual::Not(_)));
    }

    #[test]
    fn union_and_parens_inside_qualifier() {
        let p = parse_xpath("a | b[c | d]").unwrap();
        assert!(matches!(p, Path::Union(..)));
    }

    #[test]
    fn dot_and_dotdot() {
        let p = parse_xpath("./..").unwrap();
        assert_eq!(p, Path::step(Axis::SelfAxis).then(Path::step(Axis::Parent)));
    }

    #[test]
    fn nested_path_qualifiers() {
        let p = parse_xpath("//open_auction[bidder/increase]").unwrap();
        let Path::Step { quals, .. } = &p else {
            panic!()
        };
        assert_eq!(quals.len(), 2);
    }

    #[test]
    fn double_slash_with_explicit_axis() {
        let p = parse_xpath("a//ancestor::b").unwrap();
        // a / descendant-or-self::* / ancestor::b
        assert!(matches!(p, Path::Seq(..)));
    }

    #[test]
    fn reflexive_paper_axis_names() {
        assert_eq!(
            parse_xpath("child*::*").unwrap(),
            Path::step(Axis::DescendantOrSelf)
        );
        assert_eq!(
            parse_xpath("nextsibling*::a").unwrap(),
            Path::labeled_step(Axis::FollowingSiblingOrSelf, "a")
        );
    }

    #[test]
    fn parenthesized_path_groups() {
        let u = Path::labeled_step(Axis::Child, "a").union(Path::labeled_step(Axis::Child, "b"));
        assert_eq!(parse_xpath("(a | b)").unwrap(), u.clone());
        assert_eq!(
            parse_xpath("x/(a | b)/y").unwrap(),
            Path::labeled_step(Axis::Child, "x")
                .then(u.clone())
                .then(Path::labeled_step(Axis::Child, "y"))
        );
        // `//(...)` inserts the usual descendant-or-self hop.
        assert_eq!(
            parse_xpath("//(a | b)").unwrap(),
            Path::step(Axis::DescendantOrSelf).then(u)
        );
    }

    #[test]
    fn qualifier_starting_with_group() {
        // `(a | b)/c` inside a qualifier is a path, not a grouped qual.
        let p = parse_xpath("x[(a | b)/c]").unwrap();
        let Path::Step { quals, .. } = &p else {
            panic!()
        };
        let Qual::Path(q) = &quals[1] else {
            panic!("expected path qualifier, got {:?}", quals[1])
        };
        assert!(matches!(q, Path::Seq(..)));
    }

    #[test]
    fn display_reparses_identically() {
        for src in [
            "//a[b and not(c or lab()=d)]",
            "(a | b[c | d])/e",
            "child*::* | nextsibling*::x",
            "a//ancestor::b[preceding-sibling::c]",
            "x[(a | b)/c]/..",
        ] {
            let p = parse_xpath(src).unwrap();
            let printed = p.to_string();
            let re = parse_xpath(&printed)
                .unwrap_or_else(|e| panic!("display of {src:?} = {printed:?} failed: {e}"));
            // `Seq` associativity may differ after a re-parse, so compare
            // the printed forms (the fixpoint the corpus format relies on)
            // rather than the ASTs.
            assert_eq!(re.to_string(), printed, "{src:?}");
        }
    }

    #[test]
    fn errors() {
        assert!(parse_xpath("").is_err());
        assert!(parse_xpath("frob::a").is_err());
        assert!(parse_xpath("a[b").is_err());
        assert!(parse_xpath("a]").is_err());
        assert!(parse_xpath("a[not b]").is_err());
    }
}
