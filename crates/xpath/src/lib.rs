#![warn(missing_docs)]

//! Core XPath (Section 3 of the paper): the navigational fragment of
//! XPath over unranked ordered labeled trees.
//!
//! Grammar (Section 3):
//!
//! ```text
//! p    ::= step | p/p | p ∪ p
//! step ::= axis | step[q]
//! axis ::= arel | arel⁻¹ | Self
//! q    ::= p | lab() = L | q ∧ q | q ∨ q | ¬q
//! ```
//!
//! This crate provides:
//!
//! * the AST and a parser that accepts both the paper's notation and
//!   familiar abbreviated XPath (`//a[b]/c`, `child::a`, `not(...)`),
//! * [`eval_reference`] — a literal transcription of the denotational
//!   semantics (P1)–(P4) / (Q1)–(Q5), used as the correctness oracle,
//! * [`eval`] / [`eval_query`] — the set-at-a-time evaluator: every axis
//!   image/preimage is one O(n) order sweep, giving `O(|D| · |Q|)`
//!   combined complexity (the linear-time data complexity of Section 4),
//! * [`to_datalog`] — the translation into monadic datalog over τ⁺
//!   (Section 3 / \[29\]); negation is compiled via dual predicates, with
//!   label complements as extensional `notlabel` facts,
//! * [`to_cq`] — the translation of *conjunctive* Core XPath into acyclic
//!   conjunctive queries (Proposition 4.2).

mod ast;
mod eval;
mod features;
mod parser;
mod reference;
mod to_cq;
mod to_datalog;

pub use ast::{Path, Qual};
pub use eval::{eval, eval_query, select, sources};
pub use features::{features, PathFeatures};
pub use parser::{parse_xpath, XPathParseError};
pub use reference::eval_reference;
pub use to_cq::{to_cq, NotConjunctive};
pub use to_datalog::to_datalog;
