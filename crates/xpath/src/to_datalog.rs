//! Translation of Core XPath into monadic datalog over τ⁺ (Section 3;
//! Frick–Grohe–Koch \[29\]).
//!
//! Every Core XPath query — including negation — becomes an equivalent
//! monadic datalog program. The key ingredients:
//!
//! * for every axis χ and already-defined predicate `P`, fresh predicates
//!   `∃χ.P = {x : ∃y χ(x, y) ∧ P(y)}` and
//!   `∀χ.P = {x : ∀y χ(x, y) → P(y)}`
//!   are definable with O(1) rules over `FirstChild` / `NextSibling`
//!   (transitive axes via the usual sibling/descendant recursions;
//!   `Following`/`Preceding` by the Section 2 decomposition through
//!   ancestor-or-self, following-siblings and descendant-or-self);
//! * qualifiers are translated into *dual pairs* (pos, neg) so that `¬` is
//!   a swap and no datalog negation is needed; label complements use the
//!   extensional `notlabel` predicate (see `BasePred::NotLabel`);
//! * the node-selecting query is the image of the start predicate
//!   (`start(x) ← root(x)`) through the path, using `∃χ⁻¹`.
//!
//! The output program size is linear in the query size and can be brought
//! to TMNF with `treequery_datalog::to_tmnf`.

use treequery_datalog::{BasePred, BinRel, BodyAtom, PredId, Program, Rule, UnaryRef, VarId};
use treequery_tree::Axis;

use crate::ast::{Path, Qual};

struct Tr {
    prog: Program,
    fresh: u32,
    /// Memo for qualifier duals, keyed by the qualifier's debug form;
    /// keeps the output linear when path qualifiers nest (each distinct
    /// qualifier is translated once).
    qual_memo: std::collections::HashMap<String, (PredId, PredId)>,
}

impl Tr {
    fn fresh(&mut self, hint: &str) -> PredId {
        let name = format!("__{hint}{}", self.fresh);
        self.fresh += 1;
        self.prog.pred(&name)
    }

    fn rule(&mut self, head: PredId, head_var: u32, body: Vec<BodyAtom>, num_vars: u32) {
        self.prog.add_rule(Rule {
            head,
            head_var: VarId(head_var),
            body,
            num_vars,
        });
    }

    /// `p(x) ← u(x)`.
    fn alias_rule(&mut self, p: PredId, u: UnaryRef) {
        self.rule(p, 0, vec![BodyAtom::Unary(u, VarId(0))], 1);
    }

    /// A new predicate equal to the conjunction of `parts` (at one node).
    fn conj(&mut self, parts: &[UnaryRef]) -> PredId {
        let p = self.fresh("and");
        let body: Vec<BodyAtom> = if parts.is_empty() {
            vec![BodyAtom::Unary(UnaryRef::Base(BasePred::Dom), VarId(0))]
        } else {
            parts
                .iter()
                .map(|u| BodyAtom::Unary(u.clone(), VarId(0)))
                .collect()
        };
        self.rule(p, 0, body, 1);
        p
    }

    /// A new predicate equal to the disjunction of `parts`.
    fn disj(&mut self, parts: &[UnaryRef]) -> PredId {
        let p = self.fresh("or");
        for u in parts {
            self.alias_rule(p, u.clone());
        }
        // No parts: no rules — the empty (false) predicate.
        p
    }

    /// The always-false predicate (no rules).
    fn false_pred(&mut self) -> PredId {
        self.fresh("false")
    }

    /// `h(x) ← u(y), rel(a, b)` where (a, b) is (x, y) if `x_first`, else
    /// (y, x). Variable 0 is x (the head), variable 1 is y.
    fn step_rule(&mut self, h: PredId, u: UnaryRef, rel: BinRel, x_first: bool) {
        let (a, b) = if x_first {
            (VarId(0), VarId(1))
        } else {
            (VarId(1), VarId(0))
        };
        self.rule(
            h,
            0,
            vec![BodyAtom::Unary(u, VarId(1)), BodyAtom::Binary(rel, a, b)],
            2,
        );
    }

    /// Like [`Tr::step_rule`] with one extra unary conjunct on the head
    /// variable.
    fn step_rule_with(
        &mut self,
        h: PredId,
        u: UnaryRef,
        rel: BinRel,
        x_first: bool,
        extra: UnaryRef,
    ) {
        let (a, b) = if x_first {
            (VarId(0), VarId(1))
        } else {
            (VarId(1), VarId(0))
        };
        self.rule(
            h,
            0,
            vec![
                BodyAtom::Unary(u, VarId(1)),
                BodyAtom::Binary(rel, a, b),
                BodyAtom::Unary(extra, VarId(0)),
            ],
            2,
        );
    }

    /// `∃χ.P`: the nodes with a χ-successor satisfying `p`.
    fn exists_along(&mut self, axis: Axis, p: UnaryRef) -> PredId {
        use Axis::*;
        match axis {
            SelfAxis => {
                let h = self.fresh("exself");
                self.alias_rule(h, p);
                h
            }
            NextSibling => {
                let h = self.fresh("exns");
                self.step_rule(h, p, BinRel::NextSibling, true);
                h
            }
            PrevSibling => {
                let h = self.fresh("exps");
                self.step_rule(h, p, BinRel::NextSibling, false);
                h
            }
            FollowingSibling => {
                // s(y) = p holds at y or some right sibling of y;
                // h(x) ← NextSibling(x, y), s(y).
                let s = self.fresh("sfs");
                self.alias_rule(s, p);
                self.step_rule(s, UnaryRef::Pred(s), BinRel::NextSibling, true);
                let h = self.fresh("exfs");
                self.step_rule(h, UnaryRef::Pred(s), BinRel::NextSibling, true);
                h
            }
            FollowingSiblingOrSelf => {
                let strict = self.exists_along(FollowingSibling, p.clone());
                self.disj(&[p, UnaryRef::Pred(strict)])
            }
            PrecedingSibling => {
                let s = self.fresh("sps");
                self.alias_rule(s, p);
                self.step_rule(s, UnaryRef::Pred(s), BinRel::NextSibling, false);
                let h = self.fresh("exps2");
                self.step_rule(h, UnaryRef::Pred(s), BinRel::NextSibling, false);
                h
            }
            PrecedingSiblingOrSelf => {
                let strict = self.exists_along(PrecedingSibling, p.clone());
                self.disj(&[p, UnaryRef::Pred(strict)])
            }
            Child => {
                // s = suffix-sibling chain reaching p; h(x) ← FirstChild(x, w), s(w).
                let s = self.fresh("schild");
                self.alias_rule(s, p);
                self.step_rule(s, UnaryRef::Pred(s), BinRel::NextSibling, true);
                let h = self.fresh("exchild");
                self.step_rule(h, UnaryRef::Pred(s), BinRel::FirstChild, true);
                h
            }
            Parent => {
                // m marks all children of p-nodes.
                let m = self.fresh("exparent");
                self.step_rule(m, p, BinRel::FirstChild, false);
                self.step_rule(m, UnaryRef::Pred(m), BinRel::NextSibling, false);
                m
            }
            Descendant => {
                // sd(w) = some node of the forest "w and its right
                // siblings with their subtrees" satisfies p.
                let sd = self.fresh("sdesc");
                self.alias_rule(sd, p);
                self.step_rule(sd, UnaryRef::Pred(sd), BinRel::NextSibling, true);
                self.step_rule(sd, UnaryRef::Pred(sd), BinRel::FirstChild, true);
                let h = self.fresh("exdesc");
                self.step_rule(h, UnaryRef::Pred(sd), BinRel::FirstChild, true);
                h
            }
            DescendantOrSelf => {
                let strict = self.exists_along(Descendant, p.clone());
                self.disj(&[p, UnaryRef::Pred(strict)])
            }
            Ancestor => {
                // a = children of (p ∪ a) nodes, closed downward... i.e.
                // a(x) holds iff some proper ancestor of x satisfies p.
                let pa = self.fresh("pa");
                self.alias_rule(pa, p);
                let a = self.fresh("exanc");
                self.alias_rule(pa, UnaryRef::Pred(a));
                // a = all children of pa-nodes.
                self.step_rule(a, UnaryRef::Pred(pa), BinRel::FirstChild, false);
                self.step_rule(a, UnaryRef::Pred(a), BinRel::NextSibling, false);
                a
            }
            AncestorOrSelf => {
                let strict = self.exists_along(Ancestor, p.clone());
                self.disj(&[p, UnaryRef::Pred(strict)])
            }
            Following => {
                // ∃Following.P = ∃AncOrSelf.∃FollowingSibling.∃DescOrSelf.P
                let inner = self.exists_along(DescendantOrSelf, p);
                let mid = self.exists_along(FollowingSibling, UnaryRef::Pred(inner));
                self.exists_along(AncestorOrSelf, UnaryRef::Pred(mid))
            }
            Preceding => {
                let inner = self.exists_along(DescendantOrSelf, p);
                let mid = self.exists_along(PrecedingSibling, UnaryRef::Pred(inner));
                self.exists_along(AncestorOrSelf, UnaryRef::Pred(mid))
            }
        }
    }

    /// `∀χ.P`: the nodes all of whose χ-successors satisfy `p`.
    fn forall_along(&mut self, axis: Axis, p: UnaryRef) -> PredId {
        use Axis::*;
        match axis {
            SelfAxis => {
                let h = self.fresh("faself");
                self.alias_rule(h, p);
                h
            }
            NextSibling => {
                let h = self.fresh("fans");
                self.alias_rule(h, UnaryRef::Base(BasePred::LastSibling));
                self.step_rule(h, p, BinRel::NextSibling, true);
                h
            }
            PrevSibling => {
                let h = self.fresh("faps");
                self.alias_rule(h, UnaryRef::Base(BasePred::FirstSibling));
                self.step_rule(h, p, BinRel::NextSibling, false);
                h
            }
            FollowingSibling => {
                // af(x): all right siblings satisfy p.
                let af = self.fresh("fafs");
                self.alias_rule(af, UnaryRef::Base(BasePred::LastSibling));
                // af(x) ← NextSibling(x, y), p(y), af(y).
                let both = self.conj(&[p, UnaryRef::Pred(af)]);
                self.step_rule(af, UnaryRef::Pred(both), BinRel::NextSibling, true);
                af
            }
            FollowingSiblingOrSelf => {
                let strict = self.forall_along(FollowingSibling, p.clone());
                self.conj(&[p, UnaryRef::Pred(strict)])
            }
            PrecedingSibling => {
                let ap = self.fresh("faps2");
                self.alias_rule(ap, UnaryRef::Base(BasePred::FirstSibling));
                let both = self.conj(&[p, UnaryRef::Pred(ap)]);
                self.step_rule(ap, UnaryRef::Pred(both), BinRel::NextSibling, false);
                ap
            }
            PrecedingSiblingOrSelf => {
                let strict = self.forall_along(PrecedingSibling, p.clone());
                self.conj(&[p, UnaryRef::Pred(strict)])
            }
            Child => {
                // All children satisfy p: leaf, or first child starts an
                // all-p sibling chain.
                let ac = self.fresh("acchain");
                // Base: the last sibling, satisfying p.
                let base = self.conj(&[UnaryRef::Base(BasePred::LastSibling), p.clone()]);
                self.alias_rule(ac, UnaryRef::Pred(base));
                // ac(x) ← ac(y), NextSibling(x, y), p(x).
                self.step_rule_with(ac, UnaryRef::Pred(ac), BinRel::NextSibling, true, p.clone());
                let h = self.fresh("fachild");
                self.alias_rule(h, UnaryRef::Base(BasePred::Leaf));
                self.step_rule(h, UnaryRef::Pred(ac), BinRel::FirstChild, true);
                h
            }
            Parent => {
                let h = self.fresh("faparent");
                self.alias_rule(h, UnaryRef::Base(BasePred::Root));
                let m = self.exists_along(Parent, p);
                self.alias_rule(h, UnaryRef::Pred(m));
                h
            }
            Descendant => {
                // ad(x): every proper descendant satisfies p.
                // asf(w): every node in w's suffix forest satisfies p.
                let ad = self.fresh("fadesc");
                let asf = self.fresh("fasf");
                let here = self.conj(&[p, UnaryRef::Pred(ad)]);
                let base =
                    self.conj(&[UnaryRef::Base(BasePred::LastSibling), UnaryRef::Pred(here)]);
                self.alias_rule(asf, UnaryRef::Pred(base));
                // asf(w) ← NextSibling(w, w'), asf(w'), here(w).
                self.step_rule_with(
                    asf,
                    UnaryRef::Pred(asf),
                    BinRel::NextSibling,
                    true,
                    UnaryRef::Pred(here),
                );
                self.alias_rule(ad, UnaryRef::Base(BasePred::Leaf));
                self.step_rule(ad, UnaryRef::Pred(asf), BinRel::FirstChild, true);
                ad
            }
            DescendantOrSelf => {
                let strict = self.forall_along(Descendant, p.clone());
                self.conj(&[p, UnaryRef::Pred(strict)])
            }
            Ancestor => {
                // aa(x): every proper ancestor satisfies p.
                let aa = self.fresh("faanc");
                self.alias_rule(aa, UnaryRef::Base(BasePred::Root));
                let both = self.conj(&[p, UnaryRef::Pred(aa)]);
                // aa(x) ← x child of a `both` node.
                let m = self.exists_along(Parent, UnaryRef::Pred(both));
                self.alias_rule(aa, UnaryRef::Pred(m));
                aa
            }
            AncestorOrSelf => {
                let strict = self.forall_along(Ancestor, p.clone());
                self.conj(&[p, UnaryRef::Pred(strict)])
            }
            Following => {
                let inner = self.forall_along(DescendantOrSelf, p);
                let mid = self.forall_along(FollowingSibling, UnaryRef::Pred(inner));
                self.forall_along(AncestorOrSelf, UnaryRef::Pred(mid))
            }
            Preceding => {
                let inner = self.forall_along(DescendantOrSelf, p);
                let mid = self.forall_along(PrecedingSibling, UnaryRef::Pred(inner));
                self.forall_along(AncestorOrSelf, UnaryRef::Pred(mid))
            }
        }
    }

    /// Dual translation of a qualifier: (holds, fails). Memoized.
    fn tr_qual(&mut self, q: &Qual) -> (PredId, PredId) {
        let key = format!("{q:?}");
        if let Some(&cached) = self.qual_memo.get(&key) {
            return cached;
        }
        let result = self.tr_qual_uncached(q);
        self.qual_memo.insert(key, result);
        result
    }

    fn tr_qual_uncached(&mut self, q: &Qual) -> (PredId, PredId) {
        match q {
            Qual::Label(l) => {
                let pos = self.fresh("lab");
                self.alias_rule(pos, UnaryRef::Base(BasePred::Label(l.clone())));
                let neg = self.fresh("nlab");
                self.alias_rule(neg, UnaryRef::Base(BasePred::NotLabel(l.clone())));
                (pos, neg)
            }
            Qual::And(a, b) => {
                let (ap, an) = self.tr_qual(a);
                let (bp, bn) = self.tr_qual(b);
                let pos = self.conj(&[UnaryRef::Pred(ap), UnaryRef::Pred(bp)]);
                let neg = self.disj(&[UnaryRef::Pred(an), UnaryRef::Pred(bn)]);
                (pos, neg)
            }
            Qual::Or(a, b) => {
                let (ap, an) = self.tr_qual(a);
                let (bp, bn) = self.tr_qual(b);
                let pos = self.disj(&[UnaryRef::Pred(ap), UnaryRef::Pred(bp)]);
                let neg = self.conj(&[UnaryRef::Pred(an), UnaryRef::Pred(bn)]);
                (pos, neg)
            }
            Qual::Not(inner) => {
                let (p, n) = self.tr_qual(inner);
                (n, p)
            }
            Qual::Path(p) => {
                let t = self.conj(&[]); // True
                let f = self.false_pred();
                let pos = self.sources(p, t);
                let neg = self.nsources(p, f);
                (pos, neg)
            }
        }
    }

    /// Nodes from which `p` reaches a `target` node.
    fn sources(&mut self, p: &Path, target: PredId) -> PredId {
        match p {
            Path::Step { axis, quals } => {
                let mut parts = vec![UnaryRef::Pred(target)];
                for q in quals {
                    let (qp, _) = self.tr_qual(q);
                    parts.push(UnaryRef::Pred(qp));
                }
                let landing = self.conj(&parts);
                self.exists_along(*axis, UnaryRef::Pred(landing))
            }
            Path::Seq(p1, p2) => {
                let mid = self.sources(p2, target);
                self.sources(p1, mid)
            }
            Path::Union(p1, p2) => {
                let a = self.sources(p1, target);
                let b = self.sources(p2, target);
                self.disj(&[UnaryRef::Pred(a), UnaryRef::Pred(b)])
            }
        }
    }

    /// Nodes from which `p` reaches *no* node outside `bad_target`'s
    /// complement — i.e. the dual: every `p`-reachable landing fails.
    /// `target_neg` is the predicate "this landing does not count".
    fn nsources(&mut self, p: &Path, target_neg: PredId) -> PredId {
        match p {
            Path::Step { axis, quals } => {
                // ¬(target ∧ q₁ ∧ … ∧ qₖ) = ¬target ∨ ¬q₁ ∨ … ∨ ¬qₖ.
                let mut parts = vec![UnaryRef::Pred(target_neg)];
                for q in quals {
                    let (_, qn) = self.tr_qual(q);
                    parts.push(UnaryRef::Pred(qn));
                }
                let fail = self.disj(&parts);
                self.forall_along(*axis, UnaryRef::Pred(fail))
            }
            Path::Seq(p1, p2) => {
                let mid = self.nsources(p2, target_neg);
                self.nsources(p1, mid)
            }
            Path::Union(p1, p2) => {
                let a = self.nsources(p1, target_neg);
                let b = self.nsources(p2, target_neg);
                self.conj(&[UnaryRef::Pred(a), UnaryRef::Pred(b)])
            }
        }
    }

    /// The image of `start` through `p` (forward direction): the answer
    /// set.
    fn image(&mut self, p: &Path, start: PredId) -> PredId {
        match p {
            Path::Step { axis, quals } => {
                let reached = self.exists_along(axis.inverse(), UnaryRef::Pred(start));
                let mut parts = vec![UnaryRef::Pred(reached)];
                for q in quals {
                    let (qp, _) = self.tr_qual(q);
                    parts.push(UnaryRef::Pred(qp));
                }
                self.conj(&parts)
            }
            Path::Seq(p1, p2) => {
                let mid = self.image(p1, start);
                self.image(p2, mid)
            }
            Path::Union(p1, p2) => {
                let a = self.image(p1, start);
                let b = self.image(p2, start);
                self.disj(&[UnaryRef::Pred(a), UnaryRef::Pred(b)])
            }
        }
    }

    /// Document-level dispatch (same convention as
    /// [`crate::eval::eval_query`]).
    fn image_from_document(&mut self, p: &Path) -> PredId {
        match p {
            Path::Step { axis, quals } => {
                let base = match axis {
                    Axis::Child => {
                        let b = self.fresh("docchild");
                        self.alias_rule(b, UnaryRef::Base(BasePred::Root));
                        b
                    }
                    Axis::Descendant | Axis::DescendantOrSelf => self.conj(&[]),
                    _ => self.false_pred(),
                };
                let mut parts = vec![UnaryRef::Pred(base)];
                for q in quals {
                    let (qp, _) = self.tr_qual(q);
                    parts.push(UnaryRef::Pred(qp));
                }
                self.conj(&parts)
            }
            Path::Seq(p1, p2) => {
                let first = self.image_from_document(p1);
                self.image(p2, first)
            }
            Path::Union(p1, p2) => {
                let a = self.image_from_document(p1);
                let b = self.image_from_document(p2);
                self.disj(&[UnaryRef::Pred(a), UnaryRef::Pred(b)])
            }
        }
    }
}

/// Translates a Core XPath query (with negation) into an equivalent
/// monadic datalog program over τ⁺ ∪ {NotLabel}; the query predicate
/// `answer` selects the same nodes as [`crate::eval_query`]. The program
/// size is `O(|Q|)`.
pub fn to_datalog(p: &Path) -> Program {
    let mut tr = Tr {
        prog: Program::new(),
        fresh: 0,
        qual_memo: std::collections::HashMap::new(),
    };
    let answer_pred = tr.image_from_document(p);
    let answer = tr.prog.pred("answer");
    tr.alias_rule(answer, UnaryRef::Pred(answer_pred));
    tr.prog.set_query("answer");
    tr.prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_query;
    use crate::parser::parse_xpath;
    use treequery_datalog::eval_query as datalog_eval;
    use treequery_tree::parse_term;

    fn check(qs: &str, trees: &[&str]) {
        let p = parse_xpath(qs).unwrap();
        let prog = to_datalog(&p);
        for ts in trees {
            let t = parse_term(ts).unwrap();
            assert_eq!(datalog_eval(&prog, &t), eval_query(&p, &t), "{qs} on {ts}");
        }
    }

    const TREES: &[&str] = &[
        "r(a(b c) b(a(c) c) a)",
        "r(a(a(a(b))) c)",
        "a",
        "r(a(b(c) b) a(c(b)) b(a))",
        "r(x y z)",
    ];

    #[test]
    fn simple_paths() {
        check("/r", TREES);
        check("//a", TREES);
        check("//a/b", TREES);
        check("/r/a/b", TREES);
    }

    #[test]
    fn qualifiers() {
        check("//a[b]", TREES);
        check("//a[b/c]", TREES);
        check("//a[b and c]", TREES);
        check("//a[b or c]", TREES);
    }

    #[test]
    fn negation() {
        check("//a[not(b)]", TREES);
        check("//a[not(b or c)]", TREES);
        check("//a[not(not(b))]", TREES);
        check("//*[not(lab()=a) and not(lab()=r)]", TREES);
    }

    #[test]
    fn reverse_axes() {
        check("//b/parent::a", TREES);
        check("//c[ancestor::a]", TREES);
        check("//a[preceding-sibling::b]", TREES);
        check("//b/ancestor-or-self::*", TREES);
    }

    #[test]
    fn sibling_and_following() {
        check("//a/following-sibling::b", TREES);
        check("//a[following::c]", TREES);
        check("//c/preceding::a", TREES);
        check("//b/following::*", TREES);
    }

    #[test]
    fn unions_and_mixtures() {
        check("//a | //b[c]", TREES);
        check("//a[not(following-sibling::*)]", TREES);
        check("//*[self::a or self::b]/child::c", TREES);
        check("//a[not(descendant::c)]/b", TREES);
    }

    #[test]
    fn program_size_is_linear() {
        let small = to_datalog(&parse_xpath("//a[b]/c").unwrap());
        let large = to_datalog(&parse_xpath("//a[b]/c//a[b]/c//a[b]/c//a[b]/c").unwrap());
        assert!(large.size() <= small.size() * 8);
    }
}
