//! Abstract syntax of Core XPath.

use std::fmt;

use treequery_tree::Axis;

/// A Core XPath path expression (`p` in the Section 3 grammar).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Path {
    /// A step: an axis with zero or more qualifiers (`axis[q₁]…[qₖ]`).
    Step {
        /// The axis relation.
        axis: Axis,
        /// Qualifiers, conjunctively.
        quals: Vec<Qual>,
    },
    /// Composition `p₁/p₂`.
    Seq(Box<Path>, Box<Path>),
    /// Union `p₁ ∪ p₂`.
    Union(Box<Path>, Box<Path>),
}

/// A Core XPath qualifier (`q` in the grammar).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Qual {
    /// A path used existentially: true iff it selects at least one node.
    Path(Path),
    /// `lab() = L`.
    Label(String),
    /// Conjunction.
    And(Box<Qual>, Box<Qual>),
    /// Disjunction.
    Or(Box<Qual>, Box<Qual>),
    /// Negation.
    Not(Box<Qual>),
}

impl Path {
    /// A bare axis step.
    pub fn step(axis: Axis) -> Path {
        Path::Step {
            axis,
            quals: Vec::new(),
        }
    }

    /// A step testing the node label (`axis::L` sugar: the axis with a
    /// `lab() = L` qualifier).
    pub fn labeled_step(axis: Axis, label: &str) -> Path {
        Path::Step {
            axis,
            quals: vec![Qual::Label(label.to_owned())],
        }
    }

    /// `self/other`.
    pub fn then(self, other: Path) -> Path {
        Path::Seq(Box::new(self), Box::new(other))
    }

    /// `self ∪ other`.
    pub fn union(self, other: Path) -> Path {
        Path::Union(Box::new(self), Box::new(other))
    }

    /// Adds a qualifier to the *last* step of the path.
    pub fn filtered(mut self, q: Qual) -> Path {
        match &mut self {
            Path::Step { quals, .. } => quals.push(q),
            Path::Seq(_, p2) => {
                let taken = std::mem::replace(p2.as_mut(), Path::step(Axis::SelfAxis));
                **p2 = taken.filtered(q);
            }
            Path::Union(..) => {
                // Filter a union by sequencing with a qualified Self step.
                return self.then(Path::Step {
                    axis: Axis::SelfAxis,
                    quals: vec![q],
                });
            }
        }
        self
    }

    /// Query size `|Q|`: number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Path::Step { quals, .. } => 1 + quals.iter().map(Qual::size).sum::<usize>(),
            Path::Seq(a, b) | Path::Union(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Whether the expression is *conjunctive* Core XPath: no union, no
    /// disjunction, no negation (the Proposition 4.2 fragment).
    pub fn is_conjunctive(&self) -> bool {
        match self {
            Path::Step { quals, .. } => quals.iter().all(Qual::is_conjunctive),
            Path::Seq(a, b) => a.is_conjunctive() && b.is_conjunctive(),
            Path::Union(..) => false,
        }
    }

    /// Whether the expression is *positive*: no negation (the LOGCFL
    /// fragment of Section 4).
    pub fn is_positive(&self) -> bool {
        match self {
            Path::Step { quals, .. } => quals.iter().all(Qual::is_positive),
            Path::Seq(a, b) | Path::Union(a, b) => a.is_positive() && b.is_positive(),
        }
    }

    /// Whether the expression is a *forward* query (Section 5): only
    /// forward axes anywhere.
    pub fn is_forward(&self) -> bool {
        match self {
            Path::Step { axis, quals } => axis.is_forward() && quals.iter().all(Qual::is_forward),
            Path::Seq(a, b) | Path::Union(a, b) => a.is_forward() && b.is_forward(),
        }
    }
}

impl Qual {
    /// AST size.
    pub fn size(&self) -> usize {
        match self {
            Qual::Path(p) => 1 + p.size(),
            Qual::Label(_) => 1,
            Qual::And(a, b) | Qual::Or(a, b) => 1 + a.size() + b.size(),
            Qual::Not(q) => 1 + q.size(),
        }
    }

    fn is_conjunctive(&self) -> bool {
        match self {
            Qual::Path(p) => p.is_conjunctive(),
            Qual::Label(_) => true,
            Qual::And(a, b) => a.is_conjunctive() && b.is_conjunctive(),
            Qual::Or(..) | Qual::Not(..) => false,
        }
    }

    fn is_positive(&self) -> bool {
        match self {
            Qual::Path(p) => p.is_positive(),
            Qual::Label(_) => true,
            Qual::And(a, b) | Qual::Or(a, b) => a.is_positive() && b.is_positive(),
            Qual::Not(..) => false,
        }
    }

    fn is_forward(&self) -> bool {
        match self {
            Qual::Path(p) => p.is_forward(),
            Qual::Label(_) => true,
            Qual::And(a, b) | Qual::Or(a, b) => a.is_forward() && b.is_forward(),
            Qual::Not(q) => q.is_forward(),
        }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Path::Step { axis, quals } => {
                write!(f, "{}::*", axis.name().to_ascii_lowercase())?;
                for q in quals {
                    write!(f, "[{q}]")?;
                }
                Ok(())
            }
            Path::Seq(a, b) => write!(f, "{a}/{b}"),
            Path::Union(a, b) => write!(f, "({a} | {b})"),
        }
    }
}

impl fmt::Display for Qual {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Qual::Path(p) => write!(f, "{p}"),
            Qual::Label(l) => write!(f, "lab()={l}"),
            Qual::And(a, b) => write!(f, "({a} and {b})"),
            Qual::Or(a, b) => write!(f, "({a} or {b})"),
            Qual::Not(q) => write!(f, "not({q})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_predicates() {
        let p = Path::labeled_step(Axis::Child, "a")
            .then(Path::step(Axis::Descendant))
            .filtered(Qual::Label("b".into()));
        assert!(p.is_conjunctive());
        assert!(p.is_positive());
        assert!(p.is_forward());
        assert_eq!(p.size(), 5);

        let neg = Path::step(Axis::Child).filtered(Qual::Not(Box::new(Qual::Label("a".into()))));
        assert!(!neg.is_conjunctive());
        assert!(!neg.is_positive());

        let back = Path::step(Axis::Parent);
        assert!(!back.is_forward());

        let u = Path::step(Axis::Child).union(Path::step(Axis::Descendant));
        assert!(!u.is_conjunctive());
        assert!(u.is_positive());
    }

    #[test]
    fn filtered_attaches_to_last_step() {
        let p = Path::step(Axis::Child)
            .then(Path::step(Axis::Child))
            .filtered(Qual::Label("x".into()));
        let Path::Seq(_, second) = &p else {
            panic!("expected Seq")
        };
        let Path::Step { quals, .. } = second.as_ref() else {
            panic!("expected Step")
        };
        assert_eq!(quals.len(), 1);
    }

    #[test]
    fn filtered_union_wraps_with_self() {
        let u = Path::step(Axis::Child)
            .union(Path::step(Axis::Descendant))
            .filtered(Qual::Label("x".into()));
        assert!(matches!(u, Path::Seq(..)));
    }

    #[test]
    fn display_round_readable() {
        let p = Path::labeled_step(Axis::Child, "a").then(Path::step(Axis::Following));
        assert_eq!(p.to_string(), "child::*[lab()=a]/following::*");
    }
}
