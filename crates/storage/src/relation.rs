//! Sorted binary relations over `u32` identifiers.
//!
//! A minimal relational-algebra substrate: enough to express the paper's
//! relational storage schemes (Example 2.1) and the baselines that
//! materialize transitive closures.

use std::collections::{HashMap, HashSet};

/// A binary relation over `u32` values, stored as a lexicographically
/// sorted, duplicate-free vector of pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Relation {
    pairs: Vec<(u32, u32)>,
}

impl Relation {
    /// The empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a relation, sorting and deduplicating.
    pub fn from_pairs(mut pairs: Vec<(u32, u32)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        Self { pairs }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The tuples, sorted lexicographically.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Membership test (binary search).
    pub fn contains(&self, pair: (u32, u32)) -> bool {
        self.pairs.binary_search(&pair).is_ok()
    }

    /// The set of first components.
    pub fn domain(&self) -> HashSet<u32> {
        self.pairs.iter().map(|&(x, _)| x).collect()
    }

    /// The set of second components.
    pub fn range(&self) -> HashSet<u32> {
        self.pairs.iter().map(|&(_, y)| y).collect()
    }

    /// The inverse relation.
    pub fn inverse(&self) -> Relation {
        Relation::from_pairs(self.pairs.iter().map(|&(x, y)| (y, x)).collect())
    }

    /// Selection by a predicate on tuples.
    pub fn select(&self, pred: impl Fn(u32, u32) -> bool) -> Relation {
        Relation {
            pairs: self
                .pairs
                .iter()
                .copied()
                .filter(|&(x, y)| pred(x, y))
                .collect(),
        }
    }

    /// Composition `self ∘ other = {(x, z) | ∃y: self(x, y) ∧ other(y, z)}`
    /// via a hash join on the shared column.
    pub fn compose(&self, other: &Relation) -> Relation {
        let mut by_first: HashMap<u32, Vec<u32>> = HashMap::new();
        for &(y, z) in &other.pairs {
            by_first.entry(y).or_default().push(z);
        }
        let mut out = Vec::new();
        for &(x, y) in &self.pairs {
            if let Some(zs) = by_first.get(&y) {
                for &z in zs {
                    out.push((x, z));
                }
            }
        }
        Relation::from_pairs(out)
    }

    /// Semijoin: tuples whose first component is in `keys`.
    pub fn semijoin_first(&self, keys: &HashSet<u32>) -> Relation {
        self.select(|x, _| keys.contains(&x))
    }

    /// Semijoin: tuples whose second component is in `keys`.
    pub fn semijoin_second(&self, keys: &HashSet<u32>) -> Relation {
        self.select(|_, y| keys.contains(&y))
    }

    /// Union.
    pub fn union(&self, other: &Relation) -> Relation {
        let mut pairs = self.pairs.clone();
        pairs.extend_from_slice(&other.pairs);
        Relation::from_pairs(pairs)
    }

    /// The transitive closure `R⁺`, computed by iterated composition
    /// (semi-naive). This is the expensive operation the XASR encoding
    /// exists to avoid; it is provided as the baseline for experiment E12.
    pub fn transitive_closure(&self) -> Relation {
        let mut closure: HashSet<(u32, u32)> = self.pairs.iter().copied().collect();
        let mut frontier: Vec<(u32, u32)> = self.pairs.clone();
        let mut by_first: HashMap<u32, Vec<u32>> = HashMap::new();
        for &(x, y) in &self.pairs {
            by_first.entry(x).or_default().push(y);
        }
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &(x, y) in &frontier {
                if let Some(zs) = by_first.get(&y) {
                    for &z in zs {
                        if closure.insert((x, z)) {
                            next.push((x, z));
                        }
                    }
                }
            }
            frontier = next;
        }
        Relation::from_pairs(closure.into_iter().collect())
    }

    /// Iterates over the tuples.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.pairs.iter().copied()
    }
}

impl FromIterator<(u32, u32)> for Relation {
    fn from_iter<I: IntoIterator<Item = (u32, u32)>>(iter: I) -> Self {
        Relation::from_pairs(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let r = Relation::from_pairs(vec![(2, 1), (1, 2), (2, 1)]);
        assert_eq!(r.pairs(), &[(1, 2), (2, 1)]);
        assert!(r.contains((2, 1)));
        assert!(!r.contains((1, 1)));
    }

    #[test]
    fn compose() {
        let r = Relation::from_pairs(vec![(1, 2), (2, 3)]);
        let s = Relation::from_pairs(vec![(2, 10), (3, 11), (3, 12)]);
        let c = r.compose(&s);
        assert_eq!(c.pairs(), &[(1, 10), (2, 11), (2, 12)]);
    }

    #[test]
    fn transitive_closure_of_path() {
        let r = Relation::from_pairs(vec![(1, 2), (2, 3), (3, 4)]);
        let tc = r.transitive_closure();
        assert_eq!(
            tc.pairs(),
            &[(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]
        );
    }

    #[test]
    fn transitive_closure_with_cycle_terminates() {
        let r = Relation::from_pairs(vec![(1, 2), (2, 1)]);
        let tc = r.transitive_closure();
        assert_eq!(tc.pairs(), &[(1, 1), (1, 2), (2, 1), (2, 2)]);
    }

    #[test]
    fn semijoins_and_inverse() {
        let r = Relation::from_pairs(vec![(1, 2), (3, 4), (5, 6)]);
        let keys: HashSet<u32> = [1, 5].into_iter().collect();
        assert_eq!(r.semijoin_first(&keys).pairs(), &[(1, 2), (5, 6)]);
        let keys2: HashSet<u32> = [4].into_iter().collect();
        assert_eq!(r.semijoin_second(&keys2).pairs(), &[(3, 4)]);
        assert_eq!(r.inverse().pairs(), &[(2, 1), (4, 3), (6, 5)]);
    }

    #[test]
    fn union_dedups() {
        let r = Relation::from_pairs(vec![(1, 1)]);
        let s = Relation::from_pairs(vec![(1, 1), (2, 2)]);
        assert_eq!(r.union(&s).len(), 2);
    }
}
