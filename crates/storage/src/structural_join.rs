//! Structural joins (Section 2; Al-Khalifa et al., ICDE 2002 \[2\]).
//!
//! A structural join computes all (ancestor, descendant) pairs between two
//! lists of nodes given by their `(pre, post)` labels. Three algorithms are
//! provided, ordered from best to worst:
//!
//! * [`stack_tree_join`] — the stack-based merge join: `O(|A| + |D| + out)`,
//! * [`nested_loop_join`] — the theta-join exactly as written in the SQL
//!   view of Example 2.1: `O(|A| · |D|)`,
//! * [`closure_join`] — materializes the quadratically-sized `Child⁺`
//!   relation and filters it, the strategy the paper warns against.
//!
//! Inputs are slices of `(pre, post)` pairs **sorted by `pre`** (as produced
//! by [`crate::Xasr::label_list`]); the output pairs `(a, d)` are the pre
//! indexes of an ancestor from the first list and a descendant from the
//! second.

use crate::relation::Relation;

#[inline]
fn is_ancestor(a: (u32, u32), d: (u32, u32)) -> bool {
    a.0 < d.0 && d.1 < a.1
}

/// Stack-based structural merge join (`Stack-Tree-Desc`).
///
/// Both inputs must be sorted by pre index. Runs in time linear in the
/// input plus output sizes: each ancestor candidate is pushed and popped
/// exactly once, and per descendant the stack contains exactly its
/// ancestors from `ancestors`.
pub fn stack_tree_join(ancestors: &[(u32, u32)], descendants: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut stack = Vec::new();
    stack_tree_join_into(ancestors, descendants, &mut stack, &mut out);
    out
}

/// [`stack_tree_join`] writing into caller-owned buffers: `stack` is the
/// working ancestor stack, `out` receives the pairs (both cleared first).
/// With warmed buffers the join performs no allocations beyond amortized
/// output growth, which is what the steady-state-zero-alloc gate measures.
pub fn stack_tree_join_into(
    ancestors: &[(u32, u32)],
    descendants: &[(u32, u32)],
    stack: &mut Vec<(u32, u32)>,
    out: &mut Vec<(u32, u32)>,
) {
    debug_assert!(ancestors.windows(2).all(|w| w[0].0 < w[1].0));
    debug_assert!(descendants.windows(2).all(|w| w[0].0 < w[1].0));
    out.clear();
    stack.clear();
    let mut i = 0;
    for (di, &d) in descendants.iter().enumerate() {
        // Cancellation checkpoint every 4096 descendants (the join can
        // emit O(depth) pairs per descendant, so output — not input —
        // is what a runaway join drowns in). Partial output is discarded
        // by the cancelled query's executor.
        if di & 0xFFF == 0xFFF && treequery_tree::cancel::cancelled() {
            return;
        }
        // Push every ancestor candidate that starts before d...
        while i < ancestors.len() && ancestors[i].0 < d.0 {
            let a = ancestors[i];
            // ...popping candidates that already closed (not ancestors of a,
            // hence of nothing that follows).
            while stack.last().is_some_and(|&top| top.1 < a.1) {
                stack.pop();
            }
            stack.push(a);
            i += 1;
        }
        // Pop candidates that closed before d opens.
        while stack.last().is_some_and(|&top| top.1 < d.1) {
            stack.pop();
        }
        // Everything remaining on the stack is an ancestor of d.
        for &a in stack.iter() {
            debug_assert!(is_ancestor(a, d));
            out.push((a.0, d.0));
        }
    }
}

/// Resumable state of [`stack_tree_join`] at a descendant-chunk boundary:
/// the index of the next unconsumed ancestor candidate and the stack
/// contents just before the chunk's first descendant is processed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JoinSeed {
    /// Index into the ancestor list of the first candidate not yet pushed.
    pub next_ancestor: usize,
    /// Stack contents (bottom to top) entering the chunk.
    pub stack: Vec<(u32, u32)>,
}

/// Splits `n` descendant indexes into at most `chunks` balanced,
/// non-empty, contiguous ranges.
fn index_ranges(n: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, n);
    let base = n / chunks;
    let extra = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Partitions `descendants` into at most `chunks` contiguous ranges and
/// computes each range's [`JoinSeed`] in one O(|A| + total stack size)
/// sequential prepass, so the per-chunk joins can then run independently
/// (in parallel) via [`stack_tree_join_seeded`].
///
/// Correctness of the seed: the stack [`stack_tree_join`] holds when it
/// emits pairs for a descendant `d` is the fold over `{a | a.pre <
/// d.pre}` of *both* pop rules — but the stack is always a nested
/// ancestor chain, and any element the d-pop rule of an earlier
/// descendant would have removed is disjoint-before that descendant and
/// therefore (post order transfers across disjointness) also
/// disjoint-before `d`, so `d`'s own d-pop removes it anyway. Hence
/// folding only the a-pop rule over the ancestor prefix reproduces the
/// effective stack, and chunk outputs concatenated in chunk order are
/// byte-identical to the sequential join.
pub fn stack_join_seeds(
    ancestors: &[(u32, u32)],
    descendants: &[(u32, u32)],
    chunks: usize,
) -> Vec<(std::ops::Range<usize>, JoinSeed)> {
    debug_assert!(ancestors.windows(2).all(|w| w[0].0 < w[1].0));
    debug_assert!(descendants.windows(2).all(|w| w[0].0 < w[1].0));
    let ranges = index_ranges(descendants.len(), chunks);
    let mut out = Vec::with_capacity(ranges.len());
    let mut i = 0usize;
    let mut stack: Vec<(u32, u32)> = Vec::new();
    for range in ranges {
        let d = descendants[range.start];
        // Pure a-pop fold over the ancestor prefix `{a | a.pre < d.pre}`
        // (incremental across chunks: the prefix only grows).
        while i < ancestors.len() && ancestors[i].0 < d.0 {
            let a = ancestors[i];
            while stack.last().is_some_and(|&top| top.1 < a.1) {
                stack.pop();
            }
            stack.push(a);
            i += 1;
        }
        out.push((
            range,
            JoinSeed {
                next_ancestor: i,
                stack: stack.clone(),
            },
        ));
    }
    out
}

/// [`stack_tree_join`] resumed from a [`JoinSeed`]: joins one descendant
/// chunk against the full ancestor list. With the seeds from
/// [`stack_join_seeds`], concatenating the chunk outputs in chunk order
/// yields exactly the sequential [`stack_tree_join`] output.
pub fn stack_tree_join_seeded(
    ancestors: &[(u32, u32)],
    descendants: &[(u32, u32)],
    seed: &JoinSeed,
) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut stack = seed.stack.clone();
    let mut i = seed.next_ancestor;
    for &d in descendants {
        while i < ancestors.len() && ancestors[i].0 < d.0 {
            let a = ancestors[i];
            while stack.last().is_some_and(|&top| top.1 < a.1) {
                stack.pop();
            }
            stack.push(a);
            i += 1;
        }
        while stack.last().is_some_and(|&top| top.1 < d.1) {
            stack.pop();
        }
        for &a in &stack {
            debug_assert!(is_ancestor(a, d));
            out.push((a.0, d.0));
        }
    }
    out
}

/// Reusable, flattened seed storage for chunked stack-tree joins.
///
/// [`stack_join_seeds`] allocates a fresh `Vec<JoinSeed>` (with one cloned
/// stack per chunk) on every call. `JoinSeedSet` stores the same
/// information in CSR form — one flat `(pre, post)` column plus offsets —
/// and is rebuilt in place, so a warmed instance performs no allocations
/// across repeated [`JoinSeedSet::build`] calls on same-shaped inputs.
/// Seed stacks are handed out as borrowed slices.
#[derive(Clone, Debug, Default)]
pub struct JoinSeedSet {
    ranges: Vec<std::ops::Range<usize>>,
    next_ancestor: Vec<usize>,
    /// CSR offsets into `stack_pairs`, one entry per chunk + 1.
    stack_offsets: Vec<u32>,
    stack_pairs: Vec<(u32, u32)>,
}

impl JoinSeedSet {
    /// An empty seed set; buffers grow on first [`Self::build`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Recomputes the seeds for joining `descendants` (split into at most
    /// `chunks` ranges) against `ancestors`, reusing this set's buffers.
    /// Equivalent to [`stack_join_seeds`] without the per-call allocation.
    pub fn build(&mut self, ancestors: &[(u32, u32)], descendants: &[(u32, u32)], chunks: usize) {
        debug_assert!(ancestors.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(descendants.windows(2).all(|w| w[0].0 < w[1].0));
        self.ranges.clear();
        self.next_ancestor.clear();
        self.stack_offsets.clear();
        self.stack_pairs.clear();
        if descendants.is_empty() {
            return;
        }
        let n = descendants.len();
        let chunks = chunks.clamp(1, n);
        let base = n / chunks;
        let extra = n % chunks;
        let mut start = 0usize;
        let mut i = 0usize;
        // The live stack is the tail of `stack_pairs` starting at `bottom`:
        // earlier chunks' frozen copies live before it. Incremental a-pop
        // folding mutates only the live tail; freezing a seed copies the
        // tail forward so later pops cannot disturb recorded seeds.
        let mut bottom = 0usize;
        for c in 0..chunks {
            let len = base + usize::from(c < extra);
            let range = start..start + len;
            start += len;
            let d = descendants[range.start];
            while i < ancestors.len() && ancestors[i].0 < d.0 {
                let a = ancestors[i];
                while self.stack_pairs.len() > bottom
                    && self.stack_pairs.last().is_some_and(|&top| top.1 < a.1)
                {
                    self.stack_pairs.pop();
                }
                self.stack_pairs.push(a);
                i += 1;
            }
            // Freeze this chunk's seed: record the live tail, then start a
            // fresh live tail as a copy of it.
            self.ranges.push(range);
            self.next_ancestor.push(i);
            self.stack_offsets.push(bottom as u32);
            let live = self.stack_pairs.len();
            self.stack_pairs.extend_from_within(bottom..live);
            bottom = live;
        }
        // Drop the final (unfrozen) live tail; the last chunk's frozen
        // stack ends where it began. Close the CSR offsets.
        self.stack_pairs.truncate(bottom);
        self.stack_offsets.push(bottom as u32);
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the set holds no chunks.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The descendant index range of chunk `i`.
    pub fn range(&self, i: usize) -> std::ops::Range<usize> {
        self.ranges[i].clone()
    }

    /// The next unconsumed ancestor index entering chunk `i`.
    pub fn next_ancestor(&self, i: usize) -> usize {
        self.next_ancestor[i]
    }

    /// The seed stack (bottom to top) entering chunk `i`, borrowed from the
    /// flat pair column.
    pub fn stack(&self, i: usize) -> &[(u32, u32)] {
        let lo = self.stack_offsets[i] as usize;
        let hi = self.stack_offsets[i + 1] as usize;
        &self.stack_pairs[lo..hi]
    }
}

/// [`stack_tree_join_seeded`] writing into caller-owned buffers: resumes
/// the join from `(next_ancestor, seed_stack)` (e.g. from a
/// [`JoinSeedSet`]), using `stack` as the working stack and appending the
/// chunk's pairs to `out` (`stack` is reinitialized from the seed; `out`
/// is cleared).
pub fn stack_tree_join_resumed_into(
    ancestors: &[(u32, u32)],
    descendants: &[(u32, u32)],
    next_ancestor: usize,
    seed_stack: &[(u32, u32)],
    stack: &mut Vec<(u32, u32)>,
    out: &mut Vec<(u32, u32)>,
) {
    out.clear();
    stack.clear();
    stack.extend_from_slice(seed_stack);
    let mut i = next_ancestor;
    for &d in descendants {
        while i < ancestors.len() && ancestors[i].0 < d.0 {
            let a = ancestors[i];
            while stack.last().is_some_and(|&top| top.1 < a.1) {
                stack.pop();
            }
            stack.push(a);
            i += 1;
        }
        while stack.last().is_some_and(|&top| top.1 < d.1) {
            stack.pop();
        }
        for &a in stack.iter() {
            debug_assert!(is_ancestor(a, d));
            out.push((a.0, d.0));
        }
    }
}

/// Nested-loop theta-join: the SQL view of Example 2.1 evaluated naively.
pub fn nested_loop_join(ancestors: &[(u32, u32)], descendants: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for &a in ancestors {
        for &d in descendants {
            if is_ancestor(a, d) {
                out.push((a.0, d.0));
            }
        }
    }
    out
}

/// The closure baseline: materialize `Child⁺` from the `Child` relation and
/// filter it down to the candidate lists. `child` maps parent pre-index to
/// child pre-index (e.g. from [`crate::Xasr::child_view`]).
pub fn closure_join(
    child: &Relation,
    ancestors: &[(u32, u32)],
    descendants: &[(u32, u32)],
) -> Vec<(u32, u32)> {
    let closure = child.transitive_closure();
    let anc: std::collections::HashSet<u32> = ancestors.iter().map(|&(p, _)| p).collect();
    let desc: std::collections::HashSet<u32> = descendants.iter().map(|&(p, _)| p).collect();
    closure
        .iter()
        .filter(|&(a, d)| anc.contains(&a) && desc.contains(&d))
        .collect()
}

/// Work counters for the E12 experiment: how many comparisons / stack
/// operations each algorithm performs, to show the asymptotic separation
/// independent of wall-clock noise.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JoinCounters {
    /// Pair comparisons performed by the nested-loop join.
    pub nested_loop_comparisons: u64,
    /// Stack pushes + pops + output emissions of the stack join.
    pub stack_operations: u64,
    /// Tuples of the materialized `Child⁺` relation.
    pub closure_tuples: u64,
    /// Output pairs (identical across algorithms).
    pub output_pairs: u64,
}

/// Runs all three algorithms, checks they agree, and reports work counters.
pub fn structural_join_counters(
    child: &Relation,
    ancestors: &[(u32, u32)],
    descendants: &[(u32, u32)],
) -> JoinCounters {
    let mut fast = stack_tree_join(ancestors, descendants);
    let mut slow = nested_loop_join(ancestors, descendants);
    let mut closed = closure_join(child, ancestors, descendants);
    fast.sort_unstable();
    slow.sort_unstable();
    closed.sort_unstable();
    assert_eq!(fast, slow, "structural join algorithms disagree");
    assert_eq!(fast, closed, "closure join disagrees");
    JoinCounters {
        nested_loop_comparisons: (ancestors.len() * descendants.len()) as u64,
        stack_operations: (ancestors.len() + descendants.len()) as u64 * 2 + fast.len() as u64,
        closure_tuples: child.transitive_closure().len() as u64,
        output_pairs: fast.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xasr::Xasr;
    use treequery_tree::parse_term;

    fn sorted(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn joins_agree_on_figure2_tree() {
        let t = parse_term("a(b(a c) a(b d))").unwrap();
        let x = Xasr::from_tree(&t);
        let asr_a = x.label_list("a");
        let asr_b = x.label_list("b");
        let fast = sorted(stack_tree_join(asr_a, asr_b));
        let slow = sorted(nested_loop_join(asr_a, asr_b));
        let closed = sorted(closure_join(&x.child_view(), asr_a, asr_b));
        assert_eq!(fast, slow);
        assert_eq!(fast, closed);
        // a-ancestors of b-nodes: root(1) over b(2) and b(6); a(5) over b(6).
        assert_eq!(fast, vec![(1, 2), (1, 6), (5, 6)]);
    }

    #[test]
    fn self_pairs_are_excluded() {
        // Both lists are the same label: no node is its own ancestor.
        let t = parse_term("a(a(a))").unwrap();
        let x = Xasr::from_tree(&t);
        let list = x.label_list("a");
        let fast = sorted(stack_tree_join(list, list));
        assert_eq!(fast, vec![(1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn empty_inputs() {
        assert!(stack_tree_join(&[], &[(1, 1)]).is_empty());
        assert!(stack_tree_join(&[(1, 1)], &[]).is_empty());
        assert!(nested_loop_join(&[], &[]).is_empty());
    }

    #[test]
    fn deep_nesting_keeps_full_stack() {
        // Path of a's with a b at the bottom: every a is an ancestor of b.
        let t = parse_term("a(a(a(a(b))))").unwrap();
        let x = Xasr::from_tree(&t);
        let out = stack_tree_join(x.label_list("a"), x.label_list("b"));
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn siblings_produce_no_pairs() {
        let t = parse_term("r(a a a b b)").unwrap();
        let x = Xasr::from_tree(&t);
        let out = stack_tree_join(x.label_list("a"), x.label_list("b"));
        assert!(out.is_empty());
    }

    #[test]
    fn counters_agree_and_report_output() {
        let t = parse_term("a(b(a c) a(b d))").unwrap();
        let x = Xasr::from_tree(&t);
        let c = structural_join_counters(&x.child_view(), x.label_list("a"), x.label_list("b"));
        assert_eq!(c.output_pairs, 3);
        assert_eq!(c.nested_loop_comparisons, 6);
        assert!(c.closure_tuples >= c.output_pairs);
    }

    /// The chunked join must reproduce the sequential join byte for byte
    /// (same pairs, same order) when chunk outputs are concatenated in
    /// chunk order — the determinism claim the parallel executor rests on.
    #[test]
    fn seeded_chunks_concatenate_to_the_sequential_output() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(19);
        for trial in 0..15 {
            let n = 20 + trial * 17;
            let t = treequery_tree::random_recursive_tree(&mut rng, n, &["a", "b"]);
            let x = Xasr::from_tree(&t);
            let la = x.label_list("a");
            let lb = x.label_list("b");
            let sequential = stack_tree_join(la, lb);
            for chunks in [1usize, 2, 3, 7, n + 1] {
                let seeds = stack_join_seeds(la, lb, chunks);
                let mut stitched = Vec::new();
                for (range, seed) in &seeds {
                    stitched.extend(stack_tree_join_seeded(la, &lb[range.clone()], seed));
                }
                assert_eq!(stitched, sequential, "{chunks} chunks over {n} nodes");
            }
        }
    }

    #[test]
    fn seeds_handle_empty_and_single_chunk_inputs() {
        assert!(stack_join_seeds(&[(1, 5)], &[], 4).is_empty());
        let seeds = stack_join_seeds(&[(1, 5)], &[(2, 1)], 4);
        assert_eq!(seeds.len(), 1);
        assert_eq!(seeds[0].0, 0..1);
        // The prepass eagerly folds the ancestor prefix `{a | a.pre < 2}`.
        assert_eq!(
            seeds[0].1,
            JoinSeed {
                next_ancestor: 1,
                stack: vec![(1, 5)],
            }
        );
        assert_eq!(
            stack_tree_join_seeded(&[(1, 5)], &[(2, 1)], &seeds[0].1),
            vec![(1, 2)]
        );
    }

    /// The flattened [`JoinSeedSet`] must agree with the allocating
    /// [`stack_join_seeds`] chunk by chunk, and resuming from its borrowed
    /// slices (with reused working buffers, dirty across iterations) must
    /// stitch to the sequential output.
    #[test]
    fn seed_set_matches_allocating_seeds_and_stitches() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(23);
        let mut set = JoinSeedSet::new();
        let mut stack = Vec::new();
        let mut chunk_out = Vec::new();
        for trial in 0..10 {
            let n = 25 + trial * 13;
            let t = treequery_tree::random_recursive_tree(&mut rng, n, &["a", "b"]);
            let x = Xasr::from_tree(&t);
            let la = x.label_list("a");
            let lb = x.label_list("b");
            let sequential = stack_tree_join(la, lb);
            for chunks in [1usize, 2, 3, 7, n + 1] {
                let reference = stack_join_seeds(la, lb, chunks);
                set.build(la, lb, chunks);
                assert_eq!(set.len(), reference.len());
                let mut stitched = Vec::new();
                for (i, (range, seed)) in reference.iter().enumerate() {
                    assert_eq!(set.range(i), *range, "chunk {i} of {chunks}");
                    assert_eq!(set.next_ancestor(i), seed.next_ancestor);
                    assert_eq!(set.stack(i), seed.stack.as_slice());
                    stack_tree_join_resumed_into(
                        la,
                        &lb[set.range(i)],
                        set.next_ancestor(i),
                        set.stack(i),
                        &mut stack,
                        &mut chunk_out,
                    );
                    stitched.extend_from_slice(&chunk_out);
                }
                assert_eq!(stitched, sequential, "{chunks} chunks over {n} nodes");
            }
        }
    }

    #[test]
    fn seed_set_handles_empty_input_and_into_reuses_buffers() {
        let mut set = JoinSeedSet::new();
        set.build(&[(1, 5)], &[], 4);
        assert!(set.is_empty());
        // Dirty buffers are fully reinitialized by the _into entry points.
        let mut stack = vec![(9, 9); 8];
        let mut out = vec![(7, 7); 8];
        stack_tree_join_into(&[(1, 5)], &[(2, 1)], &mut stack, &mut out);
        assert_eq!(out, vec![(1, 2)]);
        stack_tree_join_resumed_into(&[(1, 5)], &[(2, 1)], 1, &[(1, 5)], &mut stack, &mut out);
        assert_eq!(out, vec![(1, 2)]);
    }

    /// Differential test on random trees: the fast join equals the naive
    /// definition for all label pairs.
    #[test]
    fn random_trees_differential() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let t = treequery_tree::random_recursive_tree(&mut rng, 60, &["a", "b", "c"]);
            let x = Xasr::from_tree(&t);
            for anc in ["a", "b", "c"] {
                for desc in ["a", "b", "c"] {
                    let la = x.label_list(anc);
                    let ld = x.label_list(desc);
                    assert_eq!(
                        sorted(stack_tree_join(la, ld)),
                        sorted(nested_loop_join(la, ld)),
                        "labels {anc}/{desc} on {t}"
                    );
                }
            }
        }
    }
}
