//! The extended access support relation (XASR) of Fiebig & Moerkotte \[27\],
//! as presented in Figure 2 and Example 2.1 of the paper.
//!
//! One row per node: the `<pre`-index, the `<post`-index, the `<pre`-index
//! of the parent (`NULL` for the root), and the node's label. The
//! `descendant` and `child` "SQL views" of Example 2.1 are provided as
//! methods producing [`Relation`]s over pre-indexes.
//!
//! Beyond the row view, construction precomputes the columnar access paths
//! the structural joins scan: per-label `(pre, post)` posting lists in one
//! flat pre-sorted column ([`Xasr::label_list`] returns a borrowed slice),
//! and a per-label bitmap over pre-indexes ([`Xasr::label_bitmap`]) for
//! O(1) "does pre-index p carry label a" probes.

use std::collections::HashMap;
use std::fmt;

use treequery_tree::{EditDelta, EditKind, Tree};

use crate::relation::Relation;

/// One XASR row. Indexes are 1-based to match the paper's Figure 2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XasrRow {
    /// `<pre`-index of the node (1-based).
    pub pre: u32,
    /// `<post`-index of the node (1-based).
    pub post: u32,
    /// `<pre`-index of the parent; `None` (SQL `NULL`) for the root.
    pub parent_pre: Option<u32>,
    /// The node's (primary) label.
    pub label: String,
}

/// The XASR of a tree: rows sorted by pre-index, plus columnar per-label
/// indexes (flat posting lists and bitmaps) built once at construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xasr {
    rows: Vec<XasrRow>,
    /// Distinct labels → dense index into the CSR columns below.
    label_index: HashMap<String, u32>,
    /// CSR offsets into `label_postings`, one entry per distinct label + 1.
    label_offsets: Vec<u32>,
    /// `(pre, post)` pairs (1-based), pre-sorted within each label.
    label_postings: Vec<(u32, u32)>,
    /// Per-label bitmaps over pre-indexes: label `i` owns the words
    /// `bitmap_words[i*words_per_label .. (i+1)*words_per_label]`, with bit
    /// `pre-1` set iff the row at that pre-index carries the label.
    bitmap_words: Vec<u64>,
    words_per_label: usize,
}

impl Xasr {
    /// Builds the XASR of a tree in O(n), including the per-label posting
    /// lists and bitmap indexes.
    pub fn from_tree(t: &Tree) -> Self {
        let rows: Vec<XasrRow> = t
            .pre_order()
            .map(|v| XasrRow {
                pre: t.pre(v) + 1,
                post: t.post(v) + 1,
                parent_pre: t.parent(v).map(|p| t.pre(p) + 1),
                label: t.label_name(v).to_owned(),
            })
            .collect();

        // Dense label ids in first-appearance (document) order.
        let mut label_index: HashMap<String, u32> = HashMap::new();
        for r in &rows {
            let next = label_index.len() as u32;
            label_index.entry(r.label.clone()).or_insert(next);
        }
        let num_labels = label_index.len();

        // Counting sort of the rows into per-label posting runs; rows are
        // visited in pre order, so each run stays pre-sorted.
        let mut label_offsets = vec![0u32; num_labels + 1];
        for r in &rows {
            label_offsets[label_index[&r.label] as usize + 1] += 1;
        }
        for i in 0..num_labels {
            label_offsets[i + 1] += label_offsets[i];
        }
        let mut cursor = label_offsets.clone();
        let mut label_postings = vec![(0u32, 0u32); rows.len()];
        let words_per_label = rows.len().div_ceil(64);
        let mut bitmap_words = vec![0u64; num_labels * words_per_label];
        for r in &rows {
            let lab = label_index[&r.label] as usize;
            let slot = &mut cursor[lab];
            label_postings[*slot as usize] = (r.pre, r.post);
            *slot += 1;
            let bit = (r.pre - 1) as usize;
            bitmap_words[lab * words_per_label + bit / 64] |= 1u64 << (bit % 64);
        }

        Self {
            rows,
            label_index,
            label_offsets,
            label_postings,
            bitmap_words,
            words_per_label,
        }
    }

    /// The rows, sorted by pre-index.
    pub fn rows(&self) -> &[XasrRow] {
        &self.rows
    }

    /// Number of rows (= number of nodes).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Example 2.1's `descendant` view:
    ///
    /// ```sql
    /// SELECT r1.pre, r2.pre FROM R r1, R r2
    /// WHERE r1.pre < r2.pre AND r2.post < r1.post;
    /// ```
    ///
    /// Evaluated as written — a theta-join by nested loop. The efficient
    /// alternative is [`crate::stack_tree_join`].
    pub fn descendant_view(&self) -> Relation {
        let mut out = Vec::new();
        for r1 in &self.rows {
            for r2 in &self.rows {
                if r1.pre < r2.pre && r2.post < r1.post {
                    out.push((r1.pre, r2.pre));
                }
            }
        }
        Relation::from_pairs(out)
    }

    /// Example 2.1's `child` view:
    ///
    /// ```sql
    /// SELECT parent_pre, pre FROM R WHERE parent_pre IS NOT NULL;
    /// ```
    pub fn child_view(&self) -> Relation {
        Relation::from_pairs(
            self.rows
                .iter()
                .filter_map(|r| r.parent_pre.map(|p| (p, r.pre)))
                .collect(),
        )
    }

    /// The `(pre, post)` pairs of rows carrying `label` (a "label list",
    /// the input unit of structural joins), sorted by pre — a borrowed
    /// slice of the precomputed posting column, never a fresh `Vec`.
    pub fn label_list(&self, label: &str) -> &[(u32, u32)] {
        let Some(&i) = self.label_index.get(label) else {
            return &[];
        };
        let lo = self.label_offsets[i as usize] as usize;
        let hi = self.label_offsets[i as usize + 1] as usize;
        &self.label_postings[lo..hi]
    }

    /// The bitmap over pre-indexes for `label`, or `None` if the label
    /// does not occur.
    pub fn label_bitmap(&self, label: &str) -> Option<LabelBitmap<'_>> {
        let &i = self.label_index.get(label)?;
        let lo = i as usize * self.words_per_label;
        Some(LabelBitmap {
            words: &self.bitmap_words[lo..lo + self.words_per_label],
        })
    }

    /// O(1) probe: does the row at (1-based) `pre` carry `label`?
    pub fn has_label_at_pre(&self, label: &str, pre: u32) -> bool {
        self.label_bitmap(label)
            .is_some_and(|b| b.contains_pre(pre))
    }

    /// Behavioral equality: `true` iff the two tables answer every probe
    /// identically — same rows, postings, and bitmap membership per
    /// label. Weaker than `==` on purpose: a patched table may intern
    /// label ids in a different order (or retain empty runs) than a
    /// freshly built one, and neither difference is observable through
    /// the query API.
    pub fn equiv(&self, other: &Xasr) -> bool {
        if self.rows != other.rows {
            return false;
        }
        let labels: std::collections::BTreeSet<&str> = self
            .rows
            .iter()
            .chain(other.rows.iter())
            .map(|r| r.label.as_str())
            .collect();
        labels.into_iter().all(|label| {
            self.label_list(label) == other.label_list(label)
                && self.rows.iter().all(|r| {
                    self.has_label_at_pre(label, r.pre) == other.has_label_at_pre(label, r.pre)
                })
        })
    }

    /// Patches the table in place after one tree edit. `t` is the
    /// *post-edit* tree and `delta` the description the edit returned.
    ///
    /// * **relabel** — one row update, one posting move between the two
    ///   touched runs, two bit flips;
    /// * **insert** — one row splice plus constant-shift repairs of the
    ///   pre/post columns and a bit-insertion across the bitmaps (the
    ///   bitmaps are rebuilt from the patched postings only when the
    ///   word width grows, every 64th insertion);
    /// * **delete** — the subtree's rows occupy contiguous pre and post
    ///   ranges, so survivors shift by a constant; postings are filtered
    ///   per run and the bitmaps rebuilt from them (documented O(n/64)
    ///   policy — a per-label bit *extraction* saves nothing over it).
    ///
    /// A refrozen delta falls back to [`Xasr::from_tree`].
    pub fn apply_edit(&mut self, t: &Tree, delta: &EditDelta) {
        if delta.refroze {
            *self = Xasr::from_tree(t);
            return;
        }
        match delta.kind {
            EditKind::Relabel => {
                let (old, new) = (
                    delta.old_label.expect("relabel carries old label"),
                    delta.new_label.expect("relabel carries new label"),
                );
                if old == new {
                    return;
                }
                let pre1 = delta.pre_range.0 + 1;
                let old_name = self.rows[delta.pre_range.0 as usize].label.clone();
                let new_name = t.interner().name(new).to_owned();
                let row = &mut self.rows[delta.pre_range.0 as usize];
                let post1 = row.post;
                row.label = new_name.clone();
                let old_id = self.label_index[&old_name] as usize;
                self.remove_posting(old_id, pre1);
                let new_id = self.ensure_label(&new_name);
                self.insert_posting(new_id, (pre1, post1));
                let wb = (pre1 - 1) as usize;
                self.bitmap_words[old_id * self.words_per_label + wb / 64] &= !(1u64 << (wb % 64));
                self.bitmap_words[new_id * self.words_per_label + wb / 64] |= 1u64 << (wb % 64);
            }
            EditKind::Insert => {
                let node = delta.node.expect("insert carries the new node");
                let (pre1, post1) = (delta.pre_range.0 + 1, delta.post_range.0 + 1);
                for r in &mut self.rows {
                    if r.pre >= pre1 {
                        r.pre += 1;
                    }
                    if r.post >= post1 {
                        r.post += 1;
                    }
                    if let Some(pp) = &mut r.parent_pre {
                        if *pp >= pre1 {
                            *pp += 1;
                        }
                    }
                }
                let label = t.label_name(node).to_owned();
                self.rows.insert(
                    (pre1 - 1) as usize,
                    XasrRow {
                        pre: pre1,
                        post: post1,
                        parent_pre: delta.parent.map(|p| t.pre(p) + 1),
                        label: label.clone(),
                    },
                );
                for p in &mut self.label_postings {
                    if p.0 >= pre1 {
                        p.0 += 1;
                    }
                    if p.1 >= post1 {
                        p.1 += 1;
                    }
                }
                let lab = self.ensure_label(&label);
                self.insert_posting(lab, (pre1, post1));
                let want_words = self.rows.len().div_ceil(64);
                if want_words != self.words_per_label {
                    self.rebuild_bitmaps();
                } else {
                    // Splice a zero bit at pre1-1 into every label block,
                    // then set it in the new node's label.
                    let bit = (pre1 - 1) as usize;
                    let (wb, bb) = (bit / 64, bit % 64);
                    let low_mask = (1u64 << bb) - 1;
                    let w = self.words_per_label;
                    for block in self.bitmap_words.chunks_exact_mut(w) {
                        let low = block[wb] & low_mask;
                        let high = block[wb] & !low_mask;
                        let mut carry = high >> 63;
                        block[wb] = low | (high << 1);
                        for word in &mut block[wb + 1..] {
                            let next = *word >> 63;
                            *word = (*word << 1) | carry;
                            carry = next;
                        }
                        // n+1 still fits in w*64 bits, so nothing falls off.
                        debug_assert_eq!(carry, 0);
                    }
                    self.bitmap_words[lab * w + wb] |= 1u64 << bb;
                }
                #[cfg(debug_assertions)]
                self.debug_check_bitmaps();
            }
            EditKind::Delete => {
                let k = delta.removed.len() as u32;
                let (i0, i1) = (delta.pre_range.0 + 1, delta.pre_range.1 + 1);
                let p1 = delta.post_range.1 + 1;
                self.rows.drain((i0 - 1) as usize..=(i1 - 1) as usize);
                for r in &mut self.rows {
                    if r.pre > i1 {
                        r.pre -= k;
                    }
                    if r.post > p1 {
                        r.post -= k;
                    }
                    if let Some(pp) = &mut r.parent_pre {
                        if *pp > i1 {
                            *pp -= k;
                        }
                    }
                }
                // Filter each posting run in place; runs keep their order.
                let num_labels = self.label_index.len();
                let mut out = Vec::with_capacity(self.label_postings.len());
                let mut offsets = Vec::with_capacity(num_labels + 1);
                offsets.push(0u32);
                for lab in 0..num_labels {
                    let lo = self.label_offsets[lab] as usize;
                    let hi = self.label_offsets[lab + 1] as usize;
                    for &(pre, post) in &self.label_postings[lo..hi] {
                        if pre < i0 || pre > i1 {
                            out.push((
                                if pre > i1 { pre - k } else { pre },
                                if post > p1 { post - k } else { post },
                            ));
                        }
                    }
                    offsets.push(out.len() as u32);
                }
                self.label_postings = out;
                self.label_offsets = offsets;
                self.rebuild_bitmaps();
            }
        }
    }

    /// Dense id for `label`, adding an empty run/bitmap block if new.
    fn ensure_label(&mut self, label: &str) -> usize {
        if let Some(&i) = self.label_index.get(label) {
            return i as usize;
        }
        let i = self.label_index.len();
        self.label_index.insert(label.to_owned(), i as u32);
        let last = *self.label_offsets.last().expect("CSR is non-empty");
        self.label_offsets.push(last);
        self.bitmap_words
            .extend(std::iter::repeat_n(0u64, self.words_per_label));
        i
    }

    fn insert_posting(&mut self, lab: usize, pair: (u32, u32)) {
        let lo = self.label_offsets[lab] as usize;
        let hi = self.label_offsets[lab + 1] as usize;
        let pos = self.label_postings[lo..hi].partition_point(|p| p.0 < pair.0);
        self.label_postings.insert(lo + pos, pair);
        for o in &mut self.label_offsets[lab + 1..] {
            *o += 1;
        }
    }

    fn remove_posting(&mut self, lab: usize, pre: u32) {
        let lo = self.label_offsets[lab] as usize;
        let hi = self.label_offsets[lab + 1] as usize;
        let pos = self.label_postings[lo..hi].partition_point(|p| p.0 < pre);
        debug_assert_eq!(self.label_postings[lo + pos].0, pre);
        self.label_postings.remove(lo + pos);
        for o in &mut self.label_offsets[lab + 1..] {
            *o -= 1;
        }
    }

    fn rebuild_bitmaps(&mut self) {
        self.words_per_label = self.rows.len().div_ceil(64);
        self.bitmap_words = vec![0u64; self.label_index.len() * self.words_per_label];
        for lab in 0..self.label_index.len() {
            let lo = self.label_offsets[lab] as usize;
            let hi = self.label_offsets[lab + 1] as usize;
            for &(pre, _) in &self.label_postings[lo..hi] {
                let bit = (pre - 1) as usize;
                self.bitmap_words[lab * self.words_per_label + bit / 64] |= 1u64 << (bit % 64);
            }
        }
    }

    #[cfg(debug_assertions)]
    fn debug_check_bitmaps(&self) {
        for (label, &lab) in &self.label_index {
            let lo = self.label_offsets[lab as usize] as usize;
            let hi = self.label_offsets[lab as usize + 1] as usize;
            let from_postings: std::collections::BTreeSet<u32> =
                self.label_postings[lo..hi].iter().map(|p| p.0).collect();
            for r in &self.rows {
                assert_eq!(
                    self.has_label_at_pre(label, r.pre),
                    from_postings.contains(&r.pre),
                    "bitmap drift for {label} at pre {}",
                    r.pre
                );
            }
        }
    }
}

/// A borrowed per-label bitmap over (1-based) pre-indexes.
#[derive(Clone, Copy, Debug)]
pub struct LabelBitmap<'a> {
    words: &'a [u64],
}

impl LabelBitmap<'_> {
    /// Whether the row at (1-based) `pre` carries the label.
    pub fn contains_pre(&self, pre: u32) -> bool {
        if pre == 0 {
            return false;
        }
        let bit = (pre - 1) as usize;
        self.words
            .get(bit / 64)
            .is_some_and(|w| w & (1u64 << (bit % 64)) != 0)
    }

    /// Number of pre-indexes carrying the label.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

impl fmt::Display for Xasr {
    /// Renders the table in the layout of Figure 2 (b).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>4} {:>5} {:>10} {:>4}",
            "pre", "post", "parent_pre", "lab"
        )?;
        for r in &self.rows {
            let parent = r
                .parent_pre
                .map_or_else(|| "\u{22A5}".to_owned(), |p| p.to_string());
            writeln!(
                f,
                "{:>4} {:>5} {:>10} {:>4}",
                r.pre, r.post, parent, r.label
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treequery_tree::parse_term;

    /// Figure 2: the tree `1:7:a(2:3:b(3:1:a 4:2:c) 5:6:a(6:4:b 7:5:d))` and
    /// its XASR table, cell by cell.
    #[test]
    fn figure2_xasr_table() {
        let t = parse_term("a(b(a c) a(b d))").unwrap();
        let x = Xasr::from_tree(&t);
        let expected = [
            (1, 7, None, "a"),
            (2, 3, Some(1), "b"),
            (3, 1, Some(2), "a"),
            (4, 2, Some(2), "c"),
            (5, 6, Some(1), "a"),
            (6, 4, Some(5), "b"),
            (7, 5, Some(5), "d"),
        ];
        assert_eq!(x.len(), expected.len());
        for (row, &(pre, post, parent, lab)) in x.rows().iter().zip(&expected) {
            assert_eq!(row.pre, pre);
            assert_eq!(row.post, post);
            assert_eq!(row.parent_pre, parent);
            assert_eq!(row.label, lab);
        }
    }

    #[test]
    fn descendant_view_matches_ancestor_relation() {
        let t = parse_term("a(b(a c) a(b d))").unwrap();
        let x = Xasr::from_tree(&t);
        let desc = x.descendant_view();
        for u in t.nodes() {
            for v in t.nodes() {
                assert_eq!(
                    desc.contains((t.pre(u) + 1, t.pre(v) + 1)),
                    t.is_ancestor(u, v),
                    "({u:?},{v:?})"
                );
            }
        }
        // Root is an ancestor of all 6 other nodes; the two inner nodes of
        // 2 descendants each: 6 + 2 + 2 = 10 pairs.
        assert_eq!(desc.len(), 10);
    }

    #[test]
    fn child_view_matches_parent_links() {
        let t = parse_term("a(b(a c) a(b d))").unwrap();
        let x = Xasr::from_tree(&t);
        let child = x.child_view();
        assert_eq!(child.len(), 6);
        for u in t.nodes() {
            for v in t.nodes() {
                assert_eq!(
                    child.contains((t.pre(u) + 1, t.pre(v) + 1)),
                    t.parent(v) == Some(u)
                );
            }
        }
    }

    #[test]
    fn label_lists_are_pre_sorted() {
        let t = parse_term("a(b(a c) a(b d))").unwrap();
        let x = Xasr::from_tree(&t);
        let asr = x.label_list("a");
        assert_eq!(asr, vec![(1, 7), (3, 1), (5, 6)]);
        assert!(x.label_list("zzz").is_empty());
    }

    #[test]
    fn label_list_is_borrowed_and_stable() {
        let t = parse_term("a(b(a c) a(b d))").unwrap();
        let x = Xasr::from_tree(&t);
        // Two calls return the same slice of the posting column.
        let first: *const (u32, u32) = x.label_list("a").as_ptr();
        let second: *const (u32, u32) = x.label_list("a").as_ptr();
        assert_eq!(first, second);
    }

    #[test]
    fn bitmap_agrees_with_row_scan() {
        let t = parse_term("a(b(a c) a(b d))").unwrap();
        let x = Xasr::from_tree(&t);
        for label in ["a", "b", "c", "d", "zzz"] {
            for r in x.rows() {
                assert_eq!(
                    x.has_label_at_pre(label, r.pre),
                    r.label == label,
                    "{label} at pre {}",
                    r.pre
                );
            }
        }
        let bm = x.label_bitmap("a").unwrap();
        assert_eq!(bm.count(), 3);
        assert!(!bm.contains_pre(0));
        assert!(!bm.contains_pre(1000));
        assert!(x.label_bitmap("zzz").is_none());
    }

    /// Behavioral equality: a patched table must answer every probe the
    /// way a freshly built one does (internal label-id order and retained
    /// empty runs may legitimately differ).
    fn assert_xasr_equiv(patched: &Xasr, fresh: &Xasr) {
        assert_eq!(patched.rows(), fresh.rows());
        let labels: std::collections::BTreeSet<&str> = patched
            .rows()
            .iter()
            .chain(fresh.rows())
            .map(|r| r.label.as_str())
            .collect();
        for label in labels {
            assert_eq!(
                patched.label_list(label),
                fresh.label_list(label),
                "postings for {label}"
            );
            for r in fresh.rows() {
                assert_eq!(
                    patched.has_label_at_pre(label, r.pre),
                    fresh.has_label_at_pre(label, r.pre),
                    "{label} bit at pre {}",
                    r.pre
                );
            }
            assert_eq!(
                patched.label_bitmap(label).map(|b| b.count()).unwrap_or(0),
                fresh.label_bitmap(label).map(|b| b.count()).unwrap_or(0),
                "bit count for {label}"
            );
        }
    }

    #[test]
    fn apply_edit_matches_from_tree_per_op() {
        use treequery_tree::EditableTree;
        let mut et = EditableTree::new(parse_term("a(b(a c) a(b d))").unwrap());
        let mut x = Xasr::from_tree(et.tree());

        let (_, delta) = et.insert_leaf(et.tree().node_at_pre(1), 1, "e");
        x.apply_edit(et.tree(), &delta);
        assert_xasr_equiv(&x, &Xasr::from_tree(et.tree()));

        let delta = et.relabel(et.tree().node_at_pre(3), "b");
        x.apply_edit(et.tree(), &delta);
        assert_xasr_equiv(&x, &Xasr::from_tree(et.tree()));

        let delta = et.delete_subtree(et.tree().node_at_pre(1));
        x.apply_edit(et.tree(), &delta);
        assert_xasr_equiv(&x, &Xasr::from_tree(et.tree()));
    }

    #[test]
    fn apply_edit_matches_from_tree_on_random_scripts() {
        use treequery_tree::{EditOp, EditableTree};
        let mut et = EditableTree::new(parse_term("a(b(a c) a(b d))").unwrap());
        let mut x = Xasr::from_tree(et.tree());
        let mut state = 0x243F6A8885A308D3u64;
        let labels = ["a", "b", "c", "d", "e"];
        for _ in 0..300 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let n = et.tree().len() as u32;
            let op = match state % 3 {
                0 => EditOp::InsertLeaf {
                    parent_pre: (state >> 8) as u32 % n,
                    child_idx: (state >> 40) as u32 % 4,
                    label: labels[(state >> 16) as usize % labels.len()].to_owned(),
                },
                1 if n > 1 => EditOp::DeleteSubtree {
                    pre: (state >> 8) as u32 % n,
                },
                _ => EditOp::Relabel {
                    pre: (state >> 8) as u32 % n,
                    label: labels[(state >> 16) as usize % labels.len()].to_owned(),
                },
            };
            if let Some(delta) = et.apply(&op) {
                x.apply_edit(et.tree(), &delta);
            }
        }
        assert_xasr_equiv(&x, &Xasr::from_tree(et.tree()));
    }

    #[test]
    fn apply_edit_crosses_word_boundaries() {
        use treequery_tree::EditableTree;
        // Push the node count across the 64-bit bitmap word boundary and
        // back, exercising the rebuild path and the splice path.
        let mut et = EditableTree::new(parse_term("a(b)").unwrap());
        let mut x = Xasr::from_tree(et.tree());
        for i in 0..70 {
            let root = et.tree().root();
            let (_, delta) = et.insert_leaf(root, 0, if i % 2 == 0 { "b" } else { "c" });
            x.apply_edit(et.tree(), &delta);
        }
        assert_xasr_equiv(&x, &Xasr::from_tree(et.tree()));
        for _ in 0..20 {
            let v = et.tree().node_at_pre(1);
            let delta = et.delete_subtree(v);
            x.apply_edit(et.tree(), &delta);
        }
        assert_xasr_equiv(&x, &Xasr::from_tree(et.tree()));
    }

    #[test]
    fn display_matches_figure2_layout() {
        let t = parse_term("a(b)").unwrap();
        let x = Xasr::from_tree(&t);
        let text = x.to_string();
        assert!(text.contains("pre"));
        assert!(text.contains('\u{22A5}'), "root parent printed as ⊥");
    }
}
