//! The extended access support relation (XASR) of Fiebig & Moerkotte \[27\],
//! as presented in Figure 2 and Example 2.1 of the paper.
//!
//! One row per node: the `<pre`-index, the `<post`-index, the `<pre`-index
//! of the parent (`NULL` for the root), and the node's label. The
//! `descendant` and `child` "SQL views" of Example 2.1 are provided as
//! methods producing [`Relation`]s over pre-indexes.

use std::fmt;

use treequery_tree::Tree;

use crate::relation::Relation;

/// One XASR row. Indexes are 1-based to match the paper's Figure 2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XasrRow {
    /// `<pre`-index of the node (1-based).
    pub pre: u32,
    /// `<post`-index of the node (1-based).
    pub post: u32,
    /// `<pre`-index of the parent; `None` (SQL `NULL`) for the root.
    pub parent_pre: Option<u32>,
    /// The node's (primary) label.
    pub label: String,
}

/// The XASR of a tree: rows sorted by pre-index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xasr {
    rows: Vec<XasrRow>,
}

impl Xasr {
    /// Builds the XASR of a tree in O(n).
    pub fn from_tree(t: &Tree) -> Self {
        let rows = t
            .pre_order()
            .map(|v| XasrRow {
                pre: t.pre(v) + 1,
                post: t.post(v) + 1,
                parent_pre: t.parent(v).map(|p| t.pre(p) + 1),
                label: t.label_name(v).to_owned(),
            })
            .collect();
        Self { rows }
    }

    /// The rows, sorted by pre-index.
    pub fn rows(&self) -> &[XasrRow] {
        &self.rows
    }

    /// Number of rows (= number of nodes).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Example 2.1's `descendant` view:
    ///
    /// ```sql
    /// SELECT r1.pre, r2.pre FROM R r1, R r2
    /// WHERE r1.pre < r2.pre AND r2.post < r1.post;
    /// ```
    ///
    /// Evaluated as written — a theta-join by nested loop. The efficient
    /// alternative is [`crate::stack_tree_join`].
    pub fn descendant_view(&self) -> Relation {
        let mut out = Vec::new();
        for r1 in &self.rows {
            for r2 in &self.rows {
                if r1.pre < r2.pre && r2.post < r1.post {
                    out.push((r1.pre, r2.pre));
                }
            }
        }
        Relation::from_pairs(out)
    }

    /// Example 2.1's `child` view:
    ///
    /// ```sql
    /// SELECT parent_pre, pre FROM R WHERE parent_pre IS NOT NULL;
    /// ```
    pub fn child_view(&self) -> Relation {
        Relation::from_pairs(
            self.rows
                .iter()
                .filter_map(|r| r.parent_pre.map(|p| (p, r.pre)))
                .collect(),
        )
    }

    /// The pre-indexes of rows carrying `label` (a "label list", the input
    /// unit of structural joins), sorted by pre.
    pub fn label_list(&self, label: &str) -> Vec<(u32, u32)> {
        self.rows
            .iter()
            .filter(|r| r.label == label)
            .map(|r| (r.pre, r.post))
            .collect()
    }
}

impl fmt::Display for Xasr {
    /// Renders the table in the layout of Figure 2 (b).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>4} {:>5} {:>10} {:>4}",
            "pre", "post", "parent_pre", "lab"
        )?;
        for r in &self.rows {
            let parent = r
                .parent_pre
                .map_or_else(|| "\u{22A5}".to_owned(), |p| p.to_string());
            writeln!(
                f,
                "{:>4} {:>5} {:>10} {:>4}",
                r.pre, r.post, parent, r.label
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treequery_tree::parse_term;

    /// Figure 2: the tree `1:7:a(2:3:b(3:1:a 4:2:c) 5:6:a(6:4:b 7:5:d))` and
    /// its XASR table, cell by cell.
    #[test]
    fn figure2_xasr_table() {
        let t = parse_term("a(b(a c) a(b d))").unwrap();
        let x = Xasr::from_tree(&t);
        let expected = [
            (1, 7, None, "a"),
            (2, 3, Some(1), "b"),
            (3, 1, Some(2), "a"),
            (4, 2, Some(2), "c"),
            (5, 6, Some(1), "a"),
            (6, 4, Some(5), "b"),
            (7, 5, Some(5), "d"),
        ];
        assert_eq!(x.len(), expected.len());
        for (row, &(pre, post, parent, lab)) in x.rows().iter().zip(&expected) {
            assert_eq!(row.pre, pre);
            assert_eq!(row.post, post);
            assert_eq!(row.parent_pre, parent);
            assert_eq!(row.label, lab);
        }
    }

    #[test]
    fn descendant_view_matches_ancestor_relation() {
        let t = parse_term("a(b(a c) a(b d))").unwrap();
        let x = Xasr::from_tree(&t);
        let desc = x.descendant_view();
        for u in t.nodes() {
            for v in t.nodes() {
                assert_eq!(
                    desc.contains((t.pre(u) + 1, t.pre(v) + 1)),
                    t.is_ancestor(u, v),
                    "({u:?},{v:?})"
                );
            }
        }
        // Root is an ancestor of all 6 other nodes; the two inner nodes of
        // 2 descendants each: 6 + 2 + 2 = 10 pairs.
        assert_eq!(desc.len(), 10);
    }

    #[test]
    fn child_view_matches_parent_links() {
        let t = parse_term("a(b(a c) a(b d))").unwrap();
        let x = Xasr::from_tree(&t);
        let child = x.child_view();
        assert_eq!(child.len(), 6);
        for u in t.nodes() {
            for v in t.nodes() {
                assert_eq!(
                    child.contains((t.pre(u) + 1, t.pre(v) + 1)),
                    t.parent(v) == Some(u)
                );
            }
        }
    }

    #[test]
    fn label_lists_are_pre_sorted() {
        let t = parse_term("a(b(a c) a(b d))").unwrap();
        let x = Xasr::from_tree(&t);
        let asr = x.label_list("a");
        assert_eq!(asr, vec![(1, 7), (3, 1), (5, 6)]);
        assert!(x.label_list("zzz").is_empty());
    }

    #[test]
    fn display_matches_figure2_layout() {
        let t = parse_term("a(b)").unwrap();
        let x = Xasr::from_tree(&t);
        let text = x.to_string();
        assert!(text.contains("pre"));
        assert!(text.contains('\u{22A5}'), "root parent printed as ⊥");
    }
}
