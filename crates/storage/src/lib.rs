#![warn(missing_docs)]

//! Relational storage for trees (Section 2 of the paper).
//!
//! Implements the *extended access support relation* (XASR) encoding of
//! Figure 2 / Example 2.1 — one row `(pre, post, parent_pre, label)` per
//! node — together with generic sorted binary relations and the structural
//! join algorithms that make the encoding worthwhile:
//!
//! * the stack-based merge structural join of Al-Khalifa et al. \[2\]
//!   (`O(input + output)`),
//! * a nested-loop baseline, and
//! * the "materialize `Child⁺` and join" baseline the paper argues against
//!   ("clearly better than … storing a quadratically-sized `Child⁺`
//!   relation").

mod relation;
mod structural_join;
mod xasr;

pub use relation::Relation;
pub use structural_join::{
    closure_join, nested_loop_join, stack_join_seeds, stack_tree_join, stack_tree_join_into,
    stack_tree_join_resumed_into, stack_tree_join_seeded, structural_join_counters, JoinCounters,
    JoinSeed, JoinSeedSet,
};
pub use xasr::{LabelBitmap, Xasr, XasrRow};
