//! Integration tests for the workload observatory: flight-recorder
//! capture through the public `Engine` API, the slow-query log, the
//! canonical Chrome trace golden, and ring eviction under concurrent
//! `eval_batch`.
//!
//! The flight recorder is process-global, so every test (and every
//! proptest case) holds [`flight_lock`] for its full install/uninstall
//! window.

use std::sync::{Mutex, MutexGuard, OnceLock};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery_core::obs::flight::{self, FlightConfig};
use treequery_core::obs::{parse_json, traceexport};
use treequery_core::tree::{random_recursive_tree, Tree};
use treequery_core::{Engine, EngineConfig, PlannerConfig, Query};

fn flight_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn small_tree(seed: u64, nodes: usize) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    random_recursive_tree(&mut rng, nodes, &["a", "b", "c", "d"])
}

/// An engine with the worker count pinned (so `TREEQUERY_WORKERS` cannot
/// perturb the tests) and an optional per-engine slow threshold.
fn engine_with(tree: &Tree, workers: usize, slow_ms: Option<u64>) -> Engine<'_> {
    Engine::with_config(
        tree,
        EngineConfig {
            planner: PlannerConfig {
                workers: Some(workers),
                slow_query_ms: slow_ms,
                ..PlannerConfig::default()
            },
            ..EngineConfig::default()
        },
    )
}

#[test]
fn records_capture_query_strategy_rows_and_cache() {
    let _guard = flight_lock();
    flight::install(FlightConfig::default());
    let tree = small_tree(7, 400);
    let engine = engine_with(&tree, 1, None);
    let rows = engine.xpath("//a/b").unwrap().len() as u64;
    engine.xpath("//a/b").unwrap();
    engine
        .eval(&Query::cq("q(x) :- child(x, y), label(y, b)."))
        .unwrap();
    let recent = flight::recent();
    flight::uninstall();

    assert_eq!(recent.len(), 3);
    let first = &recent[0];
    assert_eq!(first.query, "//a/b");
    assert_eq!(first.source, "xpath");
    assert_eq!(first.rows, rows);
    assert!(!first.strategy.is_empty(), "strategy recorded");
    assert!(!first.rationale.is_empty(), "planner rationale recorded");
    assert!(!first.cache_hit, "first evaluation misses the plan cache");
    assert!(
        recent[1].cache_hit,
        "second identical query hits the plan cache"
    );
    assert_eq!(recent[1].query_fingerprint, first.query_fingerprint);
    assert_eq!(recent[2].source, "cq");
    let ids: Vec<u64> = recent.iter().map(|r| r.id).collect();
    assert_eq!(ids, vec![1, 2, 3], "ids are 1-based and monotonic");
    assert!(recent.iter().all(|r| r.error.is_none()));
    assert!(
        recent.iter().all(|r| !r.spans.is_empty()),
        "every record carries its span tree"
    );
    assert!(recent.iter().all(|r| r.wall_ns > 0));
}

#[test]
fn slow_log_retains_explain_analyze_and_a_reproducer() {
    let _guard = flight_lock();
    flight::install(FlightConfig::default());
    let tree = small_tree(11, 300);
    let engine = engine_with(&tree, 1, Some(0));
    engine.xpath("//c//d").unwrap();

    let slow = flight::slow_recent();
    assert_eq!(slow.len(), 1, "a 0ms threshold logs every query as slow");
    let entry = &slow[0];
    assert!(entry.detail.explain.contains("EXPLAIN ANALYZE"));
    assert!(entry.detail.explain.contains("//c//d"));
    assert!(entry.detail.explain.contains("Plan:"));
    assert!(
        entry
            .detail
            .reproducer
            .contains("Engine::new(&tree).eval(&Query::xpath(\"//c//d\"))"),
        "reproducer renders a re-runnable invocation:\n{}",
        entry.detail.reproducer
    );
    assert!(
        entry
            .detail
            .reproducer
            .contains(&format!("0x{:016x}", entry.record.tree_fingerprint)),
        "reproducer pins the tree fingerprint"
    );

    // An engine without a threshold still flight-records but never logs
    // slow (the install-time threshold here is None too).
    let quiet = engine_with(&tree, 1, None);
    quiet.xpath("//a").unwrap();
    assert_eq!(flight::slow_recent().len(), 1);
    assert_eq!(flight::recent().len(), 2);
    flight::uninstall();
}

/// The canonical Chrome trace of a fixed seed query is byte-identical
/// across runs and across 1-vs-4-worker engines: the tree sits below the
/// parallel threshold, so both settings plan sequentially and the span
/// forest (the only input to the canonical rendering) is deterministic.
#[test]
fn canonical_trace_golden_is_byte_identical_across_runs_and_workers() {
    let _guard = flight_lock();
    let tree = small_tree(42, 600);
    let mut renderings: Vec<String> = Vec::new();
    for workers in [1usize, 4, 1, 4] {
        flight::install(FlightConfig::default());
        let engine = engine_with(&tree, workers, None);
        engine.xpath("//a[b]/c").unwrap();
        let record = flight::latest().expect("the query was recorded");
        flight::uninstall();
        let trace = traceexport::chrome_trace_canonical(&[record]);
        let stats = traceexport::validate_chrome_trace(&trace).expect("canonical trace validates");
        assert_eq!(stats.queries, 1);
        assert!(stats.events > 1, "the trace holds a span tree, not a stub");
        renderings.push(trace.render());
    }
    assert!(
        renderings.iter().all(|r| r == &renderings[0]),
        "canonical trace must not depend on the run or the worker count"
    );
    // Golden shape: a parseable trace whose events all belong to query 1,
    // led by the root exec.run span.
    let golden = parse_json(&renderings[0]).expect("rendering parses back");
    let events = golden
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    assert!(
        names.contains(&"exec.run"),
        "the trace holds the root execution span (events: {names:?})"
    );
    assert!(events.iter().all(|e| {
        e.get("args")
            .and_then(|a| a.get("query_id"))
            .and_then(|q| q.as_u64())
            == Some(1)
    }));
}

#[test]
fn trace_last_query_exports_the_most_recent_evaluation() {
    let _guard = flight_lock();
    flight::install(FlightConfig::default());
    let tree = small_tree(3, 250);
    let engine = engine_with(&tree, 1, None);
    assert!(
        engine.trace_last_query().is_none(),
        "no queries yet, no trace"
    );
    engine.xpath("//b").unwrap();
    engine.xpath("//a/c").unwrap();
    let trace = engine.trace_last_query().expect("trace after evaluation");
    flight::uninstall();
    let stats = traceexport::validate_chrome_trace(&trace).expect("trace validates");
    assert_eq!(stats.queries, 1, "only the latest query is exported");
}

fn batch_queries(n: usize) -> Vec<Query> {
    (0..n)
        .map(|i| Query::xpath(format!("//{}", ["a", "b", "c", "d"][i % 4])))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sequential evaluations: the ring holds exactly the newest
    /// `capacity` query ids, in order.
    #[test]
    fn ring_keeps_exactly_the_newest_ids_sequentially(cap in 1usize..9, extra in 0usize..25) {
        let _guard = flight_lock();
        let n = cap + extra;
        flight::install(FlightConfig { capacity: cap, ..FlightConfig::default() });
        let tree = small_tree(5, 150);
        let engine = engine_with(&tree, 1, None);
        for q in batch_queries(n) {
            engine.eval(&q).unwrap();
        }
        let ids: Vec<u64> = flight::recent().iter().map(|r| r.id).collect();
        let submitted = flight::submitted_total();
        flight::uninstall();
        let expect: Vec<u64> = (extra as u64 + 1..=n as u64).collect();
        prop_assert_eq!(ids, expect);
        prop_assert_eq!(submitted, n as u64);
    }

    /// Eviction never mixes up request attribution: every evaluation
    /// runs under a distinct tenant/trace-id request context (the way
    /// the query service wraps evaluations), and after the ring wraps,
    /// each surviving record still carries exactly the tenant, trace id,
    /// and admission wait that belong to its query id.
    #[test]
    fn eviction_preserves_tenant_attribution(cap in 1usize..9, extra in 0usize..25) {
        let _guard = flight_lock();
        let n = cap + extra;
        flight::install(FlightConfig { capacity: cap, ..FlightConfig::default() });
        let tree = small_tree(13, 150);
        let engine = engine_with(&tree, 1, None);
        for (i, q) in batch_queries(n).iter().enumerate() {
            let ctx = flight::RequestCtx {
                tenant: format!("tenant-{}", i % 3),
                trace_id: format!("trace-{}", i + 1),
                admission_wait_ns: (i as u64 + 1) * 10,
            };
            flight::with_request_ctx(ctx, || engine.eval(q)).unwrap();
        }
        let recent = flight::recent();
        flight::uninstall();
        let ids: Vec<u64> = recent.iter().map(|r| r.id).collect();
        let expect: Vec<u64> = (extra as u64 + 1..=n as u64).collect();
        prop_assert_eq!(ids, expect, "the newest ids survive eviction");
        for r in &recent {
            // Ids are 1-based and assigned in submission order, so the
            // record for id k ran under the context built for i = k - 1.
            let i = (r.id - 1) as usize;
            prop_assert_eq!(&r.tenant, &format!("tenant-{}", i % 3));
            prop_assert_eq!(&r.trace_id, &format!("trace-{}", i + 1));
            prop_assert_eq!(r.admission_wait_ns, (i as u64 + 1) * 10);
        }
    }

    /// Concurrent `eval_batch`: completions race, but the ring never
    /// exceeds its capacity, never duplicates a record, and never
    /// resurrects an id outside the submitted range.
    #[test]
    fn ring_eviction_is_exact_under_concurrent_eval_batch(cap in 1usize..9, extra in 0usize..25) {
        let _guard = flight_lock();
        let n = cap + extra;
        flight::install(FlightConfig { capacity: cap, ..FlightConfig::default() });
        let tree = small_tree(9, 150);
        let engine = engine_with(&tree, 4, None);
        for result in engine.eval_batch(&batch_queries(n)) {
            result.unwrap();
        }
        let recent = flight::recent();
        let submitted = flight::submitted_total();
        flight::uninstall();
        prop_assert_eq!(recent.len(), cap.min(n), "ring holds exactly min(cap, n) records");
        let mut ids: Vec<u64> = recent.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), recent.len(), "no duplicate records");
        prop_assert!(ids.iter().all(|&id| id >= 1 && id <= n as u64));
        prop_assert_eq!(submitted, n as u64);
    }
}
