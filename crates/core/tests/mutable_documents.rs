//! Plan-cache invalidation and linearizability under document edits.
//!
//! Three contracts, each with a from-scratch oracle:
//!
//! 1. **No stale answers** — after every edit of a random script, every
//!    front-end's answer from the document's (cache-sharing, incrementally
//!    maintained) engine equals a cold engine over a tree rebuilt from
//!    scratch out of the document's term rendering.
//! 2. **Untouched trees keep their entries** — documents pooling one plan
//!    cache do not lose entries when a *different* document is edited;
//!    the hit-rate is asserted through the `obs::metrics` registry.
//! 3. **Batches around edits are linearizable** — `edit` takes the
//!    document exclusively, so every `eval_batch` observes a tree from
//!    between two edits; batch answers equal cold sequential answers on
//!    both sides of an edit.

use std::sync::Arc;

use treequery_core::tree::{to_term, EditOp};
use treequery_core::{
    obs, parse_term, plan, Document, Engine, EngineConfig, Metrics, Query, QueryOutput,
};

/// Node ids in an edited document are allocation-ordered, not pre-ordered
/// (inserts append), while a from-scratch rebuild numbers nodes in pre
/// order — so answers are compared by pre rank, the id-stable coordinate.
fn canon(out: &QueryOutput, t: &treequery_core::Tree) -> Vec<Vec<u32>> {
    match out {
        QueryOutput::Nodes(v) => v.iter().map(|&x| vec![t.pre(x)]).collect(),
        QueryOutput::Answer(a) => {
            let mut rows: Vec<Vec<u32>> = a
                .tuples
                .iter()
                .map(|tup| tup.iter().map(|&x| t.pre(x)).collect())
                .collect();
            rows.sort();
            rows
        }
    }
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

fn random_op(state: &mut u64, n: u32) -> EditOp {
    let s = lcg(state);
    let labels = ["a", "b", "c", "d"];
    match s % 4 {
        0 | 1 => EditOp::InsertLeaf {
            parent_pre: (s >> 8) as u32 % n,
            child_idx: (s >> 40) as u32 % 4,
            label: labels[(s >> 16) as usize % labels.len()].to_owned(),
        },
        2 => EditOp::DeleteSubtree {
            pre: (s >> 8) as u32 % n,
        },
        _ => EditOp::Relabel {
            pre: (s >> 8) as u32 % n,
            label: labels[(s >> 16) as usize % labels.len()].to_owned(),
        },
    }
}

#[test]
fn edited_documents_never_serve_stale_answers() {
    let queries = [
        Query::xpath("//a[b]/c"),
        Query::xpath("//b[not(c)]"),
        Query::cq("q(x) :- label(x, a), child(x, y), label(y, b)."),
        Query::datalog(
            "P(x) :- label(x, b).
             P(x) :- child(x, y), P(y).
             ?- P.",
        ),
    ];
    let mut doc = Document::new(parse_term("r(a(b(c) b) a(c(b)) b(a))").unwrap());
    // Warm the shared cache so a stale entry *would* be served if
    // invalidation were broken.
    for q in &queries {
        doc.engine().eval(q).unwrap();
    }
    let mut state = 0x853C49E6748FEA9Bu64;
    for step in 0..60 {
        let op = random_op(&mut state, doc.tree().len() as u32);
        if doc.edit(&op).is_none() {
            continue;
        }
        // From-scratch oracle: rebuild the tree out of its rendering
        // (fresh arena, fresh interner) under a cold engine.
        let rebuilt = parse_term(&to_term(doc.tree())).unwrap();
        let cold = Engine::new(&rebuilt);
        let warm = doc.engine();
        for q in &queries {
            let incremental = warm.eval(q).unwrap();
            let oracle = cold.eval(q).unwrap();
            assert_eq!(
                canon(&incremental, doc.tree()),
                canon(&oracle, &rebuilt),
                "step {step}, {op}, {q:?}"
            );
        }
    }
    assert!(doc.edit_count() >= 40, "script degenerated into no-ops");
}

#[test]
fn untouched_documents_keep_cache_entries_when_a_sibling_is_edited() {
    let cache = Arc::new(plan::PlanCache::default());
    let metrics = Arc::new(Metrics::default());
    let mut edited = Document::with_runtime(
        parse_term("r(a(b) c)").unwrap(),
        EngineConfig::default(),
        Arc::clone(&cache),
        Arc::clone(&metrics),
    );
    let untouched = Document::with_runtime(
        parse_term("x(y(z) y)").unwrap(),
        EngineConfig::default(),
        Arc::clone(&cache),
        Arc::clone(&metrics),
    );
    // One miss each to populate the pooled cache.
    edited.engine().xpath("//a[b]").unwrap();
    untouched.engine().xpath("//y[z]").unwrap();
    assert_eq!(cache.len(), 2);
    let warm = metrics.snapshot();
    assert_eq!(warm.plan_cache_misses, 2);

    let mut state = 0xDA3E39CB94B95BDBu64;
    for _ in 0..20 {
        let op = random_op(&mut state, edited.tree().len() as u32);
        edited.edit(&op);
        // The untouched document's entry must still hit.
        untouched.engine().xpath("//y[z]").unwrap();
    }
    let m = metrics.snapshot();
    assert_eq!(
        m.plan_cache_misses, 2,
        "editing one document evicted another's plans"
    );
    assert_eq!(m.plan_cache_hits, warm.plan_cache_hits + 20);

    // The hit-rate is observable through the obs metrics registry.
    m.publish_to_registry();
    let gathered = obs::metrics::global().gather();
    let gauge = |name: &str| -> i64 {
        let snap = gathered
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} not published"));
        match snap.value {
            obs::metrics::MetricValue::Gauge(v) => v,
            ref other => panic!("{name} is not a gauge: {other:?}"),
        }
    };
    assert_eq!(gauge("treequery_plan_cache_misses"), 2);
    assert!(gauge("treequery_plan_cache_hits") >= 20);
}

#[test]
fn eval_batch_around_edits_is_linearizable() {
    let queries: Vec<Query> = vec![
        Query::xpath("//a[b]"),
        Query::xpath("//b"),
        Query::cq("q(x) :- label(x, a), child(x, y), label(y, b)."),
        Query::datalog("P(x) :- label(x, b). ?- P."),
    ];
    let mut doc = Document::new(parse_term("r(a(b) a(b c) c)").unwrap());
    let mut state = 0xC2B2AE3D27D4EB4Fu64;
    for _ in 0..12 {
        let batch = doc.engine().eval_batch(&queries);
        // Every batch answer equals a cold sequential answer over a
        // from-scratch rebuild of the tree the batch observed.
        let rebuilt = parse_term(&to_term(doc.tree())).unwrap();
        let cold = Engine::new(&rebuilt);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(
                canon(batch[i].as_ref().unwrap(), doc.tree()),
                canon(&cold.eval(q).unwrap(), &rebuilt),
                "batch answer {i} not linearizable"
            );
        }
        let op = random_op(&mut state, doc.tree().len() as u32);
        doc.edit(&op);
    }
    // An edit between two batches must be visible to the second.
    let mut doc = Document::new(parse_term("r(a(b))").unwrap());
    let before = doc.engine().eval_batch(&queries);
    doc.edit(&EditOp::Relabel {
        pre: 2,
        label: "z".to_owned(),
    })
    .unwrap();
    let after = doc.engine().eval_batch(&queries);
    match (&before[1], &after[1]) {
        (Ok(QueryOutput::Nodes(b)), Ok(QueryOutput::Nodes(a))) => {
            assert_eq!(b.len(), 1);
            assert!(a.is_empty(), "the relabel must be visible to the batch");
        }
        other => panic!("unexpected outputs {other:?}"),
    }
}
