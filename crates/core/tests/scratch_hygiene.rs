//! Regression test for the scratch-pool shrink-on-put cap: the
//! thread-local LIFO pools in `treequery_tree::scratch` must never pin an
//! unbounded amount of memory just because one evaluation spiked.
//!
//! Own test file on purpose: integration test binaries are separate
//! processes, so the process-global allocation accounting
//! (`obs::alloc::AccountingGuard` + `global_stats`) is not shared with
//! other tests' threads and the live-bytes arithmetic below is exact.

use treequery_core::obs::alloc::{self, AccountingGuard};
use treequery_core::tree::scratch::{self, MAX_POOLED_BYTES};

#[test]
fn pooled_buffers_cannot_pin_oversized_spikes() {
    let _accounting = AccountingGuard::begin();

    // Steady the pool: one take/put cycle so the pool slot itself (and
    // any lazy thread-local init) is allocated before measuring.
    scratch::put_u32s(scratch::take_u32s());
    let baseline = alloc::global_stats().live_bytes;

    // A query spike: the evaluation temporarily needed 64x the pool cap.
    let spike_elems = 64 * MAX_POOLED_BYTES / size_of::<u32>();
    let mut buf = scratch::take_u32s();
    buf.reserve_exact(spike_elems);
    assert!(
        alloc::global_stats().live_bytes >= baseline + 64 * MAX_POOLED_BYTES as u64,
        "the spike buffer itself must be visible to the accounting"
    );

    // Handing the spiked buffer back must shrink it to the cap: the pool
    // retains at most MAX_POOLED_BYTES of it, the rest is freed NOW, not
    // held until some future evaluation happens to want a huge buffer.
    scratch::put_u32s(buf);
    let after = alloc::global_stats().live_bytes;
    assert!(
        after <= baseline + MAX_POOLED_BYTES as u64,
        "pool pinned {} bytes over baseline (cap is {MAX_POOLED_BYTES})",
        after - baseline
    );

    // And the capped buffer really is pooled (take returns capacity
    // without allocating a fresh one).
    let reused = scratch::take_u32s();
    assert!(
        reused.capacity() > 0,
        "shrunk buffer was dropped, not pooled"
    );
    assert!(reused.capacity() * size_of::<u32>() <= MAX_POOLED_BYTES);
    scratch::put_u32s(reused);
}
