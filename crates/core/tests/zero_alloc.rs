//! Steady-state zero-allocation tests for the executor kernels.
//!
//! Each kernel is run warm (several reps, so thread-local scratch pools
//! and pool-worker buffers reach their final capacities), then once more
//! inside a named [`AllocScope`]; the scope's attributed allocation
//! count — including allocations made by pool workers on the kernel's
//! behalf — must be exactly zero. Covered kernels: axis-image sweeps,
//! the semijoin full reducer, the parallel stack-tree structural join,
//! and the union-merge XPath evaluator, each at 1 and 4 workers.
//!
//! Property tests at the bottom pin the columnar index structures to
//! the scans they replaced: per-label posting lists agree with a full
//! `has_label` scan, and the XASR label bitmaps agree with a posting
//! row scan.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery_core::cq;
use treequery_core::obs::alloc::{self, AccountingGuard, AllocScope};
use treequery_core::plan::par::{
    par_eval_query, par_image_into, par_stack_tree_join_into, ParJoinScratch, PoolSweeper,
};
use treequery_core::plan::Metrics;
use treequery_core::storage::Xasr;
use treequery_core::tree::{random_recursive_tree, scratch, Axis, NodeSet, Tree};
use treequery_core::xpath;

/// Warm reps before the measured one. More than strictly necessary:
/// pool workers claim chunks nondeterministically, so every worker must
/// have had a chance to touch each kernel's buffers before measuring.
const WARM: usize = 8;

fn test_tree() -> Tree {
    let mut rng = StdRng::seed_from_u64(0xA110C);
    random_recursive_tree(&mut rng, 2_000, &["a", "b", "c", "d"])
}

/// Runs `f` warm, then once inside an [`AllocScope`] named `name`, and
/// asserts the scope saw zero allocations.
fn assert_zero_steady_state(name: &'static str, mut f: impl FnMut()) {
    for _ in 0..WARM {
        f();
    }
    let _ = alloc::take_scope_totals();
    {
        let _scope = AllocScope::enter(name);
        f();
    }
    let totals = alloc::take_scope_totals();
    let stats = totals.iter().find(|(n, _)| *n == name).map(|(_, s)| *s);
    let allocs = stats.map_or(0, |s| s.allocs);
    assert_eq!(
        allocs, 0,
        "{name}: steady state must be allocation-free, got {stats:?}"
    );
}

/// All four kernels, both worker counts, in one test function: the
/// scope-totals table is process-global, so the drain/measure pairs
/// must not interleave across threads.
#[test]
fn kernels_are_allocation_free_in_steady_state() {
    let _accounting = AccountingGuard::begin();
    let t = test_tree();
    let n = t.len();
    let metrics = Metrics::default();

    let source = NodeSet::from_iter(n, t.nodes_with_label_name("a").iter().copied());
    let x = Xasr::from_tree(&t);
    let la = x.label_list("a");
    let lb = x.label_list("b");
    let cq_query = cq::parse_cq("q(x) :- label(x, a), child(x, y), label(y, b).").unwrap();
    let forest = cq::JoinForest::build(&cq_query).expect("query is acyclic");
    let union_query = xpath::parse_xpath("//a | //b[c]").unwrap();

    for &(workers, sweep_name, semi_name, join_name, union_name) in &[
        (
            1usize,
            "zero_alloc.sweep.w1",
            "zero_alloc.semijoin.w1",
            "zero_alloc.join.w1",
            "zero_alloc.union.w1",
        ),
        (
            4usize,
            "zero_alloc.sweep.w4",
            "zero_alloc.semijoin.w4",
            "zero_alloc.join.w4",
            "zero_alloc.union.w4",
        ),
    ] {
        // Axis-image sweeps: one partitionable axis, one sibling axis
        // (the carry-chained case).
        let mut out = NodeSet::empty(n);
        assert_zero_steady_state(sweep_name, || {
            par_image_into(Axis::Descendant, &t, &source, workers, &metrics, &mut out);
            par_image_into(
                Axis::FollowingSibling,
                &t,
                &source,
                workers,
                &metrics,
                &mut out,
            );
        });

        // Semijoin full reducer (Yannakakis passes over the join forest).
        let seq = cq::SeqSweeper;
        let pooled = PoolSweeper {
            workers,
            metrics: &metrics,
        };
        let sweeper: &dyn cq::AxisSweeper = if workers > 1 { &pooled } else { &seq };
        assert_zero_steady_state(semi_name, || {
            let sets = cq::full_reduce_with(&cq_query, &t, &forest, sweeper)
                .expect("query is satisfiable on this tree");
            scratch::put_set_vec(sets);
        });

        // Parallel stack-tree structural join with stitched stack seeds.
        let mut ws = ParJoinScratch::new();
        let mut pairs = Vec::new();
        assert_zero_steady_state(join_name, || {
            par_stack_tree_join_into(la, lb, workers, &metrics, &mut ws, &mut pairs);
        });

        // Union-merge set-at-a-time evaluation.
        assert_zero_steady_state(union_name, || {
            let s = par_eval_query(&union_query, &t, workers, &metrics);
            scratch::put_set(s);
        });
    }
}

proptest! {
    /// The CSR posting lists frozen into the tree return exactly the
    /// nodes a full `has_label` scan finds, in document order.
    #[test]
    fn posting_lists_match_label_scan(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = random_recursive_tree(&mut rng, 120, &["a", "b", "c", "d"]);
        for name in ["a", "b", "c", "d", "nope"] {
            let fast = t.nodes_with_label_name(name).to_vec();
            let mut slow: Vec<_> = t
                .nodes()
                .filter(|&v| t.has_label_name(v, name))
                .collect();
            t.sort_by_pre(&mut slow);
            prop_assert_eq!(fast, slow, "label {}", name);
        }
    }

    /// The XASR per-label bitmap answers membership exactly like a scan
    /// of the posting rows.
    #[test]
    fn label_bitmap_matches_posting_scan(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = random_recursive_tree(&mut rng, 90, &["a", "b", "c"]);
        let x = Xasr::from_tree(&t);
        for label in ["a", "b", "c", "nope"] {
            let bitmap = x.label_bitmap(label);
            let postings = x.label_list(label);
            prop_assert_eq!(
                bitmap.as_ref().map_or(0, |b| b.count()) as usize,
                postings.len()
            );
            for pre in 0..=(t.len() as u32 + 1) {
                let scanned = postings.iter().any(|&(p, _)| p == pre);
                let fast = bitmap.as_ref().is_some_and(|b| b.contains_pre(pre));
                prop_assert_eq!(fast, scanned, "label {} pre {}", label, pre);
                prop_assert_eq!(x.has_label_at_pre(label, pre), scanned);
            }
        }
    }
}
