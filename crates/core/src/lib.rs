#![warn(missing_docs)]

//! `treequery-core`: the unified engine over all the techniques of Koch,
//! *Processing Queries on Tree-Structured Data Efficiently* (PODS 2006).
//!
//! The sibling crates implement the paper's five technique families; this
//! crate re-exports them and adds [`Engine`], which routes every query —
//! Core XPath, conjunctive queries, monadic datalog — through one
//! three-stage pipeline:
//!
//! 1. **IR** ([`plan::ir`]): the front-end text is parsed and lowered
//!    into a shared logical form with provenance, a structural feature
//!    summary, and a fingerprint of its *normalized* form;
//! 2. **planner** ([`plan::planner`]): cheap per-tree statistics
//!    ([`plan::TreeStats`]) plus the paper's classifiers (acyclicity,
//!    the Theorem 6.8 dichotomy, Theorem 5.1 rewritability) pick an
//!    execution strategy and explain the choice ([`plan::ExplainedPlan`],
//!    surfaced by [`Engine::explain`]);
//! 3. **executor** ([`plan::exec`]): the strategy runs with per-stage
//!    work counters ([`Engine::metrics`]), behind a plan cache keyed by
//!    `(query fingerprint, tree fingerprint)`.
//!
//! [`Engine::eval_batch`] evaluates many queries over the one tree on
//! scoped worker threads; the classic entry points ([`Engine::xpath`],
//! [`Engine::cq`], [`Engine::datalog`], [`Engine::stream_select`]) remain
//! as thin shims over the pipeline.

use std::collections::BTreeSet;
use std::sync::OnceLock;

pub mod document;
pub mod plan;

pub use document::{Document, WatchId};

pub use treequery_automata as automata;
pub use treequery_cq as cq;
pub use treequery_datalog as datalog;
pub use treequery_hornsat as hornsat;
pub use treequery_storage as storage;
pub use treequery_streaming as streaming;
pub use treequery_tree as tree;
pub use treequery_xpath as xpath;

pub use treequery_tree::{
    parse_term, parse_xml, to_xml, Axis, CancelReason, CancelToken, NodeId, NodeSet, Order, Tree,
    TreeBuilder,
};

pub use plan::{
    applicable_strategies, AnalyzedPlan, CostClass, ExplainedPlan, Metrics, MetricsSnapshot,
    PlannerConfig, Query, QueryIr, QueryOutput, SourceLang, StageStats, Strategy, TreeStats,
};

pub use treequery_obs as obs;

/// Errors surfaced by the [`Engine`].
#[derive(Debug)]
pub enum EngineError {
    /// The XPath expression did not parse.
    XPath(xpath::XPathParseError),
    /// The conjunctive query did not parse.
    Cq(cq::CqParseError),
    /// The datalog program did not parse.
    Datalog(datalog::ParseError),
    /// The datalog program has no query predicate.
    NoQueryPredicate,
    /// The query cannot be streamed, even after backward-axis elimination.
    NotStreamable(String),
    /// The query was cooperatively cancelled mid-execution: the ambient
    /// [`CancelToken`] tripped (explicit CANCEL or a passed deadline) and
    /// the kernels bailed at the next chunk boundary. Any partial result
    /// was discarded; shared state (plan cache, metrics, scratch pools)
    /// is untouched by the abort.
    Cancelled(CancelReason),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::XPath(e) => write!(f, "{e}"),
            EngineError::Cq(e) => write!(f, "{e}"),
            EngineError::Datalog(e) => write!(f, "{e}"),
            EngineError::NoQueryPredicate => f.write_str("datalog program has no query predicate"),
            EngineError::NotStreamable(m) => write!(f, "not streamable: {m}"),
            EngineError::Cancelled(reason) => write!(f, "query {reason}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Which implementation evaluates a Core XPath query (the forced-strategy
/// override of [`Engine::xpath_via`]; normally the planner chooses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum XPathStrategy {
    /// The set-at-a-time evaluator (`O(|D| · |Q|)`).
    SetAtATime,
    /// The literal (P1)–(P4)/(Q1)–(Q5) semantics (slow; oracle).
    Reference,
    /// Translation to monadic datalog + Minoux (Theorem 3.2 route).
    Datalog,
    /// Translation of conjunctive queries to acyclic CQs + Yannakakis
    /// (Proposition 4.2 route; fails on non-conjunctive queries).
    AcyclicCq,
}

/// The technique the planner chose for a conjunctive query (Figure 7's
/// landscape operationalized).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CqPlan {
    /// The query is acyclic: full reducer + backtrack-free enumeration
    /// (`O(|Q| · ||A|| + output)`).
    Acyclic,
    /// Cyclic but inside an X-property class: arc-consistency + minimum
    /// valuation w.r.t. the certified order (Theorem 6.5); Boolean
    /// answer.
    XProperty(Order),
    /// Rewritten into an equivalent union of this many acyclic queries
    /// (Theorem 5.1).
    RewriteUnion(usize),
    /// Exponential backtracking (NP-hard shape, or brute force estimated
    /// cheaper than a large rewrite union on a small tree).
    Backtrack,
}

/// The answer to a conjunctive query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CqAnswer {
    /// The result tuples (the empty tuple for satisfied Boolean queries).
    pub tuples: BTreeSet<Vec<NodeId>>,
    /// The technique used.
    pub plan: CqPlan,
}

impl CqAnswer {
    /// Boolean view: at least one tuple.
    pub fn is_satisfiable(&self) -> bool {
        !self.tuples.is_empty()
    }
}

/// Engine tunables. [`Default`] enables the plan cache and lets
/// [`Engine::eval_batch`] size its worker pool from the machine.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineConfig {
    /// Planner cost-model knobs.
    pub planner: PlannerConfig,
    /// Cache plans keyed by `(query fingerprint, tree fingerprint)`.
    pub plan_cache: bool,
    /// Worker threads for [`Engine::eval_batch`]; `None` resolves to
    /// [`plan::default_workers`] (the `TREEQUERY_WORKERS` env knob, else
    /// the machine's available parallelism). The threads come from the
    /// process-wide [`plan::WorkerPool`], shared with the intra-query
    /// parallel kernels.
    pub batch_threads: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            planner: PlannerConfig::default(),
            plan_cache: true,
            batch_threads: None,
        }
    }
}

/// A query engine bound to one (frozen) tree.
///
/// Statistics, the tree fingerprint, plan cache, and metrics are shared
/// state; all evaluation methods take `&self`, and the engine is `Sync`,
/// which is what lets [`Engine::eval_batch`] fan out over scoped threads.
///
/// The plan cache and metrics live behind `Arc`s so they can outlive any
/// one engine: [`Document`] hands the same cache/metrics to every
/// ephemeral engine it creates across edits, and independent engines over
/// different trees can pool one cache (entries are keyed by tree
/// fingerprint, so they never collide).
pub struct Engine<'t> {
    tree: &'t Tree,
    config: EngineConfig,
    stats: OnceLock<TreeStats>,
    tree_fp: OnceLock<u64>,
    cache: std::sync::Arc<plan::PlanCache>,
    metrics: std::sync::Arc<Metrics>,
}

impl<'t> Engine<'t> {
    /// Creates an engine over a tree with the default configuration.
    pub fn new(tree: &'t Tree) -> Self {
        Engine::with_config(tree, EngineConfig::default())
    }

    /// Creates an engine with explicit tunables.
    pub fn with_config(tree: &'t Tree, config: EngineConfig) -> Self {
        Engine::with_runtime(
            tree,
            config,
            std::sync::Arc::new(plan::PlanCache::default()),
            std::sync::Arc::new(Metrics::default()),
        )
    }

    /// Creates an engine sharing an existing plan cache and metrics
    /// registry. Cache entries are keyed by `(query fp, tree fp)`, so
    /// engines over different trees can share one cache without
    /// cross-talk; metrics aggregate across all sharers.
    pub fn with_runtime(
        tree: &'t Tree,
        config: EngineConfig,
        cache: std::sync::Arc<plan::PlanCache>,
        metrics: std::sync::Arc<Metrics>,
    ) -> Self {
        Engine {
            tree,
            config,
            stats: OnceLock::new(),
            tree_fp: OnceLock::new(),
            cache,
            metrics,
        }
    }

    /// Pre-seeds the lazily computed per-tree state ([`Engine::stats`],
    /// [`Engine::tree_fingerprint`]) with values the caller already
    /// maintains incrementally — how [`Document`] makes its ephemeral
    /// engines start warm instead of re-deriving `O(|D|)` state per
    /// query.
    pub(crate) fn seed_tree_state(&self, stats: TreeStats, tree_fp: u64) {
        let _ = self.stats.set(stats);
        let _ = self.tree_fp.set(tree_fp);
    }

    /// The underlying tree.
    pub fn tree(&self) -> &'t Tree {
        self.tree
    }

    /// The per-tree statistics the planner consults (computed lazily,
    /// once).
    pub fn stats(&self) -> &TreeStats {
        self.stats.get_or_init(|| TreeStats::compute(self.tree))
    }

    /// The tree fingerprint (half of the plan-cache key; computed lazily,
    /// once).
    pub fn tree_fingerprint(&self) -> u64 {
        *self
            .tree_fp
            .get_or_init(|| plan::tree_fingerprint(self.tree))
    }

    /// A snapshot of the pipeline's work counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// A quiesced snapshot of the work counters: re-read until stable, so
    /// numbers taken after all in-flight queries finished are never torn
    /// (see [`plan::exec::Metrics::snapshot_quiesced`]).
    pub fn metrics_quiesced(&self) -> MetricsSnapshot {
        self.metrics.snapshot_quiesced()
    }

    /// Zeroes the pipeline's work counters.
    pub fn reset_metrics(&self) {
        self.metrics.reset()
    }

    /// Number of plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// Parses and lowers a front-end query into the shared IR.
    pub fn lower(&self, query: &Query) -> Result<QueryIr, EngineError> {
        let _span = treequery_obs::span("pipeline.lower");
        let ir = plan::lower(query)?;
        plan::Metrics::add_lowered(&self.metrics);
        Ok(ir)
    }

    /// The plan the engine would run for `query`, with its rationale —
    /// strategy, cost class, estimated work, and the statistics that
    /// decided it.
    pub fn explain(&self, query: &Query) -> Result<ExplainedPlan, EngineError> {
        let ir = self.lower(query)?;
        Ok((*self.plan_for(&ir)).clone())
    }

    fn plan_for(&self, ir: &QueryIr) -> std::sync::Arc<ExplainedPlan> {
        self.plan_for_traced(ir).0
    }

    /// [`plan_for`](Self::plan_for) plus whether the plan came from the
    /// cache (the flight recorder tags records with it).
    fn plan_for_traced(&self, ir: &QueryIr) -> (std::sync::Arc<ExplainedPlan>, bool) {
        let planned = std::cell::Cell::new(false);
        let compute = || {
            let _span = treequery_obs::span("pipeline.plan");
            planned.set(true);
            plan::Metrics::add_planned(&self.metrics);
            plan::plan_ir(ir, self.stats(), &self.config.planner)
        };
        if self.config.plan_cache {
            let mut span = treequery_obs::span("pipeline.cache_lookup");
            let plan = self.cache.get_or_insert(
                ir.fingerprint,
                self.tree_fingerprint(),
                &self.metrics,
                compute,
            );
            let hit = !planned.get();
            span.record_bool("hit", hit);
            (plan, hit)
        } else {
            (std::sync::Arc::new(compute()), false)
        }
    }

    /// `EXPLAIN ANALYZE`: evaluates `query` once with a span recorder
    /// installed and returns the planner's [`ExplainedPlan`] rationale
    /// merged with the *measured* per-stage wall times, structured span
    /// fields, and the executor counter delta for this run (read with
    /// [`Metrics::snapshot_quiesced`](plan::Metrics::snapshot_quiesced),
    /// so single-query numbers are internally consistent).
    ///
    /// The recorder is installed process-globally for the duration (the
    /// `treequery_obs` model): a concurrent `explain_analyze` from
    /// another thread, or queries run concurrently on *any* engine, would
    /// mix their spans and counter deltas into this report. Analyze one
    /// query at a time for exact numbers.
    pub fn explain_analyze(&self, query: &Query) -> Result<AnalyzedPlan, EngineError> {
        let recorder = std::sync::Arc::new(treequery_obs::CollectingRecorder::default());
        let before = self.metrics.snapshot_quiesced();
        // Turn on allocation accounting for the run so the per-stage
        // AllocScopes attribute bytes to the same names the spans use;
        // drain any totals a previous accounted region left behind.
        let _accounting = treequery_obs::alloc::AccountingGuard::begin();
        treequery_obs::alloc::take_scope_totals();
        let started = std::time::Instant::now();
        let run = treequery_obs::with_recorder(recorder.clone(), || {
            let ir = self.lower(query)?;
            let chosen = self.plan_for(&ir);
            let output = plan::exec::execute(&ir, &chosen, self.tree, &self.metrics)?;
            Ok(((*chosen).clone(), output))
        });
        let total_ns = started.elapsed().as_nanos() as u64;
        let mem_totals = treequery_obs::alloc::take_scope_totals();
        let (chosen, output) = run?;
        let counters = self.metrics.snapshot_quiesced().delta_since(&before);
        Ok(plan::analyze::assemble(
            query.text().to_owned(),
            chosen,
            total_ns,
            output,
            &recorder.summary(),
            &mem_totals,
            counters,
        ))
    }

    /// Evaluates one query through the full pipeline.
    ///
    /// Cancellation note: evaluation honours the ambient
    /// [`tree::cancel`] token if the caller installed one
    /// ([`Engine::eval_with_cancel`] does) — there is deliberately no
    /// separate cancellation-free code path; with no token installed the
    /// kernels' checkpoints cost one thread-local read each.
    pub fn eval(&self, query: &Query) -> Result<QueryOutput, EngineError> {
        let ir = self.lower(query)?;
        self.eval_ir(&ir)
    }

    /// Evaluates one query under a [`CancelToken`]: the token is
    /// installed as the thread's ambient token for the duration (worker
    /// pools re-install it on their threads), every kernel checkpoint
    /// observes it, and a tripped token surfaces as
    /// [`EngineError::Cancelled`] within one chunk boundary — partial
    /// results are discarded, shared state (plan cache, scratch pools,
    /// metrics) stays consistent. Deadlines are tokens too:
    /// [`CancelToken::with_deadline`].
    pub fn eval_with_cancel(
        &self,
        query: &Query,
        token: &CancelToken,
    ) -> Result<QueryOutput, EngineError> {
        let ir = self.lower(query)?;
        self.eval_ir_with_cancel(&ir, token)
    }

    /// [`Engine::eval_with_cancel`] for an already-lowered query.
    pub fn eval_ir_with_cancel(
        &self,
        ir: &QueryIr,
        token: &CancelToken,
    ) -> Result<QueryOutput, EngineError> {
        tree::cancel::with_token(token, || self.eval_ir(ir))
    }

    /// Evaluates an already-lowered query (plan-cache aware). While the
    /// [`treequery_obs::flight`] recorder is installed, the evaluation is
    /// assigned a query id and leaves a per-query record (plan choice,
    /// timings, span tree, slow-query material) in the flight ring; the
    /// disabled path costs one relaxed atomic load.
    pub fn eval_ir(&self, ir: &QueryIr) -> Result<QueryOutput, EngineError> {
        if treequery_obs::flight::enabled() {
            return self.eval_ir_recorded(ir);
        }
        let chosen = self.plan_for(ir);
        plan::exec::execute(ir, &chosen, self.tree, &self.metrics)
    }

    /// The flight-recorded evaluation path: scope a query id around
    /// planning + execution (worker pools propagate it, so cross-worker
    /// chunk spans attribute here too), then collect the buffered spans
    /// and submit the record. Out of line — the common disabled path
    /// should pay only the `enabled()` load.
    ///
    /// When a caller (the query service) already opened a query scope
    /// around this evaluation — to attribute its own admission/lock
    /// spans to the same record — the ambient id is reused instead of
    /// drawing a fresh one, so the wire request and the evaluation are
    /// one record, not two.
    #[cold]
    fn eval_ir_recorded(&self, ir: &QueryIr) -> Result<QueryOutput, EngineError> {
        use treequery_obs::flight;
        let ambient = flight::current_query();
        let id = if ambient != 0 {
            ambient
        } else {
            flight::begin_query()
        };
        if id == 0 {
            // The recorder was uninstalled between the enabled check and
            // the id draw; run unrecorded.
            let chosen = self.plan_for(ir);
            return plan::exec::execute(ir, &chosen, self.tree, &self.metrics);
        }
        let before = self.metrics.snapshot();
        let started = std::time::Instant::now();
        let (result, chosen, cache_hit) = flight::with_current_query(id, || {
            let (chosen, cache_hit) = self.plan_for_traced(ir);
            let result = plan::exec::execute(ir, &chosen, self.tree, &self.metrics);
            (result, chosen, cache_hit)
        });
        let wall_ns = started.elapsed().as_nanos() as u64;
        let (spans, dropped_spans) = flight::take_spans(id);
        // The quiesced re-read tags records captured under concurrent
        // load (satellite: surfaced retry count, not just `torn`).
        let counters = self.metrics.snapshot_quiesced().delta_since(&before);
        let rows = match &result {
            Ok(QueryOutput::Nodes(v)) => v.len() as u64,
            Ok(QueryOutput::Answer(a)) => a.tuples.len() as u64,
            Err(_) => 0,
        };
        let ctx = flight::request_ctx().unwrap_or_default();
        let record = flight::QueryRecord {
            id,
            query: ir.text.clone(),
            source: ir.source.to_string(),
            query_fingerprint: ir.fingerprint,
            tree_fingerprint: self.tree_fingerprint(),
            strategy: chosen.strategy.to_string(),
            rationale: chosen.rationale.clone(),
            parallel_rationale: chosen.parallel_rationale.clone(),
            workers: chosen.workers as u64,
            cache_hit,
            wall_ns,
            rows,
            error: result.as_ref().err().map(|e| e.to_string()),
            quiesce_retries: counters.quiesce_retries,
            torn: counters.torn,
            spans,
            dropped_spans,
            tenant: ctx.tenant,
            trace_id: ctx.trace_id,
            admission_wait_ns: ctx.admission_wait_ns,
            resp_bytes: 0,
        };
        let threshold_ns = self
            .config
            .planner
            .slow_query_ms
            .map(|ms| ms.saturating_mul(1_000_000))
            .or_else(flight::slow_threshold_ns);
        let detail = match threshold_ns {
            Some(t) if wall_ns >= t => Some(self.slow_detail(&record, &chosen, &result, counters)),
            _ => None,
        };
        flight::submit(record, detail);
        result
    }

    /// The slow-query log material for one captured record: a full
    /// `EXPLAIN ANALYZE` rendering rebuilt from the record's spans, and a
    /// re-runnable reproducer (tree fingerprint + query source).
    fn slow_detail(
        &self,
        record: &treequery_obs::flight::QueryRecord,
        chosen: &ExplainedPlan,
        result: &Result<QueryOutput, EngineError>,
        counters: MetricsSnapshot,
    ) -> treequery_obs::flight::SlowDetail {
        let explain = match result {
            Ok(output) => {
                let summaries = treequery_obs::summarize_spans(&record.spans);
                plan::analyze::assemble(
                    record.query.clone(),
                    chosen.clone(),
                    record.wall_ns,
                    output.clone(),
                    &summaries,
                    &[],
                    counters,
                )
                .render()
            }
            Err(e) => format!("query failed: {e}"),
        };
        let reproducer = format!(
            "-- treequery slow-query reproducer (query #{id})\n\
             -- tree_fingerprint: 0x{fp:016x} ({nodes} nodes)\n\
             -- source: {source}; rerun with a structurally identical tree:\n\
             --   Engine::new(&tree).eval(&Query::{ctor}({text:?}))\n\
             {text}\n",
            id = record.id,
            fp = record.tree_fingerprint,
            nodes = self.stats().nodes,
            source = record.source,
            ctor = match record.source.as_str() {
                "cq" => "cq",
                "datalog" => "datalog",
                _ => "xpath",
            },
            text = record.query,
        );
        treequery_obs::flight::SlowDetail {
            explain,
            reproducer,
        }
    }

    /// The Chrome Trace Event JSON of the most recently flight-recorded
    /// query (`{"traceEvents": [...]}`, loadable in Perfetto and
    /// `chrome://tracing`). `None` when the flight recorder is off or has
    /// recorded nothing yet. Note the flight ring is process-global: the
    /// latest record may come from another engine.
    pub fn trace_last_query(&self) -> Option<treequery_obs::Json> {
        let record = treequery_obs::flight::latest()?;
        Some(treequery_obs::traceexport::chrome_trace(&[record]))
    }

    /// Evaluates an already-lowered query with a forced [`Strategy`] and
    /// an explicit worker count, bypassing both the planner and the
    /// parallelism policy. This is the strategy-forcing hook behind
    /// differential testing (`treequery-fuzz`): every strategy in
    /// [`plan::applicable_strategies`] must produce the same answer at
    /// every worker count.
    ///
    /// The strategy must be applicable to the IR; forcing an inapplicable
    /// one (e.g. the acyclic-CQ route without a Proposition 4.2 lowering,
    /// or arc-consistency on a non-tractable query) panics in the
    /// executor. Note [`Strategy::CqXProperty`] answers only the Boolean
    /// question — its tuple set is `{()}` or `{}` even for queries with a
    /// head.
    pub fn eval_ir_via(
        &self,
        ir: &QueryIr,
        strategy: Strategy,
        workers: usize,
    ) -> Result<QueryOutput, EngineError> {
        let workers = workers.max(1);
        let forced_plan = ExplainedPlan {
            source: ir.source,
            strategy,
            cost: CostClass::Linear,
            estimated_work: 0,
            rationale: format!("forced by caller: {strategy}"),
            workers,
            parallel_rationale: format!("forced by caller: {workers} workers"),
            query_fingerprint: ir.fingerprint,
        };
        plan::exec::execute(ir, &forced_plan, self.tree, &self.metrics)
    }

    /// Evaluates many queries over the one tree on the shared worker
    /// pool.
    ///
    /// Results come back in input order, each independently fallible. The
    /// parallelism is [`EngineConfig::batch_threads`] (default:
    /// [`plan::default_workers`], capped by the batch size); workers share
    /// the plan cache and metrics, and the threads themselves are the
    /// persistent process-wide [`plan::WorkerPool`] — no per-call thread
    /// spawning.
    pub fn eval_batch(&self, queries: &[Query]) -> Vec<Result<QueryOutput, EngineError>> {
        plan::Metrics::add_batch(&self.metrics, queries.len() as u64);
        if queries.is_empty() {
            return Vec::new();
        }
        let threads = self
            .config
            .batch_threads
            .unwrap_or_else(plan::default_workers)
            .clamp(1, queries.len());
        if threads == 1 {
            return queries.iter().map(|q| self.eval(q)).collect();
        }
        let tasks: Vec<Box<dyn FnOnce() -> Result<QueryOutput, EngineError> + Send + '_>> = queries
            .iter()
            .map(|q| {
                Box::new(move || self.eval(q))
                    as Box<dyn FnOnce() -> Result<QueryOutput, EngineError> + Send + '_>
            })
            .collect();
        let mut span = treequery_obs::span("pipeline.batch_merge");
        let results = plan::WorkerPool::global().run_scoped(threads, tasks);
        span.record_u64("results", results.len() as u64);
        results
    }

    /// Evaluates a Core XPath query (from the virtual document node),
    /// returning the selected nodes in document order. Thin shim over the
    /// pipeline: the planner picks between the set-at-a-time sweep and
    /// the acyclic-CQ route.
    pub fn xpath(&self, query: &str) -> Result<Vec<NodeId>, EngineError> {
        match self.eval(&Query::xpath(query))? {
            QueryOutput::Nodes(v) => Ok(v),
            QueryOutput::Answer(_) => unreachable!("XPath evaluates to a node set"),
        }
    }

    /// Evaluates a Core XPath query with an explicit, forced strategy
    /// (bypassing the planner; used for cross-checking).
    pub fn xpath_via(
        &self,
        query: &str,
        strategy: XPathStrategy,
    ) -> Result<Vec<NodeId>, EngineError> {
        let path = xpath::parse_xpath(query).map_err(EngineError::XPath)?;
        let ir = plan::ir::lower_path(&path);
        let forced = match strategy {
            XPathStrategy::SetAtATime => Strategy::XPathSetAtATime,
            XPathStrategy::Reference => Strategy::XPathReference,
            XPathStrategy::Datalog => Strategy::XPathViaDatalog,
            XPathStrategy::AcyclicCq => {
                if ir.lowered_cq.is_none() {
                    // Recover the precise non-conjunctive reason.
                    let e = xpath::to_cq(&path).expect_err("lowering failed");
                    return Err(EngineError::XPath(xpath::XPathParseError {
                        offset: 0,
                        message: e.to_string(),
                    }));
                }
                Strategy::XPathViaAcyclicCq
            }
        };
        let mut forced_plan = ExplainedPlan {
            source: SourceLang::XPath,
            strategy: forced,
            cost: CostClass::Linear,
            estimated_work: 0,
            rationale: format!("forced by caller: {forced}"),
            workers: 1,
            parallel_rationale: String::new(),
            query_fingerprint: ir.fingerprint,
        };
        // Forcing a strategy bypasses the planner, not the parallelism
        // policy: the forced plan still gets the configured decision.
        forced_plan.decide_parallel(self.stats(), &self.config.planner);
        match plan::exec::execute(&ir, &forced_plan, self.tree, &self.metrics)? {
            QueryOutput::Nodes(v) => Ok(v),
            QueryOutput::Answer(_) => unreachable!("XPath evaluates to a node set"),
        }
    }

    /// The plan the engine would choose for a conjunctive query.
    ///
    /// Statistics-aware: on very small trees the planner may prefer
    /// backtracking over a large rewrite union.
    pub fn cq_plan(&self, q: &cq::Cq) -> CqPlan {
        let ir = plan::ir::lower_cq(q);
        match self.plan_for(&ir).strategy {
            Strategy::CqAcyclic => CqPlan::Acyclic,
            Strategy::CqXProperty(order) => CqPlan::XProperty(order),
            Strategy::CqRewriteUnion(k) => CqPlan::RewriteUnion(k),
            Strategy::CqBacktrack => CqPlan::Backtrack,
            other => unreachable!("non-CQ strategy {other} for a CQ"),
        }
    }

    /// Evaluates a conjunctive query (textual syntax; see
    /// [`cq::parse_cq`]), choosing the technique via the planner.
    pub fn cq(&self, query: &str) -> Result<CqAnswer, EngineError> {
        match self.eval(&Query::cq(query))? {
            QueryOutput::Answer(a) => Ok(a),
            QueryOutput::Nodes(_) => unreachable!("CQs evaluate to tuple answers"),
        }
    }

    /// Evaluates an already-parsed conjunctive query.
    pub fn eval_cq(&self, q: &cq::Cq) -> CqAnswer {
        let ir = plan::ir::lower_cq(q);
        match self.eval_ir(&ir).expect("parsed CQs evaluate infallibly") {
            QueryOutput::Answer(a) => a,
            QueryOutput::Nodes(_) => unreachable!("CQs evaluate to tuple answers"),
        }
    }

    /// Evaluates a monadic datalog program (textual syntax; see
    /// [`datalog::parse_program`]): the extension of its query predicate,
    /// in document order.
    pub fn datalog(&self, program: &str) -> Result<Vec<NodeId>, EngineError> {
        match self.eval(&Query::datalog(program))? {
            QueryOutput::Nodes(v) => Ok(v),
            QueryOutput::Answer(_) => unreachable!("datalog evaluates to a node set"),
        }
    }

    /// Streams the tree's events through a compiled selecting evaluator:
    /// the selected nodes in document order, plus buffering statistics
    /// (see `streaming::select_events`).
    pub fn stream_select(
        &self,
        query: &str,
    ) -> Result<(Vec<NodeId>, streaming::SelectStats), EngineError> {
        let filter = self.stream_filter(query)?;
        Ok(streaming::select_tree(&filter, self.tree))
    }

    /// Compiles an XPath query for stream filtering, eliminating backward
    /// axes if necessary (the `streaming::compile_with_rewrite` seam).
    pub fn stream_filter(&self, query: &str) -> Result<streaming::FilterQuery, EngineError> {
        let path = xpath::parse_xpath(query).map_err(EngineError::XPath)?;
        let (filter, _rewritten) = streaming::compile_with_rewrite(&path)
            .map_err(|e| EngineError::NotStreamable(e.to_string()))?;
        Ok(filter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_fixture() -> Tree {
        parse_term("r(a(b(c) b) a(c(b)) b(a))").unwrap()
    }

    #[test]
    fn xpath_strategies_agree() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        for q in ["//a[b]/c", "//b[not(c)]", "//a/following-sibling::b"] {
            let base = e.xpath(q).unwrap();
            assert_eq!(
                e.xpath_via(q, XPathStrategy::Reference).unwrap(),
                base,
                "{q}"
            );
            assert_eq!(e.xpath_via(q, XPathStrategy::Datalog).unwrap(), base, "{q}");
        }
        // Conjunctive-only route.
        let q = "//a[b]/c";
        assert_eq!(
            e.xpath_via(q, XPathStrategy::AcyclicCq).unwrap(),
            e.xpath(q).unwrap()
        );
        // Forcing the CQ route on a non-conjunctive query errors.
        assert!(e
            .xpath_via("//a[not(b)]", XPathStrategy::AcyclicCq)
            .is_err());
    }

    #[test]
    fn applicable_strategies_cover_the_planner_choice() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        for q in [
            Query::xpath("//a[b]/c"),
            Query::xpath("//a[not(b)]"),
            Query::cq("q(x) :- label(x, a), child(x, y), label(y, b)."),
            Query::cq("child+(x, y), child+(y, z), child+(x, z)"),
            Query::cq("q(x, y) :- child(z, x), child(z, y), pre_lt(x, y)."),
            Query::datalog("P(x) :- label(x, a). ?- P."),
        ] {
            let ir = e.lower(&q).unwrap();
            let all = plan::applicable_strategies(&ir);
            let chosen = e.explain(&q).unwrap().strategy;
            assert!(all.contains(&chosen), "{q:?}: {chosen} not in {all:?}");
        }
    }

    #[test]
    fn eval_ir_via_agrees_across_strategies_and_workers() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        for q in [
            Query::xpath("//a[b]/c"),
            Query::xpath("//a[not(b)] | //c"),
            Query::cq("q(x) :- label(x, a), child(x, y), label(y, b)."),
            Query::cq("child+(x, y), child+(y, z), child+(x, z)"),
            Query::datalog("P(x) :- label(x, b). ?- P."),
        ] {
            let ir = e.lower(&q).unwrap();
            let base = e.eval_ir(&ir).unwrap();
            for s in plan::applicable_strategies(&ir) {
                for workers in [1, 4] {
                    let got = e.eval_ir_via(&ir, s, workers).unwrap();
                    match (&got, &base) {
                        (QueryOutput::Nodes(g), QueryOutput::Nodes(b)) => {
                            assert_eq!(g, b, "{q:?} via {s} x{workers}")
                        }
                        (QueryOutput::Answer(g), QueryOutput::Answer(b)) => {
                            // Arc-consistency answers only the Boolean
                            // question; everything else must match on
                            // tuples.
                            if matches!(s, Strategy::CqXProperty(_)) {
                                assert_eq!(
                                    g.is_satisfiable(),
                                    b.is_satisfiable(),
                                    "{q:?} via {s} x{workers}"
                                );
                            } else {
                                assert_eq!(g.tuples, b.tuples, "{q:?} via {s} x{workers}");
                            }
                        }
                        _ => panic!("{q:?} via {s}: output kind changed"),
                    }
                }
            }
        }
    }

    #[test]
    fn cq_planner_routes_correctly() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        // Acyclic.
        let a = e
            .cq("q(x) :- label(x, a), child(x, y), label(y, b).")
            .unwrap();
        assert_eq!(a.plan, CqPlan::Acyclic);
        assert!(a.is_satisfiable());
        // Cyclic but τ1: X-property.
        let x = e.cq("child+(x, y), child+(y, z), child+(x, z)").unwrap();
        assert_eq!(x.plan, CqPlan::XProperty(Order::Pre));
        assert!(x.is_satisfiable());
        // Cyclic, NP-hard signature, non-Boolean: rewrite.
        let r = e
            .cq("q(z) :- child(x, y), child+(y, z), child+(x, z), label(x, r).")
            .unwrap();
        assert!(matches!(r.plan, CqPlan::RewriteUnion(_)));
        // With <pre: backtracking.
        let b = e
            .cq("q(x, y) :- child(z, x), child(z, y), pre_lt(x, y).")
            .unwrap();
        assert_eq!(b.plan, CqPlan::Backtrack);
    }

    #[test]
    fn cq_plans_agree_with_backtracking() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        for qs in [
            "q(x) :- label(x, a), child(x, y), label(y, b).",
            "child+(x, y), child+(y, z), child+(x, z)",
            "q(z) :- child(x, y), child+(y, z), child+(x, z), label(x, r).",
        ] {
            let q = cq::parse_cq(qs).unwrap();
            let fast = e.eval_cq(&q);
            let slow = cq::eval_backtrack(&q, &t);
            if q.is_boolean() {
                assert_eq!(fast.is_satisfiable(), !slow.is_empty(), "{qs}");
            } else {
                assert_eq!(fast.tuples, slow, "{qs}");
            }
        }
    }

    #[test]
    fn datalog_entry_point() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        let nodes = e
            .datalog(
                "P0(x) :- label(x, c).
                 P0(x0) :- nextsibling(x0, x), P0(x).
                 P(x0) :- firstchild(x0, x), P0(x).
                 P0(x) :- P(x).
                 ?- P.",
            )
            .unwrap();
        // Nodes with a c-descendant.
        for v in t.nodes() {
            let expect = t
                .nodes()
                .any(|u| t.is_ancestor(v, u) && t.label_name(u) == "c");
            assert_eq!(nodes.contains(&v), expect, "{v:?}");
        }
    }

    #[test]
    fn stream_select_agrees_with_xpath() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        for q in ["//a[b]/c", "//b", "//a[not(b)]"] {
            let (got, _) = e.stream_select(q).unwrap();
            assert_eq!(got, e.xpath(q).unwrap(), "{q}");
        }
    }

    #[test]
    fn stream_filter_with_rewriting() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        let f = e.stream_filter("//b/parent::a").unwrap();
        let (matched, _) = streaming::matches_tree(&f, &t);
        assert!(matched);
        assert!(e.stream_filter("//a[following::b]").is_err());
    }

    #[test]
    fn errors_are_reported() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        assert!(matches!(e.xpath("//["), Err(EngineError::XPath(_))));
        assert!(matches!(e.cq("frob(x, y, z)"), Err(EngineError::Cq(_))));
        assert!(matches!(e.datalog("P(x) :-"), Err(EngineError::Datalog(_))));
    }

    #[test]
    fn explain_covers_all_three_front_ends() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        let x = e.explain(&Query::xpath("//a[b]")).unwrap();
        assert_eq!(x.source, SourceLang::XPath);
        assert!(!x.rationale.is_empty());
        let c = e.explain(&Query::cq("q(x) :- label(x, a).")).unwrap();
        assert_eq!(c.source, SourceLang::Cq);
        let d = e
            .explain(&Query::datalog("P(x) :- label(x, a). ?- P."))
            .unwrap();
        assert_eq!(d.source, SourceLang::Datalog);
        assert_eq!(d.strategy, Strategy::DatalogGround);
    }

    #[test]
    fn plan_cache_and_metrics_observe_the_pipeline() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        e.xpath("//a[b]").unwrap();
        e.xpath("//a[b]").unwrap();
        // Equivalent normalized form → same cache entry.
        e.xpath("descendant::a[child::b]").unwrap();
        let m = e.metrics();
        assert_eq!(m.queries_lowered, 3);
        assert_eq!(m.queries_executed, 3);
        assert_eq!(m.plan_cache_misses, 1);
        assert_eq!(m.plan_cache_hits, 2);
        assert_eq!(e.cached_plans(), 1);
        e.reset_metrics();
        assert_eq!(e.metrics(), MetricsSnapshot::default());
    }

    #[test]
    fn explain_analyze_merges_rationale_with_measurements() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        let a = e
            .explain_analyze(&Query::cq("q(x) :- label(x, a), child(x, y), label(y, b)."))
            .unwrap();
        // Planner rationale is carried through…
        assert_eq!(a.plan.strategy, Strategy::CqAcyclic);
        assert!(!a.plan.rationale.is_empty());
        // …alongside a consistent single-run counter delta…
        assert_eq!(a.counters.queries_lowered, 1);
        assert_eq!(a.counters.queries_executed, 1);
        assert_eq!(a.counters.semijoin_passes, 6, "2 passes per atom");
        // …and measured stages with their structured fields.
        let names: Vec<&str> = a.stages.iter().map(|s| s.name).collect();
        for expected in ["pipeline.lower", "exec.run", "exec.semijoin", "cq.reduce"] {
            assert!(
                names.contains(&expected),
                "missing stage {expected}: {names:?}"
            );
        }
        let semijoin = a.stages.iter().find(|s| s.name == "exec.semijoin").unwrap();
        assert_eq!(semijoin.calls, 1);
        assert!(semijoin.fields.contains(&("passes", 6)));
        assert_eq!(a.output_rows, 1);
        assert_eq!(a.output.answer().unwrap().tuples.len(), 1);
        // The renderer shows the plan and every measured stage.
        let text = a.render();
        assert!(text.contains("EXPLAIN ANALYZE [cq]"), "{text}");
        assert!(text.contains("cq/acyclic"), "{text}");
        assert!(text.contains("exec.semijoin"), "{text}");
        assert!(text.contains("semijoin_passes=6"), "{text}");
        // The JSON form parses back.
        let v = treequery_obs::parse_json(&a.to_json().render()).unwrap();
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("semijoin_passes")
                .unwrap()
                .as_u64(),
            Some(6)
        );
        // A recorder is no longer installed after the call.
        assert!(!treequery_obs::recording());
    }

    #[test]
    fn explain_analyze_observes_the_plan_cache() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        let first = e.explain_analyze(&Query::xpath("//a[b]")).unwrap();
        assert_eq!(first.counters.plan_cache_misses, 1);
        assert_eq!(first.counters.plan_cache_hits, 0);
        assert_eq!(first.counters.plans_computed, 1);
        let second = e.explain_analyze(&Query::xpath("//a[b]")).unwrap();
        assert_eq!(second.counters.plan_cache_misses, 0);
        assert_eq!(second.counters.plan_cache_hits, 1);
        assert_eq!(second.counters.plans_computed, 0);
        // Equivalent normalized spelling still hits…
        let alias = e
            .explain_analyze(&Query::xpath("descendant::a[child::b]"))
            .unwrap();
        assert_eq!(alias.counters.plan_cache_hits, 1);
        // …while a fingerprint-distinct query misses again.
        let other = e.explain_analyze(&Query::xpath("//b")).unwrap();
        assert_eq!(other.counters.plan_cache_misses, 1);
        assert_eq!(e.cached_plans(), 2);
        // Cache-lookup spans carry the hit flag via the stage list.
        let lookup = second
            .stages
            .iter()
            .find(|s| s.name == "pipeline.cache_lookup")
            .unwrap();
        assert_eq!(lookup.calls, 1);
    }

    #[test]
    fn quiesced_snapshot_matches_plain_snapshot_at_rest() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        e.xpath("//a").unwrap();
        e.cq("q(x) :- label(x, a).").unwrap();
        // At rest the quiesced read and the plain read must agree.
        assert_eq!(e.metrics.snapshot_quiesced(), e.metrics());
    }

    #[test]
    fn eval_batch_matches_sequential() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        let queries: Vec<Query> = vec![
            Query::xpath("//a[b]/c"),
            Query::cq("q(x) :- label(x, a), child(x, y), label(y, b)."),
            Query::datalog("P(x) :- label(x, b). ?- P."),
            Query::xpath("//["), // parse error rides along
            Query::xpath("//b"),
        ];
        let batch = e.eval_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (i, q) in queries.iter().enumerate() {
            match (&batch[i], e.eval(q)) {
                (Ok(b), Ok(s)) => assert_eq!(*b, s, "query {i}"),
                (Err(_), Err(_)) => {}
                (b, s) => panic!("query {i}: batch {b:?} vs sequential {s:?}"),
            }
        }
        assert_eq!(e.metrics().batch_queries, queries.len() as u64);
    }

    #[test]
    fn eval_batch_handles_empty_batches_and_oversized_pools() {
        let t = engine_fixture();
        let e = Engine::with_config(
            &t,
            EngineConfig {
                // More threads than queries: the pool clamps to the batch.
                batch_threads: Some(8),
                ..EngineConfig::default()
            },
        );
        assert!(e.eval_batch(&[]).is_empty());
        assert_eq!(e.metrics().batch_queries, 0);
        let queries = vec![
            Query::xpath("//a"),
            Query::xpath("//b"),
            Query::cq("q(x) :- label(x, a)."),
        ];
        let batch = e.eval_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batch[i].as_ref().unwrap(), &e.eval(q).unwrap(), "query {i}");
        }
        assert_eq!(e.metrics().batch_queries, queries.len() as u64);
    }
}
