#![warn(missing_docs)]

//! `treequery-core`: the unified engine over all the techniques of Koch,
//! *Processing Queries on Tree-Structured Data Efficiently* (PODS 2006).
//!
//! The sibling crates implement the paper's five technique families; this
//! crate re-exports them and adds [`Engine`], a small planner that routes
//! each query to the right technique:
//!
//! * **Core XPath** → the set-at-a-time evaluator (`O(|D| · |Q|)`); the
//!   monadic-datalog and acyclic-CQ routes are available for
//!   cross-checking ([`XPathStrategy`]);
//! * **conjunctive queries** → acyclic queries run through Yannakakis'
//!   full reducer with backtrack-free enumeration; cyclic queries over an
//!   X-property signature (Theorem 6.8) run through arc-consistency +
//!   minimum valuation; everything else is rewritten into a union of
//!   acyclic queries (Theorem 5.1), with exponential backtracking as the
//!   last resort;
//! * **monadic datalog** → grounding + Minoux's algorithm (Theorem 3.2);
//! * **streaming** → the depth-bounded filter for forward queries, with
//!   automatic backward-axis elimination.

use std::collections::BTreeSet;

pub use treequery_automata as automata;
pub use treequery_cq as cq;
pub use treequery_datalog as datalog;
pub use treequery_hornsat as hornsat;
pub use treequery_storage as storage;
pub use treequery_streaming as streaming;
pub use treequery_tree as tree;
pub use treequery_xpath as xpath;

pub use treequery_tree::{
    parse_term, parse_xml, to_xml, Axis, NodeId, NodeSet, Order, Tree, TreeBuilder,
};

/// Errors surfaced by the [`Engine`].
#[derive(Debug)]
pub enum EngineError {
    /// The XPath expression did not parse.
    XPath(xpath::XPathParseError),
    /// The conjunctive query did not parse.
    Cq(cq::CqParseError),
    /// The datalog program did not parse.
    Datalog(datalog::ParseError),
    /// The datalog program has no query predicate.
    NoQueryPredicate,
    /// The query cannot be streamed, even after backward-axis elimination.
    NotStreamable(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::XPath(e) => write!(f, "{e}"),
            EngineError::Cq(e) => write!(f, "{e}"),
            EngineError::Datalog(e) => write!(f, "{e}"),
            EngineError::NoQueryPredicate => f.write_str("datalog program has no query predicate"),
            EngineError::NotStreamable(m) => write!(f, "not streamable: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Which implementation evaluates a Core XPath query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum XPathStrategy {
    /// The set-at-a-time evaluator (default; `O(|D| · |Q|)`).
    SetAtATime,
    /// The literal (P1)–(P4)/(Q1)–(Q5) semantics (slow; oracle).
    Reference,
    /// Translation to monadic datalog + Minoux (Theorem 3.2 route).
    Datalog,
    /// Translation of conjunctive queries to acyclic CQs + Yannakakis
    /// (Proposition 4.2 route; fails on non-conjunctive queries).
    AcyclicCq,
}

/// The technique the planner chose for a conjunctive query (Figure 7's
/// landscape operationalized).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CqPlan {
    /// The query is acyclic: full reducer + backtrack-free enumeration
    /// (`O(|Q| · ||A|| + output)`).
    Acyclic,
    /// Cyclic but inside an X-property class: arc-consistency + minimum
    /// valuation w.r.t. the certified order (Theorem 6.5); Boolean
    /// answer.
    XProperty(Order),
    /// Rewritten into an equivalent union of this many acyclic queries
    /// (Theorem 5.1).
    RewriteUnion(usize),
    /// NP-hard shape with `<pre` atoms: exponential backtracking.
    Backtrack,
}

/// The answer to a conjunctive query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CqAnswer {
    /// The result tuples (the empty tuple for satisfied Boolean queries).
    pub tuples: BTreeSet<Vec<NodeId>>,
    /// The technique used.
    pub plan: CqPlan,
}

impl CqAnswer {
    /// Boolean view: at least one tuple.
    pub fn is_satisfiable(&self) -> bool {
        !self.tuples.is_empty()
    }
}

/// A query engine bound to one (frozen) tree.
pub struct Engine<'t> {
    tree: &'t Tree,
}

impl<'t> Engine<'t> {
    /// Creates an engine over a tree.
    pub fn new(tree: &'t Tree) -> Self {
        Engine { tree }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &'t Tree {
        self.tree
    }

    /// Evaluates a Core XPath query (from the virtual document node),
    /// returning the selected nodes in document order.
    pub fn xpath(&self, query: &str) -> Result<Vec<NodeId>, EngineError> {
        self.xpath_via(query, XPathStrategy::SetAtATime)
    }

    /// Evaluates a Core XPath query with an explicit strategy.
    pub fn xpath_via(
        &self,
        query: &str,
        strategy: XPathStrategy,
    ) -> Result<Vec<NodeId>, EngineError> {
        let path = xpath::parse_xpath(query).map_err(EngineError::XPath)?;
        let set = match strategy {
            XPathStrategy::SetAtATime => xpath::eval_query(&path, self.tree),
            XPathStrategy::Reference => xpath::eval_reference(&path, self.tree),
            XPathStrategy::Datalog => {
                let prog = xpath::to_datalog(&path);
                datalog::eval_query(&prog, self.tree)
            }
            XPathStrategy::AcyclicCq => {
                let q = xpath::to_cq(&path).map_err(|e| {
                    EngineError::XPath(xpath::XPathParseError {
                        offset: 0,
                        message: e.to_string(),
                    })
                })?;
                let tuples =
                    cq::eval_acyclic(&q, self.tree).expect("XPath translations are acyclic");
                NodeSet::from_iter(self.tree.len(), tuples.into_iter().map(|t| t[0]))
            }
        };
        let mut nodes = set.to_vec();
        self.tree.sort_by_pre(&mut nodes);
        Ok(nodes)
    }

    /// The plan the engine would choose for a conjunctive query.
    pub fn cq_plan(&self, q: &cq::Cq) -> CqPlan {
        let n = q.normalize_forward();
        if cq::is_acyclic(&n) {
            return CqPlan::Acyclic;
        }
        if n.is_boolean() {
            if let cq::Tractability::Tractable(order) = cq::classify(&n) {
                return CqPlan::XProperty(order);
            }
        }
        match cq::rewrite_to_acyclic(&n) {
            Ok((parts, _)) => CqPlan::RewriteUnion(parts.len()),
            Err(_) => CqPlan::Backtrack,
        }
    }

    /// Evaluates a conjunctive query (textual syntax; see
    /// [`cq::parse_cq`]), choosing the technique per [`Engine::cq_plan`].
    pub fn cq(&self, query: &str) -> Result<CqAnswer, EngineError> {
        let q = cq::parse_cq(query).map_err(EngineError::Cq)?;
        Ok(self.eval_cq(&q))
    }

    /// Evaluates an already-parsed conjunctive query.
    pub fn eval_cq(&self, q: &cq::Cq) -> CqAnswer {
        let plan = self.cq_plan(q);
        let tuples = match plan {
            CqPlan::Acyclic => cq::eval_acyclic(q, self.tree).expect("planned acyclic"),
            CqPlan::XProperty(_) => {
                match cq::eval_x_property(q, self.tree).expect("planned tractable") {
                    Some(_witness) => std::iter::once(Vec::new()).collect(),
                    None => BTreeSet::new(),
                }
            }
            CqPlan::RewriteUnion(_) => {
                cq::rewrite::eval_via_rewrite(q, self.tree).expect("planned rewritable")
            }
            CqPlan::Backtrack => cq::eval_backtrack(q, self.tree),
        };
        CqAnswer { tuples, plan }
    }

    /// Evaluates a monadic datalog program (textual syntax; see
    /// [`datalog::parse_program`]): the extension of its query predicate,
    /// in document order.
    pub fn datalog(&self, program: &str) -> Result<Vec<NodeId>, EngineError> {
        let prog = datalog::parse_program(program).map_err(EngineError::Datalog)?;
        if prog.query.is_none() {
            return Err(EngineError::NoQueryPredicate);
        }
        let set = datalog::eval_query(&prog, self.tree);
        let mut nodes = set.to_vec();
        self.tree.sort_by_pre(&mut nodes);
        Ok(nodes)
    }

    /// Streams the tree's events through a compiled selecting evaluator:
    /// the selected nodes in document order, plus buffering statistics
    /// (see `streaming::select_events`).
    pub fn stream_select(
        &self,
        query: &str,
    ) -> Result<(Vec<NodeId>, streaming::SelectStats), EngineError> {
        let filter = self.stream_filter(query)?;
        Ok(streaming::select_tree(&filter, self.tree))
    }

    /// Compiles an XPath query for stream filtering, eliminating backward
    /// axes if necessary.
    pub fn stream_filter(&self, query: &str) -> Result<streaming::FilterQuery, EngineError> {
        let path = xpath::parse_xpath(query).map_err(EngineError::XPath)?;
        match streaming::compile(&path) {
            Ok(f) => Ok(f),
            Err(first_err) => {
                let fwd = streaming::eliminate_upward(&path)
                    .ok_or_else(|| EngineError::NotStreamable(first_err.to_string()))?;
                streaming::compile(&fwd).map_err(|e| EngineError::NotStreamable(e.to_string()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_fixture() -> Tree {
        parse_term("r(a(b(c) b) a(c(b)) b(a))").unwrap()
    }

    #[test]
    fn xpath_strategies_agree() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        for q in ["//a[b]/c", "//b[not(c)]", "//a/following-sibling::b"] {
            let base = e.xpath(q).unwrap();
            assert_eq!(
                e.xpath_via(q, XPathStrategy::Reference).unwrap(),
                base,
                "{q}"
            );
            assert_eq!(e.xpath_via(q, XPathStrategy::Datalog).unwrap(), base, "{q}");
        }
        // Conjunctive-only route.
        let q = "//a[b]/c";
        assert_eq!(
            e.xpath_via(q, XPathStrategy::AcyclicCq).unwrap(),
            e.xpath(q).unwrap()
        );
    }

    #[test]
    fn cq_planner_routes_correctly() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        // Acyclic.
        let a = e
            .cq("q(x) :- label(x, a), child(x, y), label(y, b).")
            .unwrap();
        assert_eq!(a.plan, CqPlan::Acyclic);
        assert!(a.is_satisfiable());
        // Cyclic but τ1: X-property.
        let x = e.cq("child+(x, y), child+(y, z), child+(x, z)").unwrap();
        assert_eq!(x.plan, CqPlan::XProperty(Order::Pre));
        assert!(x.is_satisfiable());
        // Cyclic, NP-hard signature, non-Boolean: rewrite.
        let r = e
            .cq("q(z) :- child(x, y), child+(y, z), child+(x, z), label(x, r).")
            .unwrap();
        assert!(matches!(r.plan, CqPlan::RewriteUnion(_)));
        // With <pre: backtracking.
        let b = e
            .cq("q(x, y) :- child(z, x), child(z, y), pre_lt(x, y).")
            .unwrap();
        assert_eq!(b.plan, CqPlan::Backtrack);
    }

    #[test]
    fn cq_plans_agree_with_backtracking() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        for qs in [
            "q(x) :- label(x, a), child(x, y), label(y, b).",
            "child+(x, y), child+(y, z), child+(x, z)",
            "q(z) :- child(x, y), child+(y, z), child+(x, z), label(x, r).",
        ] {
            let q = cq::parse_cq(qs).unwrap();
            let fast = e.eval_cq(&q);
            let slow = cq::eval_backtrack(&q, &t);
            if q.is_boolean() {
                assert_eq!(fast.is_satisfiable(), !slow.is_empty(), "{qs}");
            } else {
                assert_eq!(fast.tuples, slow, "{qs}");
            }
        }
    }

    #[test]
    fn datalog_entry_point() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        let nodes = e
            .datalog(
                "P0(x) :- label(x, c).
                 P0(x0) :- nextsibling(x0, x), P0(x).
                 P(x0) :- firstchild(x0, x), P0(x).
                 P0(x) :- P(x).
                 ?- P.",
            )
            .unwrap();
        // Nodes with a c-descendant.
        for v in t.nodes() {
            let expect = t
                .nodes()
                .any(|u| t.is_ancestor(v, u) && t.label_name(u) == "c");
            assert_eq!(nodes.contains(&v), expect, "{v:?}");
        }
    }

    #[test]
    fn stream_select_agrees_with_xpath() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        for q in ["//a[b]/c", "//b", "//a[not(b)]"] {
            let (got, _) = e.stream_select(q).unwrap();
            assert_eq!(got, e.xpath(q).unwrap(), "{q}");
        }
    }

    #[test]
    fn stream_filter_with_rewriting() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        let f = e.stream_filter("//b/parent::a").unwrap();
        let (matched, _) = streaming::matches_tree(&f, &t);
        assert!(matched);
        assert!(e.stream_filter("//a[following::b]").is_err());
    }

    #[test]
    fn errors_are_reported() {
        let t = engine_fixture();
        let e = Engine::new(&t);
        assert!(matches!(e.xpath("//["), Err(EngineError::XPath(_))));
        assert!(matches!(e.cq("frob(x, y, z)"), Err(EngineError::Cq(_))));
        assert!(matches!(e.datalog("P(x) :-"), Err(EngineError::Datalog(_))));
    }
}
