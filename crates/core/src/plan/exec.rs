//! The instrumented executor: runs an [`ExplainedPlan`] against a tree,
//! counting work per pipeline stage, and hosts the plan cache keyed by
//! `(query fingerprint, tree fingerprint)`.

use std::collections::BTreeSet;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use treequery_cq as cq;
use treequery_datalog as datalog;
use treequery_obs::alloc::AllocScope;
use treequery_tree::{NodeId, NodeSet, Tree};
use treequery_xpath as xpath;

use super::ir::{IrBody, QueryIr};
use super::planner::{ExplainedPlan, Strategy};
use crate::{CqAnswer, CqPlan, EngineError};

/// The result of evaluating one query through the pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryOutput {
    /// A node-set answer in document order (XPath, datalog).
    Nodes(Vec<NodeId>),
    /// A tuple answer (conjunctive queries).
    Answer(CqAnswer),
}

impl QueryOutput {
    /// The node list, when the answer is a node set.
    pub fn nodes(&self) -> Option<&[NodeId]> {
        match self {
            QueryOutput::Nodes(v) => Some(v),
            QueryOutput::Answer(_) => None,
        }
    }

    /// The tuple answer, when the query was conjunctive.
    pub fn answer(&self) -> Option<&CqAnswer> {
        match self {
            QueryOutput::Nodes(_) => None,
            QueryOutput::Answer(a) => Some(a),
        }
    }
}

/// Per-stage work counters, updated atomically so batch workers can share
/// one instance. Read with [`Metrics::snapshot`].
#[derive(Debug, Default)]
pub struct Metrics {
    /// Queries lowered into the IR.
    pub queries_lowered: AtomicU64,
    /// Plans computed by the planner (cache misses included).
    pub plans_computed: AtomicU64,
    /// Plan-cache hits.
    pub plan_cache_hits: AtomicU64,
    /// Plan-cache misses.
    pub plan_cache_misses: AtomicU64,
    /// Queries executed end to end.
    pub queries_executed: AtomicU64,
    /// Queries aborted by cooperative cancellation (explicit CANCEL or a
    /// passed deadline observed at a chunk boundary).
    pub queries_cancelled: AtomicU64,
    /// Queries submitted through `eval_batch`.
    pub batch_queries: AtomicU64,
    /// Semijoin passes run by full reducers (2 per atom per reduced
    /// query).
    pub semijoin_passes: AtomicU64,
    /// Total size of the reduced candidate sets (the `||A||` the
    /// output-sensitive bound charges).
    pub candidate_nodes: AtomicU64,
    /// Acyclic parts evaluated inside rewrite unions.
    pub union_parts: AtomicU64,
    /// Nodes touched by linear sweeps (set-at-a-time, datalog grounding).
    pub nodes_swept: AtomicU64,
    /// Variable assignments attempted by the backtracking evaluator.
    pub backtrack_assignments: AtomicU64,
    /// Kernel invocations that were dispatched to the worker pool in more
    /// than one chunk (parallel sweeps, grounding passes, joins, union
    /// parts).
    pub parallel_kernels: AtomicU64,
    /// Chunk tasks submitted to the worker pool by those kernels.
    pub parallel_chunks: AtomicU64,
}

/// A point-in-time copy of [`Metrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Queries lowered into the IR.
    pub queries_lowered: u64,
    /// Plans computed by the planner.
    pub plans_computed: u64,
    /// Plan-cache hits.
    pub plan_cache_hits: u64,
    /// Plan-cache misses.
    pub plan_cache_misses: u64,
    /// Queries executed end to end.
    pub queries_executed: u64,
    /// Queries aborted by cooperative cancellation.
    pub queries_cancelled: u64,
    /// Queries submitted through `eval_batch`.
    pub batch_queries: u64,
    /// Semijoin passes run by full reducers.
    pub semijoin_passes: u64,
    /// Total size of the reduced candidate sets.
    pub candidate_nodes: u64,
    /// Acyclic parts evaluated inside rewrite unions.
    pub union_parts: u64,
    /// Nodes touched by linear sweeps.
    pub nodes_swept: u64,
    /// Variable assignments attempted by the backtracking evaluator.
    pub backtrack_assignments: u64,
    /// Kernel invocations dispatched to the pool in more than one chunk.
    pub parallel_kernels: u64,
    /// Chunk tasks submitted to the worker pool.
    pub parallel_chunks: u64,
    /// Re-reads [`Metrics::snapshot_quiesced`] needed before two
    /// consecutive snapshots agreed (0 = the first re-read already
    /// matched). Non-zero means the snapshot was taken under concurrent
    /// load; the flight recorder uses it to tag degraded records.
    pub quiesce_retries: u32,
    /// Whether this snapshot may be torn: set only by
    /// [`Metrics::snapshot_quiesced`] when its bounded retry loop
    /// exhausted without two consecutive reads agreeing (sustained
    /// concurrent load). Individual counters are still exact; only
    /// cross-counter consistency is suspect.
    pub torn: bool,
}

impl Metrics {
    fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one IR lowering.
    pub fn add_lowered(metrics: &Metrics) {
        Metrics::add(&metrics.queries_lowered, 1);
    }

    /// Records one planner invocation.
    pub fn add_planned(metrics: &Metrics) {
        Metrics::add(&metrics.plans_computed, 1);
    }

    /// Records `n` queries submitted through a batch.
    pub fn add_batch(metrics: &Metrics, n: u64) {
        Metrics::add(&metrics.batch_queries, n);
    }

    /// Copies all counters.
    ///
    /// **Tearing semantics:** each counter is loaded independently with
    /// `Relaxed` ordering, so a snapshot taken while other threads are
    /// mid-query can mix values from different instants — e.g.
    /// `queries_executed` already incremented but that query's
    /// `semijoin_passes` not yet added. Every individual counter is still
    /// exact and monotone; only *cross-counter consistency* is not
    /// guaranteed under concurrency. For reports that must be internally
    /// consistent (single-query runs like `Engine::explain_analyze`), use
    /// [`Metrics::snapshot_quiesced`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            queries_lowered: get(&self.queries_lowered),
            plans_computed: get(&self.plans_computed),
            plan_cache_hits: get(&self.plan_cache_hits),
            plan_cache_misses: get(&self.plan_cache_misses),
            queries_executed: get(&self.queries_executed),
            queries_cancelled: get(&self.queries_cancelled),
            batch_queries: get(&self.batch_queries),
            semijoin_passes: get(&self.semijoin_passes),
            candidate_nodes: get(&self.candidate_nodes),
            union_parts: get(&self.union_parts),
            nodes_swept: get(&self.nodes_swept),
            backtrack_assignments: get(&self.backtrack_assignments),
            parallel_kernels: get(&self.parallel_kernels),
            parallel_chunks: get(&self.parallel_chunks),
            quiesce_retries: 0,
            torn: false,
        }
    }

    /// A snapshot that is consistent when the metrics have quiesced:
    /// re-reads until two consecutive snapshots agree (bounded retries),
    /// so a report taken after the last query finished never shows a torn
    /// mix of two queries' counters. Under *sustained* concurrent load
    /// there is no consistent instant to report; the helper then returns
    /// the last read with its `torn` flag set, so consumers (and
    /// `EXPLAIN ANALYZE`'s renderer) can say so instead of presenting a
    /// possibly-inconsistent snapshot as clean.
    pub fn snapshot_quiesced(&self) -> MetricsSnapshot {
        const ATTEMPTS: usize = 16;
        quiesce(ATTEMPTS, || self.snapshot())
    }

    /// Zeroes all counters.
    pub fn reset(&self) {
        let zero = |c: &AtomicU64| c.store(0, Ordering::Relaxed);
        zero(&self.queries_lowered);
        zero(&self.plans_computed);
        zero(&self.plan_cache_hits);
        zero(&self.plan_cache_misses);
        zero(&self.queries_executed);
        zero(&self.queries_cancelled);
        zero(&self.batch_queries);
        zero(&self.semijoin_passes);
        zero(&self.candidate_nodes);
        zero(&self.union_parts);
        zero(&self.nodes_swept);
        zero(&self.backtrack_assignments);
        zero(&self.parallel_kernels);
        zero(&self.parallel_chunks);
    }
}

impl MetricsSnapshot {
    /// Publishes the snapshot into the process-wide
    /// [`treequery_obs::metrics`] registry as `treequery_`-prefixed
    /// gauges, one per counter. This is the growth path for pipeline
    /// observables: the fixed atomic block stays for the hot executor
    /// counters, and anything that wants scraping (Prometheus text
    /// exposition via `obs::prom`, `harness --serve-metrics`) goes
    /// through the registry.
    pub fn publish_to_registry(&self) {
        let registry = treequery_obs::metrics::global();
        let rows: [(&'static str, &'static str, u64); 14] = [
            (
                "treequery_queries_lowered",
                "Queries lowered into the IR.",
                self.queries_lowered,
            ),
            (
                "treequery_plans_computed",
                "Plans computed by the planner.",
                self.plans_computed,
            ),
            (
                "treequery_plan_cache_hits",
                "Plan-cache hits.",
                self.plan_cache_hits,
            ),
            (
                "treequery_plan_cache_misses",
                "Plan-cache misses.",
                self.plan_cache_misses,
            ),
            (
                "treequery_queries_executed",
                "Queries executed end to end.",
                self.queries_executed,
            ),
            (
                "treequery_queries_cancelled",
                "Queries aborted by cooperative cancellation.",
                self.queries_cancelled,
            ),
            (
                "treequery_batch_queries",
                "Queries submitted through eval_batch.",
                self.batch_queries,
            ),
            (
                "treequery_semijoin_passes",
                "Semijoin passes run by full reducers.",
                self.semijoin_passes,
            ),
            (
                "treequery_candidate_nodes",
                "Total size of the reduced candidate sets.",
                self.candidate_nodes,
            ),
            (
                "treequery_union_parts",
                "Acyclic parts evaluated inside rewrite unions.",
                self.union_parts,
            ),
            (
                "treequery_nodes_swept",
                "Nodes touched by linear sweeps.",
                self.nodes_swept,
            ),
            (
                "treequery_backtrack_assignments",
                "Assignments attempted by the backtracking evaluator.",
                self.backtrack_assignments,
            ),
            (
                "treequery_parallel_kernels",
                "Kernel invocations dispatched to the pool in chunks.",
                self.parallel_kernels,
            ),
            (
                "treequery_parallel_chunks",
                "Chunk tasks submitted to the worker pool.",
                self.parallel_chunks,
            ),
        ];
        for (name, help, value) in rows {
            registry
                .gauge_or_existing(name, help)
                .set(i64::try_from(value).unwrap_or(i64::MAX));
        }
    }
}

/// The bounded-retry loop behind [`Metrics::snapshot_quiesced`],
/// parameterized over the read so tests can drive it with a
/// deterministic sequence: keep re-reading until two consecutive
/// snapshots agree; on exhaustion return the last read with `torn` set.
/// Either way the returned snapshot's `quiesce_retries` reports how many
/// re-reads disagreed before settling (reads themselves always carry 0,
/// so the equality check stays untainted by the retry count).
pub(crate) fn quiesce(
    attempts: usize,
    mut read: impl FnMut() -> MetricsSnapshot,
) -> MetricsSnapshot {
    let mut prev = read();
    for retry in 0..attempts {
        let mut next = read();
        if next == prev {
            next.quiesce_retries = retry as u32;
            return next;
        }
        prev = next;
    }
    prev.quiesce_retries = attempts as u32;
    prev.torn = true;
    prev
}

/// The plan cache: `(query fingerprint, tree fingerprint)` →
/// [`ExplainedPlan`]. Both fingerprints hash *normalized* forms, so
/// syntactically different but equivalent conjunctive paths share an
/// entry, and a second `Engine` over a structurally identical tree would
/// plan identically.
#[derive(Debug, Default)]
pub struct PlanCache {
    map: Mutex<HashMap<(u64, u64), Arc<ExplainedPlan>>>,
}

impl PlanCache {
    /// Looks up `(query_fp, tree_fp)`, computing and inserting the plan on
    /// a miss; records the hit/miss in `metrics`.
    pub fn get_or_insert(
        &self,
        query_fp: u64,
        tree_fp: u64,
        metrics: &Metrics,
        compute: impl FnOnce() -> ExplainedPlan,
    ) -> Arc<ExplainedPlan> {
        let mut map = self.map.lock().expect("plan cache poisoned");
        match map.entry((query_fp, tree_fp)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                Metrics::add(&metrics.plan_cache_hits, 1);
                Arc::clone(e.get())
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                Metrics::add(&metrics.plan_cache_misses, 1);
                Arc::clone(e.insert(Arc::new(compute())))
            }
        }
    }

    /// Moves every entry keyed under `old_tree_fp` to `new_tree_fp`: the
    /// fingerprint-delta hook a mutable document calls after an edit.
    ///
    /// Plans stay *sound* across edits — a strategy's applicability
    /// depends only on the query IR, and execution always reads the live
    /// tree — so the entries are rekeyed rather than dropped; only their
    /// cost estimates age. Entries for *other* trees sharing the cache
    /// are untouched, which is the "invalidate only the affected tree"
    /// contract shared caches rely on.
    pub fn rekey_tree(&self, old_tree_fp: u64, new_tree_fp: u64) {
        if old_tree_fp == new_tree_fp {
            return;
        }
        let mut map = self.map.lock().expect("plan cache poisoned");
        let stale: Vec<u64> = map
            .keys()
            .filter(|(_, t)| *t == old_tree_fp)
            .map(|(q, _)| *q)
            .collect();
        for q in stale {
            if let Some(plan) = map.remove(&(q, old_tree_fp)) {
                map.insert((q, new_tree_fp), plan);
            }
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map.lock().expect("plan cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached plans.
    pub fn clear(&self) {
        self.map.lock().expect("plan cache poisoned").clear();
    }
}

fn expect_path(ir: &QueryIr) -> &xpath::Path {
    match &ir.native {
        IrBody::Path(p) => p,
        _ => unreachable!("XPath strategy planned for a non-XPath IR"),
    }
}

/// Materializes a pooled result set as a pre-order node list and hands
/// the set's storage back to the scratch pool, so steady-state query
/// execution only allocates for the answer vector itself.
fn sorted_nodes(t: &Tree, set: NodeSet) -> Vec<NodeId> {
    let mut nodes = set.to_vec();
    treequery_tree::scratch::put_set(set);
    t.sort_by_pre(&mut nodes);
    nodes
}

/// Runs an acyclic CQ through the full reducer, charging the semijoin
/// passes and reduced candidate-set sizes to `metrics`. With more than
/// one worker the semijoin sweeps are dispatched chunk-wise through
/// [`super::par::PoolSweeper`].
fn run_acyclic_instrumented(
    q: &cq::Cq,
    t: &Tree,
    metrics: &Metrics,
    workers: usize,
) -> Option<BTreeSet<Vec<NodeId>>> {
    let e = {
        let mut span = treequery_obs::span("exec.semijoin");
        let _mem = AllocScope::enter("exec.semijoin");
        let e = if workers > 1 {
            let sweeper = super::par::PoolSweeper { workers, metrics };
            cq::Enumerator::with_sweeper(q, t, &sweeper)?
        } else {
            cq::Enumerator::new(q, t)?
        };
        let passes = 2 * q.atoms.len() as u64;
        Metrics::add(&metrics.semijoin_passes, passes);
        let mut candidate_total = 0u64;
        for v in 0..q.num_vars() {
            if let Some(set) = e.candidates(cq::CqVar(v as u32)) {
                candidate_total += set.len() as u64;
            }
        }
        Metrics::add(&metrics.candidate_nodes, candidate_total);
        span.record_u64("passes", passes);
        span.record_u64("candidates", candidate_total);
        e
    };
    let mut span = treequery_obs::span("exec.enumerate");
    let _mem = AllocScope::enter("exec.enumerate");
    let tuples = e.head_tuples();
    span.record_u64("tuples", tuples.len() as u64);
    Some(tuples)
}

/// Executes a planned query. The plan must have been produced from the
/// same IR (the engine guarantees this; strategies are matched against the
/// IR body and panic on impossible combinations).
pub fn execute(
    ir: &QueryIr,
    plan: &ExplainedPlan,
    tree: &Tree,
    metrics: &Metrics,
) -> Result<QueryOutput, EngineError> {
    Metrics::add(&metrics.queries_executed, 1);
    // Entry checkpoint: an already-tripped ambient token (pre-cancelled,
    // or a deadline that passed while the query sat in an admission
    // queue) fails fast without touching a kernel.
    if let Some(reason) = treequery_tree::cancel::active_reason() {
        Metrics::add(&metrics.queries_cancelled, 1);
        return Err(EngineError::Cancelled(reason));
    }
    let result = execute_kernels(ir, plan, tree, metrics);
    // Exit checkpoint: the kernels bail out cooperatively at chunk
    // boundaries but return their partial results normally; this is
    // where a cancelled run's partials are discarded and the abort
    // becomes an error. One code path — every caller (server, fuzz
    // oracle, bench suite, batch eval) funnels through here.
    if let Some(reason) = treequery_tree::cancel::active_reason() {
        Metrics::add(&metrics.queries_cancelled, 1);
        return Err(EngineError::Cancelled(reason));
    }
    result
}

/// Strategy dispatch; see [`execute`] (which wraps this in the
/// cancellation entry/exit checkpoints).
fn execute_kernels(
    ir: &QueryIr,
    plan: &ExplainedPlan,
    tree: &Tree,
    metrics: &Metrics,
) -> Result<QueryOutput, EngineError> {
    let mut run_span = treequery_obs::span("exec.run");
    let _mem = AllocScope::enter("exec.run");
    if run_span.is_recording() {
        run_span.record_str("strategy", plan.strategy.to_string());
    }
    match plan.strategy {
        Strategy::XPathSetAtATime => {
            let p = expect_path(ir);
            let swept = (tree.len() as u64).saturating_mul(p.size() as u64);
            Metrics::add(&metrics.nodes_swept, swept);
            let mut span = treequery_obs::span("exec.sweep");
            span.record_u64("nodes", tree.len() as u64);
            span.record_u64("query_size", p.size() as u64);
            span.record_u64("nodes_swept", swept);
            // The alloc scope covers only the sweep kernel: result
            // materialization below is charged to the surrounding
            // "exec.run" scope, so "exec.sweep" attribution reflects the
            // kernel's steady-state behaviour (zero after warm-up).
            let set = {
                let _mem = AllocScope::enter("exec.sweep");
                if plan.workers > 1 {
                    super::par::par_eval_query(p, tree, plan.workers, metrics)
                } else {
                    xpath::eval_query(p, tree)
                }
            };
            Ok(QueryOutput::Nodes(sorted_nodes(tree, set)))
        }
        Strategy::XPathReference => Ok(QueryOutput::Nodes(sorted_nodes(
            tree,
            xpath::eval_reference(expect_path(ir), tree),
        ))),
        Strategy::XPathViaDatalog => {
            let prog = xpath::to_datalog(expect_path(ir));
            let swept = (tree.len() as u64).saturating_mul(prog.size() as u64);
            Metrics::add(&metrics.nodes_swept, swept);
            let mut span = treequery_obs::span("exec.ground_minoux");
            span.record_u64("nodes_swept", swept);
            let set = {
                let _mem = AllocScope::enter("exec.ground_minoux");
                if plan.workers > 1 {
                    super::par::par_datalog_eval_query(&prog, tree, plan.workers, metrics)
                } else {
                    datalog::eval_query(&prog, tree)
                }
            };
            Ok(QueryOutput::Nodes(sorted_nodes(tree, set)))
        }
        Strategy::XPathViaAcyclicCq => {
            let q = ir
                .lowered_cq
                .as_ref()
                .expect("planner chose the CQ route without a lowered CQ");
            let tuples = run_acyclic_instrumented(q, tree, metrics, plan.workers)
                .expect("Proposition 4.2 CQs are acyclic");
            let set = NodeSet::from_iter(tree.len(), tuples.into_iter().map(|t| t[0]));
            Ok(QueryOutput::Nodes(sorted_nodes(tree, set)))
        }
        Strategy::CqAcyclic => {
            let q = expect_cq(ir);
            let tuples =
                run_acyclic_instrumented(q, tree, metrics, plan.workers).expect("planned acyclic");
            Ok(QueryOutput::Answer(CqAnswer {
                tuples,
                plan: CqPlan::Acyclic,
            }))
        }
        Strategy::CqXProperty(order) => {
            let q = expect_cq(ir);
            let candidates = (tree.len() as u64).saturating_mul(q.num_vars() as u64);
            Metrics::add(&metrics.candidate_nodes, candidates);
            let mut span = treequery_obs::span("exec.arc_consistency");
            let _mem = AllocScope::enter("exec.arc_consistency");
            span.record_u64("candidates", candidates);
            let tuples = match cq::eval_x_property(q, tree).expect("planned tractable") {
                Some(_witness) => std::iter::once(Vec::new()).collect(),
                None => BTreeSet::new(),
            };
            Ok(QueryOutput::Answer(CqAnswer {
                tuples,
                plan: CqPlan::XProperty(order),
            }))
        }
        Strategy::CqRewriteUnion(k) => {
            let q = expect_cq(ir);
            Metrics::add(&metrics.union_parts, k as u64);
            let passes = 2 * (k as u64).saturating_mul(q.atoms.len() as u64);
            Metrics::add(&metrics.semijoin_passes, passes);
            let mut span = treequery_obs::span("exec.union");
            span.record_u64("parts", k as u64);
            span.record_u64("passes", passes);
            let tuples = {
                let _mem = AllocScope::enter("exec.union");
                if plan.workers > 1 {
                    super::par::par_eval_via_rewrite(q, tree, plan.workers, metrics)
                        .expect("planned rewritable")
                } else {
                    cq::rewrite::eval_via_rewrite(q, tree).expect("planned rewritable")
                }
            };
            Ok(QueryOutput::Answer(CqAnswer {
                tuples,
                plan: CqPlan::RewriteUnion(k),
            }))
        }
        Strategy::CqBacktrack => {
            let q = expect_cq(ir);
            let mut span = treequery_obs::span("exec.backtrack");
            let _mem = AllocScope::enter("exec.backtrack");
            let (tuples, stats) = cq::eval_backtrack_with_stats(q, tree);
            Metrics::add(&metrics.backtrack_assignments, stats.assignments);
            span.record_u64("assignments", stats.assignments);
            Ok(QueryOutput::Answer(CqAnswer {
                tuples,
                plan: CqPlan::Backtrack,
            }))
        }
        Strategy::DatalogGround => {
            let prog = match &ir.body {
                IrBody::Program(p) => p,
                _ => unreachable!("datalog strategy planned for a non-datalog IR"),
            };
            let swept = (tree.len() as u64).saturating_mul(prog.size() as u64);
            Metrics::add(&metrics.nodes_swept, swept);
            let mut span = treequery_obs::span("exec.ground_minoux");
            span.record_u64("nodes_swept", swept);
            let set = {
                let _mem = AllocScope::enter("exec.ground_minoux");
                if plan.workers > 1 {
                    super::par::par_datalog_eval_query(prog, tree, plan.workers, metrics)
                } else {
                    datalog::eval_query(prog, tree)
                }
            };
            Ok(QueryOutput::Nodes(sorted_nodes(tree, set)))
        }
    }
}

fn expect_cq(ir: &QueryIr) -> &cq::Cq {
    match &ir.body {
        IrBody::Cq(q) => q,
        _ => unreachable!("CQ strategy planned for a non-CQ IR"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ir::{lower, Query};
    use crate::plan::planner::{plan_ir, PlannerConfig};
    use crate::plan::stats::TreeStats;
    use treequery_tree::parse_term;

    fn run(q: Query, term: &str) -> (QueryOutput, MetricsSnapshot) {
        let t = parse_term(term).unwrap();
        let ir = lower(&q).unwrap();
        let plan = plan_ir(&ir, &TreeStats::compute(&t), &PlannerConfig::default());
        let metrics = Metrics::default();
        let out = execute(&ir, &plan, &t, &metrics).unwrap();
        (out, metrics.snapshot())
    }

    #[test]
    fn executor_counts_sweep_work() {
        let (out, m) = run(Query::xpath("//a"), "r(a a b)");
        assert_eq!(out.nodes().map(<[_]>::len), Some(2));
        assert!(m.nodes_swept > 0);
        assert_eq!(m.queries_executed, 1);
    }

    #[test]
    fn executor_counts_semijoin_work() {
        let (out, m) = run(
            Query::cq("q(x) :- label(x, a), child(x, y), label(y, b)."),
            "r(a(b) a(c))",
        );
        let answer = out.answer().unwrap();
        assert_eq!(answer.plan, CqPlan::Acyclic);
        assert_eq!(answer.tuples.len(), 1);
        assert_eq!(m.semijoin_passes, 6, "2 passes per atom");
        assert!(m.candidate_nodes > 0);
    }

    #[test]
    fn quiesce_returns_clean_when_reads_agree() {
        let metrics = Metrics::default();
        Metrics::add_lowered(&metrics);
        let snap = metrics.snapshot_quiesced();
        assert!(!snap.torn);
        assert_eq!(snap.quiesce_retries, 0);
        assert_eq!(snap.queries_lowered, 1);
    }

    #[test]
    fn quiesce_reports_retry_count_when_it_settles_late() {
        // Reads disagree twice, then stabilize: the returned snapshot is
        // clean but carries the retry count for degraded-record tagging.
        let mut n = 0u64;
        let snap = super::quiesce(8, || {
            n += 1;
            MetricsSnapshot {
                queries_executed: n.min(3),
                ..MetricsSnapshot::default()
            }
        });
        assert!(!snap.torn);
        assert_eq!(snap.queries_executed, 3);
        assert_eq!(snap.quiesce_retries, 2);
    }

    #[test]
    fn quiesce_flags_torn_on_retry_exhaustion() {
        // A read that changes every time never quiesces: the helper must
        // hand back the last read and say so.
        let mut n = 0u64;
        let snap = super::quiesce(4, || {
            n += 1;
            MetricsSnapshot {
                queries_executed: n,
                ..MetricsSnapshot::default()
            }
        });
        assert!(snap.torn);
        assert_eq!(snap.queries_executed, 5, "last of 1 initial + 4 retries");
        assert_eq!(snap.quiesce_retries, 4);
    }

    #[test]
    fn plan_cache_hits_and_misses() {
        let t = parse_term("r(a b)").unwrap();
        let ir = lower(&Query::xpath("//a")).unwrap();
        let stats = TreeStats::compute(&t);
        let cache = PlanCache::default();
        let metrics = Metrics::default();
        let mk = || plan_ir(&ir, &stats, &PlannerConfig::default());
        let first = cache.get_or_insert(ir.fingerprint, 7, &metrics, mk);
        let second = cache.get_or_insert(ir.fingerprint, 7, &metrics, mk);
        assert_eq!(*first, *second);
        let other_tree = cache.get_or_insert(ir.fingerprint, 8, &metrics, mk);
        assert_eq!(*first, *other_tree);
        let m = metrics.snapshot();
        assert_eq!(m.plan_cache_hits, 1);
        assert_eq!(m.plan_cache_misses, 2);
        assert_eq!(cache.len(), 2);
    }
}
