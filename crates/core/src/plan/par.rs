//! The parallel execution subsystem: pre-order-range partitioned
//! versions of the hot kernels, dispatched on the shared
//! [`WorkerPool`].
//!
//! Every function here is a drop-in replacement for its sequential
//! counterpart with **byte-identical output**:
//!
//! * [`par_image`] / [`par_preimage`] — the `exec.sweep` axis sweeps,
//!   split by output (carry axes) or marked-input (local axes) pre-order
//!   range; chunk bitsets are ORed, and OR is commutative, so the merged
//!   set equals the sequential [`Axis::image`] bit for bit;
//! * [`par_eval_query`] / [`par_select`] / [`par_sources`] — the
//!   set-at-a-time Core XPath evaluator with every axis sweep
//!   parallelized (the bitset intersections are word-ops and stay
//!   sequential);
//! * [`par_datalog_eval_query`] — Theorem 3.2 grounding chunked by
//!   `(rule, node range)` in rule-major, range-ascending task order,
//!   reassembled into a Horn formula byte-identical to the sequential
//!   `ground()` (same rule order, same atom interning order) before one
//!   Minoux solve;
//! * [`par_eval_via_rewrite`] — the Theorem 5.1 rewrite-to-acyclic
//!   union with each part's full-reducer semijoin program run as its own
//!   task (independent join-tree branches), results merged into the same
//!   `BTreeSet` the sequential evaluator builds;
//! * [`par_stack_tree_join`] — the Stack-Tree-Desc structural merge
//!   join chunked by descendant range with stack state stitched at
//!   chunk boundaries (`stack_join_seeds`), chunk outputs concatenated
//!   in chunk order.
//!
//! Determinism is the point: the planner may freely flip a query
//! between sequential and parallel execution without any observable
//! difference except wall time and the `parallel_*` metrics.

use std::collections::BTreeSet;

use treequery_cq::rewrite::RewriteError;
use treequery_cq::Cq;
use treequery_datalog::{ground_rule_chunk, GroundAtom, Program};
use treequery_storage::{stack_tree_join_into, stack_tree_join_resumed_into, JoinSeedSet};
use treequery_tree::{
    incoming_carries_in_place, pre_range_at, pre_range_count, pre_ranges, scratch, Axis, CarryFlow,
    NodeId, NodeSet, Tree,
};
use treequery_xpath::{Path, Qual};

use crate::plan::exec::Metrics;
use crate::plan::pool::WorkerPool;

/// Boxes a closure for [`WorkerPool::run_scoped`].
type ScopedTask<'env, T> = Box<dyn FnOnce() -> T + Send + 'env>;

/// One grounding chunk: the ground rules (head, body) a rule produced
/// over one pre-order range.
type GroundChunk = Vec<(GroundAtom, Vec<GroundAtom>)>;

fn note_kernel(metrics: &Metrics, chunks: usize) {
    use std::sync::atomic::Ordering;
    metrics.parallel_kernels.fetch_add(1, Ordering::Relaxed);
    metrics
        .parallel_chunks
        .fetch_add(chunks as u64, Ordering::Relaxed);
}

/// Hands each [`WorkerPool::run_for`] chunk exclusive `&mut` access to
/// its own slot of a caller-owned slice, by raw pointer (the borrow
/// checker cannot see the chunk-index disjointness).
struct SyncSlice<T>(*mut T);

impl<T> SyncSlice<T> {
    fn new(v: &mut [T]) -> Self {
        Self(v.as_mut_ptr())
    }

    /// # Safety
    /// Callers must access disjoint indexes from concurrent threads, and
    /// `i` must be in bounds of the slice `new` was given.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get(&self, i: usize) -> &mut T {
        unsafe { &mut *self.0.add(i) }
    }
}

// SAFETY: only usable via `get`, whose contract requires disjoint slots.
unsafe impl<T: Send> Sync for SyncSlice<T> {}

/// Parallel [`Axis::image_into`]: identical output, computed as chunked
/// pre-order-range slices claimed off the pool's allocation-free
/// parallel for and ORed together in chunk order. All working sets come
/// from the caller thread's scratch pools — never from worker
/// thread-locals — so the allocation profile is independent of how
/// chunks land on workers, and a warmed-up call allocates nothing.
/// Falls back to the sequential sweep for `workers <= 1` or tiny trees.
pub fn par_image_into(
    axis: Axis,
    t: &Tree,
    s: &NodeSet,
    workers: usize,
    metrics: &Metrics,
    out: &mut NodeSet,
) {
    let n = t.len();
    if workers <= 1 || n < 2 {
        axis.image_into(t, s, out);
        return;
    }
    let chunks = pre_range_count(n, workers);
    if chunks <= 1 {
        axis.image_into(t, s, out);
        return;
    }
    let pool = WorkerPool::global();
    // Phase 1 (carry axes only): each range's carry contribution, in
    // parallel; a cheap sequential in-place fold then yields the carry
    // entering each range. Pooling this phase too matters: the carry
    // scan costs about as much as the image scan, so leaving it
    // sequential would cap the speedup at 2× (Amdahl).
    let mut carries = scratch::take_carries();
    carries.resize(chunks, axis.carry_identity());
    match axis.carry_flow() {
        CarryFlow::None => {}
        CarryFlow::Forward | CarryFlow::Backward => {
            note_kernel(metrics, chunks);
            {
                let slots = SyncSlice::new(&mut carries);
                pool.run_for(workers, chunks, &|i| {
                    let r = pre_range_at(n, chunks, i);
                    // SAFETY: chunk i writes slot i only.
                    *unsafe { slots.get(i) } = axis.sweep_carry(t, s, r);
                });
            }
            incoming_carries_in_place(axis, &mut carries);
        }
    }
    // Phase 2: each range's slice of the image, written into per-chunk
    // sets taken from the caller's scratch pool.
    note_kernel(metrics, chunks);
    let mut outs = scratch::take_set_vec();
    for _ in 0..chunks {
        outs.push(scratch::take_set(n));
    }
    let mut swepts = scratch::take_set_vec();
    for _ in 0..chunks {
        swepts.push(scratch::take_set(n));
    }
    {
        let carries = &carries;
        let out_slots = SyncSlice::new(&mut outs);
        let swept_slots = SyncSlice::new(&mut swepts);
        pool.run_for(workers, chunks, &|i| {
            let r = pre_range_at(n, chunks, i);
            let mut span = treequery_obs::span("exec.sweep.chunk");
            span.record_u64("nodes", u64::from(r.end - r.start));
            // SAFETY: chunk i writes slots i only.
            axis.image_range_into(t, s, r, carries[i], unsafe { out_slots.get(i) }, unsafe {
                swept_slots.get(i)
            });
        });
    }
    out.clear();
    for slice in outs.iter() {
        out.union_with(slice);
    }
    // Reverse order of the takes, so the next run pops in take order.
    scratch::put_set_vec(swepts);
    scratch::put_set_vec(outs);
    scratch::put_carries(carries);
}

/// Parallel [`Axis::image`]: [`par_image_into`] returning a pooled set
/// (recycle with [`scratch::put_set`]).
pub fn par_image(axis: Axis, t: &Tree, s: &NodeSet, workers: usize, metrics: &Metrics) -> NodeSet {
    let mut out = scratch::take_set(t.len());
    par_image_into(axis, t, s, workers, metrics, &mut out);
    out
}

/// Parallel [`Axis::preimage_into`]: the parallel image of the inverse.
pub fn par_preimage_into(
    axis: Axis,
    t: &Tree,
    s: &NodeSet,
    workers: usize,
    metrics: &Metrics,
    out: &mut NodeSet,
) {
    par_image_into(axis.inverse(), t, s, workers, metrics, out);
}

/// Parallel [`Axis::preimage`]: returns a pooled set.
pub fn par_preimage(
    axis: Axis,
    t: &Tree,
    s: &NodeSet,
    workers: usize,
    metrics: &Metrics,
) -> NodeSet {
    par_image(axis.inverse(), t, s, workers, metrics)
}

/// An [`AxisSweeper`](treequery_cq::AxisSweeper) that runs every axis
/// image of the full reducer's semijoin passes as a chunked parallel
/// sweep on the shared pool.
pub struct PoolSweeper<'m> {
    /// Worker threads per sweep.
    pub workers: usize,
    /// Executor metrics receiving kernel/chunk counts.
    pub metrics: &'m Metrics,
}

impl treequery_cq::AxisSweeper for PoolSweeper<'_> {
    fn image_into(&self, axis: Axis, t: &Tree, s: &NodeSet, out: &mut NodeSet) {
        par_image_into(axis, t, s, self.workers, self.metrics, out);
    }
}

// ---------------------------------------------------------------------
// The set-at-a-time Core XPath evaluator, with parallel axis sweeps.
// Structure mirrors `treequery_xpath::eval` exactly; only
// `Axis::image`/`Axis::preimage` are swapped for the pooled versions.
// ---------------------------------------------------------------------

fn qual_nodes(q: &Qual, t: &Tree, workers: usize, metrics: &Metrics) -> NodeSet {
    match q {
        Qual::Label(l) => {
            let mut s = scratch::take_set(t.len());
            for &v in t.nodes_with_label_name(l) {
                s.insert(v);
            }
            s
        }
        Qual::Path(p) => {
            let full = scratch::take_full(t.len());
            let out = par_sources(p, t, &full, workers, metrics);
            scratch::put_set(full);
            out
        }
        Qual::And(a, b) => {
            let mut s = qual_nodes(a, t, workers, metrics);
            let other = qual_nodes(b, t, workers, metrics);
            s.intersect_with(&other);
            scratch::put_set(other);
            s
        }
        Qual::Or(a, b) => {
            let mut s = qual_nodes(a, t, workers, metrics);
            let other = qual_nodes(b, t, workers, metrics);
            s.union_with(&other);
            scratch::put_set(other);
            s
        }
        Qual::Not(inner) => {
            let mut s = qual_nodes(inner, t, workers, metrics);
            s.complement();
            s
        }
    }
}

fn step_filter(quals: &[Qual], t: &Tree, workers: usize, metrics: &Metrics) -> NodeSet {
    let mut s = scratch::take_full(t.len());
    for q in quals {
        let qn = qual_nodes(q, t, workers, metrics);
        s.intersect_with(&qn);
        scratch::put_set(qn);
    }
    s
}

/// Parallel [`treequery_xpath::select`]: identical output, as a pooled
/// set (recycle with [`scratch::put_set`]).
pub fn par_select(
    p: &Path,
    t: &Tree,
    from: &NodeSet,
    workers: usize,
    metrics: &Metrics,
) -> NodeSet {
    match p {
        Path::Step { axis, quals } => {
            let mut img = scratch::take_set(t.len());
            par_image_into(*axis, t, from, workers, metrics, &mut img);
            let filter = step_filter(quals, t, workers, metrics);
            img.intersect_with(&filter);
            scratch::put_set(filter);
            img
        }
        Path::Seq(p1, p2) => {
            let mid = par_select(p1, t, from, workers, metrics);
            let out = par_select(p2, t, &mid, workers, metrics);
            scratch::put_set(mid);
            out
        }
        Path::Union(p1, p2) => {
            let mut s = par_select(p1, t, from, workers, metrics);
            let other = par_select(p2, t, from, workers, metrics);
            s.union_with(&other);
            scratch::put_set(other);
            s
        }
    }
}

/// Parallel [`treequery_xpath::sources`]: identical output, as a pooled
/// set.
pub fn par_sources(
    p: &Path,
    t: &Tree,
    targets: &NodeSet,
    workers: usize,
    metrics: &Metrics,
) -> NodeSet {
    match p {
        Path::Step { axis, quals } => {
            let mut tgt = scratch::take_set(t.len());
            tgt.copy_from(targets);
            let filter = step_filter(quals, t, workers, metrics);
            tgt.intersect_with(&filter);
            scratch::put_set(filter);
            let mut out = scratch::take_set(t.len());
            par_preimage_into(*axis, t, &tgt, workers, metrics, &mut out);
            scratch::put_set(tgt);
            out
        }
        Path::Seq(p1, p2) => {
            let mid = par_sources(p2, t, targets, workers, metrics);
            let out = par_sources(p1, t, &mid, workers, metrics);
            scratch::put_set(mid);
            out
        }
        Path::Union(p1, p2) => {
            let mut s = par_sources(p1, t, targets, workers, metrics);
            let other = par_sources(p2, t, targets, workers, metrics);
            s.union_with(&other);
            scratch::put_set(other);
            s
        }
    }
}

/// Parallel [`treequery_xpath::eval_query`]: identical output (the same
/// bits in the same [`NodeSet`]), with every axis sweep running as
/// pre-order-range chunks on the shared pool. Returns a pooled set.
pub fn par_eval_query(p: &Path, t: &Tree, workers: usize, metrics: &Metrics) -> NodeSet {
    match p {
        Path::Step { axis, quals } => {
            let mut out = match axis {
                Axis::Child => {
                    let mut s = scratch::take_set(t.len());
                    s.insert(t.root());
                    s
                }
                Axis::Descendant | Axis::DescendantOrSelf => scratch::take_full(t.len()),
                _ => scratch::take_set(t.len()),
            };
            let filter = step_filter(quals, t, workers, metrics);
            out.intersect_with(&filter);
            scratch::put_set(filter);
            out
        }
        Path::Seq(p1, p2) => {
            let first = par_eval_query(p1, t, workers, metrics);
            let out = par_select(p2, t, &first, workers, metrics);
            scratch::put_set(first);
            out
        }
        Path::Union(p1, p2) => {
            let mut s = par_eval_query(p1, t, workers, metrics);
            let other = par_eval_query(p2, t, workers, metrics);
            s.union_with(&other);
            scratch::put_set(other);
            s
        }
    }
}

/// Parallel Theorem 3.2 pipeline: grounds `prog` in `(rule, node-range)`
/// chunks on the pool, reassembles a Horn formula **byte-identical** to
/// the sequential `ground()` (tasks are submitted rule-major with
/// ascending ranges and results consumed in submission order, and atom
/// interning is bodies-before-head per ground rule, exactly like the
/// sequential grounder), then runs one Minoux solve and extracts the
/// query predicate — the same [`NodeSet`] `datalog::eval_query` returns.
pub fn par_datalog_eval_query(
    prog: &Program,
    t: &Tree,
    workers: usize,
    metrics: &Metrics,
) -> NodeSet {
    let q = prog.query.expect("program has no query predicate");
    let n = t.len();
    let ranges = pre_ranges(n, workers.max(1));
    let mut tasks: Vec<ScopedTask<'_, GroundChunk>> = Vec::new();
    for rule in &prog.rules {
        for r in &ranges {
            let r = r.clone();
            tasks.push(Box::new(move || {
                let mut span = treequery_obs::span("exec.ground_chunk");
                span.record_u64("nodes", u64::from(r.end - r.start));
                ground_rule_chunk(rule, t, r)
            }));
        }
    }
    if tasks.len() > 1 {
        note_kernel(metrics, tasks.len());
    }
    let chunks = WorkerPool::global().run_scoped(workers, tasks);
    let (formula, atoms) = treequery_hornsat::assemble_ground_chunks(chunks);
    let solution = formula.solve();
    let mut out = NodeSet::empty(n);
    for (var, &(pred, node)) in atoms.iter() {
        if pred == q && solution.is_true(var) {
            out.insert(node);
        }
    }
    out
}

/// Parallel Theorem 5.1 evaluation: rewrites `q` to a union of acyclic
/// queries once, then evaluates each part (its own full-reducer semijoin
/// program over its join tree) as an independent pool task. Parts are
/// merged into a `BTreeSet` in part order; set union is order-blind, so
/// the answer equals the sequential `cq::rewrite::eval_via_rewrite`.
pub fn par_eval_via_rewrite(
    q: &Cq,
    t: &Tree,
    workers: usize,
    metrics: &Metrics,
) -> Result<BTreeSet<Vec<NodeId>>, RewriteError> {
    let (union, _) = treequery_cq::rewrite_to_acyclic(q)?;
    let tasks: Vec<ScopedTask<'_, BTreeSet<Vec<NodeId>>>> = union
        .iter()
        .map(|part| {
            Box::new(move || {
                let _span = treequery_obs::span("exec.union.part");
                treequery_cq::eval_acyclic(part, t).expect("rewritten queries are acyclic")
            }) as ScopedTask<'_, _>
        })
        .collect();
    if tasks.len() > 1 {
        note_kernel(metrics, tasks.len());
    }
    let parts = WorkerPool::global().run_scoped(workers, tasks);
    let mut out = BTreeSet::new();
    for part in parts {
        out.extend(part);
    }
    Ok(out)
}

/// Reusable working state for [`par_stack_tree_join_into`]: the
/// flattened seed set plus per-chunk stacks and output staging. A warmed
/// instance makes repeated joins of same-shaped inputs allocation-free
/// (beyond amortized first-time output growth).
#[derive(Default)]
pub struct ParJoinScratch {
    seeds: JoinSeedSet,
    stacks: Vec<Vec<(u32, u32)>>,
    outs: Vec<Vec<(u32, u32)>>,
}

impl ParJoinScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Parallel Stack-Tree-Desc join writing into caller-owned buffers:
/// descendant chunks with stitched stack seeds run on the pool's
/// allocation-free parallel for, each chunk writing its own slot of the
/// scratch workspace, outputs concatenated into `out` (cleared first) in
/// chunk order — byte-identical to the sequential join. Small inputs run
/// sequentially (still through the scratch buffers).
pub fn par_stack_tree_join_into(
    ancestors: &[(u32, u32)],
    descendants: &[(u32, u32)],
    workers: usize,
    metrics: &Metrics,
    ws: &mut ParJoinScratch,
    out: &mut Vec<(u32, u32)>,
) {
    let sequential = workers <= 1 || descendants.len() < 2;
    if !sequential {
        ws.seeds.build(ancestors, descendants, workers);
    }
    if sequential || ws.seeds.len() <= 1 {
        if ws.stacks.is_empty() {
            ws.stacks.push(Vec::new());
        }
        stack_tree_join_into(ancestors, descendants, &mut ws.stacks[0], out);
        return;
    }
    let chunks = ws.seeds.len();
    while ws.stacks.len() < chunks {
        ws.stacks.push(Vec::new());
    }
    while ws.outs.len() < chunks {
        ws.outs.push(Vec::new());
    }
    note_kernel(metrics, chunks);
    {
        let seeds = &ws.seeds;
        let stack_slots = SyncSlice::new(&mut ws.stacks[..chunks]);
        let out_slots = SyncSlice::new(&mut ws.outs[..chunks]);
        WorkerPool::global().run_for(workers, chunks, &|i| {
            let range = seeds.range(i);
            let mut span = treequery_obs::span("exec.join.chunk");
            span.record_u64("descendants", (range.end - range.start) as u64);
            // SAFETY: chunk i writes slots i only.
            stack_tree_join_resumed_into(
                ancestors,
                &descendants[range],
                seeds.next_ancestor(i),
                seeds.stack(i),
                unsafe { stack_slots.get(i) },
                unsafe { out_slots.get(i) },
            );
        });
    }
    out.clear();
    for o in &ws.outs[..chunks] {
        out.extend_from_slice(o);
    }
}

/// Parallel Stack-Tree-Desc join: [`par_stack_tree_join_into`] with
/// one-shot buffers. Byte-identical to the sequential
/// [`treequery_storage::stack_tree_join`].
pub fn par_stack_tree_join(
    ancestors: &[(u32, u32)],
    descendants: &[(u32, u32)],
    workers: usize,
    metrics: &Metrics,
) -> Vec<(u32, u32)> {
    let mut ws = ParJoinScratch::new();
    let mut out = Vec::new();
    par_stack_tree_join_into(ancestors, descendants, workers, metrics, &mut ws, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use treequery_tree::{parse_term, random_recursive_tree};

    fn metrics() -> Metrics {
        Metrics::default()
    }

    #[test]
    fn par_image_matches_sequential_for_every_axis() {
        let mut rng = StdRng::seed_from_u64(77);
        for n in [1usize, 37, 200] {
            let t = random_recursive_tree(&mut rng, n, &["a", "b", "c"]);
            let s = NodeSet::from_iter(t.len(), t.nodes().filter(|v| v.0 % 3 != 1));
            let m = metrics();
            for axis in Axis::ALL {
                for workers in [1usize, 2, 8] {
                    assert_eq!(
                        par_image(axis, &t, &s, workers, &m),
                        axis.image(&t, &s),
                        "{axis} with {workers} workers on {n} nodes"
                    );
                }
            }
        }
    }

    #[test]
    fn par_xpath_matches_sequential_evaluator() {
        let mut rng = StdRng::seed_from_u64(78);
        let queries = [
            "//a[b]/c",
            "//a[not(b or c)]",
            "//b/ancestor::a[following-sibling::c]",
            "//a//b[not(parent::a)]",
            "//a[following::c] | //c/preceding::a",
        ];
        for _ in 0..5 {
            let t = random_recursive_tree(&mut rng, 120, &["a", "b", "c", "r"]);
            let m = metrics();
            for qs in queries {
                let p = treequery_xpath::parse_xpath(qs).unwrap();
                let seq = treequery_xpath::eval_query(&p, &t);
                for workers in [1usize, 2, 8] {
                    assert_eq!(
                        par_eval_query(&p, &t, workers, &m),
                        seq,
                        "{qs} with {workers} workers"
                    );
                }
            }
        }
    }

    #[test]
    fn par_datalog_matches_sequential_eval_query() {
        let progs = [
            "Q(x) :- label(x, a).\n?- Q.",
            "Q(x) :- P(y), firstchild(x, y).\nP(x) :- leaf(x).\n?- Q.",
            "Q(x) :- label(x, b), child(y, x), P0(y).\nP0(y) :- label(y, a).\n?- Q.",
        ];
        let mut rng = StdRng::seed_from_u64(79);
        let t = random_recursive_tree(&mut rng, 90, &["a", "b"]);
        let m = metrics();
        for src in progs {
            let prog = treequery_datalog::parse_program(src).unwrap();
            let seq = treequery_datalog::eval_query(&prog, &t);
            for workers in [1usize, 2, 8] {
                assert_eq!(
                    par_datalog_eval_query(&prog, &t, workers, &m),
                    seq,
                    "{src} with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn par_join_is_byte_identical_and_counts_kernels() {
        let mut rng = StdRng::seed_from_u64(80);
        let t = random_recursive_tree(&mut rng, 300, &["a", "b"]);
        let x = treequery_storage::Xasr::from_tree(&t);
        let la = x.label_list("a");
        let lb = x.label_list("b");
        let seq = treequery_storage::stack_tree_join(la, lb);
        let m = metrics();
        for workers in [1usize, 2, 8] {
            assert_eq!(par_stack_tree_join(la, lb, workers, &m), seq);
        }
        let snap = m.snapshot();
        assert!(snap.parallel_kernels >= 2, "workers 2 and 8 dispatched");
        assert!(snap.parallel_chunks > snap.parallel_kernels);
    }

    #[test]
    fn par_rewrite_union_matches_sequential() {
        let q = treequery_cq::parse_cq("q(x, y) :- label(x, a), label(y, b), following(x, y).")
            .unwrap();
        let t = parse_term("r(a(b c) b(a(c) c) a b)").unwrap();
        let m = metrics();
        let seq = treequery_cq::rewrite::eval_via_rewrite(&q, &t).unwrap();
        for workers in [1usize, 2, 8] {
            let par = par_eval_via_rewrite(&q, &t, workers, &m).unwrap();
            assert_eq!(par, seq, "{workers} workers");
        }
    }
}
