//! The parallel execution subsystem: pre-order-range partitioned
//! versions of the hot kernels, dispatched on the shared
//! [`WorkerPool`].
//!
//! Every function here is a drop-in replacement for its sequential
//! counterpart with **byte-identical output**:
//!
//! * [`par_image`] / [`par_preimage`] — the `exec.sweep` axis sweeps,
//!   split by output (carry axes) or marked-input (local axes) pre-order
//!   range; chunk bitsets are ORed, and OR is commutative, so the merged
//!   set equals the sequential [`Axis::image`] bit for bit;
//! * [`par_eval_query`] / [`par_select`] / [`par_sources`] — the
//!   set-at-a-time Core XPath evaluator with every axis sweep
//!   parallelized (the bitset intersections are word-ops and stay
//!   sequential);
//! * [`par_datalog_eval_query`] — Theorem 3.2 grounding chunked by
//!   `(rule, node range)` in rule-major, range-ascending task order,
//!   reassembled into a Horn formula byte-identical to the sequential
//!   `ground()` (same rule order, same atom interning order) before one
//!   Minoux solve;
//! * [`par_eval_via_rewrite`] — the Theorem 5.1 rewrite-to-acyclic
//!   union with each part's full-reducer semijoin program run as its own
//!   task (independent join-tree branches), results merged into the same
//!   `BTreeSet` the sequential evaluator builds;
//! * [`par_stack_tree_join`] — the Stack-Tree-Desc structural merge
//!   join chunked by descendant range with stack state stitched at
//!   chunk boundaries (`stack_join_seeds`), chunk outputs concatenated
//!   in chunk order.
//!
//! Determinism is the point: the planner may freely flip a query
//! between sequential and parallel execution without any observable
//! difference except wall time and the `parallel_*` metrics.

use std::collections::BTreeSet;

use treequery_cq::rewrite::RewriteError;
use treequery_cq::Cq;
use treequery_datalog::{ground_rule_chunk, GroundAtom, Program};
use treequery_storage::{stack_join_seeds, stack_tree_join, stack_tree_join_seeded};
use treequery_tree::{incoming_carries, pre_ranges, Axis, CarryFlow, NodeId, NodeSet, Tree};
use treequery_xpath::{Path, Qual};

use crate::plan::exec::Metrics;
use crate::plan::pool::WorkerPool;

/// Boxes a closure for [`WorkerPool::run_scoped`].
type ScopedTask<'env, T> = Box<dyn FnOnce() -> T + Send + 'env>;

/// One grounding chunk: the ground rules (head, body) a rule produced
/// over one pre-order range.
type GroundChunk = Vec<(GroundAtom, Vec<GroundAtom>)>;

fn note_kernel(metrics: &Metrics, chunks: usize) {
    use std::sync::atomic::Ordering;
    metrics.parallel_kernels.fetch_add(1, Ordering::Relaxed);
    metrics
        .parallel_chunks
        .fetch_add(chunks as u64, Ordering::Relaxed);
}

/// Parallel [`Axis::image`]: identical output, computed as `workers`
/// pre-order-range slices on the shared pool and ORed together. Falls
/// back to the sequential sweep for `workers <= 1` or tiny trees (where
/// chunking would only add overhead).
pub fn par_image(axis: Axis, t: &Tree, s: &NodeSet, workers: usize, metrics: &Metrics) -> NodeSet {
    let n = t.len();
    if workers <= 1 || n < 2 {
        return axis.image(t, s);
    }
    let ranges = pre_ranges(n, workers);
    if ranges.len() <= 1 {
        return axis.image(t, s);
    }
    let pool = WorkerPool::global();
    // Phase 1 (carry axes only): each range's carry contribution, in
    // parallel; a cheap sequential prefix/suffix fold then yields the
    // carry entering each range. Pooling this phase too matters: the
    // carry scan costs about as much as the image scan, so leaving it
    // sequential would cap the speedup at 2× (Amdahl).
    let incoming = match axis.carry_flow() {
        CarryFlow::None => vec![axis.carry_identity(); ranges.len()],
        CarryFlow::Forward | CarryFlow::Backward => {
            let tasks: Vec<ScopedTask<'_, treequery_tree::SweepCarry>> = ranges
                .iter()
                .map(|r| {
                    let r = r.clone();
                    Box::new(move || axis.sweep_carry(t, s, r)) as ScopedTask<'_, _>
                })
                .collect();
            note_kernel(metrics, tasks.len());
            let carries = pool.run_scoped(workers, tasks);
            incoming_carries(axis, &carries)
        }
    };
    // Phase 2: each range's slice of the image, in parallel.
    let tasks: Vec<ScopedTask<'_, NodeSet>> = ranges
        .iter()
        .zip(incoming)
        .map(|(r, carry)| {
            let r = r.clone();
            Box::new(move || {
                let mut span = treequery_obs::span("exec.sweep.chunk");
                span.record_u64("nodes", u64::from(r.end - r.start));
                axis.image_range(t, s, r, carry)
            }) as ScopedTask<'_, _>
        })
        .collect();
    note_kernel(metrics, tasks.len());
    let slices = pool.run_scoped(workers, tasks);
    let mut out = NodeSet::empty(n);
    for slice in &slices {
        out.union_with(slice);
    }
    out
}

/// Parallel [`Axis::preimage`]: the parallel image of the inverse axis.
pub fn par_preimage(
    axis: Axis,
    t: &Tree,
    s: &NodeSet,
    workers: usize,
    metrics: &Metrics,
) -> NodeSet {
    par_image(axis.inverse(), t, s, workers, metrics)
}

// ---------------------------------------------------------------------
// The set-at-a-time Core XPath evaluator, with parallel axis sweeps.
// Structure mirrors `treequery_xpath::eval` exactly; only
// `Axis::image`/`Axis::preimage` are swapped for the pooled versions.
// ---------------------------------------------------------------------

fn qual_nodes(q: &Qual, t: &Tree, workers: usize, metrics: &Metrics) -> NodeSet {
    match q {
        Qual::Label(l) => NodeSet::from_iter(t.len(), t.nodes_with_label_name(l).iter().copied()),
        Qual::Path(p) => par_sources(p, t, &NodeSet::full(t.len()), workers, metrics),
        Qual::And(a, b) => {
            let mut s = qual_nodes(a, t, workers, metrics);
            s.intersect_with(&qual_nodes(b, t, workers, metrics));
            s
        }
        Qual::Or(a, b) => {
            let mut s = qual_nodes(a, t, workers, metrics);
            s.union_with(&qual_nodes(b, t, workers, metrics));
            s
        }
        Qual::Not(inner) => {
            let mut s = qual_nodes(inner, t, workers, metrics);
            s.complement();
            s
        }
    }
}

fn step_filter(quals: &[Qual], t: &Tree, workers: usize, metrics: &Metrics) -> NodeSet {
    let mut s = NodeSet::full(t.len());
    for q in quals {
        s.intersect_with(&qual_nodes(q, t, workers, metrics));
    }
    s
}

/// Parallel [`treequery_xpath::select`]: identical output.
pub fn par_select(
    p: &Path,
    t: &Tree,
    from: &NodeSet,
    workers: usize,
    metrics: &Metrics,
) -> NodeSet {
    match p {
        Path::Step { axis, quals } => {
            let mut img = par_image(*axis, t, from, workers, metrics);
            img.intersect_with(&step_filter(quals, t, workers, metrics));
            img
        }
        Path::Seq(p1, p2) => {
            let mid = par_select(p1, t, from, workers, metrics);
            par_select(p2, t, &mid, workers, metrics)
        }
        Path::Union(p1, p2) => {
            let mut s = par_select(p1, t, from, workers, metrics);
            s.union_with(&par_select(p2, t, from, workers, metrics));
            s
        }
    }
}

/// Parallel [`treequery_xpath::sources`]: identical output.
pub fn par_sources(
    p: &Path,
    t: &Tree,
    targets: &NodeSet,
    workers: usize,
    metrics: &Metrics,
) -> NodeSet {
    match p {
        Path::Step { axis, quals } => {
            let mut tgt = targets.clone();
            tgt.intersect_with(&step_filter(quals, t, workers, metrics));
            par_preimage(*axis, t, &tgt, workers, metrics)
        }
        Path::Seq(p1, p2) => {
            let mid = par_sources(p2, t, targets, workers, metrics);
            par_sources(p1, t, &mid, workers, metrics)
        }
        Path::Union(p1, p2) => {
            let mut s = par_sources(p1, t, targets, workers, metrics);
            s.union_with(&par_sources(p2, t, targets, workers, metrics));
            s
        }
    }
}

/// Parallel [`treequery_xpath::eval_query`]: identical output (the same
/// bits in the same [`NodeSet`]), with every axis sweep running as
/// pre-order-range chunks on the shared pool.
pub fn par_eval_query(p: &Path, t: &Tree, workers: usize, metrics: &Metrics) -> NodeSet {
    match p {
        Path::Step { axis, quals } => {
            let base = match axis {
                Axis::Child => NodeSet::singleton(t.len(), t.root()),
                Axis::Descendant | Axis::DescendantOrSelf => NodeSet::full(t.len()),
                _ => NodeSet::empty(t.len()),
            };
            let mut out = base;
            out.intersect_with(&step_filter(quals, t, workers, metrics));
            out
        }
        Path::Seq(p1, p2) => {
            let first = par_eval_query(p1, t, workers, metrics);
            par_select(p2, t, &first, workers, metrics)
        }
        Path::Union(p1, p2) => {
            let mut s = par_eval_query(p1, t, workers, metrics);
            s.union_with(&par_eval_query(p2, t, workers, metrics));
            s
        }
    }
}

/// Parallel Theorem 3.2 pipeline: grounds `prog` in `(rule, node-range)`
/// chunks on the pool, reassembles a Horn formula **byte-identical** to
/// the sequential `ground()` (tasks are submitted rule-major with
/// ascending ranges and results consumed in submission order, and atom
/// interning is bodies-before-head per ground rule, exactly like the
/// sequential grounder), then runs one Minoux solve and extracts the
/// query predicate — the same [`NodeSet`] `datalog::eval_query` returns.
pub fn par_datalog_eval_query(
    prog: &Program,
    t: &Tree,
    workers: usize,
    metrics: &Metrics,
) -> NodeSet {
    let q = prog.query.expect("program has no query predicate");
    let n = t.len();
    let ranges = pre_ranges(n, workers.max(1));
    let mut tasks: Vec<ScopedTask<'_, GroundChunk>> = Vec::new();
    for rule in &prog.rules {
        for r in &ranges {
            let r = r.clone();
            tasks.push(Box::new(move || {
                let mut span = treequery_obs::span("exec.ground_chunk");
                span.record_u64("nodes", u64::from(r.end - r.start));
                ground_rule_chunk(rule, t, r)
            }));
        }
    }
    if tasks.len() > 1 {
        note_kernel(metrics, tasks.len());
    }
    let chunks = WorkerPool::global().run_scoped(workers, tasks);
    let (formula, atoms) = treequery_hornsat::assemble_ground_chunks(chunks);
    let solution = formula.solve();
    let mut out = NodeSet::empty(n);
    for (var, &(pred, node)) in atoms.iter() {
        if pred == q && solution.is_true(var) {
            out.insert(node);
        }
    }
    out
}

/// Parallel Theorem 5.1 evaluation: rewrites `q` to a union of acyclic
/// queries once, then evaluates each part (its own full-reducer semijoin
/// program over its join tree) as an independent pool task. Parts are
/// merged into a `BTreeSet` in part order; set union is order-blind, so
/// the answer equals the sequential `cq::rewrite::eval_via_rewrite`.
pub fn par_eval_via_rewrite(
    q: &Cq,
    t: &Tree,
    workers: usize,
    metrics: &Metrics,
) -> Result<BTreeSet<Vec<NodeId>>, RewriteError> {
    let (union, _) = treequery_cq::rewrite_to_acyclic(q)?;
    let tasks: Vec<ScopedTask<'_, BTreeSet<Vec<NodeId>>>> = union
        .iter()
        .map(|part| {
            Box::new(move || {
                let _span = treequery_obs::span("exec.union.part");
                treequery_cq::eval_acyclic(part, t).expect("rewritten queries are acyclic")
            }) as ScopedTask<'_, _>
        })
        .collect();
    if tasks.len() > 1 {
        note_kernel(metrics, tasks.len());
    }
    let parts = WorkerPool::global().run_scoped(workers, tasks);
    let mut out = BTreeSet::new();
    for part in parts {
        out.extend(part);
    }
    Ok(out)
}

/// Parallel Stack-Tree-Desc join: descendant chunks with stitched stack
/// seeds, outputs concatenated in chunk order — byte-identical to
/// [`stack_tree_join`]. Small inputs run sequentially.
pub fn par_stack_tree_join(
    ancestors: &[(u32, u32)],
    descendants: &[(u32, u32)],
    workers: usize,
    metrics: &Metrics,
) -> Vec<(u32, u32)> {
    if workers <= 1 || descendants.len() < 2 {
        return stack_tree_join(ancestors, descendants);
    }
    let seeds = stack_join_seeds(ancestors, descendants, workers);
    if seeds.len() <= 1 {
        return stack_tree_join(ancestors, descendants);
    }
    let tasks: Vec<ScopedTask<'_, Vec<(u32, u32)>>> = seeds
        .iter()
        .map(|(range, seed)| {
            let chunk = &descendants[range.clone()];
            Box::new(move || {
                let mut span = treequery_obs::span("exec.join.chunk");
                span.record_u64("descendants", chunk.len() as u64);
                stack_tree_join_seeded(ancestors, chunk, seed)
            }) as ScopedTask<'_, _>
        })
        .collect();
    note_kernel(metrics, tasks.len());
    let outputs = WorkerPool::global().run_scoped(workers, tasks);
    let mut out = Vec::with_capacity(outputs.iter().map(Vec::len).sum());
    for o in outputs {
        out.extend(o);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use treequery_tree::{parse_term, random_recursive_tree};

    fn metrics() -> Metrics {
        Metrics::default()
    }

    #[test]
    fn par_image_matches_sequential_for_every_axis() {
        let mut rng = StdRng::seed_from_u64(77);
        for n in [1usize, 37, 200] {
            let t = random_recursive_tree(&mut rng, n, &["a", "b", "c"]);
            let s = NodeSet::from_iter(t.len(), t.nodes().filter(|v| v.0 % 3 != 1));
            let m = metrics();
            for axis in Axis::ALL {
                for workers in [1usize, 2, 8] {
                    assert_eq!(
                        par_image(axis, &t, &s, workers, &m),
                        axis.image(&t, &s),
                        "{axis} with {workers} workers on {n} nodes"
                    );
                }
            }
        }
    }

    #[test]
    fn par_xpath_matches_sequential_evaluator() {
        let mut rng = StdRng::seed_from_u64(78);
        let queries = [
            "//a[b]/c",
            "//a[not(b or c)]",
            "//b/ancestor::a[following-sibling::c]",
            "//a//b[not(parent::a)]",
            "//a[following::c] | //c/preceding::a",
        ];
        for _ in 0..5 {
            let t = random_recursive_tree(&mut rng, 120, &["a", "b", "c", "r"]);
            let m = metrics();
            for qs in queries {
                let p = treequery_xpath::parse_xpath(qs).unwrap();
                let seq = treequery_xpath::eval_query(&p, &t);
                for workers in [1usize, 2, 8] {
                    assert_eq!(
                        par_eval_query(&p, &t, workers, &m),
                        seq,
                        "{qs} with {workers} workers"
                    );
                }
            }
        }
    }

    #[test]
    fn par_datalog_matches_sequential_eval_query() {
        let progs = [
            "Q(x) :- label(x, a).\n?- Q.",
            "Q(x) :- P(y), firstchild(x, y).\nP(x) :- leaf(x).\n?- Q.",
            "Q(x) :- label(x, b), child(y, x), P0(y).\nP0(y) :- label(y, a).\n?- Q.",
        ];
        let mut rng = StdRng::seed_from_u64(79);
        let t = random_recursive_tree(&mut rng, 90, &["a", "b"]);
        let m = metrics();
        for src in progs {
            let prog = treequery_datalog::parse_program(src).unwrap();
            let seq = treequery_datalog::eval_query(&prog, &t);
            for workers in [1usize, 2, 8] {
                assert_eq!(
                    par_datalog_eval_query(&prog, &t, workers, &m),
                    seq,
                    "{src} with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn par_join_is_byte_identical_and_counts_kernels() {
        let mut rng = StdRng::seed_from_u64(80);
        let t = random_recursive_tree(&mut rng, 300, &["a", "b"]);
        let x = treequery_storage::Xasr::from_tree(&t);
        let la = x.label_list("a");
        let lb = x.label_list("b");
        let seq = stack_tree_join(&la, &lb);
        let m = metrics();
        for workers in [1usize, 2, 8] {
            assert_eq!(par_stack_tree_join(&la, &lb, workers, &m), seq);
        }
        let snap = m.snapshot();
        assert!(snap.parallel_kernels >= 2, "workers 2 and 8 dispatched");
        assert!(snap.parallel_chunks > snap.parallel_kernels);
    }

    #[test]
    fn par_rewrite_union_matches_sequential() {
        let q = treequery_cq::parse_cq("q(x, y) :- label(x, a), label(y, b), following(x, y).")
            .unwrap();
        let t = parse_term("r(a(b c) b(a(c) c) a b)").unwrap();
        let m = metrics();
        let seq = treequery_cq::rewrite::eval_via_rewrite(&q, &t).unwrap();
        for workers in [1usize, 2, 8] {
            let par = par_eval_via_rewrite(&q, &t, workers, &m).unwrap();
            assert_eq!(par, seq, "{workers} workers");
        }
    }
}
