//! Cheap per-tree statistics the planner consults, plus the tree
//! fingerprint that keys the plan cache.
//!
//! Everything here is one `O(n)` pass (plus one sort over internal-node
//! fanouts), computed lazily once per [`crate::Engine`] and reused for
//! every query planned against the tree.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use treequery_tree::{EditDelta, EditKind, NodeId, Tree};

/// Summary statistics of one frozen tree.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TreeStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Height (root depth 0).
    pub height: u32,
    /// Number of leaves.
    pub leaves: usize,
    /// Number of distinct labels (interner size).
    pub distinct_labels: usize,
    /// Occurrences per label name.
    pub label_counts: BTreeMap<String, usize>,
    /// Median number of children over internal nodes.
    pub fanout_p50: u32,
    /// 90th-percentile number of children over internal nodes.
    pub fanout_p90: u32,
    /// Maximum number of children.
    pub fanout_max: u32,
    /// Mean node depth.
    pub mean_depth: f64,
}

impl TreeStats {
    /// Computes the statistics in one pass over the tree.
    pub fn compute(t: &Tree) -> TreeStats {
        let mut label_counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut fanouts: Vec<u32> = Vec::new();
        let mut leaves = 0usize;
        let mut depth_sum = 0u64;
        for v in t.nodes() {
            for sym in t.labels(v) {
                *label_counts
                    .entry(t.interner().name(sym).to_owned())
                    .or_insert(0) += 1;
            }
            depth_sum += t.depth(v) as u64;
            let fanout = t.children(v).count() as u32;
            if fanout == 0 {
                leaves += 1;
            } else {
                fanouts.push(fanout);
            }
        }
        fanouts.sort_unstable();
        let pick = |q_num: usize, q_den: usize| -> u32 {
            if fanouts.is_empty() {
                0
            } else {
                fanouts[(fanouts.len() - 1) * q_num / q_den]
            }
        };
        TreeStats {
            nodes: t.len(),
            height: t.height(),
            leaves,
            distinct_labels: t.interner().len(),
            fanout_p50: pick(1, 2),
            fanout_p90: pick(9, 10),
            fanout_max: fanouts.last().copied().unwrap_or(0),
            mean_depth: if t.is_empty() {
                0.0
            } else {
                depth_sum as f64 / t.len() as f64
            },
            label_counts,
        }
    }

    /// Occurrences of `label`, 0 if absent.
    pub fn label_count(&self, label: &str) -> usize {
        self.label_counts.get(label).copied().unwrap_or(0)
    }

    /// The smallest occurrence count among `labels` — the selectivity
    /// anchor for conjunctive plans (`None` when `labels` is empty).
    /// A label absent from the tree yields `Some(0)`: the query cannot
    /// match at all.
    pub fn rarest_label_count<'a>(
        &self,
        labels: impl IntoIterator<Item = &'a str>,
    ) -> Option<usize> {
        labels.into_iter().map(|l| self.label_count(l)).min()
    }
}

/// The inputs of [`TreeStats`] kept as histograms, so one tree edit
/// updates them in `O(|change|)` instead of the `O(|D|)` pass
/// [`TreeStats::compute`] makes. [`crate::Document`] owns one of these
/// and [`materialize`](IncrementalStats::materialize)s a `TreeStats`
/// view for each ephemeral engine.
///
/// The percentile fields of `TreeStats` are order statistics, which is
/// why the maintained state is histograms rather than the summary
/// itself: a histogram absorbs point updates and still reproduces the
/// exact quantile the sorted-vector formula picks.
#[derive(Clone, Debug)]
pub struct IncrementalStats {
    nodes: usize,
    depth_sum: u64,
    leaves: usize,
    /// Node count per depth.
    depth_hist: BTreeMap<u32, usize>,
    /// Internal-node count per fanout (leaves excluded, as in
    /// `TreeStats::compute`).
    fanout_hist: BTreeMap<u32, usize>,
    label_counts: BTreeMap<String, usize>,
}

fn hist_inc<K: Ord>(map: &mut BTreeMap<K, usize>, key: K) {
    *map.entry(key).or_insert(0) += 1;
}

fn hist_dec<K: Ord + std::fmt::Debug>(map: &mut BTreeMap<K, usize>, key: K) {
    match map.get_mut(&key) {
        Some(1) => {
            map.remove(&key);
        }
        Some(c) => *c -= 1,
        None => panic!("histogram underflow at {key:?}"),
    }
}

impl IncrementalStats {
    /// Builds the histograms in one pass (done once per document; every
    /// subsequent edit is a point update).
    pub fn compute(t: &Tree) -> IncrementalStats {
        let mut s = IncrementalStats {
            nodes: t.len(),
            depth_sum: 0,
            leaves: 0,
            depth_hist: BTreeMap::new(),
            fanout_hist: BTreeMap::new(),
            label_counts: BTreeMap::new(),
        };
        for v in t.nodes() {
            for sym in t.labels(v) {
                hist_inc(&mut s.label_counts, t.interner().name(sym).to_owned());
            }
            let d = t.depth(v);
            s.depth_sum += d as u64;
            hist_inc(&mut s.depth_hist, d);
            let fanout = t.children(v).count() as u32;
            if fanout == 0 {
                s.leaves += 1;
            } else {
                hist_inc(&mut s.fanout_hist, fanout);
            }
        }
        s
    }

    /// Folds one applied edit into the histograms. `t` is the
    /// *post-edit* tree; everything about the pre-edit state comes from
    /// the delta (old labels, removed-node snapshots, the parent's old
    /// fanout). Refreezes change no input, so `delta.refroze` needs no
    /// special casing.
    pub fn apply_edit(&mut self, t: &Tree, delta: &EditDelta) {
        match delta.kind {
            EditKind::Insert => {
                let v = delta.node.expect("insert delta carries the node");
                self.nodes += 1;
                let d = t.depth(v);
                self.depth_sum += d as u64;
                hist_inc(&mut self.depth_hist, d);
                self.leaves += 1;
                for sym in t.labels(v) {
                    hist_inc(&mut self.label_counts, t.interner().name(sym).to_owned());
                }
                let f = delta.parent_old_fanout;
                if f == 0 {
                    self.leaves -= 1; // the parent just stopped being one
                } else {
                    hist_dec(&mut self.fanout_hist, f);
                }
                hist_inc(&mut self.fanout_hist, f + 1);
            }
            EditKind::Relabel => {
                let v = delta.node.expect("relabel delta carries the node");
                for &sym in &delta.old_labels {
                    hist_dec(&mut self.label_counts, t.interner().name(sym).to_owned());
                }
                for sym in t.labels(v) {
                    hist_inc(&mut self.label_counts, t.interner().name(sym).to_owned());
                }
            }
            EditKind::Delete => {
                for rn in &delta.removed {
                    self.nodes -= 1;
                    self.depth_sum -= rn.depth as u64;
                    hist_dec(&mut self.depth_hist, rn.depth);
                    if rn.fanout == 0 {
                        self.leaves -= 1;
                    } else {
                        hist_dec(&mut self.fanout_hist, rn.fanout);
                    }
                    for &sym in &rn.labels {
                        hist_dec(&mut self.label_counts, t.interner().name(sym).to_owned());
                    }
                }
                let f = delta.parent_old_fanout;
                hist_dec(&mut self.fanout_hist, f);
                if f == 1 {
                    self.leaves += 1; // the parent just became one
                } else {
                    hist_inc(&mut self.fanout_hist, f - 1);
                }
            }
        }
    }

    /// The [`TreeStats`] summary of the current histograms — exactly
    /// what [`TreeStats::compute`] would return on the same tree
    /// (`distinct_labels` reads the live interner, matching `compute`'s
    /// use of it).
    pub fn materialize(&self, t: &Tree) -> TreeStats {
        let internal: usize = self.fanout_hist.values().sum();
        let pick = |q_num: usize, q_den: usize| -> u32 {
            if internal == 0 {
                return 0;
            }
            let idx = (internal - 1) * q_num / q_den;
            let mut seen = 0usize;
            for (&fanout, &count) in &self.fanout_hist {
                seen += count;
                if seen > idx {
                    return fanout;
                }
            }
            unreachable!("quantile index within histogram total")
        };
        TreeStats {
            nodes: self.nodes,
            height: self.depth_hist.keys().next_back().copied().unwrap_or(0),
            leaves: self.leaves,
            distinct_labels: t.interner().len(),
            fanout_p50: pick(1, 2),
            fanout_p90: pick(9, 10),
            fanout_max: self.fanout_hist.keys().next_back().copied().unwrap_or(0),
            mean_depth: if self.nodes == 0 {
                0.0
            } else {
                self.depth_sum as f64 / self.nodes as f64
            },
            label_counts: self.label_counts.clone(),
        }
    }
}

/// A cheap structural fingerprint: the XOR of one hash per node (see
/// [`node_fingerprint`]) mixed with the node count. Trees with equal
/// fingerprints are (with hash confidence) structurally identical with
/// identical labels, which is what makes a cached plan transferable.
///
/// XOR makes the fold *commutative and invertible*: a mutable document
/// can maintain the fingerprint under edits by XOR-ing out the stale
/// per-node hashes of the touched nodes and XOR-ing in the fresh ones —
/// `O(|change|)`, never a whole-tree rehash. The per-node hash reads only
/// edit-stable coordinates (depth, sibling index, own labels, parent
/// label), deliberately *not* pre/post ranks, so a gap-exhaustion
/// refreeze (which renumbers ranks but moves no node) changes nothing.
pub fn tree_fingerprint(t: &Tree) -> u64 {
    t.nodes().fold(fingerprint_len_term(t.len()), |acc, v| {
        acc ^ node_fingerprint(t, v)
    })
}

/// The node-count term of [`tree_fingerprint`], separated out so a
/// document patching the fingerprint incrementally can swap the old
/// count's term for the new one.
pub(crate) fn fingerprint_len_term(n: usize) -> u64 {
    mix64(n as u64 ^ 0x9e3779b97f4a7c15)
}

/// The per-node term of [`tree_fingerprint`]: a hash of the node's depth,
/// sibling index, label multiset, and parent's primary label. Stable
/// under edits elsewhere in the tree (and under refreezes), which is what
/// lets a document patch the XOR-folded tree fingerprint locally.
pub fn node_fingerprint(t: &Tree, v: NodeId) -> u64 {
    let mut labels = 0u64;
    for sym in t.labels(v) {
        labels ^= mix64(str_hash(t.interner().name(sym)));
    }
    let parent = match t.parent(v) {
        Some(p) => str_hash(t.label_name(p)),
        None => 0x517cc1b727220a95,
    };
    let position = ((t.depth(v) as u64) << 32) | t.sibling_index(v) as u64;
    mix64(
        labels
            .wrapping_add(mix64(position ^ 0xff51afd7ed558ccd))
            .wrapping_add(mix64(parent.rotate_left(17))),
    )
}

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    x
}

fn str_hash(s: &str) -> u64 {
    let mut h = DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use treequery_tree::parse_term;

    #[test]
    fn stats_of_a_small_tree() {
        let t = parse_term("r(a(b c) a(b) d)").unwrap();
        let s = TreeStats::compute(&t);
        assert_eq!(s.nodes, 7);
        assert_eq!(s.height, 2);
        assert_eq!(s.leaves, 4);
        assert_eq!(s.label_count("a"), 2);
        assert_eq!(s.label_count("b"), 2);
        assert_eq!(s.label_count("zzz"), 0);
        assert_eq!(s.fanout_max, 3);
        assert_eq!(s.rarest_label_count(["a", "b", "r"]), Some(1));
        assert_eq!(s.rarest_label_count(["a", "zzz"]), Some(0));
        assert_eq!(s.rarest_label_count([]), None);
    }

    #[test]
    fn fingerprints_separate_structure_and_labels() {
        let a = tree_fingerprint(&parse_term("r(a b)").unwrap());
        let b = tree_fingerprint(&parse_term("r(a b)").unwrap());
        let structure = tree_fingerprint(&parse_term("r(a(b))").unwrap());
        let labels = tree_fingerprint(&parse_term("r(a c)").unwrap());
        assert_eq!(a, b);
        assert_ne!(a, structure);
        assert_ne!(a, labels);
        // Sibling order and attachment point matter even when the
        // depth/sibling-index multisets coincide.
        let ab = tree_fingerprint(&parse_term("r(a b)").unwrap());
        let ba = tree_fingerprint(&parse_term("r(b a)").unwrap());
        assert_ne!(ab, ba);
        let under_a = tree_fingerprint(&parse_term("r(a(c) b)").unwrap());
        let under_b = tree_fingerprint(&parse_term("r(a b(c))").unwrap());
        assert_ne!(under_a, under_b);
    }

    #[test]
    fn incremental_stats_match_recompute_under_edits() {
        use treequery_tree::{EditOp, EditableTree};
        let mut et = EditableTree::new(parse_term("r(a(b c) a(b) d)").unwrap());
        let mut inc = IncrementalStats::compute(et.tree());
        let labels = ["a", "b", "d", "x"];
        let mut state = 0x2545F4914F6CDD1Du64;
        for step in 0..250 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let n = et.tree().len() as u32;
            let op = match state % 4 {
                0 | 1 => EditOp::InsertLeaf {
                    parent_pre: (state >> 8) as u32 % n,
                    child_idx: (state >> 40) as u32 % 4,
                    label: labels[(state >> 16) as usize % labels.len()].to_owned(),
                },
                2 => EditOp::DeleteSubtree {
                    pre: (state >> 8) as u32 % n,
                },
                _ => EditOp::Relabel {
                    pre: (state >> 8) as u32 % n,
                    label: labels[(state >> 16) as usize % labels.len()].to_owned(),
                },
            };
            let Some(delta) = et.apply(&op) else { continue };
            inc.apply_edit(et.tree(), &delta);
            assert_eq!(
                inc.materialize(et.tree()),
                TreeStats::compute(et.tree()),
                "stats diverged at step {step} after {op}"
            );
        }
    }

    #[test]
    fn fingerprint_is_an_xor_of_node_terms() {
        let t = parse_term("r(a(b c) a(b) d)").unwrap();
        let folded = t.nodes().fold(fingerprint_len_term(t.len()), |acc, v| {
            acc ^ node_fingerprint(&t, v)
        });
        assert_eq!(folded, tree_fingerprint(&t));
    }
}
