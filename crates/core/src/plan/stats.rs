//! Cheap per-tree statistics the planner consults, plus the tree
//! fingerprint that keys the plan cache.
//!
//! Everything here is one `O(n)` pass (plus one sort over internal-node
//! fanouts), computed lazily once per [`crate::Engine`] and reused for
//! every query planned against the tree.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use treequery_tree::Tree;

/// Summary statistics of one frozen tree.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TreeStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Height (root depth 0).
    pub height: u32,
    /// Number of leaves.
    pub leaves: usize,
    /// Number of distinct labels (interner size).
    pub distinct_labels: usize,
    /// Occurrences per label name.
    pub label_counts: BTreeMap<String, usize>,
    /// Median number of children over internal nodes.
    pub fanout_p50: u32,
    /// 90th-percentile number of children over internal nodes.
    pub fanout_p90: u32,
    /// Maximum number of children.
    pub fanout_max: u32,
    /// Mean node depth.
    pub mean_depth: f64,
}

impl TreeStats {
    /// Computes the statistics in one pass over the tree.
    pub fn compute(t: &Tree) -> TreeStats {
        let mut label_counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut fanouts: Vec<u32> = Vec::new();
        let mut leaves = 0usize;
        let mut depth_sum = 0u64;
        for v in t.nodes() {
            for sym in t.labels(v) {
                *label_counts
                    .entry(t.interner().name(sym).to_owned())
                    .or_insert(0) += 1;
            }
            depth_sum += t.depth(v) as u64;
            let fanout = t.children(v).count() as u32;
            if fanout == 0 {
                leaves += 1;
            } else {
                fanouts.push(fanout);
            }
        }
        fanouts.sort_unstable();
        let pick = |q_num: usize, q_den: usize| -> u32 {
            if fanouts.is_empty() {
                0
            } else {
                fanouts[(fanouts.len() - 1) * q_num / q_den]
            }
        };
        TreeStats {
            nodes: t.len(),
            height: t.height(),
            leaves,
            distinct_labels: t.interner().len(),
            fanout_p50: pick(1, 2),
            fanout_p90: pick(9, 10),
            fanout_max: fanouts.last().copied().unwrap_or(0),
            mean_depth: if t.is_empty() {
                0.0
            } else {
                depth_sum as f64 / t.len() as f64
            },
            label_counts,
        }
    }

    /// Occurrences of `label`, 0 if absent.
    pub fn label_count(&self, label: &str) -> usize {
        self.label_counts.get(label).copied().unwrap_or(0)
    }

    /// The smallest occurrence count among `labels` — the selectivity
    /// anchor for conjunctive plans (`None` when `labels` is empty).
    /// A label absent from the tree yields `Some(0)`: the query cannot
    /// match at all.
    pub fn rarest_label_count<'a>(
        &self,
        labels: impl IntoIterator<Item = &'a str>,
    ) -> Option<usize> {
        labels.into_iter().map(|l| self.label_count(l)).min()
    }
}

/// A cheap structural fingerprint: one pass hashing each node's label
/// symbols and depth in pre-order. Trees with equal fingerprints are (with
/// hash confidence) structurally identical with identical labels, which is
/// what makes a cached plan *and* a cached answer transferable.
pub fn tree_fingerprint(t: &Tree) -> u64 {
    let mut h = DefaultHasher::new();
    t.len().hash(&mut h);
    for v in t.pre_order() {
        t.depth(v).hash(&mut h);
        for sym in t.labels(v) {
            t.interner().name(sym).hash(&mut h);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use treequery_tree::parse_term;

    #[test]
    fn stats_of_a_small_tree() {
        let t = parse_term("r(a(b c) a(b) d)").unwrap();
        let s = TreeStats::compute(&t);
        assert_eq!(s.nodes, 7);
        assert_eq!(s.height, 2);
        assert_eq!(s.leaves, 4);
        assert_eq!(s.label_count("a"), 2);
        assert_eq!(s.label_count("b"), 2);
        assert_eq!(s.label_count("zzz"), 0);
        assert_eq!(s.fanout_max, 3);
        assert_eq!(s.rarest_label_count(["a", "b", "r"]), Some(1));
        assert_eq!(s.rarest_label_count(["a", "zzz"]), Some(0));
        assert_eq!(s.rarest_label_count([]), None);
    }

    #[test]
    fn fingerprints_separate_structure_and_labels() {
        let a = tree_fingerprint(&parse_term("r(a b)").unwrap());
        let b = tree_fingerprint(&parse_term("r(a b)").unwrap());
        let structure = tree_fingerprint(&parse_term("r(a(b))").unwrap());
        let labels = tree_fingerprint(&parse_term("r(a c)").unwrap());
        assert_eq!(a, b);
        assert_ne!(a, structure);
        assert_ne!(a, labels);
    }
}
