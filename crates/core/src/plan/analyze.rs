//! `EXPLAIN ANALYZE`: the planner's rationale merged with what one
//! measured run actually did — per-stage wall time from `treequery-obs`
//! spans plus a consistent work-counter delta.
//!
//! [`crate::Engine::explain_analyze`] runs the query once under a
//! [`treequery_obs::CollectingRecorder`], diffs
//! [`Metrics`](super::Metrics) snapshots around the run (using the
//! quiesced read so single-query numbers are never torn), and returns an
//! [`AnalyzedPlan`]: the [`ExplainedPlan`] the planner produced, the
//! measured [`StageStats`] per span name, the counter delta, and the
//! answer itself. [`AnalyzedPlan::render`] prints a Postgres-style tree;
//! [`AnalyzedPlan::to_json`] is the machine-readable form the harness
//! report embeds.

use treequery_obs::{Json, SpanSummary};

use super::exec::{MetricsSnapshot, QueryOutput};
use super::planner::ExplainedPlan;

/// Measured behaviour of one span name during an analyzed run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageStats {
    /// The span name (e.g. `exec.semijoin`).
    pub name: &'static str,
    /// How many spans with this name closed during the run.
    pub calls: u64,
    /// Total wall time across those spans, in nanoseconds.
    pub total_ns: u64,
    /// Smallest nesting depth the stage was observed at (drives the
    /// renderer's indentation).
    pub depth: u32,
    /// Sums of the stage's structured `u64` fields (node counts,
    /// candidate-set sizes, …), by key.
    pub fields: Vec<(&'static str, u64)>,
}

impl StageStats {
    fn from_summary(s: &SpanSummary) -> StageStats {
        StageStats {
            name: s.name,
            calls: s.calls,
            total_ns: s.total_ns,
            depth: s.depth,
            fields: s.field_sums.clone(),
        }
    }

    /// The stage as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut fields = Json::obj();
        for (k, v) in &self.fields {
            fields = fields.set(*k, *v);
        }
        Json::obj()
            .set("name", self.name)
            .set("calls", self.calls)
            .set("total_ns", self.total_ns)
            .set("fields", fields)
    }
}

/// The result of `EXPLAIN ANALYZE`: predicted plan + measured run.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalyzedPlan {
    /// The query text, as submitted.
    pub query: String,
    /// What the planner predicted (strategy, cost class, estimate,
    /// rationale).
    pub plan: ExplainedPlan,
    /// End-to-end wall time of the analyzed run, in nanoseconds.
    pub total_ns: u64,
    /// Number of result rows (nodes or tuples).
    pub output_rows: u64,
    /// Per-stage measured wall time and work, in first-seen order.
    pub stages: Vec<StageStats>,
    /// The executor counter delta attributable to this run (quiesced
    /// reads; consistent for single-query runs).
    pub counters: MetricsSnapshot,
    /// The answer the analyzed run produced.
    pub output: QueryOutput,
}

/// Renders nanoseconds with a stable unit ladder (deterministic given the
/// value, so the golden test can pin exact output).
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl AnalyzedPlan {
    /// The Postgres-`EXPLAIN ANALYZE`-style text form: the plan header
    /// with its rationale, the measured stage tree (indented by span
    /// depth), and the non-zero work counters.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "EXPLAIN ANALYZE [{}] {}\n",
            self.plan.source,
            self.query.trim()
        ));
        out.push_str(&format!(
            "Plan: {}  (cost {}, estimated {} node-touches)\n",
            self.plan.strategy, self.plan.cost, self.plan.estimated_work
        ));
        out.push_str(&format!("  rationale: {}\n", self.plan.rationale));
        out.push_str(&format!("  parallel: {}\n", self.plan.parallel_rationale));
        out.push_str(&format!(
            "Measured: total {}, {} output row(s)\n",
            fmt_ns(self.total_ns),
            self.output_rows
        ));
        let base_depth = self.stages.iter().map(|s| s.depth).min().unwrap_or(0);
        for stage in &self.stages {
            let indent = "  ".repeat((stage.depth - base_depth) as usize + 1);
            out.push_str(&format!(
                "{indent}-> {}  (calls={}, time={})",
                stage.name,
                stage.calls,
                fmt_ns(stage.total_ns)
            ));
            if !stage.fields.is_empty() {
                let fields: Vec<String> = stage
                    .fields
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                out.push_str(&format!("  [{}]", fields.join(", ")));
            }
            out.push('\n');
        }
        let counters = self.counters.to_json();
        let nonzero: Vec<String> = match &counters {
            Json::Obj(fields) => fields
                .iter()
                .filter(|(_, v)| v.as_u64().is_some_and(|v| v > 0))
                .map(|(k, v)| format!("{k}={}", v.as_u64().unwrap_or(0)))
                .collect(),
            _ => Vec::new(),
        };
        out.push_str(&format!(
            "Counters: {}\n",
            if nonzero.is_empty() {
                "(all zero)".to_owned()
            } else {
                nonzero.join(" ")
            }
        ));
        out
    }

    /// The analyzed plan as one JSON object (embedded by
    /// `harness --report`).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("query", self.query.as_str())
            .set("plan", self.plan.to_json())
            .set("total_ns", self.total_ns)
            .set("output_rows", self.output_rows)
            .set(
                "stages",
                Json::Arr(self.stages.iter().map(StageStats::to_json).collect()),
            )
            .set("counters", self.counters.to_json())
    }
}

/// Builds an [`AnalyzedPlan`] from the pieces `explain_analyze` gathered.
pub(crate) fn assemble(
    query: String,
    plan: ExplainedPlan,
    total_ns: u64,
    output: QueryOutput,
    stages: &[SpanSummary],
    counters: MetricsSnapshot,
) -> AnalyzedPlan {
    let output_rows = match &output {
        QueryOutput::Nodes(v) => v.len() as u64,
        QueryOutput::Answer(a) => a.tuples.len() as u64,
    };
    AnalyzedPlan {
        query,
        plan,
        total_ns,
        output_rows,
        stages: stages.iter().map(StageStats::from_summary).collect(),
        counters,
        output,
    }
}

impl ExplainedPlan {
    /// The plan rationale as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("source", self.source.to_string())
            .set("strategy", self.strategy.to_string())
            .set("cost", self.cost.to_string())
            .set("estimated_work", self.estimated_work)
            .set("rationale", self.rationale.as_str())
            .set("workers", self.workers as u64)
            .set("parallel", self.parallel_rationale.as_str())
            .set("query_fingerprint", self.query_fingerprint)
    }
}

impl MetricsSnapshot {
    /// The counters as a JSON object (field order fixed, all fields
    /// present — reports stay diffable across runs).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("queries_lowered", self.queries_lowered)
            .set("plans_computed", self.plans_computed)
            .set("plan_cache_hits", self.plan_cache_hits)
            .set("plan_cache_misses", self.plan_cache_misses)
            .set("queries_executed", self.queries_executed)
            .set("batch_queries", self.batch_queries)
            .set("semijoin_passes", self.semijoin_passes)
            .set("candidate_nodes", self.candidate_nodes)
            .set("union_parts", self.union_parts)
            .set("nodes_swept", self.nodes_swept)
            .set("backtrack_assignments", self.backtrack_assignments)
            .set("parallel_kernels", self.parallel_kernels)
            .set("parallel_chunks", self.parallel_chunks)
    }

    /// Field-wise saturating difference `self - earlier`: the work done
    /// between two snapshots.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            queries_lowered: self.queries_lowered.saturating_sub(earlier.queries_lowered),
            plans_computed: self.plans_computed.saturating_sub(earlier.plans_computed),
            plan_cache_hits: self.plan_cache_hits.saturating_sub(earlier.plan_cache_hits),
            plan_cache_misses: self
                .plan_cache_misses
                .saturating_sub(earlier.plan_cache_misses),
            queries_executed: self
                .queries_executed
                .saturating_sub(earlier.queries_executed),
            batch_queries: self.batch_queries.saturating_sub(earlier.batch_queries),
            semijoin_passes: self.semijoin_passes.saturating_sub(earlier.semijoin_passes),
            candidate_nodes: self.candidate_nodes.saturating_sub(earlier.candidate_nodes),
            union_parts: self.union_parts.saturating_sub(earlier.union_parts),
            nodes_swept: self.nodes_swept.saturating_sub(earlier.nodes_swept),
            backtrack_assignments: self
                .backtrack_assignments
                .saturating_sub(earlier.backtrack_assignments),
            parallel_kernels: self
                .parallel_kernels
                .saturating_sub(earlier.parallel_kernels),
            parallel_chunks: self.parallel_chunks.saturating_sub(earlier.parallel_chunks),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::planner::{CostClass, Strategy};
    use crate::plan::SourceLang;

    #[test]
    fn fmt_ns_unit_ladder() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_340_000), "2.34ms");
        assert_eq!(fmt_ns(1_200_000_000), "1.20s");
    }

    /// The golden test of the renderer: a hand-built plan with fixed
    /// timings must print exactly this tree.
    #[test]
    fn render_golden() {
        let analyzed = AnalyzedPlan {
            query: "q(x) :- label(x, a), child(x, y), label(y, b).".to_owned(),
            plan: ExplainedPlan {
                source: SourceLang::Cq,
                strategy: Strategy::CqAcyclic,
                cost: CostClass::OutputSensitive,
                estimated_work: 42,
                rationale: "query graph is acyclic (GYO)".to_owned(),
                workers: 1,
                parallel_rationale: "sequential: cq/acyclic has no partitionable kernel".to_owned(),
                query_fingerprint: 7,
            },
            total_ns: 1_500_000,
            output_rows: 3,
            stages: vec![
                StageStats {
                    name: "pipeline.lower",
                    calls: 1,
                    total_ns: 12_000,
                    depth: 0,
                    fields: vec![],
                },
                StageStats {
                    name: "exec.run",
                    calls: 1,
                    total_ns: 1_400_000,
                    depth: 0,
                    fields: vec![],
                },
                StageStats {
                    name: "exec.semijoin",
                    calls: 1,
                    total_ns: 900_000,
                    depth: 1,
                    fields: vec![("passes", 6), ("candidates", 11)],
                },
                StageStats {
                    name: "exec.enumerate",
                    calls: 1,
                    total_ns: 400_000,
                    depth: 1,
                    fields: vec![("tuples", 3)],
                },
            ],
            counters: MetricsSnapshot {
                queries_lowered: 1,
                queries_executed: 1,
                semijoin_passes: 6,
                candidate_nodes: 11,
                ..MetricsSnapshot::default()
            },
            output: QueryOutput::Nodes(Vec::new()),
        };
        let expected = "\
EXPLAIN ANALYZE [cq] q(x) :- label(x, a), child(x, y), label(y, b).
Plan: cq/acyclic  (cost O(|D|·|Q| + out), estimated 42 node-touches)
  rationale: query graph is acyclic (GYO)
  parallel: sequential: cq/acyclic has no partitionable kernel
Measured: total 1.50ms, 3 output row(s)
  -> pipeline.lower  (calls=1, time=12.0µs)
  -> exec.run  (calls=1, time=1.40ms)
    -> exec.semijoin  (calls=1, time=900.0µs)  [passes=6, candidates=11]
    -> exec.enumerate  (calls=1, time=400.0µs)  [tuples=3]
Counters: queries_lowered=1 queries_executed=1 semijoin_passes=6 candidate_nodes=11
";
        assert_eq!(analyzed.render(), expected);
    }

    /// The parallel counterpart of the golden test: per-worker chunk
    /// spans are merged into one stable `exec.sweep.chunk` row (calls =
    /// number of chunks, fields summed), so the rendering is identical no
    /// matter which worker ran which chunk or in what order they
    /// finished.
    #[test]
    fn render_golden_parallel_chunks() {
        let analyzed = AnalyzedPlan {
            query: "//a".to_owned(),
            plan: ExplainedPlan {
                source: SourceLang::XPath,
                strategy: Strategy::XPathSetAtATime,
                cost: CostClass::Linear,
                estimated_work: 131_072,
                rationale: "general Core XPath".to_owned(),
                workers: 4,
                parallel_rationale: "4 workers: pre-order range partition of the sweeps".to_owned(),
                query_fingerprint: 9,
            },
            total_ns: 2_000_000,
            output_rows: 5,
            stages: vec![
                StageStats {
                    name: "exec.run",
                    calls: 1,
                    total_ns: 1_900_000,
                    depth: 0,
                    fields: vec![],
                },
                StageStats {
                    name: "exec.sweep",
                    calls: 1,
                    total_ns: 1_800_000,
                    depth: 1,
                    fields: vec![
                        ("nodes", 65_536),
                        ("query_size", 2),
                        ("nodes_swept", 131_072),
                    ],
                },
                StageStats {
                    name: "exec.sweep.chunk",
                    calls: 4,
                    total_ns: 1_600_000,
                    depth: 2,
                    fields: vec![("nodes", 65_536)],
                },
            ],
            counters: MetricsSnapshot {
                queries_executed: 1,
                nodes_swept: 131_072,
                parallel_kernels: 1,
                parallel_chunks: 4,
                ..MetricsSnapshot::default()
            },
            output: QueryOutput::Nodes(Vec::new()),
        };
        let expected = "\
EXPLAIN ANALYZE [xpath] //a
Plan: xpath/set-at-a-time  (cost O(|D|·|Q|), estimated 131072 node-touches)
  rationale: general Core XPath
  parallel: 4 workers: pre-order range partition of the sweeps
Measured: total 2.00ms, 5 output row(s)
  -> exec.run  (calls=1, time=1.90ms)
    -> exec.sweep  (calls=1, time=1.80ms)  [nodes=65536, query_size=2, nodes_swept=131072]
      -> exec.sweep.chunk  (calls=4, time=1.60ms)  [nodes=65536]
Counters: queries_executed=1 nodes_swept=131072 parallel_kernels=1 parallel_chunks=4
";
        assert_eq!(analyzed.render(), expected);
    }

    #[test]
    fn snapshot_delta_is_fieldwise() {
        let a = MetricsSnapshot {
            queries_executed: 5,
            semijoin_passes: 12,
            ..MetricsSnapshot::default()
        };
        let b = MetricsSnapshot {
            queries_executed: 7,
            semijoin_passes: 18,
            nodes_swept: 3,
            ..MetricsSnapshot::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.queries_executed, 2);
        assert_eq!(d.semijoin_passes, 6);
        assert_eq!(d.nodes_swept, 3);
        // Saturates instead of wrapping if the metrics were reset between.
        assert_eq!(a.delta_since(&b).queries_executed, 0);
    }

    #[test]
    fn json_forms_round_trip_through_the_parser() {
        let snapshot = MetricsSnapshot {
            queries_lowered: 2,
            nodes_swept: 99,
            ..MetricsSnapshot::default()
        };
        let v = treequery_obs::parse_json(&snapshot.to_json().render()).unwrap();
        assert_eq!(v.get("nodes_swept").unwrap().as_u64(), Some(99));
        let plan = ExplainedPlan {
            source: SourceLang::XPath,
            strategy: Strategy::XPathSetAtATime,
            cost: CostClass::Linear,
            estimated_work: 10,
            rationale: "general Core XPath \"sweep\"".to_owned(),
            workers: 4,
            parallel_rationale: "4 workers: pre-order range partition".to_owned(),
            query_fingerprint: u64::MAX,
        };
        let v = treequery_obs::parse_json(&plan.to_json().render()).unwrap();
        assert_eq!(
            v.get("strategy").unwrap().as_str(),
            Some("xpath/set-at-a-time")
        );
        assert_eq!(v.get("workers").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("query_fingerprint").unwrap().as_u64(), Some(u64::MAX));
    }
}
