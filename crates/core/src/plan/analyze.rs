//! `EXPLAIN ANALYZE`: the planner's rationale merged with what one
//! measured run actually did — per-stage wall time from `treequery-obs`
//! spans plus a consistent work-counter delta.
//!
//! [`crate::Engine::explain_analyze`] runs the query once under a
//! [`treequery_obs::CollectingRecorder`], diffs
//! [`Metrics`](super::Metrics) snapshots around the run (using the
//! quiesced read so single-query numbers are never torn), and returns an
//! [`AnalyzedPlan`]: the [`ExplainedPlan`] the planner produced, the
//! measured [`StageStats`] per span name, the counter delta, and the
//! answer itself. [`AnalyzedPlan::render`] prints a Postgres-style tree;
//! [`AnalyzedPlan::to_json`] is the machine-readable form the harness
//! report embeds.

use treequery_obs::alloc::ScopeStats;
use treequery_obs::{Json, SpanSummary};

use super::exec::{MetricsSnapshot, QueryOutput};
use super::planner::ExplainedPlan;

/// Allocator activity attributed to one stage (self-exclusive: bytes a
/// nested stage allocated are charged to the nested stage, mirroring how
/// span self-time would read).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageMem {
    /// Heap allocations made while the stage's scope was innermost.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub bytes: u64,
    /// High-water mark of the stage's own live bytes (allocated minus
    /// freed within the scope).
    pub peak_live: u64,
}

impl StageMem {
    fn from_scope(s: &ScopeStats) -> StageMem {
        StageMem {
            allocs: s.allocs,
            bytes: s.bytes,
            peak_live: s.peak_live,
        }
    }
}

/// Measured behaviour of one span name during an analyzed run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageStats {
    /// The span name (e.g. `exec.semijoin`).
    pub name: &'static str,
    /// How many spans with this name closed during the run.
    pub calls: u64,
    /// Total wall time across those spans, in nanoseconds.
    pub total_ns: u64,
    /// Smallest nesting depth the stage was observed at (drives the
    /// renderer's indentation).
    pub depth: u32,
    /// Sums of the stage's structured `u64` fields (node counts,
    /// candidate-set sizes, …), by key.
    pub fields: Vec<(&'static str, u64)>,
    /// Allocator activity attributed to the stage, when the run was
    /// accounted (an `AllocScope` with the same name closed during it).
    pub mem: Option<StageMem>,
}

impl StageStats {
    fn from_summary(s: &SpanSummary) -> StageStats {
        StageStats {
            name: s.name,
            calls: s.calls,
            total_ns: s.total_ns,
            depth: s.depth,
            fields: s.field_sums.clone(),
            mem: None,
        }
    }

    /// The stage as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut fields = Json::obj();
        for (k, v) in &self.fields {
            fields = fields.set(*k, *v);
        }
        let mut obj = Json::obj()
            .set("name", self.name)
            .set("calls", self.calls)
            .set("total_ns", self.total_ns)
            .set("fields", fields);
        if let Some(mem) = &self.mem {
            obj = obj.set(
                "mem",
                Json::obj()
                    .set("allocs", mem.allocs)
                    .set("bytes", mem.bytes)
                    .set("peak_live", mem.peak_live),
            );
        }
        obj
    }
}

/// The result of `EXPLAIN ANALYZE`: predicted plan + measured run.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalyzedPlan {
    /// The query text, as submitted.
    pub query: String,
    /// What the planner predicted (strategy, cost class, estimate,
    /// rationale).
    pub plan: ExplainedPlan,
    /// End-to-end wall time of the analyzed run, in nanoseconds.
    pub total_ns: u64,
    /// Number of result rows (nodes or tuples).
    pub output_rows: u64,
    /// Per-stage measured wall time and work, in first-seen order.
    pub stages: Vec<StageStats>,
    /// The executor counter delta attributable to this run (quiesced
    /// reads; consistent for single-query runs).
    pub counters: MetricsSnapshot,
    /// The answer the analyzed run produced.
    pub output: QueryOutput,
}

/// Renders nanoseconds with a stable unit ladder (deterministic given the
/// value, so the golden test can pin exact output).
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl AnalyzedPlan {
    /// The Postgres-`EXPLAIN ANALYZE`-style text form: the plan header
    /// with its rationale, the measured stage tree (indented by span
    /// depth), and the non-zero work counters.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "EXPLAIN ANALYZE [{}] {}\n",
            self.plan.source,
            self.query.trim()
        ));
        out.push_str(&format!(
            "Plan: {}  (cost {}, estimated {} node-touches)\n",
            self.plan.strategy, self.plan.cost, self.plan.estimated_work
        ));
        out.push_str(&format!("  rationale: {}\n", self.plan.rationale));
        out.push_str(&format!("  parallel: {}\n", self.plan.parallel_rationale));
        out.push_str(&format!(
            "Measured: total {}, {} output row(s)\n",
            fmt_ns(self.total_ns),
            self.output_rows
        ));
        let base_depth = self.stages.iter().map(|s| s.depth).min().unwrap_or(0);
        for stage in &self.stages {
            let indent = "  ".repeat((stage.depth - base_depth) as usize + 1);
            out.push_str(&format!(
                "{indent}-> {}  (calls={}, time={})",
                stage.name,
                stage.calls,
                fmt_ns(stage.total_ns)
            ));
            if !stage.fields.is_empty() {
                let fields: Vec<String> = stage
                    .fields
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                out.push_str(&format!("  [{}]", fields.join(", ")));
            }
            if let Some(mem) = &stage.mem {
                out.push_str(&format!(
                    "  [mem: bytes={}, allocs={}, peak={}]",
                    mem.bytes, mem.allocs, mem.peak_live
                ));
            }
            out.push('\n');
        }
        let counters = self.counters.to_json();
        let nonzero: Vec<String> = match &counters {
            // `quiesce_retries` is read metadata, not pipeline work; it
            // renders in the quiescence suffix instead of the counter
            // list.
            Json::Obj(fields) => fields
                .iter()
                .filter(|(k, v)| k != "quiesce_retries" && v.as_u64().is_some_and(|v| v > 0))
                .map(|(k, v)| format!("{k}={}", v.as_u64().unwrap_or(0)))
                .collect(),
            _ => Vec::new(),
        };
        let quiescence = if self.counters.torn {
            format!(
                "  [torn after {} retries: counters did not quiesce; cross-counter consistency not guaranteed]",
                self.counters.quiesce_retries
            )
        } else if self.counters.quiesce_retries > 0 {
            format!(
                "  [quiesced after {} retries]",
                self.counters.quiesce_retries
            )
        } else {
            String::new()
        };
        out.push_str(&format!(
            "Counters: {}{}\n",
            if nonzero.is_empty() {
                "(all zero)".to_owned()
            } else {
                nonzero.join(" ")
            },
            quiescence
        ));
        out
    }

    /// The analyzed plan as one JSON object (embedded by
    /// `harness --report`).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("query", self.query.as_str())
            .set("plan", self.plan.to_json())
            .set("total_ns", self.total_ns)
            .set("output_rows", self.output_rows)
            .set(
                "stages",
                Json::Arr(self.stages.iter().map(StageStats::to_json).collect()),
            )
            .set("counters", self.counters.to_json())
    }
}

/// Builds an [`AnalyzedPlan`] from the pieces `explain_analyze` gathered:
/// span summaries become stages, and allocator scope totals are joined
/// onto them by stage name (scopes and spans share the naming scheme).
pub(crate) fn assemble(
    query: String,
    plan: ExplainedPlan,
    total_ns: u64,
    output: QueryOutput,
    stages: &[SpanSummary],
    mem_totals: &[(&'static str, ScopeStats)],
    counters: MetricsSnapshot,
) -> AnalyzedPlan {
    let output_rows = match &output {
        QueryOutput::Nodes(v) => v.len() as u64,
        QueryOutput::Answer(a) => a.tuples.len() as u64,
    };
    let stages = stages
        .iter()
        .map(|s| {
            let mut stage = StageStats::from_summary(s);
            stage.mem = mem_totals
                .iter()
                .find(|(name, _)| *name == s.name)
                .map(|(_, scope)| StageMem::from_scope(scope));
            stage
        })
        .collect();
    AnalyzedPlan {
        query,
        plan,
        total_ns,
        output_rows,
        stages,
        counters,
        output,
    }
}

impl ExplainedPlan {
    /// The plan rationale as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("source", self.source.to_string())
            .set("strategy", self.strategy.to_string())
            .set("cost", self.cost.to_string())
            .set("estimated_work", self.estimated_work)
            .set("rationale", self.rationale.as_str())
            .set("workers", self.workers as u64)
            .set("parallel", self.parallel_rationale.as_str())
            .set("query_fingerprint", self.query_fingerprint)
    }
}

impl MetricsSnapshot {
    /// The counters as a JSON object (field order fixed, all fields
    /// present — reports stay diffable across runs).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("queries_lowered", self.queries_lowered)
            .set("plans_computed", self.plans_computed)
            .set("plan_cache_hits", self.plan_cache_hits)
            .set("plan_cache_misses", self.plan_cache_misses)
            .set("queries_executed", self.queries_executed)
            .set("queries_cancelled", self.queries_cancelled)
            .set("batch_queries", self.batch_queries)
            .set("semijoin_passes", self.semijoin_passes)
            .set("candidate_nodes", self.candidate_nodes)
            .set("union_parts", self.union_parts)
            .set("nodes_swept", self.nodes_swept)
            .set("backtrack_assignments", self.backtrack_assignments)
            .set("parallel_kernels", self.parallel_kernels)
            .set("parallel_chunks", self.parallel_chunks)
            .set("quiesce_retries", self.quiesce_retries)
            .set("torn", self.torn)
    }

    /// Field-wise saturating difference `self - earlier`: the work done
    /// between two snapshots.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            queries_lowered: self.queries_lowered.saturating_sub(earlier.queries_lowered),
            plans_computed: self.plans_computed.saturating_sub(earlier.plans_computed),
            plan_cache_hits: self.plan_cache_hits.saturating_sub(earlier.plan_cache_hits),
            plan_cache_misses: self
                .plan_cache_misses
                .saturating_sub(earlier.plan_cache_misses),
            queries_executed: self
                .queries_executed
                .saturating_sub(earlier.queries_executed),
            queries_cancelled: self
                .queries_cancelled
                .saturating_sub(earlier.queries_cancelled),
            batch_queries: self.batch_queries.saturating_sub(earlier.batch_queries),
            semijoin_passes: self.semijoin_passes.saturating_sub(earlier.semijoin_passes),
            candidate_nodes: self.candidate_nodes.saturating_sub(earlier.candidate_nodes),
            union_parts: self.union_parts.saturating_sub(earlier.union_parts),
            nodes_swept: self.nodes_swept.saturating_sub(earlier.nodes_swept),
            backtrack_assignments: self
                .backtrack_assignments
                .saturating_sub(earlier.backtrack_assignments),
            parallel_kernels: self
                .parallel_kernels
                .saturating_sub(earlier.parallel_kernels),
            parallel_chunks: self.parallel_chunks.saturating_sub(earlier.parallel_chunks),
            quiesce_retries: self.quiesce_retries.max(earlier.quiesce_retries),
            torn: self.torn || earlier.torn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::planner::{CostClass, Strategy};
    use crate::plan::SourceLang;

    #[test]
    fn fmt_ns_unit_ladder() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_340_000), "2.34ms");
        assert_eq!(fmt_ns(1_200_000_000), "1.20s");
    }

    /// The golden test of the renderer: a hand-built plan with fixed
    /// timings must print exactly this tree.
    #[test]
    fn render_golden() {
        let analyzed = AnalyzedPlan {
            query: "q(x) :- label(x, a), child(x, y), label(y, b).".to_owned(),
            plan: ExplainedPlan {
                source: SourceLang::Cq,
                strategy: Strategy::CqAcyclic,
                cost: CostClass::OutputSensitive,
                estimated_work: 42,
                rationale: "query graph is acyclic (GYO)".to_owned(),
                workers: 1,
                parallel_rationale: "sequential: cq/acyclic has no partitionable kernel".to_owned(),
                query_fingerprint: 7,
            },
            total_ns: 1_500_000,
            output_rows: 3,
            stages: vec![
                StageStats {
                    name: "pipeline.lower",
                    calls: 1,
                    total_ns: 12_000,
                    depth: 0,
                    fields: vec![],
                    mem: None,
                },
                StageStats {
                    name: "exec.run",
                    calls: 1,
                    total_ns: 1_400_000,
                    depth: 0,
                    fields: vec![],
                    mem: None,
                },
                StageStats {
                    name: "exec.semijoin",
                    calls: 1,
                    total_ns: 900_000,
                    depth: 1,
                    fields: vec![("passes", 6), ("candidates", 11)],
                    mem: None,
                },
                StageStats {
                    name: "exec.enumerate",
                    calls: 1,
                    total_ns: 400_000,
                    depth: 1,
                    fields: vec![("tuples", 3)],
                    mem: None,
                },
            ],
            counters: MetricsSnapshot {
                queries_lowered: 1,
                queries_executed: 1,
                semijoin_passes: 6,
                candidate_nodes: 11,
                ..MetricsSnapshot::default()
            },
            output: QueryOutput::Nodes(Vec::new()),
        };
        let expected = "\
EXPLAIN ANALYZE [cq] q(x) :- label(x, a), child(x, y), label(y, b).
Plan: cq/acyclic  (cost O(|D|·|Q| + out), estimated 42 node-touches)
  rationale: query graph is acyclic (GYO)
  parallel: sequential: cq/acyclic has no partitionable kernel
Measured: total 1.50ms, 3 output row(s)
  -> pipeline.lower  (calls=1, time=12.0µs)
  -> exec.run  (calls=1, time=1.40ms)
    -> exec.semijoin  (calls=1, time=900.0µs)  [passes=6, candidates=11]
    -> exec.enumerate  (calls=1, time=400.0µs)  [tuples=3]
Counters: queries_lowered=1 queries_executed=1 semijoin_passes=6 candidate_nodes=11
";
        assert_eq!(analyzed.render(), expected);
    }

    /// The parallel counterpart of the golden test: per-worker chunk
    /// spans are merged into one stable `exec.sweep.chunk` row (calls =
    /// number of chunks, fields summed), so the rendering is identical no
    /// matter which worker ran which chunk or in what order they
    /// finished.
    #[test]
    fn render_golden_parallel_chunks() {
        let analyzed = AnalyzedPlan {
            query: "//a".to_owned(),
            plan: ExplainedPlan {
                source: SourceLang::XPath,
                strategy: Strategy::XPathSetAtATime,
                cost: CostClass::Linear,
                estimated_work: 131_072,
                rationale: "general Core XPath".to_owned(),
                workers: 4,
                parallel_rationale: "4 workers: pre-order range partition of the sweeps".to_owned(),
                query_fingerprint: 9,
            },
            total_ns: 2_000_000,
            output_rows: 5,
            stages: vec![
                StageStats {
                    name: "exec.run",
                    calls: 1,
                    total_ns: 1_900_000,
                    depth: 0,
                    fields: vec![],
                    mem: None,
                },
                StageStats {
                    name: "exec.sweep",
                    calls: 1,
                    total_ns: 1_800_000,
                    depth: 1,
                    fields: vec![
                        ("nodes", 65_536),
                        ("query_size", 2),
                        ("nodes_swept", 131_072),
                    ],
                    mem: None,
                },
                StageStats {
                    name: "exec.sweep.chunk",
                    calls: 4,
                    total_ns: 1_600_000,
                    depth: 2,
                    fields: vec![("nodes", 65_536)],
                    mem: None,
                },
            ],
            counters: MetricsSnapshot {
                queries_executed: 1,
                nodes_swept: 131_072,
                parallel_kernels: 1,
                parallel_chunks: 4,
                ..MetricsSnapshot::default()
            },
            output: QueryOutput::Nodes(Vec::new()),
        };
        let expected = "\
EXPLAIN ANALYZE [xpath] //a
Plan: xpath/set-at-a-time  (cost O(|D|·|Q|), estimated 131072 node-touches)
  rationale: general Core XPath
  parallel: 4 workers: pre-order range partition of the sweeps
Measured: total 2.00ms, 5 output row(s)
  -> exec.run  (calls=1, time=1.90ms)
    -> exec.sweep  (calls=1, time=1.80ms)  [nodes=65536, query_size=2, nodes_swept=131072]
      -> exec.sweep.chunk  (calls=4, time=1.60ms)  [nodes=65536]
Counters: queries_executed=1 nodes_swept=131072 parallel_kernels=1 parallel_chunks=4
";
        assert_eq!(analyzed.render(), expected);
    }

    /// The mem-column golden: an accounted run joins allocator scope
    /// totals onto stages by name, and a torn counter snapshot says so on
    /// the Counters line.
    #[test]
    fn render_golden_with_mem_and_torn() {
        let analyzed = AnalyzedPlan {
            query: "//b".to_owned(),
            plan: ExplainedPlan {
                source: SourceLang::XPath,
                strategy: Strategy::XPathSetAtATime,
                cost: CostClass::Linear,
                estimated_work: 128,
                rationale: "general Core XPath".to_owned(),
                workers: 1,
                parallel_rationale: "sequential: below the parallel threshold".to_owned(),
                query_fingerprint: 3,
            },
            total_ns: 500_000,
            output_rows: 2,
            stages: vec![
                StageStats {
                    name: "exec.run",
                    calls: 1,
                    total_ns: 480_000,
                    depth: 0,
                    fields: vec![],
                    mem: Some(StageMem {
                        allocs: 3,
                        bytes: 256,
                        peak_live: 192,
                    }),
                },
                StageStats {
                    name: "exec.sweep",
                    calls: 1,
                    total_ns: 400_000,
                    depth: 1,
                    fields: vec![("nodes", 64), ("query_size", 2), ("nodes_swept", 128)],
                    mem: Some(StageMem {
                        allocs: 17,
                        bytes: 4096,
                        peak_live: 2048,
                    }),
                },
            ],
            counters: MetricsSnapshot {
                queries_executed: 1,
                nodes_swept: 128,
                quiesce_retries: 16,
                torn: true,
                ..MetricsSnapshot::default()
            },
            output: QueryOutput::Nodes(Vec::new()),
        };
        let expected = "\
EXPLAIN ANALYZE [xpath] //b
Plan: xpath/set-at-a-time  (cost O(|D|·|Q|), estimated 128 node-touches)
  rationale: general Core XPath
  parallel: sequential: below the parallel threshold
Measured: total 500.0µs, 2 output row(s)
  -> exec.run  (calls=1, time=480.0µs)  [mem: bytes=256, allocs=3, peak=192]
    -> exec.sweep  (calls=1, time=400.0µs)  [nodes=64, query_size=2, nodes_swept=128]  [mem: bytes=4096, allocs=17, peak=2048]
Counters: queries_executed=1 nodes_swept=128  [torn after 16 retries: counters did not quiesce; cross-counter consistency not guaranteed]
";
        assert_eq!(analyzed.render(), expected);
        let v = treequery_obs::parse_json(&analyzed.to_json().render()).unwrap();
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("quiesce_retries")
                .unwrap()
                .as_u64(),
            Some(16)
        );
        let stages = v.get("stages").unwrap().as_arr().unwrap();
        let mem = stages[1].get("mem").unwrap();
        assert_eq!(mem.get("bytes").unwrap().as_u64(), Some(4096));
        assert_eq!(mem.get("allocs").unwrap().as_u64(), Some(17));
    }

    #[test]
    fn snapshot_delta_is_fieldwise() {
        let a = MetricsSnapshot {
            queries_executed: 5,
            semijoin_passes: 12,
            ..MetricsSnapshot::default()
        };
        let b = MetricsSnapshot {
            queries_executed: 7,
            semijoin_passes: 18,
            nodes_swept: 3,
            ..MetricsSnapshot::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.queries_executed, 2);
        assert_eq!(d.semijoin_passes, 6);
        assert_eq!(d.nodes_swept, 3);
        // Saturates instead of wrapping if the metrics were reset between.
        assert_eq!(a.delta_since(&b).queries_executed, 0);
    }

    #[test]
    fn json_forms_round_trip_through_the_parser() {
        let snapshot = MetricsSnapshot {
            queries_lowered: 2,
            nodes_swept: 99,
            ..MetricsSnapshot::default()
        };
        let v = treequery_obs::parse_json(&snapshot.to_json().render()).unwrap();
        assert_eq!(v.get("nodes_swept").unwrap().as_u64(), Some(99));
        let plan = ExplainedPlan {
            source: SourceLang::XPath,
            strategy: Strategy::XPathSetAtATime,
            cost: CostClass::Linear,
            estimated_work: 10,
            rationale: "general Core XPath \"sweep\"".to_owned(),
            workers: 4,
            parallel_rationale: "4 workers: pre-order range partition".to_owned(),
            query_fingerprint: u64::MAX,
        };
        let v = treequery_obs::parse_json(&plan.to_json().render()).unwrap();
        assert_eq!(
            v.get("strategy").unwrap().as_str(),
            Some("xpath/set-at-a-time")
        );
        assert_eq!(v.get("workers").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("query_fingerprint").unwrap().as_u64(), Some(u64::MAX));
    }
}
