//! The shared logical IR every front-end lowers into.
//!
//! A [`Query`] (text in one of the three front-end syntaxes) lowers into a
//! [`QueryIr`]: the parsed body, a *normalized* form (forward axes for
//! CQs; the conjunctive-XPath→acyclic-CQ lowering of Proposition 4.2 when
//! it applies), the structural feature summary the front-end crates
//! compute ([`treequery_xpath::features`], [`treequery_cq::features`],
//! [`treequery_datalog::features`]), and a fingerprint of the normalized
//! form that, paired with a tree fingerprint, keys the executor's plan
//! cache.
//!
//! Provenance is preserved: the IR keeps the native parsed AST, so the
//! executor can always fall back to the substrate evaluator the query was
//! written for.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use treequery_cq as cq;
use treequery_datalog as datalog;
use treequery_xpath as xpath;

use crate::EngineError;

/// A query in one of the three front-end syntaxes, as posed by a caller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// Core XPath (e.g. `//a[b]/c`).
    Xpath(String),
    /// A conjunctive query (e.g. `q(x) :- child(x, y), label(y, b).`).
    Cq(String),
    /// A monadic datalog program with a `?- P.` query directive.
    Datalog(String),
}

impl Query {
    /// Convenience constructor for Core XPath text.
    pub fn xpath(text: impl Into<String>) -> Self {
        Query::Xpath(text.into())
    }

    /// Convenience constructor for conjunctive-query text.
    pub fn cq(text: impl Into<String>) -> Self {
        Query::Cq(text.into())
    }

    /// Convenience constructor for datalog text.
    pub fn datalog(text: impl Into<String>) -> Self {
        Query::Datalog(text.into())
    }

    /// The raw query text.
    pub fn text(&self) -> &str {
        match self {
            Query::Xpath(s) | Query::Cq(s) | Query::Datalog(s) => s,
        }
    }
}

/// Which front-end a query came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SourceLang {
    /// Core XPath.
    XPath,
    /// Conjunctive queries.
    Cq,
    /// Monadic datalog.
    Datalog,
}

impl std::fmt::Display for SourceLang {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SourceLang::XPath => "xpath",
            SourceLang::Cq => "cq",
            SourceLang::Datalog => "datalog",
        })
    }
}

/// A parsed query body in one of the three substrates.
#[derive(Clone, Debug, PartialEq)]
pub enum IrBody {
    /// A Core XPath path expression.
    Path(xpath::Path),
    /// A conjunctive query.
    Cq(cq::Cq),
    /// A monadic datalog program.
    Program(datalog::Program),
}

/// The front-end feature summary carried by the IR (computed by the
/// lowering seams in the front-end crates).
#[derive(Clone, Debug, PartialEq)]
pub enum IrFeatures {
    /// XPath features.
    Path(xpath::PathFeatures),
    /// CQ features.
    Cq(cq::CqFeatures),
    /// Datalog features.
    Program(datalog::ProgramFeatures),
}

/// The normalized logical form of one query, with provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryIr {
    /// The originating front-end.
    pub source: SourceLang,
    /// The native parsed AST (pre-normalization) — the fallback substrate.
    pub native: IrBody,
    /// The normalized body the planner and executor work on: CQs are
    /// forward-normalized; XPath and datalog bodies are kept (their
    /// evaluators normalize internally).
    pub body: IrBody,
    /// For conjunctive Core XPath: the acyclic CQ it lowers into
    /// (Proposition 4.2). `None` for non-conjunctive paths and other
    /// sources.
    pub lowered_cq: Option<cq::Cq>,
    /// The structural feature summary.
    pub features: IrFeatures,
    /// Hash of the normalized form; half of the executor's cache key.
    pub fingerprint: u64,
    /// The query source text: the submitted text when lowered through
    /// [`lower`], otherwise the native AST's rendering. Provenance for
    /// the flight recorder's records and slow-query reproducers; not
    /// part of the fingerprint.
    pub text: String,
}

fn fingerprint_of(source: SourceLang, normalized: &str) -> u64 {
    let mut h = DefaultHasher::new();
    source.hash(&mut h);
    normalized.hash(&mut h);
    h.finish()
}

/// Parses and lowers front-end query text into the IR. The IR keeps the
/// submitted text verbatim (the ASTs' renderings are normalized, which
/// would make flight-recorder provenance lie about what was run).
pub fn lower(query: &Query) -> Result<QueryIr, EngineError> {
    let mut ir = match query {
        Query::Xpath(text) => {
            let path = xpath::parse_xpath(text).map_err(EngineError::XPath)?;
            lower_path(&path)
        }
        Query::Cq(text) => {
            let q = cq::parse_cq(text).map_err(EngineError::Cq)?;
            lower_cq(&q)
        }
        Query::Datalog(text) => {
            let prog = datalog::parse_program(text).map_err(EngineError::Datalog)?;
            if prog.query.is_none() {
                return Err(EngineError::NoQueryPredicate);
            }
            lower_program(&prog)
        }
    };
    ir.text = query.text().to_owned();
    Ok(ir)
}

/// Lowers an already-parsed Core XPath expression.
pub fn lower_path(path: &xpath::Path) -> QueryIr {
    let features = xpath::features(path);
    let lowered_cq = if features.conjunctive {
        xpath::to_cq(path).ok().map(|q| q.normalize_forward())
    } else {
        None
    };
    // The normalized printable form: the lowered CQ when it exists (two
    // syntactically different conjunctive paths with the same CQ share a
    // plan), otherwise the path itself.
    let normalized_text = match &lowered_cq {
        Some(q) => q.to_string(),
        None => path.to_string(),
    };
    QueryIr {
        source: SourceLang::XPath,
        native: IrBody::Path(path.clone()),
        body: IrBody::Path(path.clone()),
        fingerprint: fingerprint_of(SourceLang::XPath, &normalized_text),
        features: IrFeatures::Path(features),
        lowered_cq,
        text: path.to_string(),
    }
}

/// Lowers an already-parsed conjunctive query.
pub fn lower_cq(q: &cq::Cq) -> QueryIr {
    let n = q.normalize_forward();
    let features = cq::features(&n);
    QueryIr {
        source: SourceLang::Cq,
        native: IrBody::Cq(q.clone()),
        fingerprint: fingerprint_of(SourceLang::Cq, &n.to_string()),
        body: IrBody::Cq(n),
        features: IrFeatures::Cq(features),
        lowered_cq: None,
        text: q.to_string(),
    }
}

/// Lowers an already-parsed monadic datalog program.
pub fn lower_program(prog: &datalog::Program) -> QueryIr {
    let features = datalog::features(prog);
    QueryIr {
        source: SourceLang::Datalog,
        native: IrBody::Program(prog.clone()),
        fingerprint: fingerprint_of(SourceLang::Datalog, &prog.to_string()),
        body: IrBody::Program(prog.clone()),
        features: IrFeatures::Program(features),
        lowered_cq: None,
        text: prog.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunctive_xpath_lowers_to_a_cq() {
        let ir = lower(&Query::xpath("//a[b]/c")).unwrap();
        assert_eq!(ir.source, SourceLang::XPath);
        let q = ir.lowered_cq.expect("conjunctive query lowers");
        assert!(cq::is_acyclic(&q), "Proposition 4.2 output is acyclic");
        let IrFeatures::Path(f) = &ir.features else {
            panic!("xpath features")
        };
        assert!(f.conjunctive);
    }

    #[test]
    fn non_conjunctive_xpath_has_no_cq_form() {
        let ir = lower(&Query::xpath("//a[not(b)]")).unwrap();
        assert!(ir.lowered_cq.is_none());
    }

    #[test]
    fn equivalent_conjunctive_paths_share_a_fingerprint() {
        let a = lower(&Query::xpath("//a[b]")).unwrap();
        let b = lower(&Query::xpath("descendant::a[child::b]")).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        let c = lower(&Query::xpath("//a[c]")).unwrap();
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn cq_normalization_is_reflected_in_the_fingerprint() {
        let fwd = lower(&Query::cq("q(y) :- child(x, y), label(x, a).")).unwrap();
        let bwd = lower(&Query::cq("q(y) :- parent(y, x), label(x, a).")).unwrap();
        assert_eq!(fwd.fingerprint, bwd.fingerprint, "forward normalization");
    }

    #[test]
    fn sources_never_collide() {
        let x = lower(&Query::xpath("//a")).unwrap();
        let d = lower(&Query::datalog("P(x) :- label(x, a). ?- P.")).unwrap();
        assert_ne!(x.fingerprint, d.fingerprint);
    }

    #[test]
    fn datalog_without_query_predicate_is_rejected() {
        // The parser defaults the query to the first rule's head, so only
        // a rule-less program can lack one.
        let err = lower(&Query::datalog("")).unwrap_err();
        assert!(matches!(err, EngineError::NoQueryPredicate));
    }
}
