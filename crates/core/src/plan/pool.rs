//! A persistent, lazily-started shared worker pool for intra-query
//! parallelism.
//!
//! The pool is process-global and grows on demand: the first caller that
//! asks for `n` workers spawns them, later callers reuse them. Workers
//! are detached OS threads named `treequery-worker` that live for the
//! rest of the process — queries come and go, the pool does not, which
//! is what makes `Engine::eval_batch` and the partitioned kernels cheap
//! to call repeatedly (no per-call `std::thread::scope` spawning).
//!
//! Two submission APIs:
//!
//! * [`WorkerPool::run_scoped`] — run a batch of boxed closures that may
//!   borrow from the caller's stack, block until all of them finish, and
//!   return their results **in submission order**. That ordering
//!   guarantee is what the deterministic-merge story of the parallel
//!   kernels rests on: chunk outputs are concatenated in chunk order, so
//!   parallel output is byte-identical to sequential.
//! * [`WorkerPool::run_for`] — an allocation-free parallel for: one
//!   shared chunk body called with every index in `0..chunks`, claimed
//!   work-stealing style off a single atomic counter. The job descriptor
//!   lives on the caller's stack and the body is passed by reference, so
//!   the hot evaluation kernels can fan out without a single heap
//!   allocation (the `zero_alloc` gate runs them under accounting).

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A raw pointer to a caller-stack [`ParJob`], published in the pool
/// state so idle workers can join the parallel for.
#[derive(Clone, Copy)]
struct JobRef(*const ParJob);

// SAFETY: the pointee is a ParJob pinned on the stack of a `run_for`
// caller that does not return before every registered worker has
// deregistered; all shared fields are Sync (atomics, Mutex, Condvar, an
// Arc-backed scope handle, and a `dyn Fn + Sync` body).
unsafe impl Send for JobRef {}

/// Shared state of one [`WorkerPool::run_for`] call, on the caller's
/// stack. Every field a worker touches is synchronized: chunk indexes
/// come off `next`, completion flows through `status`/`done`.
struct ParJob {
    /// The chunk body, type-erased from the caller's `&(dyn Fn + Sync)`.
    body: *const (dyn Fn(usize) + Sync),
    chunks: usize,
    /// Next unclaimed chunk index (may run past `chunks`).
    next: AtomicUsize,
    status: Mutex<ForStatus>,
    /// Signaled when `unfinished` or `active` reaches zero.
    done: Condvar,
    /// Submitter's span depth, re-installed around every worker chunk.
    depth: u32,
    /// Submitter's flight-recorder query id (0 = none), ditto — so the
    /// chunk spans a worker closes attribute to the submitting query.
    flight: u64,
    /// Submitter's allocation scope, ditto.
    scope: Option<treequery_obs::alloc::ScopeHandle>,
    /// Submitter's ambient cancel token, re-installed around every worker
    /// chunk so kernel checkpoints inside the body observe it. Once the
    /// token trips, remaining chunks are *drained* (claimed and counted
    /// as finished without running the body): the caller's partial result
    /// is discarded at the executor's final checkpoint anyway, and
    /// draining is what frees the pool within one chunk instead of one
    /// sweep.
    cancel: Option<treequery_tree::CancelToken>,
}

struct ForStatus {
    /// Chunks not yet finished.
    unfinished: usize,
    /// Workers currently registered on the job (the caller is not
    /// counted: it is the party waiting for this to reach zero).
    active: usize,
    /// First panic payload from any chunk.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl ParJob {
    /// Claims and runs chunks until the counter runs out. Called by
    /// registered workers (the caller runs an equivalent inline loop).
    fn run_worker(&self) {
        // SAFETY: `body` points into the `run_for` caller's frame, which
        // is alive for as long as this worker is registered (`active`).
        let body = unsafe { &*self.body };
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.chunks {
                break;
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                if self.cancel.as_ref().is_some_and(|t| t.check().is_some()) {
                    return; // drain: count the chunk done, skip the work
                }
                let run = || {
                    treequery_obs::flight::with_current_query(self.flight, || {
                        treequery_obs::with_ambient_depth(self.depth, || body(i))
                    })
                };
                let run = || match &self.cancel {
                    Some(token) => treequery_tree::cancel::with_token(token, run),
                    None => run(),
                };
                match &self.scope {
                    Some(handle) => treequery_obs::alloc::with_scope(handle, run),
                    None => run(),
                }
            }));
            let mut st = self.status.lock().expect("job lock poisoned");
            if let Err(p) = result {
                if st.panic.is_none() {
                    st.panic = Some(p);
                }
            }
            st.unfinished -= 1;
            if st.unfinished == 0 {
                self.done.notify_all();
            }
        }
        let mut st = self.status.lock().expect("job lock poisoned");
        st.active -= 1;
        if st.active == 0 && st.unfinished == 0 {
            self.done.notify_all();
        }
    }
}

struct PoolState {
    queue: VecDeque<Task>,
    workers: usize,
    /// The currently published parallel for, if any. One at a time: a
    /// second concurrent `run_for` falls back to inline execution.
    job: Option<JobRef>,
}

/// The shared worker pool. Obtain the process-wide instance with
/// [`WorkerPool::global`]; there is intentionally no way to construct a
/// second one outside of tests.
pub struct WorkerPool {
    state: Mutex<PoolState>,
    /// Signals workers that the queue is non-empty.
    work_ready: Condvar,
}

std::thread_local! {
    /// True while the current thread is executing a pool task. Used to
    /// run nested `run_scoped` calls inline instead of re-enqueueing,
    /// which would deadlock once every worker is blocked waiting on a
    /// nested scope.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();

impl WorkerPool {
    /// The process-wide pool. Lazily constructed; no threads are spawned
    /// until the first [`run_scoped`](Self::run_scoped) that wants them.
    pub fn global() -> &'static WorkerPool {
        GLOBAL.get_or_init(|| WorkerPool {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                workers: 0,
                job: None,
            }),
            work_ready: Condvar::new(),
        })
    }

    /// Number of worker threads currently alive.
    pub fn workers(&self) -> usize {
        self.state.lock().expect("pool lock poisoned").workers
    }

    /// Grows the pool to at least `n` workers. The pool never shrinks:
    /// idle workers park on a condvar and cost nothing.
    fn ensure_workers(&'static self, n: usize) {
        let mut state = self.state.lock().expect("pool lock poisoned");
        while state.workers < n {
            state.workers += 1;
            std::thread::Builder::new()
                .name("treequery-worker".into())
                .spawn(move || self.worker_loop())
                .expect("failed to spawn treequery-worker");
        }
    }

    fn worker_loop(&'static self) {
        IN_POOL.with(|f| f.set(true));
        enum Work {
            Task(Task),
            Job(JobRef),
        }
        loop {
            let work = {
                let mut state = self.state.lock().expect("pool lock poisoned");
                loop {
                    if let Some(task) = state.queue.pop_front() {
                        break Work::Task(task);
                    }
                    if let Some(job) = state.job {
                        // SAFETY: `state.job` is only Some while the
                        // publishing `run_for` frame is alive; we hold
                        // the pool lock, which is also required to clear
                        // the slot, so the pointee is valid here.
                        let j = unsafe { &*job.0 };
                        // Register only when chunks look claimable, to
                        // avoid spinning on a drained job. Registration
                        // under the pool lock is what makes the caller's
                        // "no new workers after unpublish" reasoning
                        // sound; claiming nothing afterwards is harmless.
                        if j.next.load(Ordering::Relaxed) < j.chunks {
                            j.status.lock().expect("job lock poisoned").active += 1;
                            break Work::Job(job);
                        }
                    }
                    state = self.work_ready.wait(state).expect("pool lock poisoned");
                }
            };
            match work {
                Work::Task(task) => task(),
                // SAFETY: registered above; the publishing frame cannot
                // return until we deregister inside `run_worker`.
                Work::Job(job) => unsafe { &*job.0 }.run_worker(),
            }
        }
    }

    /// Allocation-free parallel for: calls `body(i)` for every `i` in
    /// `0..chunks`, spreading the calls over up to `workers` threads
    /// (the caller participates), and blocks until all of them finished.
    /// Chunk indexes are claimed from a single atomic counter, so chunk →
    /// thread assignment is dynamic; callers that need deterministic
    /// output must write into per-chunk slots and merge in chunk order.
    ///
    /// The job descriptor lives on this call's stack and the body is
    /// passed by reference: nothing is boxed or queued, so a warmed-up
    /// call performs **zero heap allocations** on the submission path.
    /// The first panicking chunk's payload is resumed on the caller after
    /// all chunks settled. Runs inline when `workers <= 1`, for a single
    /// chunk, from inside a pool task, or when another thread's `run_for`
    /// currently occupies the (single) job slot.
    pub fn run_for(&'static self, workers: usize, chunks: usize, body: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        if workers <= 1 || chunks == 1 || IN_POOL.with(|f| f.get()) {
            for i in 0..chunks {
                body(i);
            }
            return;
        }
        self.ensure_workers(workers.min(chunks));
        // SAFETY: erases `body`'s borrow lifetime for storage in the
        // non-generic job descriptor. This call does not return until
        // every registered worker has deregistered (the `active` wait
        // below), so no use of the pointer outlives the borrow.
        let body_erased = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(body)
        };
        let job = ParJob {
            body: body_erased,
            chunks,
            next: AtomicUsize::new(0),
            status: Mutex::new(ForStatus {
                unfinished: chunks,
                active: 0,
                panic: None,
            }),
            done: Condvar::new(),
            depth: treequery_obs::current_depth(),
            flight: treequery_obs::flight::current_query(),
            scope: treequery_obs::alloc::current_scope(),
            cancel: treequery_tree::cancel::current(),
        };
        {
            let mut state = self.state.lock().expect("pool lock poisoned");
            if state.job.is_some() {
                // Another thread's parallel for holds the slot; running
                // inline beats queueing behind it.
                drop(state);
                for i in 0..chunks {
                    body(i);
                }
                return;
            }
            state.job = Some(JobRef(&job));
            self.work_ready.notify_all();
        }
        // Claim and run chunks like any worker. IN_POOL makes nested
        // parallel calls from the body run inline (and was false above).
        IN_POOL.with(|f| f.set(true));
        loop {
            let i = job.next.fetch_add(1, Ordering::Relaxed);
            if i >= chunks {
                break;
            }
            // Same drain rule as `run_worker`: once the submitter's token
            // trips, remaining chunks complete without running.
            let result = catch_unwind(AssertUnwindSafe(|| {
                if job.cancel.as_ref().is_none_or(|t| t.check().is_none()) {
                    body(i)
                }
            }));
            let mut st = job.status.lock().expect("job lock poisoned");
            if let Err(p) = result {
                if st.panic.is_none() {
                    st.panic = Some(p);
                }
            }
            st.unfinished -= 1;
            if st.unfinished == 0 {
                job.done.notify_all();
            }
        }
        IN_POOL.with(|f| f.set(false));
        // Unpublish: registration requires the pool lock, so after this
        // no new worker can join; the ones already registered are counted
        // in `active` and drained below before `job` leaves scope.
        self.state.lock().expect("pool lock poisoned").job = None;
        let panic = {
            let mut st = job.status.lock().expect("job lock poisoned");
            while st.unfinished != 0 || st.active != 0 {
                st = job.done.wait(st).expect("job lock poisoned");
            }
            st.panic.take()
        };
        if let Some(p) = panic {
            resume_unwind(p);
        }
    }

    /// Runs `tasks` on the pool using up to `workers` threads, blocking
    /// until every task has finished, and returns their results in
    /// submission order. The first panicking task's payload is resumed
    /// on the caller after all tasks have settled; the pool itself stays
    /// usable.
    ///
    /// Tasks may borrow from the caller's stack (`'env`): the call does
    /// not return before every task has run, so the borrows stay valid.
    /// With `workers <= 1`, at most one task, or when called from inside
    /// a pool task (nested parallelism), everything runs inline on the
    /// current thread.
    pub fn run_scoped<'env, T: Send + 'env>(
        &'static self,
        workers: usize,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
    ) -> Vec<T> {
        if workers <= 1 || tasks.len() <= 1 || IN_POOL.with(|f| f.get()) {
            return tasks.into_iter().map(|t| t()).collect();
        }
        self.ensure_workers(workers.min(tasks.len()));

        struct Scope<T> {
            /// `(slots, remaining)`: one result slot per task plus the
            /// count of tasks not yet finished.
            state: Mutex<(Vec<Option<std::thread::Result<T>>>, usize)>,
            done: Condvar,
        }
        let n = tasks.len();
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let scope: Arc<Scope<T>> = Arc::new(Scope {
            state: Mutex::new((slots, n)),
            done: Condvar::new(),
        });
        // Propagate the submitter's span depth into the workers so chunk
        // spans nest under the stage span that dispatched them, the
        // submitter's flight query id so worker spans attribute to the
        // submitting query, and the submitter's allocation scope so chunk
        // allocations stay charged to the stage that dispatched them. The
        // handle keeps the scope cell alive for the workers; the owning
        // frame outlives this call because run_scoped blocks until every
        // task finished.
        let depth = treequery_obs::current_depth();
        let flight = treequery_obs::flight::current_query();
        let alloc_scope = treequery_obs::alloc::current_scope();
        let cancel = treequery_tree::cancel::current();

        {
            let mut state = self.state.lock().expect("pool lock poisoned");
            for (i, task) in tasks.into_iter().enumerate() {
                let scope = Arc::clone(&scope);
                let alloc_scope = alloc_scope.clone();
                let cancel = cancel.clone();
                let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let task = || {
                            treequery_obs::flight::with_current_query(flight, || {
                                treequery_obs::with_ambient_depth(depth, task)
                            })
                        };
                        let task = || match &cancel {
                            Some(token) => treequery_tree::cancel::with_token(token, task),
                            None => task(),
                        };
                        match &alloc_scope {
                            Some(handle) => treequery_obs::alloc::with_scope(handle, task),
                            None => task(),
                        }
                    }));
                    let mut s = scope.state.lock().expect("scope lock poisoned");
                    s.0[i] = Some(result);
                    s.1 -= 1;
                    if s.1 == 0 {
                        scope.done.notify_all();
                    }
                });
                // SAFETY: the task may borrow from `'env`, but this call
                // does not return until `remaining == 0`, i.e. until the
                // task has finished running (panics are caught and stored,
                // never unwound through the queue). No code path between
                // enqueueing and the wait below can panic while holding
                // live `'env` borrows, so the borrow cannot outlive the
                // frame it points into.
                let wrapped: Task = unsafe {
                    std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(wrapped)
                };
                state.queue.push_back(wrapped);
            }
            self.work_ready.notify_all();
        }

        // Help drain the queue while waiting: the caller is otherwise an
        // idle thread, and helping also keeps a single-worker pool from
        // starving when the caller submits more tasks than workers.
        loop {
            {
                let s = scope.state.lock().expect("scope lock poisoned");
                if s.1 == 0 {
                    break;
                }
            }
            let task = {
                let mut state = self.state.lock().expect("pool lock poisoned");
                state.queue.pop_front()
            };
            match task {
                Some(task) => {
                    IN_POOL.with(|f| f.set(true));
                    task();
                    IN_POOL.with(|f| f.set(false));
                }
                None => {
                    let s = scope.state.lock().expect("scope lock poisoned");
                    if s.1 > 0 {
                        // Tasks are in flight on workers; wait for the latch.
                        let _unused = scope
                            .done
                            .wait_timeout(s, std::time::Duration::from_millis(10))
                            .expect("scope lock poisoned");
                    }
                }
            }
        }

        let slots = {
            let mut s = scope.state.lock().expect("scope lock poisoned");
            // `Arc::try_unwrap` could fail here: a worker may still hold
            // its clone for an instant after the final `notify_all`.
            std::mem::take(&mut s.0)
        };
        let mut out = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for slot in slots {
            match slot.expect("scope latch released with an empty slot") {
                Ok(v) => out.push(v),
                Err(p) => {
                    if panic.is_none() {
                        panic = Some(p);
                    }
                }
            }
        }
        if let Some(p) = panic {
            resume_unwind(p);
        }
        out
    }
}

/// Worker count used when the caller does not fix one: the
/// `TREEQUERY_WORKERS` environment variable if set to a positive
/// integer, otherwise [`std::thread::available_parallelism`].
pub fn default_workers() -> usize {
    // An unparsable (or zero) value falls back to the machine and warns
    // once on stderr — see `treequery_obs::env`.
    if let Some(n) = treequery_obs::env::positive_usize_var("TREEQUERY_WORKERS") {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Observes that tasks really ran (shared across test threads).
    static TEST_RUNS: AtomicUsize = AtomicUsize::new(0);

    fn boxed<T: Send>(
        fs: Vec<impl FnOnce() -> T + Send + 'static>,
    ) -> Vec<Box<dyn FnOnce() -> T + Send + 'static>> {
        fs.into_iter()
            .map(|f| Box::new(f) as Box<dyn FnOnce() -> T + Send>)
            .collect()
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkerPool::global();
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32usize)
            .map(|i| {
                Box::new(move || {
                    TEST_RUNS.fetch_add(1, Ordering::Relaxed);
                    i * i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let out = pool.run_scoped(4, tasks);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
        assert!(TEST_RUNS.load(Ordering::Relaxed) >= 32);
    }

    #[test]
    fn tasks_may_borrow_from_the_caller() {
        let data: Vec<u64> = (0..1000).collect();
        let slices: Vec<&[u64]> = data.chunks(100).collect();
        let pool = WorkerPool::global();
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = slices
            .iter()
            .map(|s| {
                let s = *s;
                Box::new(move || s.iter().sum::<u64>()) as Box<dyn FnOnce() -> u64 + Send + '_>
            })
            .collect();
        let sums = pool.run_scoped(4, tasks);
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn a_panicking_task_propagates_and_the_pool_survives() {
        let pool = WorkerPool::global();
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            boxed(vec![|| 1u32, || panic!("chunk exploded"), || 3u32]);
        let err = catch_unwind(AssertUnwindSafe(|| pool.run_scoped(2, tasks))).unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "chunk exploded");
        // The pool is still usable afterwards.
        let out = pool.run_scoped(2, boxed(vec![|| 7u32, || 8u32]));
        assert_eq!(out, vec![7, 8]);
    }

    #[test]
    fn nested_run_scoped_runs_inline_without_deadlock() {
        let pool = WorkerPool::global();
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..8u64)
            .map(|i| {
                Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..4u64)
                        .map(|j| Box::new(move || i * 10 + j) as Box<dyn FnOnce() -> u64 + Send>)
                        .collect();
                    WorkerPool::global().run_scoped(4, inner).iter().sum()
                }) as Box<dyn FnOnce() -> u64 + Send>
            })
            .collect();
        let out = pool.run_scoped(2, tasks);
        let expect: Vec<u64> = (0..8u64)
            .map(|i| (0..4u64).map(|j| i * 10 + j).sum())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn run_for_covers_every_chunk_exactly_once() {
        let pool = WorkerPool::global();
        for workers in [1, 2, 4] {
            let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
            pool.run_for(workers, hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    1,
                    "chunk {i} at {workers} workers"
                );
            }
        }
        // Degenerate shapes.
        pool.run_for(4, 0, &|_| panic!("no chunks, no calls"));
        let one = AtomicUsize::new(0);
        pool.run_for(4, 1, &|i| {
            one.fetch_add(i + 1, Ordering::Relaxed);
        });
        assert_eq!(one.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run_for_propagates_panics_and_stays_usable() {
        let pool = WorkerPool::global();
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.run_for(2, 8, &|i| {
                if i == 3 {
                    panic!("chunk 3 exploded");
                }
            });
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "chunk 3 exploded");
        let n = AtomicUsize::new(0);
        pool.run_for(2, 8, &|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_run_for_runs_inline_without_deadlock() {
        let pool = WorkerPool::global();
        let total = AtomicUsize::new(0);
        pool.run_for(4, 8, &|i| {
            // Nested calls (body is already on a pool/claim path) must
            // execute inline instead of touching the single job slot.
            WorkerPool::global().run_for(4, 4, &|j| {
                total.fetch_add(i * 10 + j, Ordering::Relaxed);
            });
        });
        let expect: usize = (0..8)
            .map(|i| (0..4).map(|j| i * 10 + j).sum::<usize>())
            .sum();
        assert_eq!(total.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn default_workers_honours_the_env_knob() {
        // Can't mutate the process env safely under parallel tests; just
        // check the fallback is sane.
        assert!(default_workers() >= 1);
    }
}
