//! A persistent, lazily-started shared worker pool for intra-query
//! parallelism.
//!
//! The pool is process-global and grows on demand: the first caller that
//! asks for `n` workers spawns them, later callers reuse them. Workers
//! are detached OS threads named `treequery-worker` that live for the
//! rest of the process — queries come and go, the pool does not, which
//! is what makes `Engine::eval_batch` and the partitioned kernels cheap
//! to call repeatedly (no per-call `std::thread::scope` spawning).
//!
//! The only submission API is [`WorkerPool::run_scoped`]: run a batch of
//! closures that may borrow from the caller's stack, block until all of
//! them finish, and return their results **in submission order**. That
//! ordering guarantee is what the deterministic-merge story of the
//! parallel kernels rests on: chunk outputs are concatenated in chunk
//! order, so parallel output is byte-identical to sequential.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Task = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Task>,
    workers: usize,
}

/// The shared worker pool. Obtain the process-wide instance with
/// [`WorkerPool::global`]; there is intentionally no way to construct a
/// second one outside of tests.
pub struct WorkerPool {
    state: Mutex<PoolState>,
    /// Signals workers that the queue is non-empty.
    work_ready: Condvar,
}

std::thread_local! {
    /// True while the current thread is executing a pool task. Used to
    /// run nested `run_scoped` calls inline instead of re-enqueueing,
    /// which would deadlock once every worker is blocked waiting on a
    /// nested scope.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();

impl WorkerPool {
    /// The process-wide pool. Lazily constructed; no threads are spawned
    /// until the first [`run_scoped`](Self::run_scoped) that wants them.
    pub fn global() -> &'static WorkerPool {
        GLOBAL.get_or_init(|| WorkerPool {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                workers: 0,
            }),
            work_ready: Condvar::new(),
        })
    }

    /// Number of worker threads currently alive.
    pub fn workers(&self) -> usize {
        self.state.lock().expect("pool lock poisoned").workers
    }

    /// Grows the pool to at least `n` workers. The pool never shrinks:
    /// idle workers park on a condvar and cost nothing.
    fn ensure_workers(&'static self, n: usize) {
        let mut state = self.state.lock().expect("pool lock poisoned");
        while state.workers < n {
            state.workers += 1;
            std::thread::Builder::new()
                .name("treequery-worker".into())
                .spawn(move || self.worker_loop())
                .expect("failed to spawn treequery-worker");
        }
    }

    fn worker_loop(&'static self) {
        IN_POOL.with(|f| f.set(true));
        loop {
            let task = {
                let mut state = self.state.lock().expect("pool lock poisoned");
                loop {
                    if let Some(task) = state.queue.pop_front() {
                        break task;
                    }
                    state = self.work_ready.wait(state).expect("pool lock poisoned");
                }
            };
            task();
        }
    }

    /// Runs `tasks` on the pool using up to `workers` threads, blocking
    /// until every task has finished, and returns their results in
    /// submission order. The first panicking task's payload is resumed
    /// on the caller after all tasks have settled; the pool itself stays
    /// usable.
    ///
    /// Tasks may borrow from the caller's stack (`'env`): the call does
    /// not return before every task has run, so the borrows stay valid.
    /// With `workers <= 1`, at most one task, or when called from inside
    /// a pool task (nested parallelism), everything runs inline on the
    /// current thread.
    pub fn run_scoped<'env, T: Send + 'env>(
        &'static self,
        workers: usize,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
    ) -> Vec<T> {
        if workers <= 1 || tasks.len() <= 1 || IN_POOL.with(|f| f.get()) {
            return tasks.into_iter().map(|t| t()).collect();
        }
        self.ensure_workers(workers.min(tasks.len()));

        struct Scope<T> {
            /// `(slots, remaining)`: one result slot per task plus the
            /// count of tasks not yet finished.
            state: Mutex<(Vec<Option<std::thread::Result<T>>>, usize)>,
            done: Condvar,
        }
        let n = tasks.len();
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let scope: Arc<Scope<T>> = Arc::new(Scope {
            state: Mutex::new((slots, n)),
            done: Condvar::new(),
        });
        // Propagate the submitter's span depth into the workers so chunk
        // spans nest under the stage span that dispatched them, and the
        // submitter's allocation scope so chunk allocations stay charged
        // to the stage that dispatched them. The handle keeps the scope
        // cell alive for the workers; the owning frame outlives this
        // call because run_scoped blocks until every task finished.
        let depth = treequery_obs::current_depth();
        let alloc_scope = treequery_obs::alloc::current_scope();

        {
            let mut state = self.state.lock().expect("pool lock poisoned");
            for (i, task) in tasks.into_iter().enumerate() {
                let scope = Arc::clone(&scope);
                let alloc_scope = alloc_scope.clone();
                let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let task = || treequery_obs::with_ambient_depth(depth, task);
                        match &alloc_scope {
                            Some(handle) => treequery_obs::alloc::with_scope(handle, task),
                            None => task(),
                        }
                    }));
                    let mut s = scope.state.lock().expect("scope lock poisoned");
                    s.0[i] = Some(result);
                    s.1 -= 1;
                    if s.1 == 0 {
                        scope.done.notify_all();
                    }
                });
                // SAFETY: the task may borrow from `'env`, but this call
                // does not return until `remaining == 0`, i.e. until the
                // task has finished running (panics are caught and stored,
                // never unwound through the queue). No code path between
                // enqueueing and the wait below can panic while holding
                // live `'env` borrows, so the borrow cannot outlive the
                // frame it points into.
                let wrapped: Task = unsafe {
                    std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(wrapped)
                };
                state.queue.push_back(wrapped);
            }
            self.work_ready.notify_all();
        }

        // Help drain the queue while waiting: the caller is otherwise an
        // idle thread, and helping also keeps a single-worker pool from
        // starving when the caller submits more tasks than workers.
        loop {
            {
                let s = scope.state.lock().expect("scope lock poisoned");
                if s.1 == 0 {
                    break;
                }
            }
            let task = {
                let mut state = self.state.lock().expect("pool lock poisoned");
                state.queue.pop_front()
            };
            match task {
                Some(task) => {
                    IN_POOL.with(|f| f.set(true));
                    task();
                    IN_POOL.with(|f| f.set(false));
                }
                None => {
                    let s = scope.state.lock().expect("scope lock poisoned");
                    if s.1 > 0 {
                        // Tasks are in flight on workers; wait for the latch.
                        let _unused = scope
                            .done
                            .wait_timeout(s, std::time::Duration::from_millis(10))
                            .expect("scope lock poisoned");
                    }
                }
            }
        }

        let slots = {
            let mut s = scope.state.lock().expect("scope lock poisoned");
            // `Arc::try_unwrap` could fail here: a worker may still hold
            // its clone for an instant after the final `notify_all`.
            std::mem::take(&mut s.0)
        };
        let mut out = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for slot in slots {
            match slot.expect("scope latch released with an empty slot") {
                Ok(v) => out.push(v),
                Err(p) => {
                    if panic.is_none() {
                        panic = Some(p);
                    }
                }
            }
        }
        if let Some(p) = panic {
            resume_unwind(p);
        }
        out
    }
}

/// Worker count used when the caller does not fix one: the
/// `TREEQUERY_WORKERS` environment variable if set to a positive
/// integer, otherwise [`std::thread::available_parallelism`].
pub fn default_workers() -> usize {
    if let Ok(s) = std::env::var("TREEQUERY_WORKERS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Observes that tasks really ran (shared across test threads).
    static TEST_RUNS: AtomicUsize = AtomicUsize::new(0);

    fn boxed<T: Send>(
        fs: Vec<impl FnOnce() -> T + Send + 'static>,
    ) -> Vec<Box<dyn FnOnce() -> T + Send + 'static>> {
        fs.into_iter()
            .map(|f| Box::new(f) as Box<dyn FnOnce() -> T + Send>)
            .collect()
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkerPool::global();
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32usize)
            .map(|i| {
                Box::new(move || {
                    TEST_RUNS.fetch_add(1, Ordering::Relaxed);
                    i * i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let out = pool.run_scoped(4, tasks);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
        assert!(TEST_RUNS.load(Ordering::Relaxed) >= 32);
    }

    #[test]
    fn tasks_may_borrow_from_the_caller() {
        let data: Vec<u64> = (0..1000).collect();
        let slices: Vec<&[u64]> = data.chunks(100).collect();
        let pool = WorkerPool::global();
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = slices
            .iter()
            .map(|s| {
                let s = *s;
                Box::new(move || s.iter().sum::<u64>()) as Box<dyn FnOnce() -> u64 + Send + '_>
            })
            .collect();
        let sums = pool.run_scoped(4, tasks);
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn a_panicking_task_propagates_and_the_pool_survives() {
        let pool = WorkerPool::global();
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            boxed(vec![|| 1u32, || panic!("chunk exploded"), || 3u32]);
        let err = catch_unwind(AssertUnwindSafe(|| pool.run_scoped(2, tasks))).unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "chunk exploded");
        // The pool is still usable afterwards.
        let out = pool.run_scoped(2, boxed(vec![|| 7u32, || 8u32]));
        assert_eq!(out, vec![7, 8]);
    }

    #[test]
    fn nested_run_scoped_runs_inline_without_deadlock() {
        let pool = WorkerPool::global();
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..8u64)
            .map(|i| {
                Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..4u64)
                        .map(|j| Box::new(move || i * 10 + j) as Box<dyn FnOnce() -> u64 + Send>)
                        .collect();
                    WorkerPool::global().run_scoped(4, inner).iter().sum()
                }) as Box<dyn FnOnce() -> u64 + Send>
            })
            .collect();
        let out = pool.run_scoped(2, tasks);
        let expect: Vec<u64> = (0..8u64)
            .map(|i| (0..4u64).map(|j| i * 10 + j).sum())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn default_workers_honours_the_env_knob() {
        // Can't mutate the process env safely under parallel tests; just
        // check the fallback is sane.
        assert!(default_workers() >= 1);
    }
}
