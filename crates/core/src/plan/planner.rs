//! The statistics-driven planner: Figure 7's complexity landscape as
//! executable policy.
//!
//! Given a lowered [`QueryIr`] and the [`TreeStats`] of the target tree,
//! [`plan_ir`] picks an execution [`Strategy`] and explains itself: the
//! returned [`ExplainedPlan`] carries the strategy, its asymptotic
//! [`CostClass`], a concrete work estimate in node-touch units, and a
//! human-readable rationale. The dichotomy (Theorem 6.8), acyclicity
//! (GYO), and rewritability (Theorem 5.1) bound which strategies are
//! *correct*; the statistics decide which of the correct ones is
//! *cheapest*.

use treequery_cq as cq;
use treequery_tree::Order;

use super::ir::{IrFeatures, QueryIr, SourceLang};
use super::pool::default_workers;
use super::stats::TreeStats;

/// An execution strategy across all three front-ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// XPath: the set-at-a-time evaluator (`O(|D| · |Q|)`).
    XPathSetAtATime,
    /// XPath: the literal (P1)–(P4)/(Q1)–(Q5) reference semantics
    /// (oracle; never chosen by the planner).
    XPathReference,
    /// XPath: translate to monadic datalog, ground, run Minoux
    /// (Theorem 3.2 route; never chosen by the planner — same asymptotics
    /// as set-at-a-time with a larger constant).
    XPathViaDatalog,
    /// XPath: lower the conjunctive fragment to an acyclic CQ and run the
    /// full reducer (Proposition 4.2); wins when a rare label makes the
    /// candidate sets small.
    XPathViaAcyclicCq,
    /// CQ: acyclic — Yannakakis' full reducer + backtrack-free
    /// enumeration (`O(|Q| · ||A|| + output)`).
    CqAcyclic,
    /// CQ: cyclic Boolean query inside the X-property class —
    /// arc-consistency + minimum valuation w.r.t. the certified order
    /// (Theorem 6.5).
    CqXProperty(Order),
    /// CQ: rewritten into an equivalent union of this many acyclic
    /// queries (Theorem 5.1).
    CqRewriteUnion(usize),
    /// CQ: exponential backtracking (NP-hard shape, or a tree so small
    /// that brute force is estimated cheaper than a large rewrite union).
    CqBacktrack,
    /// Datalog: ground over the tree + Minoux (Theorem 3.2,
    /// `O(|P| · |Dom|)`).
    DatalogGround,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::XPathSetAtATime => f.write_str("xpath/set-at-a-time"),
            Strategy::XPathReference => f.write_str("xpath/reference"),
            Strategy::XPathViaDatalog => f.write_str("xpath/via-datalog"),
            Strategy::XPathViaAcyclicCq => f.write_str("xpath/via-acyclic-cq"),
            Strategy::CqAcyclic => f.write_str("cq/acyclic"),
            Strategy::CqXProperty(o) => write!(f, "cq/x-property({o:?})"),
            Strategy::CqRewriteUnion(k) => write!(f, "cq/rewrite-union({k})"),
            Strategy::CqBacktrack => f.write_str("cq/backtrack"),
            Strategy::DatalogGround => f.write_str("datalog/ground+minoux"),
        }
    }
}

/// The asymptotic cost band of a chosen strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CostClass {
    /// `O(|D| · |Q|)` combined.
    Linear,
    /// `O(|D| · |Q| + |output|)`.
    OutputSensitive,
    /// Polynomial, superlinear (AC fixpoints, unions of acyclic parts).
    Polynomial,
    /// Exponential in the query (backtracking).
    Exponential,
}

impl std::fmt::Display for CostClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CostClass::Linear => "O(|D|·|Q|)",
            CostClass::OutputSensitive => "O(|D|·|Q| + out)",
            CostClass::Polynomial => "poly",
            CostClass::Exponential => "exp",
        })
    }
}

/// A chosen strategy with its justification — what `Engine::explain`
/// returns and what the plan cache stores.
#[derive(Clone, Debug, PartialEq)]
pub struct ExplainedPlan {
    /// The originating front-end.
    pub source: SourceLang,
    /// The chosen strategy.
    pub strategy: Strategy,
    /// Its asymptotic band.
    pub cost: CostClass,
    /// Estimated work in node-touch units (saturating).
    pub estimated_work: u64,
    /// Why this strategy: the structural facts and statistics that
    /// decided it.
    pub rationale: String,
    /// Worker threads the executor may use for this plan's kernels
    /// (1 = sequential).
    pub workers: usize,
    /// Why that degree of parallelism (or why sequential).
    pub parallel_rationale: String,
    /// The query fingerprint (cache-key half, from the IR).
    pub query_fingerprint: u64,
}

impl ExplainedPlan {
    /// Fills in the parallelism half of the plan: how many workers the
    /// executor may use and why. Strategies without a partitionable
    /// kernel, trees below [`PlannerConfig::parallel_threshold`], and
    /// single-worker configurations all stay sequential; otherwise the
    /// plan is granted the configured (or machine-default) worker count.
    /// Parallel execution is byte-identical to sequential — this decision
    /// is purely about cost, never about correctness.
    pub fn decide_parallel(&mut self, stats: &TreeStats, config: &PlannerConfig) {
        let workers = config.workers.unwrap_or_else(default_workers).max(1);
        let kernel = match self.strategy {
            Strategy::XPathSetAtATime => Some("pre-order range partition of the sweeps"),
            Strategy::XPathViaDatalog | Strategy::DatalogGround => {
                Some("per-node-range grounding chunks, assembled in rule-major order")
            }
            Strategy::CqRewriteUnion(k) if k >= 2 => {
                Some("independent acyclic union parts, merged into one BTree")
            }
            _ => None,
        };
        let Some(kernel) = kernel else {
            self.workers = 1;
            self.parallel_rationale =
                format!("sequential: {} has no partitionable kernel", self.strategy);
            return;
        };
        if workers <= 1 {
            self.workers = 1;
            self.parallel_rationale = "sequential: one worker configured".to_string();
            return;
        }
        if stats.nodes < config.parallel_threshold {
            self.workers = 1;
            self.parallel_rationale = format!(
                "sequential: {} nodes is below the parallel threshold of {}",
                stats.nodes, config.parallel_threshold
            );
            return;
        }
        self.workers = workers;
        self.parallel_rationale = format!(
            "{workers} workers: {kernel}; deterministic merge keeps the output \
             byte-identical to sequential"
        );
    }
}

/// Tunables for the planner. `Default` gives the paper-faithful policy.
#[derive(Clone, Debug, PartialEq)]
pub struct PlannerConfig {
    /// A conjunctive XPath query routes through its acyclic-CQ lowering
    /// when its rarest required label occurs at most this many times.
    /// Both evaluators are `O(|D| · |Q|)` and the sweep has the smaller
    /// constant, so the default is 0: the route fires exactly when some
    /// required label is *absent*, and the full reducer then refutes the
    /// query from empty candidate sets instead of sweeping the document.
    pub cq_route_max_label_count: usize,
    /// Prefer backtracking over a rewrite union only when the estimated
    /// brute-force work is this many times cheaper (hysteresis so plans
    /// stay stable under small estimate noise).
    pub backtrack_margin: u64,
    /// Fixed setup cost charged per acyclic part of a rewrite union, in
    /// node-touch units (each part compiles its own join forest and edge
    /// indexes); this is what lets brute force win on trivially small
    /// trees.
    pub rewrite_part_overhead: u64,
    /// Worker threads parallel plans may use; `None` resolves to
    /// [`default_workers`] (the `TREEQUERY_WORKERS` env knob, else the
    /// machine's available parallelism).
    pub workers: Option<usize>,
    /// Trees with fewer nodes than this always run sequentially — chunk
    /// dispatch overhead dominates the kernels below it.
    pub parallel_threshold: usize,
    /// Per-engine slow-query threshold in milliseconds for the flight
    /// recorder's slow-query log (`0` logs every query). `None` defers
    /// to the recorder's install-time threshold (the `TREEQUERY_SLOW_MS`
    /// env knob); ignored entirely while the flight recorder is off.
    pub slow_query_ms: Option<u64>,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            cq_route_max_label_count: 0,
            backtrack_margin: 4,
            rewrite_part_overhead: 1024,
            workers: None,
            parallel_threshold: 4096,
            slow_query_ms: None,
        }
    }
}

fn saturating_pow(base: u64, exp: usize) -> u64 {
    let mut acc = 1u64;
    for _ in 0..exp {
        acc = acc.saturating_mul(base);
        if acc == u64::MAX {
            break;
        }
    }
    acc
}

/// Every strategy that is *correct* for this IR — the set a differential
/// tester may force via `Engine::eval_ir_via` and expect agreeing answers
/// from. The planner's choice is always a member: the planner optimizes
/// *within* this set, it never changes semantics.
///
/// Applicability mirrors the executor's own preconditions: the acyclic-CQ
/// route needs the Proposition 4.2 lowering, the full reducer needs an
/// acyclic query graph, arc-consistency needs a certified X-property
/// order (and answers only the Boolean question), and the rewrite union
/// needs Theorem 5.1 to apply.
pub fn applicable_strategies(ir: &QueryIr) -> Vec<Strategy> {
    match &ir.features {
        IrFeatures::Path(_) => {
            let mut out = vec![
                Strategy::XPathSetAtATime,
                Strategy::XPathReference,
                Strategy::XPathViaDatalog,
            ];
            if ir.lowered_cq.is_some() {
                out.push(Strategy::XPathViaAcyclicCq);
            }
            out
        }
        IrFeatures::Cq(f) => {
            let mut out = vec![Strategy::CqBacktrack];
            if f.acyclic {
                out.push(Strategy::CqAcyclic);
            }
            if let Some(order) = f.tractable_order {
                out.push(Strategy::CqXProperty(order));
            }
            if !f.acyclic {
                let body = match &ir.body {
                    super::ir::IrBody::Cq(q) => q,
                    _ => unreachable!("CQ features imply a CQ body"),
                };
                if let Ok((parts, _)) = cq::rewrite_to_acyclic(body) {
                    out.push(Strategy::CqRewriteUnion(parts.len()));
                }
            }
            out
        }
        IrFeatures::Program(_) => vec![Strategy::DatalogGround],
    }
}

/// Plans one lowered query against one tree.
pub fn plan_ir(ir: &QueryIr, stats: &TreeStats, config: &PlannerConfig) -> ExplainedPlan {
    let mut plan = plan_strategy(ir, stats, config);
    plan.decide_parallel(stats, config);
    plan
}

fn plan_strategy(ir: &QueryIr, stats: &TreeStats, config: &PlannerConfig) -> ExplainedPlan {
    match &ir.features {
        IrFeatures::Path(f) => plan_path(ir, f, stats, config),
        IrFeatures::Cq(f) => plan_cq(ir, f, stats, config),
        IrFeatures::Program(f) => ExplainedPlan {
            source: SourceLang::Datalog,
            strategy: Strategy::DatalogGround,
            cost: CostClass::Linear,
            estimated_work: (f.size as u64).saturating_mul(stats.nodes as u64),
            rationale: format!(
                "monadic datalog ({} rules{}): ground over {} nodes + Minoux is \
                 O(|P|·|Dom|) (Theorem 3.2)",
                f.rules,
                if f.tmnf { ", TMNF" } else { "" },
                stats.nodes
            ),
            workers: 1,
            parallel_rationale: String::new(),
            query_fingerprint: ir.fingerprint,
        },
    }
}

fn plan_path(
    ir: &QueryIr,
    f: &treequery_xpath::PathFeatures,
    stats: &TreeStats,
    config: &PlannerConfig,
) -> ExplainedPlan {
    let n = stats.nodes as u64;
    let sweep_work = n.saturating_mul(f.size as u64);
    if let Some(q) = &ir.lowered_cq {
        // Conjunctive fragment: if a required label is rare enough (by
        // default: absent), the acyclic-CQ route decides the query from
        // statistics-sized candidate sets instead of sweeping.
        let rarest = stats
            .rarest_label_count(f.labels.iter().map(String::as_str))
            .unwrap_or(stats.nodes);
        let atoms = q.atoms.len() as u64;
        if rarest <= config.cq_route_max_label_count {
            let (label, count) = f
                .labels
                .iter()
                .map(|l| (l.as_str(), stats.label_count(l)))
                .min_by_key(|&(_, c)| c)
                .unwrap_or(("*", stats.nodes));
            let occurrence = if count == 0 {
                format!("label '{label}' does not occur in the document")
            } else {
                format!(
                    "label '{label}' occurs only {count}× in {} nodes",
                    stats.nodes
                )
            };
            return ExplainedPlan {
                source: SourceLang::XPath,
                strategy: Strategy::XPathViaAcyclicCq,
                cost: CostClass::OutputSensitive,
                estimated_work: (rarest as u64)
                    .saturating_mul(2 * atoms)
                    .saturating_add(atoms),
                rationale: format!(
                    "conjunctive Core XPath lowers to an acyclic CQ (Proposition 4.2); \
                     {occurrence}, so the full reducer decides the query from tiny \
                     candidate sets, skipping the O(|D|·|Q|) sweep"
                ),
                workers: 1,
                parallel_rationale: String::new(),
                query_fingerprint: ir.fingerprint,
            };
        }
    }
    let shape = if f.conjunctive {
        "conjunctive, but every required label is common (both routes are \
         O(|D|·|Q|) and the sweep has the smaller constant)"
    } else if f.has_negation {
        "negation blocks the CQ lowering"
    } else if f.has_disjunction || f.union_arms > 1 {
        "disjunction/union blocks the CQ lowering"
    } else {
        "general Core XPath"
    };
    ExplainedPlan {
        source: SourceLang::XPath,
        strategy: Strategy::XPathSetAtATime,
        cost: CostClass::Linear,
        estimated_work: sweep_work,
        rationale: format!(
            "{shape}; the set-at-a-time evaluator is O(|D|·|Q|) = {} node-touches \
             over {} nodes (Section 4)",
            sweep_work, stats.nodes
        ),
        workers: 1,
        parallel_rationale: String::new(),
        query_fingerprint: ir.fingerprint,
    }
}

fn plan_cq(
    ir: &QueryIr,
    f: &cq::CqFeatures,
    stats: &TreeStats,
    config: &PlannerConfig,
) -> ExplainedPlan {
    let n = (stats.nodes as u64).max(1);
    let atoms = (f.atoms as u64).max(1);
    if f.acyclic {
        let rarest = stats
            .rarest_label_count(f.labels.iter().map(String::as_str))
            .unwrap_or(stats.nodes);
        return ExplainedPlan {
            source: SourceLang::Cq,
            strategy: Strategy::CqAcyclic,
            cost: CostClass::OutputSensitive,
            estimated_work: 2 * atoms * (rarest as u64).max(1).min(n),
            rationale: format!(
                "query graph is acyclic (GYO): Yannakakis full reducer + \
                 backtrack-free enumeration, O(|Q|·||A|| + output) over {} nodes",
                stats.nodes
            ),
            workers: 1,
            parallel_rationale: String::new(),
            query_fingerprint: ir.fingerprint,
        };
    }
    if let Some(order) = f.tractable_order {
        return ExplainedPlan {
            source: SourceLang::Cq,
            strategy: Strategy::CqXProperty(order),
            cost: CostClass::Polynomial,
            estimated_work: atoms.saturating_mul(n).saturating_mul(4),
            rationale: format!(
                "cyclic Boolean query whose axes all have the X-underbar property \
                 w.r.t. {order:?} order (Theorem 6.8): arc-consistency + minimum \
                 valuation decides it in polynomial time (Theorem 6.5)"
            ),
            workers: 1,
            parallel_rationale: String::new(),
            query_fingerprint: ir.fingerprint,
        };
    }
    let backtrack_work = saturating_pow(n, f.vars).saturating_mul(atoms);
    let cq::CqFeatures { vars, .. } = f;
    let body = match &ir.body {
        super::ir::IrBody::Cq(q) => q,
        _ => unreachable!("CQ features imply a CQ body"),
    };
    match cq::rewrite_to_acyclic(body) {
        Ok((parts, _)) => {
            let k = parts.len();
            let rewrite_work = (k as u64).saturating_mul(
                config
                    .rewrite_part_overhead
                    .saturating_add((2 * atoms).saturating_mul(n)),
            );
            if backtrack_work.saturating_mul(config.backtrack_margin) < rewrite_work {
                ExplainedPlan {
                    source: SourceLang::Cq,
                    strategy: Strategy::CqBacktrack,
                    cost: CostClass::Exponential,
                    estimated_work: backtrack_work,
                    rationale: format!(
                        "rewritable into {k} acyclic parts (Theorem 5.1), but the tree \
                         is small ({} nodes, {vars} variables): brute force ≈{} \
                         node-touches undercuts the union's ≈{}",
                        stats.nodes, backtrack_work, rewrite_work
                    ),
                    workers: 1,
                    parallel_rationale: String::new(),
                    query_fingerprint: ir.fingerprint,
                }
            } else {
                ExplainedPlan {
                    source: SourceLang::Cq,
                    strategy: Strategy::CqRewriteUnion(k),
                    cost: CostClass::Polynomial,
                    estimated_work: rewrite_work,
                    rationale: format!(
                        "cyclic, outside the tractable Boolean class: rewritten into \
                         an equivalent union of {k} acyclic queries (Theorem 5.1), \
                         each evaluated with the full reducer over {} nodes",
                        stats.nodes
                    ),
                    workers: 1,
                    parallel_rationale: String::new(),
                    query_fingerprint: ir.fingerprint,
                }
            }
        }
        Err(_) => ExplainedPlan {
            source: SourceLang::Cq,
            strategy: Strategy::CqBacktrack,
            cost: CostClass::Exponential,
            estimated_work: backtrack_work,
            rationale: format!(
                "cyclic with `<pre`/order atoms: outside Theorem 5.1's rewritable \
                 class and Theorem 6.8's tractable class — exponential backtracking \
                 over {} nodes, {vars} variables",
                stats.nodes
            ),
            workers: 1,
            parallel_rationale: String::new(),
            query_fingerprint: ir.fingerprint,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ir::{lower, Query};
    use treequery_tree::parse_term;

    fn plan_text(q: Query, term: &str) -> ExplainedPlan {
        let t = parse_term(term).unwrap();
        let stats = TreeStats::compute(&t);
        plan_ir(&lower(&q).unwrap(), &stats, &PlannerConfig::default())
    }

    #[test]
    fn absent_label_routes_xpath_through_the_cq_lowering() {
        // 'z' never occurs → the reducer refutes without a sweep.
        let p = plan_text(Query::xpath("//a[z]"), "r(a(b) a(b) a(c))");
        assert_eq!(p.strategy, Strategy::XPathViaAcyclicCq);
        assert_eq!(p.cost, CostClass::OutputSensitive);
        assert!(p.rationale.contains("'z'"), "{}", p.rationale);
        assert!(p.rationale.contains("does not occur"), "{}", p.rationale);
    }

    #[test]
    fn common_labels_stay_on_the_sweep() {
        let p = plan_text(Query::xpath("//a[b]"), "r(a(b) a(b) a(c))");
        assert_eq!(p.strategy, Strategy::XPathSetAtATime);
    }

    #[test]
    fn raising_the_label_threshold_enables_the_cq_route() {
        let t = parse_term("r(a(b) a(b) a(b) a(c))").unwrap();
        let stats = TreeStats::compute(&t);
        let ir = lower(&Query::xpath("//a[c]")).unwrap();
        let config = PlannerConfig {
            cq_route_max_label_count: 4,
            ..PlannerConfig::default()
        };
        let p = plan_ir(&ir, &stats, &config);
        assert_eq!(p.strategy, Strategy::XPathViaAcyclicCq);
        assert!(p.rationale.contains("occurs only 1×"), "{}", p.rationale);
    }

    #[test]
    fn unselective_query_stays_on_the_sweep() {
        let p = plan_text(Query::xpath("//a"), "r(a a a)");
        assert_eq!(p.strategy, Strategy::XPathSetAtATime);
        assert_eq!(p.cost, CostClass::Linear);
    }

    #[test]
    fn negation_blocks_the_cq_route() {
        let p = plan_text(Query::xpath("//a[not(b)]"), "r(a(c) a(b))");
        assert_eq!(p.strategy, Strategy::XPathSetAtATime);
        assert!(p.rationale.contains("negation"), "{}", p.rationale);
    }

    #[test]
    fn cq_strategies_follow_the_dichotomy() {
        let acyclic = plan_text(
            Query::cq("q(x) :- label(x, a), child(x, y), label(y, b)."),
            "r(a(b))",
        );
        assert_eq!(acyclic.strategy, Strategy::CqAcyclic);

        let xprop = plan_text(
            Query::cq("child+(x, y), child+(y, z), child+(x, z)"),
            "r(a(b(c)))",
        );
        assert_eq!(xprop.strategy, Strategy::CqXProperty(Order::Pre));
        assert_eq!(xprop.cost, CostClass::Polynomial);

        let hard = plan_text(
            Query::cq("q(x, y) :- child(z, x), child(z, y), pre_lt(x, y)."),
            "r(a b)",
        );
        assert_eq!(hard.strategy, Strategy::CqBacktrack);
        assert_eq!(hard.cost, CostClass::Exponential);
    }

    #[test]
    fn rewrite_vs_backtrack_is_a_statistics_decision() {
        // Diamond of descendant atoms: cyclic, rewritable into 3 parts.
        let q = "q(x) :- child+(x, y), child+(x, z), child+(y, w), child+(z, w).";
        // On a tiny tree brute force undercuts the union's setup cost.
        let tiny = plan_text(Query::cq(q), "r(a(b))");
        assert_eq!(tiny.strategy, Strategy::CqBacktrack, "{}", tiny.rationale);
        // On a bigger tree the polynomial union wins.
        let big_term = format!("r({})", "a(b(c(d)) b) ".repeat(40));
        let big = plan_text(Query::cq(q), &big_term);
        assert!(
            matches!(big.strategy, Strategy::CqRewriteUnion(_)),
            "{:?}: {}",
            big.strategy,
            big.rationale
        );
    }
}
