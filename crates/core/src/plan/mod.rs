//! The three-stage query pipeline: logical IR → statistics-driven planner
//! → instrumented executor.
//!
//! * [`ir`] — the shared logical form all three front-ends lower into,
//!   with provenance and a normalized-form fingerprint;
//! * [`stats`] — cheap per-tree statistics and the tree fingerprint;
//! * [`planner`] — strategy selection with an inspectable rationale
//!   ([`ExplainedPlan`]);
//! * [`exec`] — plan execution with per-stage work counters and the plan
//!   cache;
//! * [`analyze`] — `EXPLAIN ANALYZE`: the plan rationale merged with
//!   measured per-stage spans and a consistent counter delta;
//! * [`pool`] — the persistent shared worker pool behind intra-query
//!   parallelism and `Engine::eval_batch`;
//! * [`par`] — pre-order-range-partitioned parallel kernels with
//!   deterministic (byte-identical to sequential) merges.

pub mod analyze;
pub mod exec;
pub mod ir;
pub mod par;
pub mod planner;
pub mod pool;
pub mod stats;

pub use analyze::{AnalyzedPlan, StageMem, StageStats};
pub use exec::{Metrics, MetricsSnapshot, PlanCache, QueryOutput};
pub use ir::{lower, Query, QueryIr, SourceLang};
pub use planner::{
    applicable_strategies, plan_ir, CostClass, ExplainedPlan, PlannerConfig, Strategy,
};
pub use pool::{default_workers, WorkerPool};
pub(crate) use stats::fingerprint_len_term;
pub use stats::{node_fingerprint, tree_fingerprint, IncrementalStats, TreeStats};
