//! Mutable documents: an editable tree plus every piece of per-tree
//! derived state the query pipeline consults, each maintained
//! *incrementally* under edits.
//!
//! [`crate::Engine`] is deliberately bound to one frozen tree — that is
//! what makes its lazily computed statistics, fingerprint, and cached
//! plans coherent. [`Document`] is the mutable layer above it: it owns an
//! [`EditableTree`] and keeps, across [`Document::edit`] calls,
//!
//! * [`plan::IncrementalStats`] — the planner's [`plan::TreeStats`]
//!   inputs as histograms, point-updated per edit;
//! * the tree fingerprint as its XOR-of-node-hashes fold
//!   ([`plan::tree_fingerprint`]), patched by XOR-ing the touched nodes'
//!   old terms out and new terms in;
//! * the shared plan cache, whose entries for this tree are *rekeyed*
//!   from the old fingerprint to the new one (plans stay sound across
//!   edits; entries for other trees sharing the cache are untouched);
//! * any number of watched datalog programs
//!   ([`Document::watch_datalog`]), each maintained by the two-phase
//!   DRed delta pass of [`datalog::IncrementalEval`] so re-evaluation
//!   after a small edit costs `O(|change|)`, not `O(|D|)`.
//!
//! Queries run through [`Document::engine`]: an ephemeral [`Engine`]
//! borrowing the current tree, pre-seeded with the maintained stats and
//! fingerprint and sharing the document's plan cache and metrics. The
//! borrow checker makes query/edit interleavings linearizable for free —
//! an engine borrows the document shared, `edit` takes it exclusively,
//! so every query observes a tree from between two edits, never during
//! one.

use std::sync::Arc;

use treequery_datalog as datalog;
use treequery_tree::{EditDelta, EditKind, EditOp, EditableTree, NodeId, Tree};

use crate::plan::{self, Metrics};
use crate::{Engine, EngineConfig, EngineError};

/// Handle to a datalog program registered with
/// [`Document::watch_datalog`], valid for the lifetime of the document.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchId(usize);

/// A mutable tree plus incrementally maintained query state. See the
/// module docs for the maintenance contract.
pub struct Document {
    tree: EditableTree,
    config: EngineConfig,
    cache: Arc<plan::PlanCache>,
    metrics: Arc<Metrics>,
    stats: plan::IncrementalStats,
    /// Per-node fingerprint terms, indexed by node id; XOR-folded (with
    /// the length term) into `fingerprint`.
    node_fps: Vec<u64>,
    fingerprint: u64,
    watches: Vec<datalog::IncrementalEval>,
}

impl Document {
    /// Wraps a frozen tree with the default configuration and a private
    /// plan cache.
    pub fn new(tree: Tree) -> Document {
        Document::with_runtime(
            tree,
            EngineConfig::default(),
            Arc::new(plan::PlanCache::default()),
            Arc::new(Metrics::default()),
        )
    }

    /// Wraps a frozen tree sharing an existing plan cache and metrics
    /// registry (several documents can pool one cache: entries are keyed
    /// by tree fingerprint, and edits rekey only this document's
    /// entries).
    pub fn with_runtime(
        tree: Tree,
        config: EngineConfig,
        cache: Arc<plan::PlanCache>,
        metrics: Arc<Metrics>,
    ) -> Document {
        let stats = plan::IncrementalStats::compute(&tree);
        let node_fps: Vec<u64> = tree
            .nodes()
            .map(|v| plan::node_fingerprint(&tree, v))
            .collect();
        let fingerprint = node_fps
            .iter()
            .fold(plan::fingerprint_len_term(tree.len()), |acc, h| acc ^ h);
        Document {
            tree: EditableTree::new(tree),
            config,
            cache,
            metrics,
            stats,
            node_fps,
            fingerprint,
            watches: Vec::new(),
        }
    }

    /// The current tree.
    pub fn tree(&self) -> &Tree {
        self.tree.tree()
    }

    /// The maintained tree fingerprint — always equal to
    /// [`plan::tree_fingerprint`] of the current tree, but `O(|change|)`
    /// to keep current.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The maintained planner statistics, materialized.
    pub fn stats(&self) -> plan::TreeStats {
        self.stats.materialize(self.tree())
    }

    /// Number of edits applied so far.
    pub fn edit_count(&self) -> u64 {
        self.tree.edit_count()
    }

    /// Number of gap-exhaustion refreezes triggered so far.
    pub fn refreeze_count(&self) -> u64 {
        self.tree.refreeze_count()
    }

    /// The shared plan cache (entries for every tree that pools it).
    pub fn plan_cache(&self) -> &Arc<plan::PlanCache> {
        &self.cache
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// An ephemeral engine over the current tree: shares the document's
    /// plan cache and metrics and starts warm (stats and fingerprint
    /// pre-seeded from the maintained state, so no `O(|D|)` pass runs).
    /// The engine borrows the document — drop it before the next
    /// [`Document::edit`].
    pub fn engine(&self) -> Engine<'_> {
        let engine = Engine::with_runtime(
            self.tree(),
            self.config.clone(),
            Arc::clone(&self.cache),
            Arc::clone(&self.metrics),
        );
        engine.seed_tree_state(self.stats(), self.fingerprint);
        engine
    }

    /// Registers a datalog program for incremental maintenance: it is
    /// evaluated once now, and every subsequent [`Document::edit`] runs
    /// the DRed delta pass instead of re-evaluating. The program must
    /// have a query predicate (`?- P.`).
    pub fn watch_datalog(&mut self, program: &str) -> Result<WatchId, EngineError> {
        let prog = datalog::parse_program(program).map_err(EngineError::Datalog)?;
        if prog.query.is_none() {
            return Err(EngineError::NoQueryPredicate);
        }
        self.watches
            .push(datalog::IncrementalEval::new(prog, self.tree()));
        Ok(WatchId(self.watches.len() - 1))
    }

    /// The maintained answer of a watched program, in document order.
    pub fn watched(&self, id: WatchId) -> Vec<NodeId> {
        let mut nodes = self.watches[id.0].query().to_vec();
        self.tree().sort_by_pre(&mut nodes);
        nodes
    }

    /// Cumulative maintenance work spent on a watched program (pinned
    /// probes; the E24 ladder asserts this stays flat in `|D|`).
    pub fn watch_work(&self, id: WatchId) -> u64 {
        self.watches[id.0].work()
    }

    /// Applies one edit and patches every maintained structure. Returns
    /// `None` (and changes nothing) when the op normalizes away (e.g.
    /// deleting the root).
    pub fn edit(&mut self, op: &EditOp) -> Option<EditDelta> {
        // Phase 1 of the DRed pass needs the *pre-edit* tree.
        let pendings: Vec<datalog::PendingEdit> = {
            let tree = self.tree.tree();
            self.watches
                .iter_mut()
                .map(|w| w.prepare_edit(tree, op))
                .collect()
        };
        let delta = self.tree.apply(op)?;

        self.stats.apply_edit(self.tree.tree(), &delta);

        let old_fp = self.fingerprint;
        self.patch_fingerprint(&delta);
        debug_assert_eq!(self.fingerprint, plan::tree_fingerprint(self.tree.tree()));
        self.cache.rekey_tree(old_fp, self.fingerprint);

        let tree = self.tree.tree();
        for (watch, pending) in self.watches.iter_mut().zip(pendings) {
            watch.commit_edit(tree, &delta, pending);
        }
        Some(delta)
    }

    /// Applies a whole edit script; returns how many ops took effect.
    pub fn apply_script(&mut self, ops: &[EditOp]) -> usize {
        ops.iter().filter(|op| self.edit(op).is_some()).count()
    }

    /// XOR-patches the fingerprint for one applied edit. The per-node
    /// term reads depth, sibling index, own labels, and the parent's
    /// primary label — so the dirty set is the edited node, its
    /// children (relabel changes their parent-label term), and its
    /// parent's children (insert shifts their sibling indices). Deletes
    /// compact node ids, so they rebuild the whole per-node vector —
    /// matching the `O(|D|)` the id remap already costs.
    fn patch_fingerprint(&mut self, delta: &EditDelta) {
        let tree = self.tree.tree();
        if matches!(delta.kind, EditKind::Insert) {
            self.fingerprint ^=
                plan::fingerprint_len_term(tree.len() - 1) ^ plan::fingerprint_len_term(tree.len());
            self.node_fps.push(0); // slot for the appended node id
        }
        let (node_fps, fingerprint) = (&mut self.node_fps, &mut self.fingerprint);
        let mut refresh = |v: NodeId| {
            let fresh = plan::node_fingerprint(tree, v);
            let slot = &mut node_fps[v.index()];
            *fingerprint ^= *slot ^ fresh;
            *slot = fresh;
        };
        match delta.kind {
            EditKind::Insert => {
                let parent = delta.parent.expect("insert delta carries the parent");
                for c in tree.children(parent) {
                    refresh(c);
                }
            }
            EditKind::Relabel => {
                let v = delta.node.expect("relabel delta carries the node");
                refresh(v);
                for c in tree.children(v) {
                    refresh(c);
                }
            }
            EditKind::Delete => {
                node_fps.clear();
                node_fps.extend(tree.nodes().map(|v| plan::node_fingerprint(tree, v)));
                *fingerprint = node_fps
                    .iter()
                    .fold(plan::fingerprint_len_term(tree.len()), |acc, h| acc ^ h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_term, Query};

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state
    }

    fn random_op(state: &mut u64, n: u32) -> EditOp {
        let s = lcg(state);
        let labels = ["a", "b", "c", "r"];
        match s % 4 {
            0 | 1 => EditOp::InsertLeaf {
                parent_pre: (s >> 8) as u32 % n,
                child_idx: (s >> 40) as u32 % 4,
                label: labels[(s >> 16) as usize % labels.len()].to_owned(),
            },
            2 => EditOp::DeleteSubtree {
                pre: (s >> 8) as u32 % n,
            },
            _ => EditOp::Relabel {
                pre: (s >> 8) as u32 % n,
                label: labels[(s >> 16) as usize % labels.len()].to_owned(),
            },
        }
    }

    #[test]
    fn maintained_state_matches_recompute_under_edits() {
        let mut doc = Document::new(parse_term("r(a(b c) a(b) c)").unwrap());
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..150 {
            let op = random_op(&mut state, doc.tree().len() as u32);
            if doc.edit(&op).is_none() {
                continue;
            }
            assert_eq!(doc.fingerprint(), plan::tree_fingerprint(doc.tree()));
            assert_eq!(doc.stats(), plan::TreeStats::compute(doc.tree()));
        }
        assert!(doc.edit_count() >= 100);
    }

    #[test]
    fn watched_datalog_tracks_edits() {
        let mut doc = Document::new(parse_term("r(a(b) a(c) b)").unwrap());
        let prog = "P(x) :- label(x, b).
                    P(x) :- child(x, y), P(y).
                    ?- P.";
        let id = doc.watch_datalog(prog).unwrap();
        let mut state = 0xD1B54A32D192ED03u64;
        for _ in 0..80 {
            let op = random_op(&mut state, doc.tree().len() as u32);
            if doc.edit(&op).is_none() {
                continue;
            }
            let expected = doc.engine().datalog(prog).unwrap();
            assert_eq!(doc.watched(id), expected, "after {op}");
        }
        assert!(doc.watch_work(id) > 0);
    }

    #[test]
    fn watch_requires_a_query_predicate() {
        let mut doc = Document::new(parse_term("r(a)").unwrap());
        // The parser defaults the query to the first rule head, so only a
        // rule-less program has none.
        assert!(matches!(
            doc.watch_datalog(""),
            Err(EngineError::NoQueryPredicate)
        ));
        assert!(matches!(
            doc.watch_datalog("P(x) :-"),
            Err(EngineError::Datalog(_))
        ));
        assert!(doc.watch_datalog("P(x) :- label(x, a).").is_ok());
    }

    #[test]
    fn engine_starts_warm_and_shares_the_cache() {
        let mut doc = Document::new(parse_term("r(a(b) c)").unwrap());
        let before = doc.engine().xpath("//a[b]").unwrap();
        // Same query on a fresh ephemeral engine: the shared cache hits.
        doc.engine().xpath("//a[b]").unwrap();
        let m = doc.metrics().snapshot();
        assert_eq!(m.plan_cache_misses, 1);
        assert_eq!(m.plan_cache_hits, 1);
        // After an edit the entry is rekeyed, not dropped: still a hit.
        doc.edit(&EditOp::Relabel {
            pre: 2,
            label: "x".to_owned(),
        })
        .unwrap();
        let after = doc.engine().xpath("//a[b]").unwrap();
        assert_eq!(doc.metrics().snapshot().plan_cache_hits, 2);
        assert_eq!(doc.plan_cache().len(), 1);
        // ... and the answer reflects the edit (b relabeled to x).
        assert_eq!(before.len(), 1);
        assert!(after.is_empty());
    }

    #[test]
    fn no_op_edits_change_nothing() {
        let mut doc = Document::new(parse_term("r(a b)").unwrap());
        let id = doc.watch_datalog("P(x) :- label(x, a). ?- P.").unwrap();
        let fp = doc.fingerprint();
        let answer = doc.watched(id);
        // Deleting the root normalizes away.
        assert!(doc.edit(&EditOp::DeleteSubtree { pre: 0 }).is_none());
        assert_eq!(doc.fingerprint(), fp);
        assert_eq!(doc.watched(id), answer);
        assert_eq!(doc.edit_count(), 0);
    }

    #[test]
    fn documents_pooling_one_cache_do_not_disturb_each_other() {
        let cache = Arc::new(plan::PlanCache::default());
        let metrics = Arc::new(Metrics::default());
        let mut a = Document::with_runtime(
            parse_term("r(a(b) c)").unwrap(),
            EngineConfig::default(),
            Arc::clone(&cache),
            Arc::clone(&metrics),
        );
        let b = Document::with_runtime(
            parse_term("x(y z)").unwrap(),
            EngineConfig::default(),
            Arc::clone(&cache),
            Arc::clone(&metrics),
        );
        a.engine().xpath("//a").unwrap();
        b.engine().xpath("//y").unwrap();
        assert_eq!(cache.len(), 2);
        // Editing A rekeys only A's entries; B's stay warm.
        a.edit(&EditOp::InsertLeaf {
            parent_pre: 0,
            child_idx: 0,
            label: "q".to_owned(),
        })
        .unwrap();
        let misses_before = metrics.snapshot().plan_cache_misses;
        b.engine().xpath("//y").unwrap();
        let m = metrics.snapshot();
        assert_eq!(m.plan_cache_misses, misses_before, "B's entry was evicted");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn eval_batch_between_edits_is_linearizable() {
        // `edit` takes `&mut self` and engines borrow `&self`, so a batch
        // can never observe a half-applied edit; this pins the visible
        // contract: batches before an edit see the old tree, batches
        // after see the new one, and batch answers equal sequential ones.
        let mut doc = Document::new(parse_term("r(a(b) a(c))").unwrap());
        let queries = vec![
            Query::xpath("//a[b]"),
            Query::cq("q(x) :- label(x, a), child(x, y), label(y, b)."),
            Query::datalog("P(x) :- label(x, b). ?- P."),
        ];
        let before = doc.engine().eval_batch(&queries);
        doc.edit(&EditOp::Relabel {
            pre: 2,
            label: "z".to_owned(),
        })
        .unwrap();
        let after = doc.engine().eval_batch(&queries);
        let engine = doc.engine();
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(after[i].as_ref().unwrap(), &engine.eval(q).unwrap());
        }
        assert_ne!(
            before[0].as_ref().unwrap(),
            after[0].as_ref().unwrap(),
            "the edit must be visible to the later batch"
        );
    }
}
