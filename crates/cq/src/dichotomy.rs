//! The tractability classifier of the Dichotomy Theorem (Theorem 6.8).
//!
//! Conjunctive queries over a set `F` of axis relations (plus arbitrary
//! unary relations) are polynomial-time iff there is a total order among
//! `<pre`, `<post`, `<bflr` for which every relation in `F` has the
//! X-underbar property — and by Proposition 6.6 the maximal such families
//! are exactly
//!
//! * τ₁ = {Child⁺, Child*}            w.r.t. `<pre`,
//! * τ₂ = {Following}                  w.r.t. `<post`,
//! * τ₃ = {Child, NextSibling, NextSibling*, NextSibling⁺} w.r.t. `<bflr`.
//!
//! Otherwise the evaluation problem for the class is NP-complete.

use treequery_tree::{Axis, Order};

use crate::ast::{Cq, CqAtom};

/// Classification outcome for a signature of axes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tractability {
    /// All axes have the X-property w.r.t. this order; conjunctive queries
    /// over them are in PTIME via Theorem 6.5.
    Tractable(Order),
    /// No order works: the query class is NP-complete (Theorem 6.8).
    NpComplete,
}

/// Whether `axis` has the X-property w.r.t. `order` (the Proposition 6.6
/// table; `Self` trivially has it for every order). Axes are taken in
/// forward orientation.
pub fn axis_compatible(axis: Axis, order: Order) -> bool {
    if axis == Axis::SelfAxis {
        return true;
    }
    match order {
        Order::Pre => matches!(axis, Axis::Descendant | Axis::DescendantOrSelf),
        Order::Post => matches!(axis, Axis::Following),
        Order::Bflr => matches!(
            axis,
            Axis::Child | Axis::NextSibling | Axis::FollowingSiblingOrSelf | Axis::FollowingSibling
        ),
    }
}

/// Classifies a set of (forward-normalized) axes.
pub fn classify_axes(
    axes: impl IntoIterator<Item = Axis> + Clone,
    uses_pre_lt: bool,
) -> Tractability {
    for order in Order::ALL {
        // `<pre` itself has the X-property w.r.t. `<pre` only.
        if uses_pre_lt && order != Order::Pre {
            continue;
        }
        if axes.clone().into_iter().all(|a| axis_compatible(a, order)) {
            return Tractability::Tractable(order);
        }
    }
    Tractability::NpComplete
}

/// Classifies a query: normalizes inverse axes to forward ones (the
/// X-property machinery then applies symmetrically, since our evaluator
/// enforces arcs in both directions) and checks the signature.
pub fn classify(q: &Cq) -> Tractability {
    let n = q.normalize_forward();
    let axes: Vec<Axis> = n.axes_used().into_iter().collect();
    let uses_pre_lt = n.atoms.iter().any(|a| matches!(a, CqAtom::PreLt(..)));
    classify_axes(axes, uses_pre_lt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;

    #[test]
    fn tau1_signature() {
        let q = parse_cq("child+(x, y), child*(y, z), label(z, a)").unwrap();
        assert_eq!(classify(&q), Tractability::Tractable(Order::Pre));
    }

    #[test]
    fn tau2_signature() {
        let q = parse_cq("following(x, y), following(y, z)").unwrap();
        assert_eq!(classify(&q), Tractability::Tractable(Order::Post));
    }

    #[test]
    fn tau3_signature() {
        let q = parse_cq("child(x, y), nextsibling(y, z), nextsibling+(z, w), nextsibling*(w, u)")
            .unwrap();
        assert_eq!(classify(&q), Tractability::Tractable(Order::Bflr));
    }

    #[test]
    fn mixed_signatures_are_np_complete() {
        // Child + Child+ is the classic NP-complete combination [35].
        for qs in [
            "child(x, y), child+(x, z)",
            "child+(x, y), following(y, z)",
            "child(x, y), following(x, z)",
            "nextsibling(x, y), child+(x, z)",
        ] {
            let q = parse_cq(qs).unwrap();
            assert_eq!(classify(&q), Tractability::NpComplete, "{qs}");
        }
    }

    #[test]
    fn inverse_axes_are_normalized() {
        let q = parse_cq("ancestor(x, y), child*(z, x)").unwrap();
        assert_eq!(classify(&q), Tractability::Tractable(Order::Pre));
    }

    #[test]
    fn self_axis_is_always_fine() {
        let q = parse_cq("self(x, y), following(y, z)").unwrap();
        assert_eq!(classify(&q), Tractability::Tractable(Order::Post));
    }

    #[test]
    fn pre_lt_forces_pre_order() {
        let q = parse_cq("pre_lt(x, y), child+(x, z)").unwrap();
        assert_eq!(classify(&q), Tractability::Tractable(Order::Pre));
        let q2 = parse_cq("pre_lt(x, y), following(x, z)").unwrap();
        assert_eq!(classify(&q2), Tractability::NpComplete);
    }

    #[test]
    fn label_only_queries_are_tractable() {
        let q = parse_cq("label(x, a), label(y, b)").unwrap();
        assert!(matches!(classify(&q), Tractability::Tractable(_)));
    }
}
