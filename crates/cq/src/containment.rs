//! Bounded containment and equivalence of queries (the Section 3
//! definitions: `Q ⊆ Q'` iff `Q'` returns at least `Q`'s tuples on every
//! tree).
//!
//! Deciding containment of conjunctive queries over trees is hard in
//! general (it subsumes the NP-complete evaluation problem of
//! Theorem 6.8), so this module offers the pragmatic tool the rest of the
//! workspace uses for validation: *bounded* checking, exhaustive over all
//! labeled trees up to a given size — exactly how one machine-checks that
//! the Theorem 5.1 rewriting produced an equivalent union.

use treequery_tree::{all_labeled_trees, Tree};

use crate::ast::Cq;
use crate::backtrack::eval_backtrack;
use crate::ucq::Ucq;

/// A witness that containment fails: a tree and a tuple produced by the
/// left query but not the right one.
#[derive(Debug)]
pub struct Counterexample {
    /// The witnessing tree.
    pub tree: Tree,
    /// A tuple in `Q(tree) \ Q'(tree)`.
    pub tuple: Vec<treequery_tree::NodeId>,
}

/// Checks `q ⊆ q'` over **all** trees with at most `max_nodes` nodes and
/// labels from `alphabet`; returns the first counterexample found.
///
/// Exhaustive over `Σ Catalan(n−1)·|Σ|^n` trees — keep `max_nodes ≤ 5`
/// and the alphabet small. A `None` result is a *bounded* guarantee, not
/// a proof (though for the rewrite system's query shapes, small
/// counterexamples are where the bugs are).
pub fn bounded_contained(
    q: &Cq,
    q_prime: &Cq,
    max_nodes: usize,
    alphabet: &[&str],
) -> Option<Counterexample> {
    assert_eq!(
        q.head.len(),
        q_prime.head.len(),
        "containment requires equal arity"
    );
    for n in 1..=max_nodes {
        for t in all_labeled_trees(n, alphabet) {
            let left = eval_backtrack(q, &t);
            if left.is_empty() {
                continue;
            }
            let right = eval_backtrack(q_prime, &t);
            if let Some(tuple) = left.difference(&right).next() {
                let tuple = tuple.clone();
                return Some(Counterexample { tree: t, tuple });
            }
        }
    }
    None
}

/// Bounded equivalence: containment in both directions.
///
/// The counterexample is boxed: it carries a whole witnessing tree, and
/// the success path should not pay for that on the stack.
pub fn bounded_equivalent(
    q: &Cq,
    q_prime: &Cq,
    max_nodes: usize,
    alphabet: &[&str],
) -> Result<(), Box<Counterexample>> {
    if let Some(c) = bounded_contained(q, q_prime, max_nodes, alphabet) {
        return Err(Box::new(c));
    }
    if let Some(c) = bounded_contained(q_prime, q, max_nodes, alphabet) {
        return Err(Box::new(c));
    }
    Ok(())
}

/// Bounded equivalence of a query and a union of queries (used to check
/// Theorem 5.1 outputs: `Q ≡ ⋃ Q_ψ`).
pub fn bounded_equivalent_ucq(
    q: &Cq,
    union: &Ucq,
    max_nodes: usize,
    alphabet: &[&str],
) -> Result<(), Box<Counterexample>> {
    for n in 1..=max_nodes {
        for t in all_labeled_trees(n, alphabet) {
            let left = eval_backtrack(q, &t);
            let right = union.eval(&t);
            if let Some(tuple) = left.symmetric_difference(&right).next() {
                let tuple = tuple.clone();
                return Err(Box::new(Counterexample { tree: t, tuple }));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;
    use crate::rewrite::rewrite_to_acyclic;

    #[test]
    fn child_is_contained_in_descendant() {
        let child = parse_cq("q(x, y) :- child(x, y).").unwrap();
        let desc = parse_cq("q(x, y) :- child+(x, y).").unwrap();
        assert!(bounded_contained(&child, &desc, 4, &["a", "b"]).is_none());
        // ... and not conversely: a 3-node path separates them.
        let cex = bounded_contained(&desc, &child, 4, &["a"]).expect("counterexample");
        assert!(cex.tree.len() >= 3);
    }

    #[test]
    fn label_constraints_matter() {
        let qa = parse_cq("q(x) :- label(x, a).").unwrap();
        let qb = parse_cq("q(x) :- label(x, b).").unwrap();
        assert!(bounded_contained(&qa, &qb, 2, &["a", "b"]).is_some());
        assert!(bounded_equivalent(&qa, &qa, 3, &["a", "b"]).is_ok());
    }

    /// Theorem 5.1's output is machine-checked equivalent to its input on
    /// all small trees.
    #[test]
    fn rewrite_outputs_are_bounded_equivalent() {
        for qs in [
            "q(z) :- child+(x, z), child(y, z), label(x, a).",
            "q(z) :- nextsibling+(x, z), nextsibling(y, z), label(y, b).",
            "q(x, y) :- following(x, y).",
        ] {
            let q = parse_cq(qs).unwrap();
            let (parts, _) = rewrite_to_acyclic(&q).unwrap();
            let union = Ucq::new(parts);
            bounded_equivalent_ucq(&q, &union, 4, &["a", "b"]).unwrap_or_else(|c| {
                panic!(
                    "{qs} not equivalent to its rewriting on {} ({:?})",
                    c.tree, c.tuple
                )
            });
        }
    }

    #[test]
    fn equivalence_detects_asymmetry() {
        let q1 = parse_cq("q(x) :- child(x, y).").unwrap(); // has a child
        let q2 = parse_cq("q(x) :- child(x, y), child(x, z).").unwrap(); // same (z can equal y)
        assert!(bounded_equivalent(&q1, &q2, 4, &["a"]).is_ok());
        let q3 = parse_cq("q(x) :- child(x, y), nextsibling(y, z).").unwrap(); // ≥ 2 children
        let cex = bounded_equivalent(&q1, &q3, 4, &["a"]);
        assert!(cex.is_err());
    }
}
