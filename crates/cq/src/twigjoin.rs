//! Holistic twig joins (Section 6; Bruno, Koudas & Srivastava, SIGMOD'02
//! \[13\]).
//!
//! A *twig query* is a tree pattern: labeled query nodes connected by
//! `/` (Child) or `//` (Descendant) edges. The holistic algorithms
//! process all structural joins of the pattern at once over pre-sorted
//! per-label node streams:
//!
//! * [`path_stack`] — PathStack, for path-shaped patterns: a chain of
//!   linked stacks encodes all partial matches compactly;
//! * [`twig_stack`] — TwigStack: `getNext` advances only stream heads that
//!   can contribute to a full twig match, producing root-to-leaf path
//!   solutions that a final merge join combines;
//! * [`structural_join_plan`] — the binary-structural-join baseline that
//!   materializes one intermediate relation per pattern edge (what the
//!   holistic algorithms avoid).
//!
//! As the survey notes, the underlying idea is arc-consistency
//! (Section 6): the stacks maintain exactly the supported candidates.

use std::collections::HashMap;

use treequery_tree::{NodeId, Tree};

use crate::ast::{Cq, CqAtom};

/// An edge type in a twig pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TwigEdge {
    /// `/` — parent/child.
    Child,
    /// `//` — ancestor/descendant.
    Descendant,
}

/// A twig (tree-pattern) query.
#[derive(Clone, Debug)]
pub struct TwigQuery {
    labels: Vec<String>,
    parent: Vec<Option<usize>>,
    edge: Vec<TwigEdge>,
    children: Vec<Vec<usize>>,
}

impl TwigQuery {
    /// Creates a twig with a root node labeled `label`; the root has
    /// index 0.
    pub fn new(label: &str) -> TwigQuery {
        TwigQuery {
            labels: vec![label.to_owned()],
            parent: vec![None],
            edge: vec![TwigEdge::Child],
            children: vec![Vec::new()],
        }
    }

    /// Adds a child pattern node under `parent` via `edge`; returns its
    /// index.
    pub fn add_child(&mut self, parent: usize, label: &str, edge: TwigEdge) -> usize {
        assert!(parent < self.labels.len(), "unknown twig node");
        let id = self.labels.len();
        self.labels.push(label.to_owned());
        self.parent.push(Some(parent));
        self.edge.push(edge);
        self.children.push(Vec::new());
        self.children[parent].push(id);
        id
    }

    /// Builds a path pattern from alternating labels and edges:
    /// `path(&[("a", _), ("b", Descendant), ("c", Child)])` is
    /// `a//b/c` (the first edge entry is ignored).
    pub fn path(spec: &[(&str, TwigEdge)]) -> TwigQuery {
        assert!(!spec.is_empty());
        let mut tq = TwigQuery::new(spec[0].0);
        let mut cur = 0;
        for &(label, edge) in &spec[1..] {
            cur = tq.add_child(cur, label, edge);
        }
        tq
    }

    /// Number of pattern nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the pattern is empty (never: there is always a root).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Whether the pattern is a path.
    pub fn is_path(&self) -> bool {
        self.children.iter().all(|c| c.len() <= 1)
    }

    /// The pattern nodes with no children.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.children[i].is_empty())
            .collect()
    }

    /// The equivalent conjunctive query (head = all pattern nodes in
    /// index order), for differential testing.
    pub fn to_cq(&self) -> Cq {
        let mut q = Cq::new();
        let vars: Vec<_> = (0..self.len())
            .map(|i| q.add_var(format!("v{i}")))
            .collect();
        for (i, label) in self.labels.iter().enumerate() {
            q.atoms.push(CqAtom::Label(label.clone(), vars[i]));
        }
        for i in 1..self.len() {
            let p = self.parent[i].expect("non-root");
            let axis = match self.edge[i] {
                TwigEdge::Child => treequery_tree::Axis::Child,
                TwigEdge::Descendant => treequery_tree::Axis::Descendant,
            };
            q.atoms.push(CqAtom::Axis(axis, vars[p], vars[i]));
        }
        q.head = vars;
        q
    }

    fn edge_holds(&self, t: &Tree, qnode: usize, parent_val: NodeId, val: NodeId) -> bool {
        match self.edge[qnode] {
            TwigEdge::Child => t.parent(val) == Some(parent_val),
            TwigEdge::Descendant => t.is_ancestor(parent_val, val),
        }
    }
}

/// Work counters (experiment E13).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TwigStats {
    /// Stream elements pushed onto stacks.
    pub pushed: u64,
    /// Root-to-leaf path solutions produced before merging.
    pub path_solutions: u64,
    /// Output twig matches.
    pub matches: u64,
}

/// A stack element: the tree node plus the index of the top of the parent
/// pattern node's stack at push time.
#[derive(Clone, Copy, Debug)]
struct Elem {
    node: NodeId,
    parent_top: isize,
}

struct Streams<'t> {
    /// Per pattern node: its label stream, pre-sorted.
    items: Vec<&'t [NodeId]>,
    cursor: Vec<usize>,
}

impl<'t> Streams<'t> {
    fn new(tq: &TwigQuery, t: &'t Tree) -> Streams<'t> {
        Streams {
            items: tq
                .labels
                .iter()
                .map(|l| t.nodes_with_label_name(l))
                .collect(),
            cursor: vec![0; tq.len()],
        }
    }

    fn head(&self, q: usize) -> Option<NodeId> {
        self.items[q].get(self.cursor[q]).copied()
    }

    fn advance(&mut self, q: usize) {
        self.cursor[q] += 1;
    }

    fn eof(&self, q: usize) -> bool {
        self.cursor[q] >= self.items[q].len()
    }
}

/// Expands, for a just-pushed leaf element, all root-to-leaf solutions
/// encoded in the linked stacks (with explicit edge checks so `/` edges
/// are handled exactly).
#[allow(clippy::too_many_arguments)]
fn expand_path_solutions(
    tq: &TwigQuery,
    t: &Tree,
    chain: &[usize],
    stacks: &[Vec<Elem>],
    level: usize,
    upto: isize,
    partial: &mut Vec<NodeId>,
    out: &mut Vec<Vec<NodeId>>,
) {
    if level == usize::MAX {
        // Reached above the root: a complete solution (stored leaf-first,
        // reverse to root-first).
        let mut sol = partial.clone();
        sol.reverse();
        out.push(sol);
        return;
    }
    let qnode = chain[level];
    for idx in 0..=upto {
        let elem = stacks[qnode][idx as usize];
        // Check the edge to the previously chosen (child-side) element.
        if let Some(&below) = partial.last() {
            let child_qnode = chain[level + 1];
            if !tq.edge_holds(t, child_qnode, elem.node, below) {
                continue;
            }
        }
        partial.push(elem.node);
        let next_level = if level == 0 { usize::MAX } else { level - 1 };
        expand_path_solutions(
            tq,
            t,
            chain,
            stacks,
            next_level,
            elem.parent_top,
            partial,
            out,
        );
        partial.pop();
    }
}

/// PathStack \[13\]: evaluates a *path* pattern with one linked stack per
/// pattern node, merging the streams in document order. Returns all
/// matches as tuples in pattern-node order, plus counters.
///
/// # Panics
/// Panics if the pattern is not a path.
pub fn path_stack(tq: &TwigQuery, t: &Tree) -> (Vec<Vec<NodeId>>, TwigStats) {
    assert!(tq.is_path(), "PathStack requires a path pattern");
    let mut stats = TwigStats::default();
    // The chain of pattern nodes from root to leaf.
    let mut chain = vec![0usize];
    while let Some(&c) = tq.children[*chain.last().unwrap()].first() {
        chain.push(c);
    }
    let leaf = *chain.last().unwrap();

    let mut streams = Streams::new(tq, t);
    let mut stacks: Vec<Vec<Elem>> = vec![Vec::new(); tq.len()];
    let mut out = Vec::new();

    loop {
        // qmin: the pattern node whose stream head is smallest in pre.
        let mut qmin = None;
        for &q in &chain {
            if let Some(h) = streams.head(q) {
                if qmin.is_none_or(|(_, best)| t.pre(h) < t.pre(best)) {
                    qmin = Some((q, h));
                }
            }
        }
        let Some((q, v)) = qmin else { break };
        // Clean all stacks: pop elements whose subtree closed before v.
        for &qc in &chain {
            while stacks[qc]
                .last()
                .is_some_and(|e| t.pre_end(e.node) < t.pre(v))
            {
                stacks[qc].pop();
            }
        }
        // Push if the parent stack can support it.
        let parent = tq.parent[q];
        let supported = match parent {
            None => true,
            Some(p) => !stacks[p].is_empty(),
        };
        if supported {
            let parent_top = parent.map_or(0, |p| stacks[p].len() as isize - 1);
            stacks[q].push(Elem {
                node: v,
                parent_top,
            });
            stats.pushed += 1;
            if q == leaf {
                let elem = *stacks[q].last().expect("just pushed");
                if chain.len() == 1 {
                    out.push(vec![elem.node]);
                } else {
                    let mut partial = vec![elem.node];
                    expand_path_solutions(
                        tq,
                        t,
                        &chain,
                        &stacks,
                        chain.len() - 2,
                        elem.parent_top,
                        &mut partial,
                        &mut out,
                    );
                }
                stacks[q].pop();
            }
        }
        streams.advance(q);
    }
    stats.path_solutions = out.len() as u64;
    stats.matches = out.len() as u64;
    (out, stats)
}

/// TwigStack \[13\]: evaluates an arbitrary twig pattern. `getNext` only
/// advances stream heads that have a full downward extension, path
/// solutions are produced per leaf, and a final merge join combines them.
/// Returns all matches as tuples in pattern-node order, plus counters.
pub fn twig_stack(tq: &TwigQuery, t: &Tree) -> (Vec<Vec<NodeId>>, TwigStats) {
    let mut stats = TwigStats::default();
    let mut streams = Streams::new(tq, t);
    let mut stacks: Vec<Vec<Elem>> = vec![Vec::new(); tq.len()];
    // Path solutions per leaf pattern node (tuples over the leaf's
    // root-to-leaf chain).
    let leaves = tq.leaves();
    let mut chains: HashMap<usize, Vec<usize>> = HashMap::new();
    for &l in &leaves {
        let mut chain = vec![l];
        let mut cur = l;
        while let Some(p) = tq.parent[cur] {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chains.insert(l, chain);
    }
    let mut path_sols: HashMap<usize, Vec<Vec<NodeId>>> =
        leaves.iter().map(|&l| (l, Vec::new())).collect();

    /// Whether some stream of a pattern node strictly below `q` is
    /// exhausted. New elements of an internal node with a dead subtree can
    /// never participate in a new full twig match (all matches need every
    /// leaf, and future descendants of a fresh `q`-element would have to
    /// come from the exhausted stream), so they are skipped.
    fn subtree_dead(tq: &TwigQuery, streams: &Streams<'_>, q: usize) -> bool {
        tq.children[q]
            .iter()
            .any(|&c| streams.eof(c) || subtree_dead(tq, streams, c))
    }

    loop {
        // Document-order merge over all pattern-node streams.
        let mut qmin: Option<(usize, NodeId)> = None;
        for q in 0..tq.len() {
            if let Some(h) = streams.head(q) {
                if qmin.is_none_or(|(_, best)| t.pre(h) < t.pre(best)) {
                    qmin = Some((q, h));
                }
            }
        }
        let Some((q, v)) = qmin else { break };
        // Clean all stacks: pop elements whose subtree closed before v.
        for stack in stacks.iter_mut() {
            while stack.last().is_some_and(|e| t.pre_end(e.node) < t.pre(v)) {
                stack.pop();
            }
        }
        let parent = tq.parent[q];
        let mut supported = match parent {
            None => true,
            Some(p) => !stacks[p].is_empty(),
        };
        if supported && !tq.children[q].is_empty() {
            // The holistic extension check (the heart of TwigStack's
            // getNext): only push an internal element when every child
            // stream still has an element inside its subtree, and no
            // stream below is exhausted.
            supported = !subtree_dead(tq, &streams, q)
                && tq.children[q].iter().all(|&c| {
                    let items = streams.items[c];
                    let from = streams.cursor[c];
                    let idx = items[from..].partition_point(|&w| t.pre(w) <= t.pre(v)) + from;
                    items.get(idx).is_some_and(|&w| t.pre(w) <= t.pre_end(v))
                });
        }
        if supported {
            let parent_top = parent.map_or(0, |p| stacks[p].len() as isize - 1);
            stacks[q].push(Elem {
                node: v,
                parent_top,
            });
            stats.pushed += 1;
            if tq.children[q].is_empty() {
                // Leaf: expand path solutions for this leaf's chain,
                // anchored at the just-pushed element.
                let chain = &chains[&q];
                let elem = *stacks[q].last().expect("just pushed");
                let mut sols = Vec::new();
                if chain.len() == 1 {
                    sols.push(vec![elem.node]);
                } else {
                    let mut partial = vec![elem.node];
                    expand_path_solutions(
                        tq,
                        t,
                        chain,
                        &stacks,
                        chain.len() - 2,
                        elem.parent_top,
                        &mut partial,
                        &mut sols,
                    );
                }
                stats.path_solutions += sols.len() as u64;
                path_sols.get_mut(&q).expect("leaf").extend(sols);
                stacks[q].pop();
            }
        }
        streams.advance(q);
    }

    // Merge join the per-leaf path solutions into full twig matches.
    let mut result: Vec<Vec<Option<NodeId>>> = vec![vec![None; tq.len()]];
    for &l in &leaves {
        let chain = &chains[&l];
        let sols = &path_sols[&l];
        let mut next = Vec::new();
        for partial in &result {
            for sol in sols {
                // Consistency on shared pattern nodes.
                let ok = chain
                    .iter()
                    .zip(sol)
                    .all(|(&qn, &node)| partial[qn].is_none() || partial[qn] == Some(node));
                if ok {
                    let mut merged = partial.clone();
                    for (&qn, &node) in chain.iter().zip(sol) {
                        merged[qn] = Some(node);
                    }
                    next.push(merged);
                }
            }
        }
        result = next;
    }
    let mut out: Vec<Vec<NodeId>> = result
        .into_iter()
        .map(|partial| {
            partial
                .into_iter()
                .map(|o| o.expect("all nodes on some leaf path"))
                .collect()
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    stats.matches = out.len() as u64;
    (out, stats)
}

/// The binary-structural-join baseline: one stack-based structural join
/// per pattern edge (materializing the full intermediate pair list), then
/// hash joins following the pattern bottom-up. Returns the matches and the
/// total number of intermediate tuples materialized — the quantity the
/// holistic algorithms are designed to keep small.
pub fn structural_join_plan(tq: &TwigQuery, t: &Tree) -> (Vec<Vec<NodeId>>, u64) {
    use treequery_storage::{stack_tree_join, Xasr};
    let xasr = Xasr::from_tree(t);
    let mut intermediate = 0u64;
    // Edge relations as (parent_node, child_node) in NodeIds.
    let mut edge_rel: HashMap<usize, Vec<(NodeId, NodeId)>> = HashMap::new();
    for i in 1..tq.len() {
        let p = tq.parent[i].expect("non-root");
        let la = xasr.label_list(&tq.labels[p]);
        let ld = xasr.label_list(&tq.labels[i]);
        let pairs = stack_tree_join(la, ld);
        let pairs: Vec<(NodeId, NodeId)> = pairs
            .into_iter()
            .map(|(a, d)| (t.node_at_pre(a - 1), t.node_at_pre(d - 1)))
            .filter(|&(a, d)| match tq.edge[i] {
                TwigEdge::Child => t.parent(d) == Some(a),
                TwigEdge::Descendant => true,
            })
            .collect();
        intermediate += pairs.len() as u64;
        edge_rel.insert(i, pairs);
    }
    // Join bottom-up: partial assignments keyed per pattern node.
    let root_stream: Vec<Vec<Option<NodeId>>> = t
        .nodes_with_label_name(&tq.labels[0])
        .iter()
        .map(|&v| {
            let mut a = vec![None; tq.len()];
            a[0] = Some(v);
            a
        })
        .collect();
    let mut result = root_stream;
    // Process pattern nodes in index order (parents before children by
    // construction).
    for i in 1..tq.len() {
        let p = tq.parent[i].expect("non-root");
        let mut by_parent: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for &(a, d) in &edge_rel[&i] {
            by_parent.entry(a).or_default().push(d);
        }
        let mut next = Vec::new();
        for partial in &result {
            let pv = partial[p].expect("parent assigned");
            if let Some(kids) = by_parent.get(&pv) {
                for &d in kids {
                    let mut merged = partial.clone();
                    merged[i] = Some(d);
                    next.push(merged);
                }
            }
        }
        intermediate += next.len() as u64;
        result = next;
    }
    let out: Vec<Vec<NodeId>> = result
        .into_iter()
        .map(|a| a.into_iter().map(|o| o.expect("assigned")).collect())
        .collect();
    (out, intermediate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtrack::eval_backtrack;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use treequery_tree::{parse_term, random_recursive_tree};

    fn sorted(mut v: Vec<Vec<NodeId>>) -> Vec<Vec<NodeId>> {
        v.sort_unstable();
        v.dedup();
        v
    }

    fn oracle(tq: &TwigQuery, t: &Tree) -> Vec<Vec<NodeId>> {
        eval_backtrack(&tq.to_cq(), t).into_iter().collect()
    }

    #[test]
    fn path_stack_simple() {
        // a//b/c on a small tree.
        let tq = TwigQuery::path(&[
            ("a", TwigEdge::Child),
            ("b", TwigEdge::Descendant),
            ("c", TwigEdge::Child),
        ]);
        let t = parse_term("a(x(b(c)) b(c c) c)").unwrap();
        let (got, stats) = path_stack(&tq, &t);
        assert_eq!(sorted(got), oracle(&tq, &t));
        assert!(stats.pushed > 0);
    }

    #[test]
    fn path_stack_nested_same_label() {
        // a//a//a on a chain of a's: all increasing triples.
        let tq = TwigQuery::path(&[
            ("a", TwigEdge::Child),
            ("a", TwigEdge::Descendant),
            ("a", TwigEdge::Descendant),
        ]);
        let t = parse_term("a(a(a(a)))").unwrap();
        let (got, _) = path_stack(&tq, &t);
        assert_eq!(sorted(got).len(), 4); // C(4,3) = 4 triples
        assert_eq!(sorted(path_stack(&tq, &t).0), oracle(&tq, &t));
    }

    #[test]
    fn twig_stack_branching() {
        // a[.//b]/c — root a with a b-descendant and a c-child.
        let mut tq = TwigQuery::new("a");
        tq.add_child(0, "b", TwigEdge::Descendant);
        tq.add_child(0, "c", TwigEdge::Child);
        let t = parse_term("a(x(b) c a(b c))").unwrap();
        let (got, stats) = twig_stack(&tq, &t);
        assert_eq!(sorted(got), oracle(&tq, &t));
        assert!(stats.matches > 0);
    }

    #[test]
    fn twig_stack_no_match() {
        let mut tq = TwigQuery::new("a");
        tq.add_child(0, "zz", TwigEdge::Descendant);
        let t = parse_term("a(b c)").unwrap();
        let (got, stats) = twig_stack(&tq, &t);
        assert!(got.is_empty());
        assert_eq!(stats.matches, 0);
    }

    #[test]
    fn structural_plan_agrees() {
        let mut tq = TwigQuery::new("a");
        let b = tq.add_child(0, "b", TwigEdge::Descendant);
        tq.add_child(b, "c", TwigEdge::Child);
        tq.add_child(0, "d", TwigEdge::Child);
        let t = parse_term("a(b(c) d a(b(c c) d))").unwrap();
        let (plan, intermediate) = structural_join_plan(&tq, &t);
        assert_eq!(sorted(plan), oracle(&tq, &t));
        assert!(intermediate > 0);
    }

    #[test]
    fn random_differential() {
        let mut rng = StdRng::seed_from_u64(99);
        for round in 0..15 {
            let t = random_recursive_tree(&mut rng, 40, &["a", "b", "c"]);
            // Pattern: a//b[/c] variations.
            let mut tq = TwigQuery::new("a");
            let b = tq.add_child(0, "b", TwigEdge::Descendant);
            if round % 2 == 0 {
                tq.add_child(b, "c", TwigEdge::Descendant);
            }
            if round % 3 == 0 {
                tq.add_child(0, "c", TwigEdge::Child);
            }
            let expected = oracle(&tq, &t);
            let (ts, _) = twig_stack(&tq, &t);
            assert_eq!(sorted(ts), expected, "twig_stack round {round}");
            let (sj, _) = structural_join_plan(&tq, &t);
            assert_eq!(sorted(sj), expected, "plan round {round}");
            if tq.is_path() {
                let (ps, _) = path_stack(&tq, &t);
                assert_eq!(sorted(ps), expected, "path_stack round {round}");
            }
        }
    }

    #[test]
    fn twig_query_api() {
        let mut tq = TwigQuery::new("a");
        let b = tq.add_child(0, "b", TwigEdge::Child);
        assert_eq!(tq.len(), 2);
        assert!(tq.is_path());
        assert_eq!(tq.leaves(), vec![b]);
        tq.add_child(0, "c", TwigEdge::Descendant);
        assert!(!tq.is_path());
        let cq = tq.to_cq();
        assert_eq!(cq.atoms.len(), 3 + 2);
        assert_eq!(cq.head.len(), 3);
    }
}
