//! Rewriting conjunctive queries over trees into equivalent unions of
//! acyclic positive queries (**Theorem 5.1**), with **Table 1** as the
//! satisfiability oracle.
//!
//! The implementation follows the *improved* strategy discussed after the
//! proof (\[35\]): instead of expanding the full disjunctive normal form of
//! all `3^(k choose 2)` variable orderings up front, order choices between
//! two variables `x, y` are made lazily — only when a conflict pair
//! `R(x, z), S(y, z)` actually needs resolving, and `R*` atoms are only
//! split into `x = y` vs. `R⁺(x, y)` when encountered. `<pre` constraints
//! are kept in a DAG on the side (never as query atoms), so the emitted
//! queries consist purely of `Child`, `Child⁺`, `NextSibling`,
//! `NextSibling⁺` and label atoms and are acyclic by construction.

use std::collections::{BTreeSet, HashSet, VecDeque};

use treequery_tree::Axis;

use crate::ast::{Cq, CqAtom, CqVar};
use crate::graph::is_acyclic;

/// Table 1: satisfiability of `R(x, z) ∧ S(y, z) ∧ x <pre y` for
/// `R, S ∈ {Child, Child⁺, NextSibling, NextSibling⁺}`.
///
/// # Panics
/// Panics if `r` or `s` is not one of the four table axes.
pub fn sat_table(r: Axis, s: Axis) -> bool {
    use Axis::{Child, Descendant, FollowingSibling, NextSibling};
    let row = |a: Axis| match a {
        Child => 0,
        Descendant => 1,
        NextSibling => 2,
        FollowingSibling => 3,
        other => panic!("axis {other} is not in Table 1"),
    };
    // Rows R: Child, Child+, NextSibling, NextSibling+.
    // Cols S: Child, Child+, NextSibling, NextSibling+.
    const TABLE: [[bool; 4]; 4] = [
        [false, false, true, true],   // Child
        [true, true, true, true],     // Child+
        [false, false, false, false], // NextSibling
        [false, false, true, true],   // NextSibling+
    ];
    TABLE[row(r)][row(s)]
}

/// Why a query cannot be rewritten.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RewriteError {
    /// The input already contains `<pre` atoms; Theorem 5.1 is about
    /// axis-only conjunctive queries.
    HasPreLt,
}

impl std::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteError::HasPreLt => f.write_str("input query contains <pre atoms"),
        }
    }
}

impl std::error::Error for RewriteError {}

/// Statistics from a rewrite run (experiment E11).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Branches explored (including pruned ones).
    pub branches: u64,
    /// Branches pruned as unsatisfiable (Table 1 or order cycles).
    pub pruned: u64,
    /// Acyclic queries emitted (after deduplication).
    pub emitted: usize,
}

/// One branch of the rewriting search: a query plus an order DAG.
#[derive(Clone)]
struct State {
    q: Cq,
    /// `ord[x]` = variables known to be `<pre`-greater than x (successors).
    ord: Vec<BTreeSet<u32>>,
}

impl State {
    /// Adds `x <pre y`; returns false if that closes a cycle.
    fn add_ord(&mut self, x: CqVar, y: CqVar) -> bool {
        if x == y {
            return false;
        }
        if self.reaches(y, x) {
            return false;
        }
        self.ord[x.index()].insert(y.0);
        true
    }

    /// Whether `a <pre b` is already entailed (DAG reachability).
    fn reaches(&self, a: CqVar, b: CqVar) -> bool {
        if a == b {
            return true;
        }
        let mut seen = vec![false; self.ord.len()];
        let mut stack = vec![a.0];
        seen[a.index()] = true;
        while let Some(u) = stack.pop() {
            for &v in &self.ord[u as usize] {
                if v == b.0 {
                    return true;
                }
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    stack.push(v);
                }
            }
        }
        false
    }

    /// Merges variable `b` into `a` in both the query and the order DAG;
    /// returns false if the merge contradicts the order (a < b or b < a
    /// already known).
    fn merge(&mut self, a: CqVar, b: CqVar) -> bool {
        if a == b {
            return true;
        }
        if self.reaches(a, b) && self.ord_strict(a, b) {
            return false;
        }
        if self.reaches(b, a) && self.ord_strict(b, a) {
            return false;
        }
        self.q.merge_vars(a, b);
        // Redirect order edges of b to a.
        let out = std::mem::take(&mut self.ord[b.index()]);
        for v in out {
            if v != a.0 {
                self.ord[a.index()].insert(v);
            }
        }
        for set in &mut self.ord {
            if set.remove(&b.0) {
                set.insert(a.0);
            }
        }
        self.ord[a.index()].remove(&a.0);
        // A self-cycle through longer paths means contradiction; detect.
        !self.has_cycle()
    }

    fn ord_strict(&self, a: CqVar, b: CqVar) -> bool {
        a != b && self.reaches(a, b)
    }

    fn has_cycle(&self) -> bool {
        // Kahn's algorithm.
        let n = self.ord.len();
        let mut indeg = vec![0usize; n];
        for set in &self.ord {
            for &v in set {
                indeg[v as usize] += 1;
            }
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(u) = queue.pop_front() {
            seen += 1;
            for &v in &self.ord[u] {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push_back(v as usize);
                }
            }
        }
        seen != n
    }

    /// Canonical fingerprint for deduplication.
    fn key(&self) -> String {
        let mut atoms: Vec<String> = self.q.atoms.iter().map(|a| format!("{a:?}")).collect();
        atoms.sort();
        format!("{:?}|{}", self.q.head, atoms.join(";"))
    }
}

/// Rewrites an arbitrary conjunctive query over trees (all axes; inverse
/// axes are normalized first) into an equivalent finite union of *acyclic*
/// conjunctive queries over `{Child, Child⁺, NextSibling, NextSibling⁺}`
/// and labels (Theorem 5.1). Worst-case exponentially many.
pub fn rewrite_to_acyclic(q: &Cq) -> Result<(Vec<Cq>, RewriteStats), RewriteError> {
    if q.atoms.iter().any(|a| matches!(a, CqAtom::PreLt(..))) {
        return Err(RewriteError::HasPreLt);
    }
    let mut q = q.normalize_forward();

    // Step 0 (as in the proof): eliminate Following(x, y) via
    // ∃x₀ y₀: NextSibling⁺(x₀, y₀) ∧ Child*(x₀, x) ∧ Child*(y₀, y).
    let mut extra = Vec::new();
    q.atoms.retain_mut(|atom| {
        if let CqAtom::Axis(Axis::Following, x, y) = *atom {
            extra.push((x, y));
            false
        } else {
            true
        }
    });
    for (x, y) in extra {
        let x0 = q.add_var("_f0");
        let y0 = q.add_var("_f1");
        q.atoms.push(CqAtom::Axis(Axis::FollowingSibling, x0, y0));
        q.atoms.push(CqAtom::Axis(Axis::DescendantOrSelf, x0, x));
        q.atoms.push(CqAtom::Axis(Axis::DescendantOrSelf, y0, y));
    }

    let n = q.num_vars();
    let mut stats = RewriteStats::default();
    let mut out: Vec<Cq> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut work = vec![State {
        q,
        ord: vec![BTreeSet::new(); n],
    }];

    'states: while let Some(mut st) = work.pop() {
        stats.branches += 1;
        // --- Normalization loop ---
        let mut i = 0;
        while i < st.q.atoms.len() {
            match st.q.atoms[i].clone() {
                CqAtom::Axis(Axis::SelfAxis, x, y) => {
                    st.q.atoms.swap_remove(i);
                    if x != y && !st.merge(x, y) {
                        stats.pruned += 1;
                        continue 'states;
                    }
                    i = 0; // restart: merging may affect earlier atoms
                }
                CqAtom::Axis(axis, x, y) if x == y => {
                    if axis.is_reflexive() {
                        st.q.atoms.swap_remove(i);
                    } else {
                        stats.pruned += 1;
                        continue 'states; // R(x,x) unsatisfiable
                    }
                }
                CqAtom::Axis(Axis::DescendantOrSelf, x, y) => {
                    // Branch: x = y  vs  Child⁺(x, y).
                    let mut eq = st.clone();
                    eq.q.atoms.swap_remove(i);
                    if eq.merge(x, y) {
                        work.push(eq);
                    } else {
                        stats.pruned += 1;
                    }
                    st.q.atoms[i] = CqAtom::Axis(Axis::Descendant, x, y);
                    // fall through: the new atom is processed below
                }
                CqAtom::Axis(Axis::FollowingSiblingOrSelf, x, y) => {
                    let mut eq = st.clone();
                    eq.q.atoms.swap_remove(i);
                    if eq.merge(x, y) {
                        work.push(eq);
                    } else {
                        stats.pruned += 1;
                    }
                    st.q.atoms[i] = CqAtom::Axis(Axis::FollowingSibling, x, y);
                }
                CqAtom::Axis(_, x, y) => {
                    // Child, Child⁺, NextSibling, NextSibling⁺ all imply
                    // x <pre y.
                    if !st.reaches(x, y) && !st.add_ord(x, y) {
                        stats.pruned += 1;
                        continue 'states;
                    }
                    i += 1;
                }
                CqAtom::Label(..) | CqAtom::Root(..) | CqAtom::Leaf(..) => i += 1,
                CqAtom::PreLt(..) => unreachable!("rejected above"),
            }
        }

        // --- Conflict search: R(x, z), S(y, z) with x ≠ y ---
        let conflict = find_conflict(&st.q);
        let Some((ai, bi)) = conflict else {
            // No conflicts left: the query is a forest over its axis atoms.
            dedup_atoms(&mut st.q);
            debug_assert!(
                is_acyclic(&st.q),
                "emitted query should be acyclic: {}",
                st.q
            );
            if seen.insert(st.key()) {
                out.push(st.q);
            }
            continue;
        };
        let (CqAtom::Axis(r, x, z), CqAtom::Axis(s, y, z2)) =
            (st.q.atoms[ai].clone(), st.q.atoms[bi].clone())
        else {
            unreachable!("conflicts are axis atoms");
        };
        debug_assert_eq!(z, z2);

        // Branch 1: x = y.
        {
            let mut eq = st.clone();
            if eq.merge(x, y) {
                work.push(eq);
            } else {
                stats.pruned += 1;
            }
        }
        // Branch 2: x <pre y — replace R(x, z) by R(x, y) if Table 1 allows.
        {
            let mut b = st.clone();
            if b.add_ord(x, y) && sat_table(r, s) {
                b.q.atoms[ai] = CqAtom::Axis(r, x, y);
                work.push(b);
            } else {
                stats.pruned += 1;
            }
        }
        // Branch 3: y <pre x — replace S(y, z) by S(y, x).
        {
            let mut b = st;
            if b.add_ord(y, x) && sat_table(s, r) {
                b.q.atoms[bi] = CqAtom::Axis(s, y, x);
                work.push(b);
            } else {
                stats.pruned += 1;
            }
        }
    }
    stats.emitted = out.len();
    Ok((out, stats))
}

/// Finds two axis atoms sharing their target variable with distinct
/// sources.
fn find_conflict(q: &Cq) -> Option<(usize, usize)> {
    for (i, a) in q.atoms.iter().enumerate() {
        let CqAtom::Axis(_, xa, za) = a else { continue };
        for (j, b) in q.atoms.iter().enumerate().skip(i + 1) {
            let CqAtom::Axis(_, xb, zb) = b else { continue };
            if za == zb && xa != xb {
                return Some((i, j));
            }
        }
    }
    None
}

/// Removes duplicate atoms and `R⁺(x, y)` when `R(x, y)` is present
/// (step 3 of the proof).
fn dedup_atoms(q: &mut Cq) {
    let mut seen = HashSet::new();
    q.atoms.retain(|a| seen.insert(format!("{a:?}")));
    let atoms = q.atoms.clone();
    q.atoms.retain(|a| match a {
        CqAtom::Axis(Axis::Descendant, x, y) => !atoms.contains(&CqAtom::Axis(Axis::Child, *x, *y)),
        CqAtom::Axis(Axis::FollowingSibling, x, y) => {
            !atoms.contains(&CqAtom::Axis(Axis::NextSibling, *x, *y))
        }
        _ => true,
    });
}

/// Evaluates an arbitrary CQ by rewriting to a union of acyclic queries
/// and evaluating each with the linear-time acyclic machinery.
pub fn eval_via_rewrite(
    q: &Cq,
    t: &treequery_tree::Tree,
) -> Result<std::collections::BTreeSet<Vec<treequery_tree::NodeId>>, RewriteError> {
    let (union, _) = rewrite_to_acyclic(q)?;
    let mut out = std::collections::BTreeSet::new();
    for part in &union {
        // Cancellation checkpoint per union part (each part is a full
        // reduce + enumeration; the parts' kernels also checkpoint
        // internally). Partial unions are discarded by the executor.
        if treequery_tree::cancel::cancelled() {
            break;
        }
        let res = crate::enumerate::eval_acyclic(part, t).expect("rewritten queries are acyclic");
        out.extend(res);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtrack::eval_backtrack;
    use crate::parser::parse_cq;
    use treequery_tree::parse_term;

    /// Table 1, row by row, against brute-force search over all small
    /// trees (the exhaustive version is experiment E1).
    #[test]
    fn table1_spot_checks() {
        use Axis::{Child, Descendant, FollowingSibling, NextSibling};
        assert!(!sat_table(Child, Child));
        assert!(!sat_table(Child, Descendant));
        assert!(sat_table(Child, NextSibling));
        assert!(sat_table(Child, FollowingSibling));
        assert!(sat_table(Descendant, Child));
        assert!(sat_table(Descendant, Descendant));
        assert!(sat_table(Descendant, NextSibling));
        assert!(sat_table(Descendant, FollowingSibling));
        assert!(!sat_table(NextSibling, Child));
        assert!(!sat_table(NextSibling, FollowingSibling));
        assert!(!sat_table(FollowingSibling, Child));
        assert!(!sat_table(FollowingSibling, Descendant));
        assert!(sat_table(FollowingSibling, NextSibling));
        assert!(sat_table(FollowingSibling, FollowingSibling));
    }

    /// The rewriting produces acyclic queries only.
    #[test]
    fn output_is_acyclic() {
        let q = parse_cq("child+(x, z), child+(y, z), label(x, a), label(y, b)").unwrap();
        let (union, stats) = rewrite_to_acyclic(&q).unwrap();
        assert!(!union.is_empty());
        assert_eq!(stats.emitted, union.len());
        for part in &union {
            assert!(crate::graph::is_acyclic(part), "{part}");
            for atom in &part.atoms {
                match atom {
                    CqAtom::Axis(a, _, _) => assert!(matches!(
                        a,
                        Axis::Child | Axis::Descendant | Axis::NextSibling | Axis::FollowingSibling
                    )),
                    CqAtom::Label(..) | CqAtom::Root(..) | CqAtom::Leaf(..) => {}
                    CqAtom::PreLt(..) => panic!("<pre atom in output"),
                }
            }
        }
    }

    /// Semantics preservation, differentially against backtracking.
    #[test]
    fn rewrite_preserves_semantics() {
        let queries = [
            // The classic NP-hard-class shape: two ancestors of one node.
            "q(z) :- child+(x, z), child+(y, z), label(x, a), label(y, b).",
            // Both branch axes with star.
            "q(z) :- child*(x, z), child(y, z), label(x, a).",
            // Sibling conflicts.
            "q(z) :- nextsibling+(x, z), nextsibling(y, z), label(x, a).",
            "q(z) :- nextsibling+(x, z), nextsibling+(y, z), label(x, a), label(y, b).",
            // Mixed child/sibling conflict.
            "q(z) :- child(x, z), nextsibling+(y, z), label(x, r).",
            // Following elimination.
            "q(x, y) :- following(x, y), label(x, b).",
            // Self and star chains.
            "q(y) :- self(x, y), child*(y, z), label(z, c).",
            // Already acyclic: passes through.
            "q(y) :- child(x, y), label(x, a).",
            // Inverse axes.
            "q(y) :- parent(x, y), ancestor(z, x), label(z, r).",
            // A cyclic query (triangle).
            "q(z) :- child+(x, y), child+(y, z), child+(x, z).",
        ];
        let trees = [
            "r(a(b(c) d) b(a(c)))",
            "a(b c d)",
            "r(x(a(z) b(z)) a(b(z)))",
            "a",
            "r(a(b(c(d))) a(b) c)",
        ];
        for qs in queries {
            let q = parse_cq(qs).unwrap();
            for ts in trees {
                let t = parse_term(ts).unwrap();
                let expected = eval_backtrack(&q, &t);
                let got = eval_via_rewrite(&q, &t).unwrap();
                assert_eq!(got, expected, "{qs} on {ts}");
            }
        }
    }

    /// Queries over {Child+} alone can blow up exponentially (\[35\]);
    /// check the union count grows with the conflict count.
    #[test]
    fn union_grows_with_branching() {
        let mk = |k: usize| {
            let atoms: Vec<String> = (0..k)
                .map(|i| format!("child+(x{i}, z), label(x{i}, a{i})"))
                .collect();
            parse_cq(&format!("q(z) :- {}.", atoms.join(", "))).unwrap()
        };
        let (u2, _) = rewrite_to_acyclic(&mk(2)).unwrap();
        let (u4, _) = rewrite_to_acyclic(&mk(4)).unwrap();
        assert!(u4.len() > u2.len());
        assert!(!u2.is_empty());
    }

    #[test]
    fn pre_lt_input_is_rejected() {
        let q = parse_cq("pre_lt(x, y), child(x, z)").unwrap();
        assert_eq!(rewrite_to_acyclic(&q).unwrap_err(), RewriteError::HasPreLt);
    }

    #[test]
    fn unsatisfiable_conflicts_prune_to_equality_only() {
        // NextSibling(x, z) ∧ NextSibling(y, z) forces x = y (whole row of
        // Table 1 is unsat).
        let q = parse_cq("nextsibling(x, z), nextsibling(y, z), label(x, a), label(y, b)").unwrap();
        let (union, _) = rewrite_to_acyclic(&q).unwrap();
        // All emitted queries have x and y merged: a node labeled both a
        // and b.
        let t = parse_term("r(a b)").unwrap();
        for part in &union {
            assert!(crate::backtrack::eval_backtrack(part, &t).is_empty());
        }
        let t2 = parse_term("r(a+b c)").unwrap();
        assert!(!eval_via_rewrite(&q, &t2).unwrap().is_empty());
    }
}
