//! Tree decompositions and tree-width (Section 4, Figure 4).
//!
//! Provides the general [`TreeDecomposition`] structure with a validity
//! checker, the explicit width-2 decomposition of (Child, NextSibling)
//! tree graphs from Figure 4, a min-fill heuristic producing
//! decompositions of arbitrary graphs (used for query graphs in
//! Theorem 4.1), and exact tree-width for small graphs by exhaustive
//! elimination orders.

use std::collections::BTreeSet;

use treequery_tree::Tree;

/// An undirected graph on vertices `0..n` (used both for query graphs and
/// for the (Child, NextSibling) graph of a tree structure).
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// Number of vertices.
    pub n: usize,
    /// Edges as unordered pairs (stored with `a < b`), deduplicated.
    pub edges: BTreeSet<(u32, u32)>,
}

impl Graph {
    /// Creates an edgeless graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Adds an undirected edge (self-loops ignored).
    pub fn add_edge(&mut self, a: u32, b: u32) {
        if a != b {
            let (a, b) = if a < b { (a, b) } else { (b, a) };
            self.edges.insert((a, b));
        }
    }

    /// Whether `{a, b}` is an edge.
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        self.edges.contains(&(a, b))
    }

    /// Adjacency lists.
    pub fn adjacency(&self) -> Vec<BTreeSet<u32>> {
        let mut adj = vec![BTreeSet::new(); self.n];
        for &(a, b) in &self.edges {
            adj[a as usize].insert(b);
            adj[b as usize].insert(a);
        }
        adj
    }

    /// The union of the `Child` and `NextSibling` relations of a tree, as
    /// an undirected graph on the nodes (the graph of Figure 4).
    pub fn of_tree_structure(t: &Tree) -> Graph {
        let mut g = Graph::new(t.len());
        for v in t.nodes() {
            if let Some(p) = t.parent(v) {
                g.add_edge(p.0, v.0);
            }
            if let Some(s) = t.next_sibling(v) {
                g.add_edge(v.0, s.0);
            }
        }
        g
    }

    /// The query graph of a conjunctive query: variables as vertices, an
    /// edge for each pair co-occurring in a binary atom (Section 4,
    /// "Queries").
    pub fn of_query(q: &crate::ast::Cq) -> Graph {
        let mut g = Graph::new(q.num_vars());
        for atom in &q.atoms {
            if let crate::ast::CqAtom::Axis(_, x, y) | crate::ast::CqAtom::PreLt(x, y) = atom {
                g.add_edge(x.0, y.0);
            }
        }
        g
    }
}

/// A tree decomposition `(T, χ)`: a rooted tree of bags of vertices.
#[derive(Clone, Debug)]
pub struct TreeDecomposition {
    /// The bags χ(v), one per decomposition-tree node.
    pub bags: Vec<Vec<u32>>,
    /// Parent of each decomposition-tree node (`None` for the root).
    pub parent: Vec<Option<usize>>,
}

impl TreeDecomposition {
    /// The width: `max |χ(v)| − 1`.
    pub fn width(&self) -> usize {
        self.bags.iter().map(Vec::len).max().unwrap_or(1) - 1
    }

    /// Checks the three conditions of a tree decomposition of `g`:
    /// every vertex is in some bag, every edge is inside some bag, and the
    /// bags containing each vertex form a connected subtree.
    pub fn is_valid_for(&self, g: &Graph) -> bool {
        let nb = self.bags.len();
        // Well-formed tree shape (single root, parents in range, acyclic).
        let mut roots = 0;
        for (i, p) in self.parent.iter().enumerate() {
            match p {
                None => roots += 1,
                Some(pp) => {
                    if *pp >= nb || *pp == i {
                        return false;
                    }
                }
            }
        }
        if nb > 0 && roots != 1 {
            return false;
        }
        // 1. Vertex coverage.
        let mut covered = vec![false; g.n];
        for bag in &self.bags {
            for &v in bag {
                if (v as usize) >= g.n {
                    return false;
                }
                covered[v as usize] = true;
            }
        }
        if covered.iter().any(|&c| !c) {
            return false;
        }
        // 2. Edge coverage.
        'edges: for &(a, b) in &g.edges {
            for bag in &self.bags {
                if bag.contains(&a) && bag.contains(&b) {
                    continue 'edges;
                }
            }
            return false;
        }
        // 3. Connectivity: for each vertex, bags containing it induce a
        // connected subtree. Check: the occurrences minus one must each
        // have their decomposition-tree parent path reach another
        // occurrence without leaving the occurrence set... Standard check:
        // count occurrences and count tree edges between two occurrence
        // bags; connected iff edges = occurrences − 1 for each vertex.
        for v in 0..g.n as u32 {
            let occ: Vec<usize> = (0..nb).filter(|&i| self.bags[i].contains(&v)).collect();
            if occ.is_empty() {
                return false;
            }
            let occ_set: BTreeSet<usize> = occ.iter().copied().collect();
            let internal_edges = occ
                .iter()
                .filter(|&&i| matches!(self.parent[i], Some(p) if occ_set.contains(&p)))
                .count();
            if internal_edges != occ.len() - 1 {
                return false;
            }
        }
        true
    }
}

/// The width-2 tree decomposition of the (Child, NextSibling) graph of a
/// tree, as in Figure 4: for each non-root node `v`, a bag
/// `{parent(v), v, next_sibling(v)}` (the last entry omitted for last
/// siblings); the root contributes the bag `{root}`. Bag `v` hangs under
/// the bag of `v`'s previous sibling, or of its parent for first children.
pub fn decompose_tree_structure(t: &Tree) -> TreeDecomposition {
    let n = t.len();
    // Bag index i corresponds to tree node with NodeId i.
    let mut bags = Vec::with_capacity(n);
    let mut parent = Vec::with_capacity(n);
    for v in t.nodes() {
        match t.parent(v) {
            None => {
                bags.push(vec![v.0]);
                parent.push(None);
            }
            Some(p) => {
                let mut bag = vec![p.0, v.0];
                if let Some(s) = t.next_sibling(v) {
                    bag.push(s.0);
                }
                bags.push(bag);
                let attach = t.prev_sibling(v).unwrap_or(p);
                parent.push(Some(attach.index()));
            }
        }
    }
    TreeDecomposition { bags, parent }
}

/// A tree decomposition of an arbitrary graph by the min-fill elimination
/// heuristic. The returned width is an upper bound on the tree-width.
pub fn min_fill_decomposition(g: &Graph) -> TreeDecomposition {
    decomposition_from_elimination(g, &min_fill_order(g))
}

fn min_fill_order(g: &Graph) -> Vec<u32> {
    let mut adj = g.adjacency();
    let mut alive: BTreeSet<u32> = (0..g.n as u32).collect();
    let mut order = Vec::with_capacity(g.n);
    while let Some(&best) = alive.iter().min_by_key(|&&v| {
        // Fill-in count: non-adjacent neighbor pairs.
        let nbrs: Vec<u32> = adj[v as usize].iter().copied().collect();
        let mut fill = 0usize;
        for i in 0..nbrs.len() {
            for j in i + 1..nbrs.len() {
                if !adj[nbrs[i] as usize].contains(&nbrs[j]) {
                    fill += 1;
                }
            }
        }
        (fill, adj[v as usize].len())
    }) {
        // Eliminate `best`: clique its neighborhood.
        let nbrs: Vec<u32> = adj[best as usize].iter().copied().collect();
        for i in 0..nbrs.len() {
            for j in i + 1..nbrs.len() {
                adj[nbrs[i] as usize].insert(nbrs[j]);
                adj[nbrs[j] as usize].insert(nbrs[i]);
            }
        }
        for &u in &nbrs {
            adj[u as usize].remove(&best);
        }
        adj[best as usize].clear();
        alive.remove(&best);
        order.push(best);
    }
    order
}

/// Builds a tree decomposition from an elimination order (standard
/// construction: the bag of `v` is `v` plus its higher-ordered neighbors
/// in the fill-in graph; it attaches to the bag of the first of those).
fn decomposition_from_elimination(g: &Graph, order: &[u32]) -> TreeDecomposition {
    let n = g.n;
    assert_eq!(order.len(), n);
    let mut position = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        position[v as usize] = i;
    }
    let mut adj = g.adjacency();
    // Bags in elimination order.
    let mut bags: Vec<Vec<u32>> = Vec::with_capacity(n);
    for &v in order {
        let later: Vec<u32> = adj[v as usize]
            .iter()
            .copied()
            .filter(|&u| position[u as usize] > position[v as usize])
            .collect();
        // Clique the later neighbors (fill-in).
        for i in 0..later.len() {
            for j in i + 1..later.len() {
                adj[later[i] as usize].insert(later[j]);
                adj[later[j] as usize].insert(later[i]);
            }
        }
        let mut bag = vec![v];
        bag.extend(&later);
        bags.push(bag);
    }
    // Attach bag of v to the bag of its earliest-eliminated later neighbor.
    let mut parent: Vec<Option<usize>> = vec![None; n];
    for (i, &v) in order.iter().enumerate() {
        let later_min = bags[i][1..].iter().map(|&u| position[u as usize]).min();
        parent[i] = later_min;
        let _ = v;
    }
    // Multiple roots possible (disconnected graphs): chain extra roots
    // under the last bag to keep a single tree (their bags share no
    // vertices, which is fine for connectivity).
    let roots: Vec<usize> = (0..n).filter(|&i| parent[i].is_none()).collect();
    for w in roots.windows(2) {
        parent[w[0]] = Some(w[1]);
    }
    if n == 0 {
        return TreeDecomposition {
            bags: vec![Vec::new()],
            parent: vec![None],
        };
    }
    TreeDecomposition { bags, parent }
}

/// Exact tree-width by exhaustive elimination orders; exponential — only
/// for graphs with at most ~8 vertices (tests and Figure 4 validation).
pub fn exact_treewidth(g: &Graph) -> usize {
    assert!(
        g.n <= 9,
        "exact_treewidth is exponential; use min_fill_decomposition"
    );
    if g.n == 0 {
        return 0;
    }
    let vertices: Vec<u32> = (0..g.n as u32).collect();
    let mut best = usize::MAX;
    permute(&vertices, &mut Vec::new(), &mut |order| {
        let d = decomposition_from_elimination(g, order);
        best = best.min(d.width());
    });
    best
}

fn permute(rest: &[u32], acc: &mut Vec<u32>, f: &mut impl FnMut(&[u32])) {
    if rest.is_empty() {
        f(acc);
        return;
    }
    for (i, &v) in rest.iter().enumerate() {
        let mut next: Vec<u32> = rest.to_vec();
        next.remove(i);
        acc.push(v);
        permute(&next, acc, f);
        acc.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treequery_tree::parse_term;

    /// Figure 4: (Child, NextSibling) trees have tree-width (at most) two,
    /// witnessed by an explicit valid decomposition.
    #[test]
    fn figure4_decomposition_is_valid_width_2() {
        for ts in [
            "a",
            "a(b)",
            "a(b c d)",
            "a(b(c d) e(f(g) h i) j)",
            "v1(v2(v3 v4) v5(v6(v7 v8) v9(v10)) v11(v12) v13(v14 v15))",
        ] {
            let t = parse_term(ts).unwrap();
            let g = Graph::of_tree_structure(&t);
            let d = decompose_tree_structure(&t);
            assert!(d.is_valid_for(&g), "invalid decomposition for {ts}");
            assert!(d.width() <= 2, "width {} for {ts}", d.width());
        }
    }

    /// ... and exactly two for trees with at least two consecutive
    /// siblings (the Child + NextSibling edges form a triangle-free graph
    /// of tree-width 2).
    #[test]
    fn tree_structure_graph_exact_width() {
        let t = parse_term("a(b c d)").unwrap();
        let g = Graph::of_tree_structure(&t);
        assert_eq!(exact_treewidth(&g), 2);
        // A path tree has only Child edges: width 1.
        let p = parse_term("a(b(c(d)))").unwrap();
        let gp = Graph::of_tree_structure(&p);
        assert_eq!(exact_treewidth(&gp), 1);
    }

    #[test]
    fn min_fill_on_cycle() {
        // A 5-cycle has tree-width 2.
        let mut g = Graph::new(5);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5);
        }
        let d = min_fill_decomposition(&g);
        assert!(d.is_valid_for(&g));
        assert_eq!(d.width(), 2);
        assert_eq!(exact_treewidth(&g), 2);
    }

    #[test]
    fn min_fill_on_clique() {
        let mut g = Graph::new(4);
        for i in 0..4 {
            for j in i + 1..4 {
                g.add_edge(i, j);
            }
        }
        let d = min_fill_decomposition(&g);
        assert!(d.is_valid_for(&g));
        assert_eq!(d.width(), 3);
    }

    #[test]
    fn disconnected_graph() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let d = min_fill_decomposition(&g);
        assert!(d.is_valid_for(&g));
        assert_eq!(d.width(), 1);
    }

    #[test]
    fn query_graph_treewidth() {
        use crate::parser::parse_cq;
        // Path query: width 1.
        let q = parse_cq("child(x, y), child(y, z)").unwrap();
        assert_eq!(exact_treewidth(&Graph::of_query(&q)), 1);
        // Triangle: width 2.
        let q2 = parse_cq("child(x, y), child(y, z), child+(x, z)").unwrap();
        assert_eq!(exact_treewidth(&Graph::of_query(&q2)), 2);
    }

    #[test]
    fn validity_checker_rejects_broken_decompositions() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        // Missing edge coverage.
        let d = TreeDecomposition {
            bags: vec![vec![0, 1], vec![2]],
            parent: vec![None, Some(0)],
        };
        assert!(!d.is_valid_for(&g));
        // Disconnected occurrences of vertex 0.
        let d2 = TreeDecomposition {
            bags: vec![vec![0, 1], vec![1, 2], vec![0, 2]],
            parent: vec![None, Some(0), Some(1)],
        };
        assert!(!d2.is_valid_for(&g));
    }
}
