//! Parser for a textual conjunctive-query syntax.
//!
//! ```text
//! q(x, y) :- label(x, book), child+(x, y), following(y, z).
//! ```
//!
//! * Optional head `q(v, ...)`; a missing head or `q()` makes the query
//!   Boolean. The head predicate name is arbitrary and ignored.
//! * Binary predicates are the axis names ([`Axis::parse`]): both the
//!   paper's notation (`child`, `child+`, `child*`, `nextsibling+`, …) and
//!   W3C names (`descendant`, `following-sibling`, …).
//! * `label(x, a)` constrains x to carry label `a`; the shorthand `a(x)`
//!   (any non-axis unary predicate) means the same.
//! * `pre_lt(x, y)` asserts `x <pre y`.

use treequery_tree::Axis;

use crate::ast::{Cq, CqAtom};

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CqParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for CqParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cq parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for CqParseError {}

struct P<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, CqParseError> {
        Err(CqParseError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn ws(&mut self) {
        while self.input[self.pos..]
            .chars()
            .next()
            .is_some_and(char::is_whitespace)
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, pat: &str) -> bool {
        self.ws();
        if self.input[self.pos..].starts_with(pat) {
            self.pos += pat.len();
            true
        } else {
            false
        }
    }

    /// Identifier, optionally ending with `+`, `*` or containing `-`.
    fn ident(&mut self) -> Result<&'a str, CqParseError> {
        self.ws();
        let start = self.pos;
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len()
            && (bytes[self.pos].is_ascii_alphanumeric() || matches!(bytes[self.pos], b'_' | b'-'))
        {
            self.pos += 1;
        }
        // Trailing +/* belong to axis names (child+, nextsibling*).
        while self.pos < bytes.len() && matches!(bytes[self.pos], b'+' | b'*') {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected an identifier");
        }
        Ok(&self.input[start..self.pos])
    }
}

/// Parses a conjunctive query.
pub fn parse_cq(input: &str) -> Result<Cq, CqParseError> {
    let mut p = P { input, pos: 0 };
    let mut q = Cq::new();

    // Optional head: ident '(' vars ')' ':-'.
    let save = p.pos;
    let mut has_head = false;
    if let Ok(_name) = p.ident() {
        if p.eat("(") {
            let mut head_names = Vec::new();
            p.ws();
            if !p.eat(")") {
                loop {
                    head_names.push(p.ident()?.to_owned());
                    if p.eat(")") {
                        break;
                    }
                    if !p.eat(",") {
                        return p.err("expected ',' or ')' in head");
                    }
                }
            }
            if p.eat(":-") || p.eat("<-") {
                has_head = true;
                for h in &head_names {
                    let v = q.var(h);
                    q.head.push(v);
                }
            }
        }
    }
    if !has_head {
        p.pos = save;
        // Allow a bare ':-' prefix for headless queries.
        let _ = p.eat(":-") || p.eat("<-");
    }

    // Body atoms.
    loop {
        p.ws();
        if p.pos >= p.input.len() {
            break;
        }
        if p.eat(".") {
            p.ws();
            if p.pos != p.input.len() {
                return p.err("trailing input after '.'");
            }
            break;
        }
        let name = p.ident()?;
        if !p.eat("(") {
            return p.err(format!("expected '(' after '{name}'"));
        }
        let arg1 = p.ident()?.to_owned();
        let arg2 = if p.eat(",") {
            Some(p.ident()?.to_owned())
        } else {
            None
        };
        if !p.eat(")") {
            return p.err("expected ')'");
        }
        match (name, arg2) {
            (n, Some(a2)) if n.eq_ignore_ascii_case("label") => {
                let v = q.var(&arg1);
                q.atoms.push(CqAtom::Label(a2, v));
            }
            (n, Some(a2)) if n.eq_ignore_ascii_case("pre_lt") => {
                let x = q.var(&arg1);
                let y = q.var(&a2);
                q.atoms.push(CqAtom::PreLt(x, y));
            }
            (n, Some(a2)) => match Axis::parse(n) {
                Some(axis) => {
                    let x = q.var(&arg1);
                    let y = q.var(&a2);
                    q.atoms.push(CqAtom::Axis(axis, x, y));
                }
                None => return p.err(format!("unknown binary predicate '{n}'")),
            },
            (n, None) if n.eq_ignore_ascii_case("root") => {
                let v = q.var(&arg1);
                q.atoms.push(CqAtom::Root(v));
            }
            (n, None) if n.eq_ignore_ascii_case("leaf") => {
                let v = q.var(&arg1);
                q.atoms.push(CqAtom::Leaf(v));
            }
            (n, None) => {
                if Axis::parse(n).is_some() {
                    return p.err(format!("axis '{n}' requires two arguments"));
                }
                // Unary shorthand: a(x) ≡ label(x, a).
                let v = q.var(&arg1);
                q.atoms.push(CqAtom::Label(n.to_owned(), v));
            }
        }
        p.ws();
        if !p.eat(",") {
            if p.eat(".") {
                p.ws();
                if p.pos != p.input.len() {
                    return p.err("trailing input after '.'");
                }
            } else if p.pos != p.input.len() {
                return p.err("expected ',' or '.' between atoms");
            }
            break;
        }
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CqVar;

    #[test]
    fn full_query() {
        let q = parse_cq("q(x, y) :- label(x, book), child+(x, y), following(y, z).").unwrap();
        assert_eq!(q.head.len(), 2);
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.atoms.len(), 3);
        assert_eq!(
            q.atoms[1],
            CqAtom::Axis(Axis::Descendant, CqVar(0), CqVar(1))
        );
    }

    #[test]
    fn boolean_query_without_head() {
        let q = parse_cq("child(x, y), label(y, a)").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.atoms.len(), 2);
    }

    #[test]
    fn boolean_query_with_empty_head() {
        let q = parse_cq("q() :- descendant(x, y).").unwrap();
        assert!(q.is_boolean());
    }

    #[test]
    fn unary_shorthand() {
        let q = parse_cq("q(x) :- book(x).").unwrap();
        assert_eq!(q.atoms, vec![CqAtom::Label("book".into(), CqVar(0))]);
    }

    #[test]
    fn pre_lt_atom() {
        let q = parse_cq("pre_lt(x, y), child(x, z)").unwrap();
        assert_eq!(q.atoms[0], CqAtom::PreLt(CqVar(0), CqVar(1)));
    }

    #[test]
    fn star_and_plus_axes() {
        let q = parse_cq("child*(x, y), nextsibling+(y, z), nextsibling*(z, w)").unwrap();
        assert_eq!(
            q.atoms[0],
            CqAtom::Axis(Axis::DescendantOrSelf, CqVar(0), CqVar(1))
        );
        assert_eq!(
            q.atoms[1],
            CqAtom::Axis(Axis::FollowingSibling, CqVar(1), CqVar(2))
        );
        assert_eq!(
            q.atoms[2],
            CqAtom::Axis(Axis::FollowingSiblingOrSelf, CqVar(2), CqVar(3))
        );
    }

    #[test]
    fn w3c_names() {
        let q = parse_cq("ancestor(x, y), following-sibling(a, b)").unwrap();
        assert_eq!(q.atoms[0], CqAtom::Axis(Axis::Ancestor, CqVar(0), CqVar(1)));
        assert_eq!(
            q.atoms[1],
            CqAtom::Axis(Axis::FollowingSibling, CqVar(2), CqVar(3))
        );
    }

    #[test]
    fn errors() {
        assert!(parse_cq("q(x) :- frob(x, y).").is_err());
        assert!(parse_cq("q(x) :- child(x).").is_err());
        assert!(parse_cq("q(x) :- child(x, y). extra").is_err());
    }

    #[test]
    fn head_vars_are_shared_with_body() {
        let q = parse_cq("q(y) :- child(x, y).").unwrap();
        assert_eq!(q.head, vec![CqVar(0)]);
        assert_eq!(q.atoms[0], CqAtom::Axis(Axis::Child, CqVar(1), CqVar(0)));
    }
}
