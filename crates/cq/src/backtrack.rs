//! Naive backtracking evaluation of conjunctive queries over trees.
//!
//! This is the exponential baseline the tractable techniques are measured
//! against (and the only complete evaluator for the NP-hard signature
//! classes of Theorem 6.8). Variables are assigned in a fixed order with
//! eager constraint checking; candidates are seeded from per-label node
//! lists when a label atom is available.

use std::collections::BTreeSet;

use treequery_tree::{NodeId, Tree};

use crate::ast::{Cq, CqAtom, CqVar};

/// Statistics from a backtracking run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BacktrackStats {
    /// Number of variable assignments attempted (the work measure used by
    /// experiment E7 to show the exponential blow-up on NP-hard classes).
    pub assignments: u64,
}

/// Variable ordering: breadth-first over the atom graph starting from the
/// most constrained variable, so bound-variable pruning kicks in early.
fn var_order(q: &Cq) -> Vec<CqVar> {
    let n = q.num_vars();
    let mut degree = vec![0usize; n];
    let mut adj: Vec<Vec<CqVar>> = vec![Vec::new(); n];
    let mut has_label = vec![false; n];
    for atom in &q.atoms {
        match atom {
            CqAtom::Label(_, x) => has_label[x.index()] = true,
            CqAtom::Root(_) | CqAtom::Leaf(_) => {}
            CqAtom::Axis(_, x, y) | CqAtom::PreLt(x, y) => {
                if x != y {
                    adj[x.index()].push(*y);
                    adj[y.index()].push(*x);
                    degree[x.index()] += 1;
                    degree[y.index()] += 1;
                }
            }
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    // Seeds sorted by (has_label desc, degree desc).
    let mut seeds: Vec<CqVar> = (0..n as u32).map(CqVar).collect();
    seeds.sort_by_key(|v| (!has_label[v.index()], usize::MAX - degree[v.index()]));
    for seed in seeds {
        if seen[seed.index()] {
            continue;
        }
        seen[seed.index()] = true;
        let mut queue = std::collections::VecDeque::from([seed]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &adj[u.index()] {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    order
}

fn atom_holds(t: &Tree, atom: &CqAtom, assignment: &[Option<NodeId>]) -> Option<bool> {
    match atom {
        CqAtom::Label(l, x) => {
            let v = assignment[x.index()]?;
            Some(t.has_label_name(v, l))
        }
        CqAtom::Root(x) => Some(t.is_root(assignment[x.index()]?)),
        CqAtom::Leaf(x) => Some(t.is_leaf(assignment[x.index()]?)),
        CqAtom::Axis(axis, x, y) => {
            let vx = assignment[x.index()]?;
            let vy = assignment[y.index()]?;
            Some(axis.holds(t, vx, vy))
        }
        CqAtom::PreLt(x, y) => {
            let vx = assignment[x.index()]?;
            let vy = assignment[y.index()]?;
            Some(t.pre(vx) < t.pre(vy))
        }
    }
}

/// Runs `emit` on every satisfying valuation (full variable assignment);
/// `emit` returns `false` to stop the search early. Returns statistics.
pub(crate) fn for_each_valuation(
    q: &Cq,
    t: &Tree,
    emit: &mut impl FnMut(&[Option<NodeId>]) -> bool,
) -> BacktrackStats {
    let order = var_order(q);
    let n = q.num_vars();
    let mut assignment: Vec<Option<NodeId>> = vec![None; n];
    // Atoms to check after assigning each variable: those whose variables
    // are all bound once this one is.
    let mut position = vec![usize::MAX; n];
    for (i, v) in order.iter().enumerate() {
        position[v.index()] = i;
    }
    let mut checks_at: Vec<Vec<&CqAtom>> = vec![Vec::new(); n.max(1)];
    for atom in &q.atoms {
        if let Some(last) = atom.vars().map(|v| position[v.index()]).max() {
            checks_at[last].push(atom);
        }
    }
    // Candidate lists per variable: label-restricted when possible.
    let label_of: Vec<Option<&str>> = (0..n)
        .map(|i| {
            q.atoms.iter().find_map(|a| match a {
                CqAtom::Label(l, x) if x.index() == i => Some(l.as_str()),
                _ => None,
            })
        })
        .collect();

    let mut stats = BacktrackStats::default();

    #[allow(clippy::too_many_arguments)]
    fn rec(
        t: &Tree,
        order: &[CqVar],
        depth: usize,
        assignment: &mut Vec<Option<NodeId>>,
        checks_at: &[Vec<&CqAtom>],
        label_of: &[Option<&str>],
        stats: &mut BacktrackStats,
        emit: &mut impl FnMut(&[Option<NodeId>]) -> bool,
    ) -> bool {
        let Some(&var) = order.get(depth) else {
            return emit(assignment);
        };
        let candidates: Vec<NodeId> = match label_of[var.index()] {
            Some(l) => t.nodes_with_label_name(l).to_vec(),
            None => t.nodes().collect(),
        };
        for cand in candidates {
            stats.assignments += 1;
            // Cancellation checkpoint every 1024 tried assignments (the
            // backtracking chunk): stop via the same early-exit path a
            // satisfied Boolean query uses.
            if stats.assignments.is_multiple_of(1024) && treequery_tree::cancel::cancelled() {
                assignment[var.index()] = None;
                return false;
            }
            assignment[var.index()] = Some(cand);
            let ok = checks_at[depth]
                .iter()
                .all(|a| atom_holds(t, a, assignment) == Some(true));
            if ok
                && !rec(
                    t,
                    order,
                    depth + 1,
                    assignment,
                    checks_at,
                    label_of,
                    stats,
                    emit,
                )
            {
                assignment[var.index()] = None;
                return false;
            }
            assignment[var.index()] = None;
        }
        true
    }

    rec(
        t,
        &order,
        0,
        &mut assignment,
        &checks_at,
        &label_of,
        &mut stats,
        emit,
    );
    stats
}

/// Whether the query has at least one satisfying valuation.
pub fn is_satisfiable_backtrack(q: &Cq, t: &Tree) -> bool {
    let mut found = false;
    for_each_valuation(q, t, &mut |_| {
        found = true;
        false // stop
    });
    found
}

/// All head tuples (set semantics) by exhaustive backtracking.
pub fn eval_backtrack(q: &Cq, t: &Tree) -> BTreeSet<Vec<NodeId>> {
    eval_backtrack_with_stats(q, t).0
}

/// [`eval_backtrack`] plus work statistics.
pub fn eval_backtrack_with_stats(q: &Cq, t: &Tree) -> (BTreeSet<Vec<NodeId>>, BacktrackStats) {
    let mut out = BTreeSet::new();
    let stats = for_each_valuation(q, t, &mut |assignment| {
        let tuple: Vec<NodeId> = q
            .head
            .iter()
            .map(|h| assignment[h.index()].expect("head variable bound"))
            .collect();
        out.insert(tuple);
        true
    });
    (out, stats)
}

/// Checks whether a specific tuple is in the query result, by substituting
/// it for the head variables (the singleton-relation technique described
/// after Theorem 6.5) and testing satisfiability.
pub fn check_tuple(q: &Cq, t: &Tree, tuple: &[NodeId]) -> bool {
    assert_eq!(tuple.len(), q.head.len(), "tuple arity mismatch");
    // Consistency for repeated head variables.
    let mut fixed: Vec<Option<NodeId>> = vec![None; q.num_vars()];
    for (h, &v) in q.head.iter().zip(tuple) {
        match fixed[h.index()] {
            Some(prev) if prev != v => return false,
            _ => fixed[h.index()] = Some(v),
        }
    }
    let mut found = false;
    for_each_valuation(q, t, &mut |assignment| {
        let matches = q
            .head
            .iter()
            .zip(tuple)
            .all(|(h, &v)| assignment[h.index()] == Some(v));
        if matches {
            found = true;
            false
        } else {
            true
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;
    use treequery_tree::parse_term;

    #[test]
    fn boolean_satisfiability() {
        let t = parse_term("a(b(c) d)").unwrap();
        assert!(is_satisfiable_backtrack(
            &parse_cq("label(x, a), child(x, y), label(y, b)").unwrap(),
            &t
        ));
        assert!(!is_satisfiable_backtrack(
            &parse_cq("label(x, c), child(x, y)").unwrap(),
            &t
        ));
    }

    #[test]
    fn unary_results() {
        let t = parse_term("a(b(c) b)").unwrap();
        let q = parse_cq("q(y) :- label(x, a), child(x, y), label(y, b).").unwrap();
        let res = eval_backtrack(&q, &t);
        assert_eq!(res.len(), 2);
        for tuple in &res {
            assert_eq!(t.label_name(tuple[0]), "b");
        }
    }

    #[test]
    fn binary_results_and_check_tuple() {
        let t = parse_term("a(b(c))").unwrap();
        let q = parse_cq("q(x, y) :- child+(x, y).").unwrap();
        let res = eval_backtrack(&q, &t);
        assert_eq!(res.len(), 3); // (a,b), (a,c), (b,c)
        for tuple in &res {
            assert!(check_tuple(&q, &t, tuple));
        }
        let a = t.root();
        assert!(!check_tuple(&q, &t, &[a, a]));
    }

    #[test]
    fn repeated_head_vars() {
        let t = parse_term("a(b)").unwrap();
        let q = parse_cq("q(x, x) :- label(x, b).").unwrap();
        let res = eval_backtrack(&q, &t);
        assert_eq!(res.len(), 1);
        let b = t.first_child(t.root()).unwrap();
        assert!(check_tuple(&q, &t, &[b, b]));
        assert!(!check_tuple(&q, &t, &[b, t.root()]));
    }

    #[test]
    fn pre_lt_is_enforced() {
        let t = parse_term("a(b c)").unwrap();
        let q = parse_cq("q(x, y) :- pre_lt(x, y), child(z, x), child(z, y).").unwrap();
        let res = eval_backtrack(&q, &t);
        // Only (b, c), not (c, b).
        assert_eq!(res.len(), 1);
        let tuple = res.iter().next().unwrap();
        assert!(t.pre(tuple[0]) < t.pre(tuple[1]));
    }

    #[test]
    fn empty_query_is_trivially_true() {
        let t = parse_term("a").unwrap();
        let q = parse_cq("").unwrap();
        assert!(is_satisfiable_backtrack(&q, &t));
        assert_eq!(eval_backtrack(&q, &t).len(), 1); // the empty tuple
    }

    #[test]
    fn stats_count_assignments() {
        let t = parse_term("a(b c d)").unwrap();
        let q = parse_cq("child(x, y)").unwrap();
        let (_, stats) = eval_backtrack_with_stats(&q, &t);
        assert!(stats.assignments > 0);
    }
}
