//! The X-underbar property (Definition 6.3) and the evaluation algorithm
//! it enables (Lemma 6.4, Theorem 6.5, Proposition 6.6).
//!
//! A binary relation `R` has the X-property w.r.t. a total order `<` iff
//! for all `n₀ < n₁` and `n₂ < n₃`: `R(n₁, n₂) ∧ R(n₀, n₃) ⇒ R(n₀, n₂)`
//! (crossing arcs imply the "underbar" arc — Figure 5). When every
//! relation of a structure has the X-property w.r.t. `<`, the minimum
//! valuation of any arc-consistent pre-valuation is consistent
//! (Lemma 6.4), so Boolean conjunctive queries are decided by one
//! arc-consistency computation plus a minimum-picking pass (Theorem 6.5):
//! `O(||A|| · |Q|)`.

use treequery_tree::{cancel, Axis, NodeId, Order, Tree};

use crate::arc::max_arc_consistent_from;
use crate::arc::{atom_rel, initial_sets, max_arc_consistent};
use crate::ast::{Cq, CqVar};
use crate::dichotomy::{classify, Tractability};

/// A counterexample to the X-property: nodes `(n0, n1, n2, n3)` with
/// `n0 < n1`, `n2 < n3`, `R(n1, n2)`, `R(n0, n3)` but not `R(n0, n2)`.
pub type XCounterexample = (NodeId, NodeId, NodeId, NodeId);

/// Searches for a counterexample to the X-property of `axis` w.r.t.
/// `order` on the given tree. Exhaustive over arc pairs — O(|R|²) — meant
/// for verification on small trees (experiment E5), not for production.
pub fn x_property_counterexample(t: &Tree, axis: Axis, order: Order) -> Option<XCounterexample> {
    let mut arcs: Vec<(NodeId, NodeId)> = Vec::new();
    for x in t.nodes() {
        for y in axis.successors(t, x) {
            arcs.push((x, y));
        }
    }
    for &(n1, n2) in &arcs {
        for &(n0, n3) in &arcs {
            if order.lt(t, n0, n1) && order.lt(t, n2, n3) && !axis.holds(t, n0, n2) {
                return Some((n0, n1, n2, n3));
            }
        }
    }
    None
}

/// Whether `axis` has the X-property w.r.t. `order` on this tree.
pub fn axis_has_x_property(t: &Tree, axis: Axis, order: Order) -> bool {
    x_property_counterexample(t, axis, order).is_none()
}

/// Generic X-property check over an explicit arc list and an order given
/// by ranks (used for the Figure 5 graph and the relational module).
pub fn x_property_counterexample_generic(
    arcs: &[(u32, u32)],
    rank: impl Fn(u32) -> u32,
) -> Option<(u32, u32, u32, u32)> {
    let holds = |x: u32, y: u32| arcs.contains(&(x, y));
    for &(n1, n2) in arcs {
        for &(n0, n3) in arcs {
            if rank(n0) < rank(n1) && rank(n2) < rank(n3) && !holds(n0, n2) {
                return Some((n0, n1, n2, n3));
            }
        }
    }
    None
}

/// Why [`eval_x_property`] refused a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotXTractable;

impl std::fmt::Display for NotXTractable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("query signature has no order with the X-property (NP-complete class)")
    }
}

impl std::error::Error for NotXTractable {}

/// Evaluates a Boolean conjunctive query by the algorithm of Theorem 6.5:
/// classify the signature (Theorem 6.8), compute the maximal
/// arc-consistent pre-valuation (Proposition 6.2), take the minimum
/// valuation w.r.t. the certified order (Lemma 6.4 guarantees
/// consistency). Works for *cyclic* queries too — that is the point.
///
/// Returns `Ok(None)` if unsatisfiable, `Ok(Some(witness))` with a full
/// satisfying valuation otherwise, `Err` if the signature is NP-complete.
pub fn eval_x_property(q: &Cq, t: &Tree) -> Result<Option<Vec<NodeId>>, NotXTractable> {
    let n = q.normalize_forward();
    let Tractability::Tractable(order) = classify(&n) else {
        return Err(NotXTractable);
    };
    let Some(theta) = max_arc_consistent(&n, t) else {
        return Ok(None);
    };
    // A cancelled arc-consistency exit leaves over-approximate sets (see
    // `arc.rs`); Lemma 6.4 only holds at the true fixpoint, so the
    // minimum valuation must not read them. The executor's exit
    // checkpoint discards whatever a cancelled evaluation returns.
    if cancel::cancelled() {
        return Ok(None);
    }
    let witness: Vec<NodeId> = (0..n.num_vars())
        .map(|i| {
            order
                .min_of(t, theta[i].iter())
                // Variables occurring in no atom range over the domain.
                .unwrap_or(t.root())
        })
        .collect();
    // Lemma 6.4 guarantees consistency; verify defensively.
    for atom in &n.atoms {
        if let Some((rel, x, y)) = atom_rel(atom) {
            debug_assert!(
                x == y || rel.holds(t, witness[x.index()], witness[y.index()]),
                "Lemma 6.4 violated on atom {atom:?}"
            );
        }
    }
    Ok(Some(witness))
}

/// Membership test for a k-ary query result tuple (the reduction described
/// after Theorem 6.5: add singleton unary relations for the tuple
/// components and decide the Boolean query). `O(||A|| · |Q|)`.
pub fn check_tuple_x_property(q: &Cq, t: &Tree, tuple: &[NodeId]) -> Result<bool, NotXTractable> {
    assert_eq!(tuple.len(), q.head.len(), "tuple arity mismatch");
    let n = q.normalize_forward();
    let Tractability::Tractable(order) = classify(&n) else {
        return Err(NotXTractable);
    };
    let _ = order;
    let mut init = initial_sets(&n, t);
    for (h, &v) in n.head.iter().zip(tuple) {
        if !init[h.index()].contains(v) {
            return Ok(false);
        }
        let singleton = treequery_tree::NodeSet::singleton(t.len(), v);
        init[h.index()].intersect_with(&singleton);
    }
    Ok(max_arc_consistent_from(&n, t, init).is_some())
}

/// Convenience: the variables of `q` whose candidate sets the X-property
/// evaluation would inspect (diagnostics for examples).
pub fn candidate_sets(q: &Cq, t: &Tree) -> Option<Vec<(CqVar, usize)>> {
    let n = q.normalize_forward();
    let theta = max_arc_consistent(&n, t)?;
    Some(
        (0..n.num_vars())
            .map(|i| (CqVar(i as u32), theta[i].len()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtrack::{eval_backtrack, is_satisfiable_backtrack};
    use crate::parser::parse_cq;
    use treequery_tree::{all_trees, parse_term};

    /// Proposition 6.6 on small exhaustive tree sets: the listed
    /// axis/order pairs have the X-property on every tree.
    #[test]
    fn proposition_6_6_positive_cases() {
        let cases = [
            (Axis::Descendant, Order::Pre),
            (Axis::DescendantOrSelf, Order::Pre),
            (Axis::Following, Order::Post),
            (Axis::Child, Order::Bflr),
            (Axis::NextSibling, Order::Bflr),
            (Axis::FollowingSiblingOrSelf, Order::Bflr),
            (Axis::FollowingSibling, Order::Bflr),
        ];
        for n in 1..=6 {
            for t in all_trees(n, "x") {
                for &(axis, order) in &cases {
                    assert!(
                        axis_has_x_property(&t, axis, order),
                        "{axis} vs {order} fails on {t}"
                    );
                }
            }
        }
    }

    /// The complement: each axis/order pair *not* listed in
    /// Proposition 6.6 has a counterexample on some small tree.
    #[test]
    fn proposition_6_6_negative_cases() {
        use crate::dichotomy::axis_compatible;
        let forward = [
            Axis::Child,
            Axis::Descendant,
            Axis::DescendantOrSelf,
            Axis::NextSibling,
            Axis::FollowingSibling,
            Axis::FollowingSiblingOrSelf,
            Axis::Following,
        ];
        for axis in forward {
            for order in Order::ALL {
                if axis_compatible(axis, order) {
                    continue;
                }
                let found = (1..=8).any(|n| {
                    all_trees(n, "x")
                        .iter()
                        .any(|t| !axis_has_x_property(t, axis, order))
                });
                assert!(found, "expected counterexample for {axis} vs {order}");
            }
        }
    }

    /// Theorem 6.5 agrees with backtracking on tractable (incl. cyclic)
    /// queries.
    #[test]
    fn x_property_eval_agrees_with_backtracking() {
        let queries = [
            // τ1, cyclic.
            "child+(x, y), child+(y, z), child+(x, z), label(z, c)",
            "child*(x, y), child+(y, x)", // unsatisfiable cycle
            "child+(x, y), child+(x, z), label(y, b), label(z, c)",
            // τ2.
            "following(x, y), following(y, z), following(x, z)",
            // τ3, cyclic triangle.
            "child(x, y), nextsibling(y, z), child(x, z)",
            "nextsibling+(x, y), nextsibling+(y, z), nextsibling+(x, z), label(x, b)",
        ];
        let trees = ["a(b(c) b(c(d)) c)", "a(b c d)", "a(a(b b c) b)", "a"];
        for qs in queries {
            let q = parse_cq(qs).unwrap();
            for ts in trees {
                let t = parse_term(ts).unwrap();
                let expected = is_satisfiable_backtrack(&q, &t);
                let got = eval_x_property(&q, &t).expect("tractable").is_some();
                assert_eq!(got, expected, "{qs} on {ts}");
            }
        }
    }

    /// The witness returned by Theorem 6.5 really satisfies the query.
    #[test]
    fn witness_is_consistent() {
        let q = parse_cq("child+(x, y), child+(y, z), label(z, c)").unwrap();
        let t = parse_term("a(b(c) b(b(c)))").unwrap();
        let w = eval_x_property(&q, &t).unwrap().expect("satisfiable");
        use crate::ast::CqAtom;
        for atom in q.normalize_forward().atoms.iter() {
            match atom {
                CqAtom::Axis(a, x, y) => {
                    assert!(a.holds(&t, w[x.index()], w[y.index()]))
                }
                CqAtom::Label(l, x) => assert!(t.has_label_name(w[x.index()], l)),
                CqAtom::Root(x) => assert!(t.is_root(w[x.index()])),
                CqAtom::Leaf(x) => assert!(t.is_leaf(w[x.index()])),
                CqAtom::PreLt(x, y) => assert!(t.pre(w[x.index()]) < t.pre(w[y.index()])),
            }
        }
    }

    #[test]
    fn np_complete_signature_is_refused() {
        let q = parse_cq("child(x, y), child+(x, z)").unwrap();
        let t = parse_term("a(b)").unwrap();
        assert_eq!(eval_x_property(&q, &t), Err(NotXTractable));
    }

    /// k-ary membership via the singleton-relation reduction.
    #[test]
    fn check_tuple_matches_full_result() {
        let q = parse_cq("q(x, y) :- child+(x, y), label(y, c).").unwrap();
        let t = parse_term("a(b(c) c)").unwrap();
        let full = eval_backtrack(&q, &t);
        for x in t.nodes() {
            for y in t.nodes() {
                let expected = full.contains(&vec![x, y]);
                let got = check_tuple_x_property(&q, &t, &[x, y]).unwrap();
                assert_eq!(got, expected, "({x:?},{y:?})");
            }
        }
    }

    /// The Figure 5 graph: arcs drawn between two copies of {1..6}; the
    /// figure's relation satisfies the X-property by construction.
    #[test]
    fn figure5_graph_has_x_property() {
        // Figure 5(a): R = {(1,2),(2,1),(2,3),(3,5),(4,2),(4,6),(5,4),(6,5)}
        // is a graph whose arc diagram (b) illustrates the property. We
        // verify the closure condition directly on the arc set after
        // adding the underbars the definition requires.
        let mut arcs = vec![
            (1u32, 2u32),
            (2, 1),
            (2, 3),
            (3, 5),
            (4, 2),
            (4, 6),
            (5, 4),
            (6, 5),
        ];
        // Complete the relation to satisfy the X-property (the figure's
        // point is the *closure rule*, not the initial arc set).
        while let Some((n0, _, n2, _)) = x_property_counterexample_generic(&arcs, |x| x) {
            arcs.push((n0, n2));
        }
        assert!(x_property_counterexample_generic(&arcs, |x| x).is_none());
        // And the closure added something, i.e. the rule has bite.
        assert!(arcs.len() > 8);
    }
}
