//! Backtrack-free enumeration of acyclic-query solutions (Figure 6,
//! Propositions 6.9 and 6.10).
//!
//! After full reduction, *every* candidate in every set extends to a
//! solution (Proposition 6.9), so the recursive enumeration of Figure 6
//! never dead-ends. Following the pointer idea of \[13\] discussed after
//! Proposition 6.9, each join-forest edge carries an index that maps a
//! parent value to its compatible child candidates without scanning:
//! contiguous ranges in pre-sorted (or subtree-extent-sorted) candidate
//! lists for the interval-shaped axes, per-parent buckets for the sibling
//! axes, and short link walks for the remaining inverse axes. This makes
//! enumeration output-sensitive (Proposition 6.10).

use std::collections::{BTreeSet, HashMap};

use treequery_tree::{cancel, Axis, NodeId, NodeSet, Tree};

use crate::arc::{atom_rel, full_reduce, AxisSweeper, Rel};
use crate::ast::{Cq, CqVar};
use crate::graph::JoinForest;

/// Candidate index for one join-forest edge: all candidates of the child
/// variable, organized for O(log) range lookup given the parent's value.
struct EdgeIndex {
    /// Candidates sorted by pre rank.
    by_pre: Vec<NodeId>,
    /// Candidates sorted by pre_end (subtree close rank); used for the
    /// `Preceding`-shaped lookups.
    by_pre_end: Vec<NodeId>,
    /// Candidates grouped by parent node, each group sorted by sibling
    /// index; used for the child/sibling axes.
    by_parent: HashMap<u32, Vec<NodeId>>,
    /// Membership bitset.
    member: NodeSet,
}

impl EdgeIndex {
    fn build(t: &Tree, set: &NodeSet) -> EdgeIndex {
        let mut by_pre = set.to_vec();
        by_pre.sort_unstable_by_key(|&v| t.pre(v));
        let mut by_pre_end = by_pre.clone();
        by_pre_end.sort_unstable_by_key(|&v| t.pre_end(v));
        let mut by_parent: HashMap<u32, Vec<NodeId>> = HashMap::new();
        for &v in &by_pre {
            if let Some(p) = t.parent(v) {
                by_parent.entry(p.0).or_default().push(v);
            }
        }
        for group in by_parent.values_mut() {
            group.sort_unstable_by_key(|&v| t.sibling_index(v));
        }
        EdgeIndex {
            by_pre,
            by_pre_end,
            by_parent,
            member: set.clone(),
        }
    }

    /// Pushes onto `out` the candidates `w` with `rel(u_val, w)` if
    /// `forward`, else with `rel(w, u_val)`.
    fn candidates(&self, t: &Tree, rel: Rel, forward: bool, u_val: NodeId, out: &mut Vec<NodeId>) {
        match (rel, forward) {
            (Rel::Axis(Axis::SelfAxis), _) => {
                if self.member.contains(u_val) {
                    out.push(u_val);
                }
            }
            // ---- forward: w ranges over successors of u_val ----
            (Rel::Axis(Axis::Descendant), true) => {
                self.pre_range(t, t.pre(u_val) + 1, t.pre_end(u_val), out);
            }
            (Rel::Axis(Axis::DescendantOrSelf), true) => {
                self.pre_range(t, t.pre(u_val), t.pre_end(u_val), out);
            }
            (Rel::Axis(Axis::Following), true) => {
                self.pre_range(t, t.pre_end(u_val) + 1, t.len() as u32 - 1, out);
            }
            (Rel::PreLt, true) => {
                self.pre_range(t, t.pre(u_val) + 1, t.len() as u32 - 1, out);
            }
            (Rel::Axis(Axis::Child), true) => {
                if let Some(group) = self.by_parent.get(&u_val.0) {
                    out.extend_from_slice(group);
                }
            }
            (Rel::Axis(Axis::NextSibling), true) => {
                if let Some(w) = t.next_sibling(u_val) {
                    if self.member.contains(w) {
                        out.push(w);
                    }
                }
            }
            (Rel::Axis(Axis::FollowingSibling), true) => {
                self.sibling_range(t, u_val, t.sibling_index(u_val) + 1, out);
            }
            (Rel::Axis(Axis::FollowingSiblingOrSelf), true) => {
                if t.parent(u_val).is_none() {
                    // The root has no siblings, but the axis is reflexive:
                    // its one successor is itself.
                    if self.member.contains(u_val) {
                        out.push(u_val);
                    }
                } else {
                    self.sibling_range(t, u_val, t.sibling_index(u_val), out);
                }
            }
            // ---- backward: w ranges over predecessors of u_val ----
            (Rel::Axis(Axis::Child), false) => {
                if let Some(p) = t.parent(u_val) {
                    if self.member.contains(p) {
                        out.push(p);
                    }
                }
            }
            (Rel::Axis(Axis::Descendant), false) => {
                out.extend(t.ancestors(u_val).filter(|&a| self.member.contains(a)));
            }
            (Rel::Axis(Axis::DescendantOrSelf), false) => {
                if self.member.contains(u_val) {
                    out.push(u_val);
                }
                out.extend(t.ancestors(u_val).filter(|&a| self.member.contains(a)));
            }
            (Rel::Axis(Axis::NextSibling), false) => {
                if let Some(w) = t.prev_sibling(u_val) {
                    if self.member.contains(w) {
                        out.push(w);
                    }
                }
            }
            (Rel::Axis(Axis::FollowingSibling), false) => {
                self.sibling_prefix(t, u_val, t.sibling_index(u_val), out);
            }
            (Rel::Axis(Axis::FollowingSiblingOrSelf), false) => {
                if t.parent(u_val).is_none() {
                    // Reflexive case for the root, as above.
                    if self.member.contains(u_val) {
                        out.push(u_val);
                    }
                } else {
                    self.sibling_prefix(t, u_val, t.sibling_index(u_val) + 1, out);
                }
            }
            (Rel::Axis(Axis::Following), false) => {
                // w with Following(w, u_val) ⇔ pre_end(w) < pre(u_val).
                let end = self
                    .by_pre_end
                    .partition_point(|&v| t.pre_end(v) < t.pre(u_val));
                out.extend_from_slice(&self.by_pre_end[..end]);
            }
            (Rel::PreLt, false) => {
                let end = self.by_pre.partition_point(|&v| t.pre(v) < t.pre(u_val));
                out.extend_from_slice(&self.by_pre[..end]);
            }
            // Inverse axes never appear: queries are normalized forward.
            (Rel::Axis(other), _) => {
                unreachable!("non-normalized axis {other} in enumeration")
            }
        }
    }

    /// Candidates with pre rank in `[lo, hi]` (inclusive; `lo > hi` = none).
    fn pre_range(&self, t: &Tree, lo: u32, hi: u32, out: &mut Vec<NodeId>) {
        if lo > hi {
            return;
        }
        let start = self.by_pre.partition_point(|&v| t.pre(v) < lo);
        let end = self.by_pre.partition_point(|&v| t.pre(v) <= hi);
        out.extend_from_slice(&self.by_pre[start..end]);
    }

    /// Candidates that are siblings of `u` with sibling index ≥ `from`.
    fn sibling_range(&self, t: &Tree, u: NodeId, from: u32, out: &mut Vec<NodeId>) {
        let Some(p) = t.parent(u) else { return };
        if let Some(group) = self.by_parent.get(&p.0) {
            let start = group.partition_point(|&v| t.sibling_index(v) < from);
            out.extend_from_slice(&group[start..]);
        }
    }

    /// Candidates that are siblings of `u` with sibling index < `upto`.
    fn sibling_prefix(&self, t: &Tree, u: NodeId, upto: u32, out: &mut Vec<NodeId>) {
        let Some(p) = t.parent(u) else { return };
        if let Some(group) = self.by_parent.get(&p.0) {
            let end = group.partition_point(|&v| t.sibling_index(v) < upto);
            out.extend_from_slice(&group[..end]);
        }
    }
}

/// A prepared, fully reduced acyclic query ready for backtrack-free
/// enumeration.
pub struct Enumerator<'t> {
    q: Cq,
    t: &'t Tree,
    forest: JoinForest,
    /// Reduced candidate sets (`None` = query unsatisfiable).
    sets: Option<Vec<NodeSet>>,
    /// Per-variable edge index (for non-roots).
    indexes: Vec<Option<EdgeIndex>>,
    /// Variables occurring in no atom but in the head: enumerate freely.
    free_vars: Vec<CqVar>,
}

impl Drop for Enumerator<'_> {
    /// The candidate sets come from the thread-local scratch pools
    /// (via the reducers); recycle them so repeated query preparation is
    /// allocation-free after warm-up.
    fn drop(&mut self) {
        if let Some(sets) = self.sets.take() {
            treequery_tree::scratch::put_set_vec(sets);
        }
    }
}

/// How much semijoin reduction to run before enumerating (the E6
/// ablation knob; [`Reduction::Full`] is the normal mode).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reduction {
    /// Bottom-up and top-down passes (the full reducer).
    Full,
    /// Bottom-up only: Boolean-exact at the roots; still backtrack-free
    /// under root-down enumeration.
    BottomUpOnly,
    /// No reduction: only label/self-loop filters; enumeration backtracks.
    None,
}

/// Statistics of an enumeration run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnumStats {
    /// Number of full valuations produced.
    pub valuations: u64,
    /// Candidate-list computations that came back empty — by
    /// Proposition 6.9 this stays 0 after full reduction (experiment E6).
    pub dead_branches: u64,
}

impl<'t> Enumerator<'t> {
    /// Prepares the enumeration: normalizes the query to forward axes,
    /// builds the join forest, runs the full reducer, and builds the
    /// per-edge candidate indexes.
    /// Returns `None` if the (normalized) query is cyclic.
    pub fn new(q: &Cq, t: &'t Tree) -> Option<Self> {
        Self::with_reduction(q, t, Reduction::Full)
    }

    /// Like [`Enumerator::new`] but with a chosen amount of semijoin
    /// reduction — the E6 ablation. With [`Reduction::BottomUpOnly`] the
    /// enumeration is *still* backtrack-free, because variables are
    /// assigned root-down and every bottom-up-reduced candidate has a
    /// satisfiable subtree (the orientation point the paper makes about
    /// Yannakakis' join trees); with [`Reduction::None`] the candidate
    /// sets over-approximate and the Figure 6 recursion dead-ends.
    pub fn with_reduction(q: &Cq, t: &'t Tree, reduction: Reduction) -> Option<Self> {
        Self::construct(q, t, |q, forest| match reduction {
            Reduction::Full => full_reduce(q, t, forest),
            Reduction::BottomUpOnly => crate::arc::bottom_up_reduce(q, t, forest),
            Reduction::None => Some(crate::arc::initial_sets(q, t)),
        })
    }

    /// Like [`Enumerator::new`] but running the full reducer's axis-image
    /// semijoins through a caller-chosen [`AxisSweeper`] (e.g. a chunked
    /// parallel kernel).
    pub fn with_sweeper(
        q: &Cq,
        t: &'t Tree,
        sweeper: &(impl AxisSweeper + ?Sized),
    ) -> Option<Self> {
        Self::construct(q, t, |q, forest| {
            crate::arc::full_reduce_with(q, t, forest, sweeper)
        })
    }

    fn construct(
        q: &Cq,
        t: &'t Tree,
        run_reduction: impl FnOnce(&Cq, &JoinForest) -> Option<Vec<NodeSet>>,
    ) -> Option<Self> {
        let mut span = treequery_obs::span("cq.reduce");
        let _mem = treequery_obs::alloc::AllocScope::enter("cq.reduce");
        span.record_u64("atoms", q.atoms.len() as u64);
        span.record_u64("vars", q.num_vars() as u64);
        let q = q.normalize_forward();
        let forest = JoinForest::build(&q)?;
        let sets = run_reduction(&q, &forest);
        if let Some(sets) = &sets {
            span.record_u64(
                "candidates",
                sets.iter().map(|s| s.len() as u64).sum::<u64>(),
            );
        }
        let mut indexes: Vec<Option<EdgeIndex>> = (0..q.num_vars()).map(|_| None).collect();
        if let Some(sets) = &sets {
            for &v in &forest.bfs_order {
                if forest.parent[v.index()].is_some() {
                    indexes[v.index()] = Some(EdgeIndex::build(t, &sets[v.index()]));
                }
            }
        }
        let occurring: BTreeSet<CqVar> = q.atoms.iter().flat_map(|a| a.vars()).collect();
        let mut free_vars: Vec<CqVar> = q
            .head
            .iter()
            .copied()
            .filter(|h| !occurring.contains(h))
            .collect();
        free_vars.sort_unstable();
        free_vars.dedup();
        Some(Enumerator {
            q,
            t,
            forest,
            sets,
            indexes,
            free_vars,
        })
    }

    /// Whether the query is satisfiable on the tree.
    pub fn is_satisfiable(&self) -> bool {
        self.sets.is_some() && (!self.t.is_empty() || self.free_vars.is_empty())
    }

    /// The reduced candidate set of a variable (after full reduction),
    /// if the query is satisfiable.
    pub fn candidates(&self, v: CqVar) -> Option<&NodeSet> {
        self.sets.as_ref().map(|s| &s[v.index()])
    }

    /// Calls `emit` for every satisfying valuation (assignment to all
    /// forest variables and free head variables); `emit` returns `false`
    /// to stop. Returns statistics.
    ///
    /// This is the algorithm of Figure 6 generalized to forests, running
    /// over the reduced sets with the per-edge indexes.
    pub fn for_each(&self, emit: &mut impl FnMut(&[Option<NodeId>]) -> bool) -> EnumStats {
        let mut span = treequery_obs::span("cq.enumerate");
        let _mem = treequery_obs::alloc::AllocScope::enter("cq.enumerate");
        let mut stats = EnumStats::default();
        let Some(sets) = &self.sets else {
            return stats;
        };
        // The variables in assignment order: forest BFS order then free
        // head variables.
        let mut vars: Vec<CqVar> = self.forest.bfs_order.clone();
        vars.extend(self.free_vars.iter().copied());
        let mut assignment: Vec<Option<NodeId>> = vec![None; self.q.num_vars()];
        self.rec(&vars, 0, sets, &mut assignment, &mut stats, emit);
        span.record_u64("valuations", stats.valuations);
        span.record_u64("dead_branches", stats.dead_branches);
        stats
    }

    #[allow(clippy::too_many_arguments)]
    fn rec(
        &self,
        vars: &[CqVar],
        depth: usize,
        sets: &[NodeSet],
        assignment: &mut Vec<Option<NodeId>>,
        stats: &mut EnumStats,
        emit: &mut impl FnMut(&[Option<NodeId>]) -> bool,
    ) -> bool {
        let Some(&var) = vars.get(depth) else {
            stats.valuations += 1;
            // Cancellation checkpoint every 256 valuations — the
            // enumeration chunk. Stopping reuses the `emit -> false`
            // early-exit path, so a cancelled enumeration unwinds exactly
            // like a satisfied Boolean query.
            if stats.valuations.is_multiple_of(256) && cancel::cancelled() {
                return false;
            }
            return emit(assignment);
        };
        // Candidates given the parent assignment.
        let mut buf: Vec<NodeId>;
        let candidates: &[NodeId] = match &self.forest.parent[var.index()] {
            None => {
                // A root (or free variable): iterate its full reduced set.
                buf = if self.forest.bfs_order.contains(&var) {
                    sets[var.index()].to_vec()
                } else {
                    // Free head variable: whole domain.
                    self.t.nodes().collect()
                };
                &buf
            }
            Some((u, atom_idxs)) => {
                let u_val = assignment[u.index()].expect("parent assigned before child");
                let index = self.indexes[var.index()]
                    .as_ref()
                    .expect("edge index built for non-root");
                // Primary atom gives the candidate range; the (rare)
                // parallel atoms filter it.
                let (rel, ax, ay) =
                    atom_rel(&self.q.atoms[atom_idxs[0]]).expect("edge atoms are binary");
                let forward = ax == *u && ay == var;
                buf = Vec::new();
                index.candidates(self.t, rel, forward, u_val, &mut buf);
                for &ai in &atom_idxs[1..] {
                    let (rel, ax, _) = atom_rel(&self.q.atoms[ai]).expect("binary");
                    let fwd = ax == *u;
                    buf.retain(|&w| {
                        if fwd {
                            rel.holds(self.t, u_val, w)
                        } else {
                            rel.holds(self.t, w, u_val)
                        }
                    });
                }
                &buf
            }
        };
        if candidates.is_empty() {
            stats.dead_branches += 1;
            return true;
        }
        for &cand in candidates {
            assignment[var.index()] = Some(cand);
            if !self.rec(vars, depth + 1, sets, assignment, stats, emit) {
                assignment[var.index()] = None;
                return false;
            }
        }
        assignment[var.index()] = None;
        true
    }

    /// All head tuples (set semantics).
    pub fn head_tuples(&self) -> BTreeSet<Vec<NodeId>> {
        let mut out = BTreeSet::new();
        self.for_each(&mut |assignment| {
            out.insert(
                self.q
                    .head
                    .iter()
                    .map(|h| assignment[h.index()].expect("head variable assigned"))
                    .collect(),
            );
            true
        });
        out
    }

    /// Counts all satisfying valuations; also returns the dead-branch
    /// count (0 after full reduction, by Proposition 6.9).
    pub fn count(&self) -> EnumStats {
        self.for_each(&mut |_| true)
    }
}

/// Evaluates an acyclic query: the set of head tuples, or `None` if the
/// (forward-normalized) query is cyclic.
///
/// The query is normalized to forward axes first. Time
/// `O(|Q| · ||A|| + output)` per Proposition 6.10 (up to an `O(depth)`
/// factor for edges oriented against `Ancestor`).
pub fn eval_acyclic(q: &Cq, t: &Tree) -> Option<BTreeSet<Vec<NodeId>>> {
    let e = Enumerator::new(q, t)?;
    Some(e.head_tuples())
}

/// Counts satisfying valuations of an acyclic query; `None` if cyclic.
pub fn count_valuations(q: &Cq, t: &Tree) -> Option<EnumStats> {
    let e = Enumerator::new(q, t)?;
    Some(e.count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtrack::eval_backtrack;
    use crate::parser::parse_cq;
    use treequery_tree::parse_term;

    fn check_agrees(qs: &str, ts: &str) {
        let q = parse_cq(qs).unwrap();
        let t = parse_term(ts).unwrap();
        let fast = eval_acyclic(&q, &t).expect("acyclic");
        let slow = eval_backtrack(&q, &t);
        assert_eq!(fast, slow, "{qs} on {ts}");
    }

    #[test]
    fn agrees_with_backtracking() {
        let queries = [
            "q(x) :- label(x, a).",
            "q(y) :- label(x, a), child(x, y).",
            "q(x, y) :- child+(x, y).",
            "q(x, z) :- child(x, y), child(y, z).",
            "q(z) :- label(x, a), child+(x, y), label(y, b), nextsibling+(y, z).",
            "q(x, y) :- following(x, y), label(y, c).",
            "q(x) :- child*(x, y), label(y, c).",
            "q(w) :- pre_lt(x, w), label(x, b).",
            // Inverse axes (normalized away).
            "q(x) :- parent(x, y), label(y, a).",
            "q(x) :- ancestor(x, y), label(y, a), preceding(z, x).",
        ];
        let trees = [
            "a(b(c) b(a(c)) c)",
            "a(a(b(c d) b) b(c))",
            "a(b c)",
            "r(a(b(c)) a(b) b(a))",
        ];
        for qs in queries {
            for ts in trees {
                check_agrees(qs, ts);
            }
        }
    }

    #[test]
    fn reflexive_sibling_axes_include_the_root() {
        // Regression (found by differential fuzzing): NextSibling* is
        // reflexive, so the root — which has no parent and hence no
        // sibling group in the index — still pairs with itself.
        for qs in [
            "q(x, y) :- nextsibling*(x, y).",
            "q(x, y) :- preceding-sibling-or-self(x, y).",
            "q() :- nextsibling*(x, y).",
        ] {
            for ts in ["a", "a(b c)", "r(a(b(c)) a)"] {
                check_agrees(qs, ts);
            }
        }
    }

    #[test]
    fn zero_dead_branches_after_full_reduction() {
        // Proposition 6.9 / experiment E6: enumeration never dead-ends.
        let queries = [
            "q(x) :- label(x, a), child+(x, y), label(y, b), child(y, z).",
            "q(x, y) :- following(x, y).",
            "q(x) :- child(x, y), nextsibling(y, z), child+(z, w).",
        ];
        for qs in queries {
            let q = parse_cq(qs).unwrap();
            for ts in ["a(b(c) b(a(c)) c)", "a(a(b(c d) b) b(c))"] {
                let t = parse_term(ts).unwrap();
                if let Some(e) = Enumerator::new(&q, &t) {
                    let stats = e.count();
                    assert_eq!(stats.dead_branches, 0, "{qs} on {ts}");
                };
            }
        }
    }

    #[test]
    fn cyclic_query_is_rejected() {
        let q = parse_cq("child(x, y), child(y, z), child+(x, z)").unwrap();
        let t = parse_term("a(b(c))").unwrap();
        assert!(eval_acyclic(&q, &t).is_none());
    }

    #[test]
    fn boolean_queries() {
        let t = parse_term("a(b(c))").unwrap();
        let sat = parse_cq("child(x, y), child(y, z)").unwrap();
        assert_eq!(eval_acyclic(&sat, &t).unwrap().len(), 1); // the empty tuple
        let unsat = parse_cq("child(x, y), child(y, z), child(z, w)").unwrap();
        assert!(eval_acyclic(&unsat, &t).unwrap().is_empty());
    }

    #[test]
    fn disconnected_components_cross_product() {
        let t = parse_term("a(b c)").unwrap();
        let q = parse_cq("q(x, u) :- label(x, b), label(u, c).").unwrap();
        let res = eval_acyclic(&q, &t).unwrap();
        assert_eq!(res.len(), 1);
        let stats = count_valuations(&q, &t).unwrap();
        assert_eq!(stats.valuations, 1);
    }

    #[test]
    fn free_head_variable_ranges_over_domain() {
        let t = parse_term("a(b c)").unwrap();
        let q = parse_cq("q(x, f) :- label(x, a).").unwrap();
        let res = eval_acyclic(&q, &t).unwrap();
        assert_eq!(res.len(), 3); // (a, each of 3 nodes)
    }

    #[test]
    fn output_count_matches_backtracking_valuations() {
        let q = parse_cq("child+(x, y), child+(y, z)").unwrap();
        let t = parse_term("a(b(c(d)) e(f))").unwrap();
        let fast = count_valuations(&q, &t).unwrap();
        let mut slow = 0u64;
        crate::backtrack::for_each_valuation(&q, &t, &mut |_| {
            slow += 1;
            true
        });
        assert_eq!(fast.valuations, slow);
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use crate::parser::parse_cq;
    use treequery_tree::parse_term;

    /// The E6 ablation: bottom-up-only reduction keeps enumeration
    /// backtrack-free (root-down assignment order), while no reduction at
    /// all dead-ends — answers stay correct in every mode.
    #[test]
    fn reduction_ablation() {
        let q = parse_cq("q(x, z) :- child+(x, y), child+(y, z), label(z, c).").unwrap();
        let t = parse_term("r(a(b(c) b) a(b(x)) a(b(c)))").unwrap();
        let full = Enumerator::new(&q, &t).unwrap();
        let bottom_up = Enumerator::with_reduction(&q, &t, Reduction::BottomUpOnly).unwrap();
        let none = Enumerator::with_reduction(&q, &t, Reduction::None).unwrap();
        assert_eq!(full.head_tuples(), bottom_up.head_tuples());
        assert_eq!(full.head_tuples(), none.head_tuples());
        assert_eq!(full.count().dead_branches, 0);
        assert_eq!(bottom_up.count().dead_branches, 0);
        assert!(none.count().dead_branches > 0);
    }
}
