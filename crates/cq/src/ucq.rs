//! Unions of conjunctive queries — the positive (first-order) queries of
//! Section 5.
//!
//! A positive FO query over trees is equivalent to a finite union of
//! conjunctive queries (disjunctive normal form); by Theorem 5.1 each
//! disjunct rewrites into a union of *acyclic* CQs, so (Corollary 5.2) a
//! fixed positive Boolean FO query evaluates in time `O(||A||)`.

use std::collections::BTreeSet;

use treequery_tree::{NodeId, Tree};

use crate::ast::Cq;
use crate::backtrack::eval_backtrack;
use crate::enumerate::eval_acyclic;
use crate::parser::{parse_cq, CqParseError};
use crate::rewrite::{rewrite_to_acyclic, RewriteError};

/// A union of conjunctive queries (all with the same head arity).
#[derive(Clone, Debug, Default)]
pub struct Ucq {
    /// The disjuncts.
    pub disjuncts: Vec<Cq>,
}

impl Ucq {
    /// Builds a union; all disjuncts must share the head arity.
    pub fn new(disjuncts: Vec<Cq>) -> Ucq {
        if let Some(first) = disjuncts.first() {
            assert!(
                disjuncts.iter().all(|q| q.head.len() == first.head.len()),
                "all disjuncts of a UCQ must have the same head arity"
            );
        }
        Ucq { disjuncts }
    }

    /// Head arity (0 = Boolean).
    pub fn arity(&self) -> usize {
        self.disjuncts.first().map_or(0, |q| q.head.len())
    }

    /// Total size (sum of disjunct sizes).
    pub fn size(&self) -> usize {
        self.disjuncts.iter().map(Cq::size).sum()
    }

    /// Rewrites every disjunct into acyclic queries (Theorem 5.1),
    /// flattening into one acyclic union.
    pub fn rewrite_to_acyclic(&self) -> Result<Ucq, RewriteError> {
        let mut out = Vec::new();
        for q in &self.disjuncts {
            let (parts, _) = rewrite_to_acyclic(q)?;
            out.extend(parts);
        }
        Ok(Ucq { disjuncts: out })
    }

    /// Evaluates the union: acyclic disjuncts through Yannakakis +
    /// enumeration, cyclic ones through rewriting (with backtracking as
    /// the `<pre`-atom fallback). Result tuples are the set union.
    pub fn eval(&self, t: &Tree) -> BTreeSet<Vec<NodeId>> {
        let mut out = BTreeSet::new();
        for q in &self.disjuncts {
            if let Some(tuples) = eval_acyclic(q, t) {
                out.extend(tuples);
            } else {
                match rewrite_to_acyclic(q) {
                    Ok((parts, _)) => {
                        for part in &parts {
                            out.extend(eval_acyclic(part, t).expect("rewritten parts are acyclic"));
                        }
                    }
                    Err(_) => out.extend(eval_backtrack(q, t)),
                }
            }
        }
        out
    }

    /// Boolean view.
    pub fn is_satisfiable(&self, t: &Tree) -> bool {
        !self.eval(t).is_empty()
    }
}

/// Parses a UCQ: disjuncts separated by `;`.
///
/// ```text
/// q(x) :- label(x, a), child(x, y) ; q(x) :- label(x, b), following(x, y)
/// ```
pub fn parse_ucq(input: &str) -> Result<Ucq, CqParseError> {
    let mut disjuncts = Vec::new();
    let mut offset = 0usize;
    for part in input.split(';') {
        if part.trim().is_empty() {
            offset += part.len() + 1;
            continue;
        }
        let q = parse_cq(part).map_err(|mut e| {
            e.offset += offset;
            e
        })?;
        disjuncts.push(q);
        offset += part.len() + 1;
    }
    let ucq = Ucq::new(disjuncts);
    Ok(ucq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treequery_tree::parse_term;

    #[test]
    fn union_semantics() {
        let t = parse_term("r(a(x) b(y) c)").unwrap();
        let u = parse_ucq("q(v) :- label(v, a) ; q(v) :- label(v, b).").unwrap();
        assert_eq!(u.disjuncts.len(), 2);
        assert_eq!(u.arity(), 1);
        let res = u.eval(&t);
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn union_with_cyclic_disjunct() {
        let t = parse_term("r(a(b(c)))").unwrap();
        // First disjunct cyclic (triangle), second acyclic.
        let u = parse_ucq("q(z) :- child(x, y), child(y, z), child+(x, z) ; q(z) :- label(z, c).")
            .unwrap();
        let res = u.eval(&t);
        // Triangle matches z = c's position (b's child) via a→b→c;
        // plus the c node from the second disjunct (the same node).
        let mut expected = eval_backtrack(&u.disjuncts[0], &t);
        expected.extend(eval_backtrack(&u.disjuncts[1], &t));
        assert_eq!(res, expected);
        assert!(u.is_satisfiable(&t));
    }

    #[test]
    fn boolean_union() {
        let t = parse_term("r(a)").unwrap();
        let u = parse_ucq("label(x, zz) ; label(x, a)").unwrap();
        assert!(u.is_satisfiable(&t));
        let u2 = parse_ucq("label(x, zz) ; label(x, yy)").unwrap();
        assert!(!u2.is_satisfiable(&t));
    }

    #[test]
    fn rewrite_flattens_to_acyclic() {
        let u = parse_ucq("q(z) :- child+(x, z), child(y, z), label(x, a) ; q(z) :- label(z, b).")
            .unwrap();
        let acyclic = u.rewrite_to_acyclic().unwrap();
        assert!(acyclic.disjuncts.iter().all(crate::graph::is_acyclic));
        assert!(acyclic.disjuncts.len() >= 2);
        // Semantics preserved.
        let t = parse_term("r(a(q(b)) b)").unwrap();
        assert_eq!(acyclic.eval(&t), u.eval(&t));
    }

    #[test]
    #[should_panic(expected = "same head arity")]
    fn mixed_arity_panics() {
        let a = parse_cq("q(x) :- label(x, a).").unwrap();
        let b = parse_cq("q(x, y) :- child(x, y).").unwrap();
        Ucq::new(vec![a, b]);
    }

    #[test]
    fn empty_union_is_unsatisfiable() {
        let t = parse_term("a").unwrap();
        let u = Ucq::new(Vec::new());
        assert!(!u.is_satisfiable(&t));
    }
}
