#![warn(missing_docs)]

//! Conjunctive queries over trees: Sections 4–6 of the paper.
//!
//! This crate implements the paper's whole toolbox for conjunctive queries
//! (CQs) whose relations are tree axes and label predicates:
//!
//! * **AST & parser** — [`Cq`], [`parse_cq`];
//! * **structure** — query graphs, acyclicity (GYO for the binary case),
//!   join forests ([`graph`]);
//! * **baselines** — exponential backtracking evaluation
//!   ([`eval_backtrack`]);
//! * **acyclic queries** — Yannakakis' full reducer via O(n) axis-image
//!   semijoins, and the backtrack-free enumeration of Figure 6 with the
//!   pointer/range candidate indexes of Proposition 6.10 ([`enumerate`]);
//! * **arc-consistency** — the unique maximal arc-consistent pre-valuation
//!   (Proposition 6.2), both the AC fixpoint over implicit axis relations
//!   and the literal Horn-SAT reduction over explicit relations
//!   ([`arc`], [`relational`]);
//! * **the X-underbar property** — checker (Definition 6.3), the
//!   Proposition 6.6 axis/order table, and the minimum-valuation evaluation
//!   algorithm of Theorem 6.5 ([`xprop`]);
//! * **the dichotomy** — the tractability classifier of Theorem 6.8
//!   ([`dichotomy`]);
//! * **query rewriting** — Theorem 5.1: CQs into equivalent unions of
//!   acyclic queries, with Table 1 as the satisfiability oracle
//!   ([`rewrite`]);
//! * **holistic twig joins** — PathStack / TwigStack \[13\] ([`twigjoin`]);
//! * **tree decompositions** — including the width-2 decomposition of
//!   (Child, NextSibling)-trees of Figure 4, and the bounded-tree-width
//!   evaluation of Theorem 4.1 over arbitrary relational structures
//!   ([`decomposition`], [`relational`]).

pub mod arc;
mod ast;
mod backtrack;
pub mod containment;
pub mod decomposition;
pub mod dichotomy;
pub mod enumerate;
mod features;
pub mod graph;
mod parser;
pub mod relational;
pub mod rewrite;
pub mod twigjoin;
pub mod ucq;
pub mod xprop;

pub use arc::{
    bottom_up_reduce, full_reduce, full_reduce_with, max_arc_consistent, AxisSweeper, SeqSweeper,
};
pub use ast::{Cq, CqAtom, CqVar};
pub use backtrack::{
    check_tuple, eval_backtrack, eval_backtrack_with_stats, is_satisfiable_backtrack,
    BacktrackStats,
};
pub use containment::{bounded_contained, bounded_equivalent, bounded_equivalent_ucq};
pub use dichotomy::{classify, Tractability};
pub use enumerate::{count_valuations, eval_acyclic, Enumerator, Reduction};
pub use features::{features, CqFeatures};
pub use graph::{is_acyclic, JoinForest};
pub use parser::{parse_cq, CqParseError};
pub use rewrite::{rewrite_to_acyclic, sat_table, RewriteStats};
pub use ucq::{parse_ucq, Ucq};
pub use xprop::{axis_has_x_property, eval_x_property, x_property_counterexample};
