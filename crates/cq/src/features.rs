//! Structural features of a conjunctive query — the lowering seam the
//! planner in `treequery-core` consumes.
//!
//! One pass over the (forward-normalized) query collects exactly the
//! properties the dichotomy of Theorem 6.8 and the rewriting of Theorem
//! 5.1 dispatch on, plus the label atoms the planner matches against the
//! tree's label histogram for selectivity estimates.

use std::collections::BTreeSet;

use treequery_tree::Axis;

use crate::ast::{Cq, CqAtom};
use crate::dichotomy::{classify, Tractability};
use crate::graph::is_acyclic;

/// A flat summary of one conjunctive query.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CqFeatures {
    /// Number of variables.
    pub vars: usize,
    /// Total number of atoms.
    pub atoms: usize,
    /// Binary axis atoms.
    pub axis_atoms: usize,
    /// Unary label atoms.
    pub label_atoms: usize,
    /// `<pre` order atoms (the rewrite-internal relation; NP-hard fuel).
    pub order_atoms: usize,
    /// Boolean query (empty head)?
    pub boolean: bool,
    /// Acyclic query graph (GYO)?
    pub acyclic: bool,
    /// Tractable per the Theorem 6.8 dichotomy (only meaningful for
    /// Boolean queries; `None` when not Boolean)?
    pub tractable_order: Option<treequery_tree::Order>,
    /// The distinct axes used.
    pub axes: BTreeSet<Axis>,
    /// Every label mentioned in a label atom, in atom order.
    pub labels: Vec<String>,
}

/// Computes the feature summary. Callers should normalize first
/// ([`Cq::normalize_forward`]) so the axis set reflects what the
/// evaluators will actually see.
pub fn features(q: &Cq) -> CqFeatures {
    let mut f = CqFeatures {
        vars: q.num_vars(),
        atoms: q.atoms.len(),
        boolean: q.is_boolean(),
        acyclic: is_acyclic(q),
        axes: q.axes_used(),
        ..CqFeatures::default()
    };
    for atom in &q.atoms {
        match atom {
            CqAtom::Axis(..) => f.axis_atoms += 1,
            CqAtom::Label(l, _) => {
                f.label_atoms += 1;
                f.labels.push(l.clone());
            }
            CqAtom::PreLt(..) => f.order_atoms += 1,
            CqAtom::Root(_) | CqAtom::Leaf(_) => {}
        }
    }
    if f.boolean {
        if let Tractability::Tractable(order) = classify(q) {
            f.tractable_order = Some(order);
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;

    #[test]
    fn acyclic_query_summary() {
        let q = parse_cq("q(x) :- label(x, a), child(x, y), label(y, b).").unwrap();
        let f = features(&q.normalize_forward());
        assert_eq!((f.vars, f.atoms), (2, 3));
        assert_eq!((f.axis_atoms, f.label_atoms, f.order_atoms), (1, 2, 0));
        assert!(f.acyclic && !f.boolean);
        assert_eq!(f.tractable_order, None);
        assert_eq!(f.labels, vec!["a".to_string(), "b".into()]);
    }

    #[test]
    fn cyclic_boolean_query_is_classified() {
        let q = parse_cq("child+(x, y), child+(y, z), child+(x, z)").unwrap();
        let f = features(&q.normalize_forward());
        assert!(f.boolean && !f.acyclic);
        assert_eq!(f.tractable_order, Some(treequery_tree::Order::Pre));
    }

    #[test]
    fn order_atoms_are_counted() {
        let q = parse_cq("q(x, y) :- child(z, x), child(z, y), pre_lt(x, y).").unwrap();
        let f = features(&q.normalize_forward());
        assert_eq!(f.order_atoms, 1);
        assert!(!f.acyclic);
    }
}
