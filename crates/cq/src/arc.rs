//! Arc-consistency over trees (Section 6).
//!
//! A pre-valuation Θ assigns each query variable a non-empty node set; it
//! is *arc-consistent* if every unary atom holds everywhere in its set and
//! every binary atom `R(x, y)` is supported in both directions
//! (Definition in Section 6). The unique subset-maximal arc-consistent
//! pre-valuation is computed here in two ways:
//!
//! * [`max_arc_consistent`] — an AC fixpoint over the *implicit* axis
//!   relations using the O(n) image/preimage sweeps (never materializing
//!   quadratic relations); works for arbitrary (also cyclic) queries;
//! * [`full_reduce`] — for acyclic queries, one bottom-up and one top-down
//!   semijoin pass over the join forest (Yannakakis' full reducer), which
//!   already yields the maximal arc-consistent pre-valuation.
//!
//! The literal Horn-SAT construction of Proposition 6.2 (over explicit
//! relations) lives in [`crate::relational`].

use treequery_tree::{cancel, scratch, Axis, NodeSet, Tree};

use crate::ast::{Cq, CqAtom, CqVar};
use crate::graph::JoinForest;

/// A pluggable kernel for whole-set axis images. The semijoin reducers are
/// generic over this trait so executors can swap the sequential O(n)
/// sweeps for a chunked parallel implementation without touching the
/// reduction logic. Implementations must write the exact axis image into
/// `out` (clearing it first); `out` must be a set over `t.len()` nodes.
pub trait AxisSweeper {
    /// Writes `{y | ∃x ∈ s: axis(x, y)}` into `out`.
    fn image_into(&self, axis: Axis, t: &Tree, s: &NodeSet, out: &mut NodeSet);

    /// Writes `{x | ∃y ∈ s: axis(x, y)}` into `out`. Defaults to the image
    /// of the inverse axis.
    fn preimage_into(&self, axis: Axis, t: &Tree, s: &NodeSet, out: &mut NodeSet) {
        self.image_into(axis.inverse(), t, s, out);
    }
}

/// The sequential sweeper: plain [`Axis::image_into`] order sweeps.
#[derive(Clone, Copy, Debug, Default)]
pub struct SeqSweeper;

impl AxisSweeper for SeqSweeper {
    fn image_into(&self, axis: Axis, t: &Tree, s: &NodeSet, out: &mut NodeSet) {
        axis.image_into(t, s, out);
    }
}

/// A binary constraint as used by the propagators: an axis or `<pre`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Rel {
    /// An axis relation.
    Axis(Axis),
    /// `x <pre y`.
    PreLt,
}

impl Rel {
    /// Whether `(x, y)` is in the relation.
    pub(crate) fn holds(
        self,
        t: &Tree,
        x: treequery_tree::NodeId,
        y: treequery_tree::NodeId,
    ) -> bool {
        match self {
            Rel::Axis(a) => a.holds(t, x, y),
            Rel::PreLt => t.pre(x) < t.pre(y),
        }
    }

    /// Image `{y | ∃x ∈ s: rel(x, y)}` in O(n), written into a
    /// caller-owned set over `t.len()` nodes (cleared first).
    pub(crate) fn image_into(
        self,
        t: &Tree,
        s: &NodeSet,
        out: &mut NodeSet,
        sweeper: &(impl AxisSweeper + ?Sized),
    ) {
        match self {
            Rel::Axis(a) => sweeper.image_into(a, t, s, out),
            Rel::PreLt => {
                // Nodes with pre rank greater than the minimum in s.
                out.clear();
                if let Some(min_pre) = s.iter().map(|v| t.pre(v)).min() {
                    for rank in min_pre + 1..t.len() as u32 {
                        out.insert(t.node_at_pre(rank));
                    }
                }
            }
        }
    }

    /// Preimage `{x | ∃y ∈ s: rel(x, y)}` in O(n), written into a
    /// caller-owned set over `t.len()` nodes (cleared first).
    pub(crate) fn preimage_into(
        self,
        t: &Tree,
        s: &NodeSet,
        out: &mut NodeSet,
        sweeper: &(impl AxisSweeper + ?Sized),
    ) {
        match self {
            Rel::Axis(a) => sweeper.preimage_into(a, t, s, out),
            Rel::PreLt => {
                out.clear();
                if let Some(max_pre) = s.iter().map(|v| t.pre(v)).max() {
                    for rank in 0..max_pre {
                        out.insert(t.node_at_pre(rank));
                    }
                }
            }
        }
    }
}

pub(crate) fn atom_rel(atom: &CqAtom) -> Option<(Rel, CqVar, CqVar)> {
    match atom {
        CqAtom::Axis(a, x, y) => Some((Rel::Axis(*a), *x, *y)),
        CqAtom::PreLt(x, y) => Some((Rel::PreLt, *x, *y)),
        CqAtom::Label(..) | CqAtom::Root(..) | CqAtom::Leaf(..) => None,
    }
}

/// Initial candidate sets: full domain filtered by label atoms and by
/// self-loop binary atoms `R(x, x)` (which hold exactly when `R` is
/// reflexive).
///
/// The returned sets (and their container) come from the thread-local
/// scratch pools; recycle them with [`scratch::put_set_vec`] when done to
/// keep steady-state evaluation allocation-free.
pub(crate) fn initial_sets(q: &Cq, t: &Tree) -> Vec<NodeSet> {
    let n = t.len();
    let mut sets = scratch::take_set_vec();
    for _ in 0..q.num_vars() {
        sets.push(scratch::take_full(n));
    }
    let mut filter = scratch::take_set(n);
    for atom in &q.atoms {
        match atom {
            CqAtom::Label(l, x) => {
                filter.clear();
                for &v in t.nodes_with_label_name(l) {
                    filter.insert(v);
                }
                sets[x.index()].intersect_with(&filter);
            }
            CqAtom::Root(x) => {
                filter.clear();
                filter.insert(t.root());
                sets[x.index()].intersect_with(&filter);
            }
            CqAtom::Leaf(x) => {
                filter.clear();
                for v in t.nodes().filter(|&v| t.is_leaf(v)) {
                    filter.insert(v);
                }
                sets[x.index()].intersect_with(&filter);
            }
            CqAtom::Axis(a, x, y) if x == y && !a.is_reflexive() => {
                sets[x.index()].clear();
            }
            CqAtom::PreLt(x, y) if x == y => sets[x.index()].clear(),
            _ => {}
        }
    }
    scratch::put_set(filter);
    sets
}

/// Computes the subset-maximal arc-consistent pre-valuation by AC fixpoint
/// iteration, or `None` if none exists (some variable's set empties).
///
/// Each pass revises every binary atom in both directions with the O(n)
/// image sweeps; passes repeat until a fixpoint. For acyclic queries two
/// passes suffice; for cyclic queries the iteration count is bounded by
/// the total number of removed candidates.
pub fn max_arc_consistent(q: &Cq, t: &Tree) -> Option<Vec<NodeSet>> {
    max_arc_consistent_from(q, t, initial_sets(q, t))
}

/// [`max_arc_consistent`] starting from externally restricted candidate
/// sets (e.g. singletons for the k-ary membership reduction described
/// after Theorem 6.5). The given sets are intersected with the label/
/// self-loop filters before propagation.
pub fn max_arc_consistent_from(q: &Cq, t: &Tree, init: Vec<NodeSet>) -> Option<Vec<NodeSet>> {
    let mut sets = init;
    let filters = initial_sets(q, t);
    for (s, filter) in sets.iter_mut().zip(filters.iter()) {
        s.intersect_with(filter);
    }
    scratch::put_set_vec(filters);
    let rels: Vec<(Rel, CqVar, CqVar)> = q
        .atoms
        .iter()
        .filter_map(atom_rel)
        .filter(|(_, x, y)| x != y)
        .collect();
    let mut buf = scratch::take_set(t.len());
    loop {
        // Cancellation checkpoint per fixpoint round (each round is
        // O(|Q| · n) of sweeps). The sets a cancelled exit leaves are
        // over-approximate; the executor discards them.
        if cancel::cancelled() {
            break;
        }
        let mut changed = false;
        for &(rel, x, y) in &rels {
            rel.image_into(t, &sets[x.index()], &mut buf, &SeqSweeper);
            changed |= sets[y.index()].intersect_with(&buf);
            rel.preimage_into(t, &sets[y.index()], &mut buf, &SeqSweeper);
            changed |= sets[x.index()].intersect_with(&buf);
        }
        if !changed {
            break;
        }
    }
    scratch::put_set(buf);
    // Only variables that occur in some atom must be non-empty; a variable
    // occurring in no atom ranges over the (non-empty) domain.
    for v in q.live_vars() {
        if sets[v.index()].is_empty() {
            return None;
        }
    }
    Some(sets)
}

/// Yannakakis' full reducer for an acyclic query: one bottom-up and one
/// top-down semijoin pass over `forest`. Equals [`max_arc_consistent`] on
/// acyclic queries but with a guaranteed two passes — `O(|Q| · n)` total.
///
/// The returned sets come from the thread-local scratch pools; recycle
/// them with [`scratch::put_set_vec`] to keep repeated evaluation
/// allocation-free after warm-up.
pub fn full_reduce(q: &Cq, t: &Tree, forest: &JoinForest) -> Option<Vec<NodeSet>> {
    reduce(q, t, forest, true, &SeqSweeper)
}

/// [`full_reduce`] with a caller-chosen axis-image kernel (e.g. a chunked
/// parallel sweeper).
pub fn full_reduce_with(
    q: &Cq,
    t: &Tree,
    forest: &JoinForest,
    sweeper: &(impl AxisSweeper + ?Sized),
) -> Option<Vec<NodeSet>> {
    reduce(q, t, forest, true, sweeper)
}

/// The ablation of [`full_reduce`]: the bottom-up semijoin pass only.
/// Sufficient for the Boolean answer (the roots' sets are exact), but the
/// non-root candidate sets over-approximate — enumeration over them is
/// *not* backtrack-free (experiment E6's ablation).
pub fn bottom_up_reduce(q: &Cq, t: &Tree, forest: &JoinForest) -> Option<Vec<NodeSet>> {
    reduce(q, t, forest, false, &SeqSweeper)
}

fn reduce(
    q: &Cq,
    t: &Tree,
    forest: &JoinForest,
    top_down: bool,
    sweeper: &(impl AxisSweeper + ?Sized),
) -> Option<Vec<NodeSet>> {
    let mut sets = initial_sets(q, t);
    let mut reduced = scratch::take_set(t.len());
    // On every exit path the scratch buffers go back to the pool; on
    // failure the candidate sets do too (the caller never sees them).
    let bail = |sets: Vec<NodeSet>, reduced: NodeSet| -> Option<Vec<NodeSet>> {
        scratch::put_set(reduced);
        scratch::put_set_vec(sets);
        None
    };

    // Bottom-up: children constrain parents.
    for &v in forest.bfs_order.iter().rev() {
        // Checkpoint per semijoin step (one forest edge = a few O(n)
        // sweeps). Skipping the rest leaves over-approximate sets; a
        // cancelled query never reads them.
        if cancel::cancelled() {
            break;
        }
        let Some((u, atom_idxs)) = &forest.parent[v.index()] else {
            continue;
        };
        for &ai in atom_idxs {
            let Some((rel, ax, ay)) = atom_rel(&q.atoms[ai]) else {
                continue;
            };
            // The atom connects u and v; semijoin-reduce u by v.
            if ax == *u && ay == v {
                rel.preimage_into(t, &sets[v.index()], &mut reduced, sweeper);
            } else {
                debug_assert!(ax == v && ay == *u);
                rel.image_into(t, &sets[v.index()], &mut reduced, sweeper);
            }
            sets[u.index()].intersect_with(&reduced);
        }
    }
    for &root in &forest.roots {
        if sets[root.index()].is_empty() {
            return bail(sets, reduced);
        }
    }

    // Top-down: parents constrain children.
    for &v in forest.bfs_order.iter().filter(|_| top_down) {
        if cancel::cancelled() {
            break;
        }
        let Some((u, atom_idxs)) = &forest.parent[v.index()] else {
            continue;
        };
        for &ai in atom_idxs {
            let Some((rel, ax, ay)) = atom_rel(&q.atoms[ai]) else {
                continue;
            };
            if ax == *u && ay == v {
                rel.image_into(t, &sets[u.index()], &mut reduced, sweeper);
            } else {
                rel.preimage_into(t, &sets[u.index()], &mut reduced, sweeper);
            }
            sets[v.index()].intersect_with(&reduced);
        }
        if sets[v.index()].is_empty() {
            return bail(sets, reduced);
        }
    }

    // Isolated live variables (e.g. head-only) must still be non-empty.
    // Iterated directly (with duplicates) rather than via
    // `Cq::live_vars`, whose collected set would allocate per call.
    let live = q
        .atoms
        .iter()
        .flat_map(CqAtom::vars)
        .chain(q.head.iter().copied());
    for v in live {
        if sets[v.index()].is_empty() {
            return bail(sets, reduced);
        }
    }
    scratch::put_set(reduced);
    Some(sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtrack::for_each_valuation;
    use crate::parser::parse_cq;
    use treequery_tree::parse_term;

    /// The exact solution-projection sets, from exhaustive backtracking.
    fn solution_projections(q: &Cq, t: &Tree) -> Vec<NodeSet> {
        let mut sets = vec![NodeSet::empty(t.len()); q.num_vars()];
        for_each_valuation(q, t, &mut |assignment| {
            for (i, a) in assignment.iter().enumerate() {
                if let Some(v) = a {
                    sets[i].insert(*v);
                }
            }
            true
        });
        sets
    }

    /// Proposition 6.9: for acyclic queries the maximal arc-consistent
    /// pre-valuation is exactly the per-variable projection of the
    /// solution set.
    #[test]
    fn acyclic_ac_equals_solution_projections() {
        let queries = [
            "label(x, a), child(x, y), label(y, b)",
            "child+(x, y), child+(y, z), label(z, c)",
            "child(x, y), nextsibling(y, z), following(z, w)",
            "label(x, b), child*(x, y)",
        ];
        let trees = ["a(b(c) b(a(c)) c)", "a(a(b(c d) b) b(c))", "a(b c)"];
        for qs in queries {
            let q = parse_cq(qs).unwrap();
            let forest = JoinForest::build(&q).unwrap();
            for ts in trees {
                let t = parse_term(ts).unwrap();
                let expected = solution_projections(&q, &t);
                let sat = expected
                    .iter()
                    .enumerate()
                    .all(|(i, s)| !q.live_vars().contains(&CqVar(i as u32)) || !s.is_empty());
                let ac = max_arc_consistent(&q, &t);
                let fr = full_reduce(&q, &t, &forest);
                match (sat, ac, fr) {
                    (false, None, None) => {}
                    (true, Some(ac), Some(fr)) => {
                        for v in q.live_vars() {
                            assert_eq!(ac[v.index()], expected[v.index()], "AC {qs} on {ts}");
                            assert_eq!(fr[v.index()], expected[v.index()], "FR {qs} on {ts}");
                        }
                    }
                    (s, a, f) => panic!(
                        "disagreement on {qs} / {ts}: sat={s} ac={:?} fr={:?}",
                        a.is_some(),
                        f.is_some()
                    ),
                }
            }
        }
    }

    /// On cyclic queries AC is an over-approximation of the projections
    /// (Example 6.1 shows it can be strict — see crate::relational).
    #[test]
    fn cyclic_ac_over_approximates() {
        let q = parse_cq("child(x, y), child(y, z), child+(x, z)").unwrap();
        let t = parse_term("a(b(c) d)").unwrap();
        let ac = max_arc_consistent(&q, &t).unwrap();
        let expected = solution_projections(&q, &t);
        for v in q.live_vars() {
            assert!(expected[v.index()].is_subset(&ac[v.index()]));
        }
    }

    #[test]
    fn unsatisfiable_label() {
        let q = parse_cq("label(x, zz), child(x, y)").unwrap();
        let t = parse_term("a(b)").unwrap();
        assert!(max_arc_consistent(&q, &t).is_none());
        let forest = JoinForest::build(&q).unwrap();
        assert!(full_reduce(&q, &t, &forest).is_none());
    }

    #[test]
    fn self_loop_atoms() {
        let t = parse_term("a(b)").unwrap();
        // Irreflexive self-loop: unsatisfiable.
        let q = parse_cq("child(x, x)").unwrap();
        assert!(max_arc_consistent(&q, &t).is_none());
        // Reflexive self-loop: trivially satisfied.
        let q2 = parse_cq("child*(x, x)").unwrap();
        assert!(max_arc_consistent(&q2, &t).is_some());
    }

    #[test]
    fn pre_lt_propagation() {
        let q = parse_cq("pre_lt(x, y)").unwrap();
        let t = parse_term("a(b c)").unwrap();
        let ac = max_arc_consistent(&q, &t).unwrap();
        // x can be anything except the last node in pre-order; y anything
        // except the root.
        assert_eq!(ac[0].len(), 2);
        assert_eq!(ac[1].len(), 2);
        assert!(!ac[1].contains(t.root()));
    }
}
