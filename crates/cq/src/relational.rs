//! Arbitrary relational structures of unary and binary relations, with
//!
//! * the literal Horn-SAT construction of **Proposition 6.2** computing
//!   the subset-maximal arc-consistent pre-valuation in `O(||A|| · |Q|)`,
//! * **Example 6.1** (arc-consistency without global consistency) as a
//!   test fixture,
//! * the bounded-tree-width evaluation of **Theorem 4.1**: a Boolean CQ of
//!   tree-width `k` evaluated in `O((|A|^(k+1) + ||A||) · |Q|)` by
//!   materializing bag relations along a tree decomposition of the query
//!   graph and semijoining bottom-up (Yannakakis on the decomposition),
//! * a generic backtracking oracle.
//!
//! The tree-specialized versions of these algorithms (which never
//! materialize the axis relations) live in [`crate::arc`]; this module is
//! the general-structure substrate the paper's Sections 4 and 6 assume.

use std::collections::{BTreeSet, HashMap, HashSet};

use treequery_hornsat::{AtomTable, HornFormula};

use crate::decomposition::{min_fill_decomposition, Graph, TreeDecomposition};

/// A finite structure of unary and binary relations over domain `0..n`.
#[derive(Clone, Debug, Default)]
pub struct RelStructure {
    /// Domain size `|A|`.
    pub domain: usize,
    unary: HashMap<String, HashSet<u32>>,
    binary: HashMap<String, Vec<(u32, u32)>>,
}

impl RelStructure {
    /// Creates a structure with the given domain size and no relations.
    pub fn new(domain: usize) -> Self {
        Self {
            domain,
            ..Self::default()
        }
    }

    /// Adds tuples to a unary relation.
    pub fn add_unary(&mut self, name: &str, elems: impl IntoIterator<Item = u32>) {
        self.unary.entry(name.to_owned()).or_default().extend(elems);
    }

    /// Adds tuples to a binary relation.
    pub fn add_binary(&mut self, name: &str, pairs: impl IntoIterator<Item = (u32, u32)>) {
        self.binary
            .entry(name.to_owned())
            .or_default()
            .extend(pairs);
    }

    /// Membership in a unary relation (absent relation = empty).
    pub fn unary_holds(&self, name: &str, v: u32) -> bool {
        self.unary.get(name).is_some_and(|s| s.contains(&v))
    }

    /// The tuples of a binary relation (absent relation = empty).
    pub fn binary_tuples(&self, name: &str) -> &[(u32, u32)] {
        self.binary.get(name).map_or(&[], Vec::as_slice)
    }

    /// Membership in a binary relation.
    pub fn binary_holds(&self, name: &str, x: u32, y: u32) -> bool {
        self.binary_tuples(name).contains(&(x, y))
    }

    /// `||A||`: domain plus total tuple count (the structure-size measure).
    pub fn size_norm(&self) -> usize {
        self.domain
            + self.unary.values().map(HashSet::len).sum::<usize>()
            + self.binary.values().map(Vec::len).sum::<usize>()
    }
}

/// An atom of a generic conjunctive query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GenAtom {
    /// `P(x)`.
    Unary(String, usize),
    /// `R(x, y)`.
    Binary(String, usize, usize),
}

/// A conjunctive query over a [`RelStructure`]; variables are `0..num_vars`.
#[derive(Clone, Debug, Default)]
pub struct GenCq {
    /// Number of variables.
    pub num_vars: usize,
    /// The atoms.
    pub atoms: Vec<GenAtom>,
}

impl GenCq {
    /// Query size `|Q|` (number of atoms).
    pub fn size(&self) -> usize {
        self.atoms.len()
    }

    /// The query graph (Section 4): variables as vertices, an edge per
    /// binary atom.
    pub fn graph(&self) -> Graph {
        let mut g = Graph::new(self.num_vars);
        for atom in &self.atoms {
            if let GenAtom::Binary(_, x, y) = atom {
                g.add_edge(*x as u32, *y as u32);
            }
        }
        g
    }
}

/// The subset-maximal arc-consistent pre-valuation of `q` on `a`, or
/// `None` if none exists — computed by the **literal Horn-SAT reduction of
/// Proposition 6.2**: propositional atoms `Θ(x, v)` mean "`v` is *not* in
/// `Θ(x)`", with clauses
///
/// * `Θ(x, v) ←` whenever `P(x) ∈ Q` and `¬Pᴬ(v)`,
/// * `Θ(x, v) ← ⋀{Θ(y, w) | Rᴬ(v, w)}` for each `R(x, y) ∈ Q`, `v ∈ A`,
/// * `Θ(y, w) ← ⋀{Θ(x, v) | Rᴬ(v, w)}` for each `R(x, y) ∈ Q`, `w ∈ A`.
///
/// Runs in time linear in the produced formula, `O(||A|| · |Q|)`.
pub fn max_arc_consistent_hornsat(q: &GenCq, a: &RelStructure) -> Option<Vec<BTreeSet<u32>>> {
    let n = a.domain as u32;
    let mut formula = HornFormula::new();
    // Propositional variable (x, v) ⇔ "v ∉ Θ(x)".
    let mut atoms: AtomTable<(usize, u32)> = AtomTable::new();
    for x in 0..q.num_vars {
        for v in 0..n {
            atoms.var((x, v));
        }
    }
    formula.ensure_vars(atoms.len() as u32);

    for atom in &q.atoms {
        match atom {
            GenAtom::Unary(p, x) => {
                for v in 0..n {
                    if !a.unary_holds(p, v) {
                        let hv = atoms.var((*x, v));
                        formula.add_fact(hv);
                    }
                }
            }
            GenAtom::Binary(r, x, y) => {
                // Group tuples by source and by target.
                let mut succ: HashMap<u32, Vec<u32>> = HashMap::new();
                let mut pred: HashMap<u32, Vec<u32>> = HashMap::new();
                for &(v, w) in a.binary_tuples(r) {
                    succ.entry(v).or_default().push(w);
                    pred.entry(w).or_default().push(v);
                }
                for v in 0..n {
                    let body: Vec<_> = succ
                        .get(&v)
                        .map(|ws| ws.iter().map(|&w| atoms.var((*y, w))).collect())
                        .unwrap_or_default();
                    let head = atoms.var((*x, v));
                    formula.add_rule(head, &body);
                }
                for w in 0..n {
                    let body: Vec<_> = pred
                        .get(&w)
                        .map(|vs| vs.iter().map(|&v| atoms.var((*x, v))).collect())
                        .unwrap_or_default();
                    let head = atoms.var((*y, w));
                    formula.add_rule(head, &body);
                }
            }
        }
    }

    let solution = formula.solve();
    let mut theta: Vec<BTreeSet<u32>> = vec![(0..n).collect(); q.num_vars];
    for (var, &(x, v)) in atoms.iter() {
        if solution.is_true(var) {
            theta[x].remove(&v);
        }
    }
    if theta.iter().any(BTreeSet::is_empty) {
        return None;
    }
    Some(theta)
}

/// Generic backtracking satisfiability (the oracle).
pub fn is_satisfiable_generic(q: &GenCq, a: &RelStructure) -> bool {
    fn rec(q: &GenCq, a: &RelStructure, assignment: &mut Vec<Option<u32>>, var: usize) -> bool {
        if var == q.num_vars {
            return true;
        }
        for v in 0..a.domain as u32 {
            assignment[var] = Some(v);
            let ok = q.atoms.iter().all(|atom| match atom {
                GenAtom::Unary(p, x) => match assignment[*x] {
                    Some(val) => a.unary_holds(p, val),
                    None => true,
                },
                GenAtom::Binary(r, x, y) => match (assignment[*x], assignment[*y]) {
                    (Some(vx), Some(vy)) => a.binary_holds(r, vx, vy),
                    _ => true,
                },
            });
            if ok && rec(q, a, assignment, var + 1) {
                return true;
            }
        }
        assignment[var] = None;
        false
    }
    rec(q, a, &mut vec![None; q.num_vars], 0)
}

/// Evaluates a Boolean CQ via a tree decomposition of its query graph
/// (**Theorem 4.1**): materialize, for every bag, the relation of all
/// assignments of the bag's variables satisfying the atoms covered by the
/// bag (`≤ |A|^(k+1)` tuples each), then semijoin bottom-up along the
/// decomposition. Satisfiable iff the root relation is non-empty.
///
/// Every atom is covered by some bag: unary atoms by any bag containing
/// the variable, binary atoms by a bag containing both (guaranteed by
/// decomposition validity). Returns `None` if the provided decomposition
/// is not valid for the query graph.
pub fn eval_treewidth(
    q: &GenCq,
    a: &RelStructure,
    decomposition: &TreeDecomposition,
) -> Option<bool> {
    if !decomposition.is_valid_for(&q.graph()) {
        return None;
    }
    let nb = decomposition.bags.len();

    // Assign each atom to the first bag covering it.
    let mut atoms_of_bag: Vec<Vec<&GenAtom>> = vec![Vec::new(); nb];
    'atoms: for atom in &q.atoms {
        for (i, bag) in decomposition.bags.iter().enumerate() {
            let covered = match atom {
                GenAtom::Unary(_, x) => bag.contains(&(*x as u32)),
                GenAtom::Binary(_, x, y) => {
                    bag.contains(&(*x as u32)) && bag.contains(&(*y as u32))
                }
            };
            if covered {
                atoms_of_bag[i].push(atom);
                continue 'atoms;
            }
        }
        // Atom not covered (isolated variable with a self-loop only
        // possible for unary atoms on vars absent from all bags — ruled
        // out by validity, which requires vertex coverage).
        return Some(false);
    }

    // Materialize bag relations: tuples are assignments of the bag's vars.
    let domain = a.domain as u32;
    let mut relations: Vec<Vec<Vec<u32>>> = Vec::with_capacity(nb);
    for (i, bag) in decomposition.bags.iter().enumerate() {
        let k = bag.len();
        let mut rel = Vec::new();
        let mut tuple = vec![0u32; k];
        loop {
            // Check covered atoms under this assignment.
            let lookup = |var: usize| -> u32 {
                let pos = bag.iter().position(|&b| b == var as u32).expect("covered");
                tuple[pos]
            };
            let ok = atoms_of_bag[i].iter().all(|atom| match atom {
                GenAtom::Unary(p, x) => a.unary_holds(p, lookup(*x)),
                GenAtom::Binary(r, x, y) => a.binary_holds(r, lookup(*x), lookup(*y)),
            });
            if ok {
                rel.push(tuple.clone());
            }
            // Next tuple (odometer).
            let mut pos = 0;
            loop {
                if pos == k {
                    break;
                }
                tuple[pos] += 1;
                if tuple[pos] < domain {
                    break;
                }
                tuple[pos] = 0;
                pos += 1;
            }
            if pos == k {
                break;
            }
        }
        relations.push(rel);
    }

    // Bottom-up semijoin: children reduce parents on shared variables.
    // Process bags so that children come before parents.
    let mut order: Vec<usize> = (0..nb).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(depth_of(decomposition, i)));
    for &i in &order {
        let Some(p) = decomposition.parent[i] else {
            continue;
        };
        let shared: Vec<(usize, usize)> = decomposition.bags[p]
            .iter()
            .enumerate()
            .filter_map(|(pi, pv)| {
                decomposition.bags[i]
                    .iter()
                    .position(|cv| cv == pv)
                    .map(|ci| (pi, ci))
            })
            .collect();
        let child_keys: HashSet<Vec<u32>> = relations[i]
            .iter()
            .map(|t| shared.iter().map(|&(_, ci)| t[ci]).collect())
            .collect();
        relations[p].retain(|t| {
            let key: Vec<u32> = shared.iter().map(|&(pi, _)| t[pi]).collect();
            child_keys.contains(&key)
        });
        if relations[p].is_empty() {
            return Some(false);
        }
    }
    // All roots non-empty?
    Some(
        (0..nb)
            .filter(|&i| decomposition.parent[i].is_none())
            .all(|i| !relations[i].is_empty()),
    )
}

fn depth_of(d: &TreeDecomposition, mut i: usize) -> usize {
    let mut depth = 0;
    while let Some(p) = d.parent[i] {
        i = p;
        depth += 1;
    }
    depth
}

/// Convenience: [`eval_treewidth`] with a min-fill decomposition of the
/// query graph.
pub fn eval_treewidth_auto(q: &GenCq, a: &RelStructure) -> bool {
    let d = min_fill_decomposition(&q.graph());
    eval_treewidth(q, a, &d).expect("min-fill decomposition is valid")
}

/// The database and query of **Example 6.1**: `q ← R(x, y), S(x, y)` with
/// `R = {(1,2),(3,4)}`, `S = {(3,2),(1,4)}` over domain `{1,…,4}`
/// (elements shifted to `0..4` internally is avoided — the domain is
/// `0..=4` with element 0 unused).
pub fn example_6_1() -> (GenCq, RelStructure) {
    let mut a = RelStructure::new(5);
    a.add_binary("R", [(1, 2), (3, 4)]);
    a.add_binary("S", [(3, 2), (1, 4)]);
    let q = GenCq {
        num_vars: 2,
        atoms: vec![
            GenAtom::Binary("R".into(), 0, 1),
            GenAtom::Binary("S".into(), 0, 1),
        ],
    };
    (q, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 6.1: Θ: x ↦ {1, 3}, y ↦ {2, 4} is arc-consistent, yet the
    /// query is not satisfiable — arc-consistency does not imply global
    /// consistency on structures without the X-property.
    #[test]
    fn example_6_1_ac_without_consistency() {
        let (q, a) = example_6_1();
        let theta = max_arc_consistent_hornsat(&q, &a).expect("arc-consistent");
        assert_eq!(theta[0], BTreeSet::from([1, 3]));
        assert_eq!(theta[1], BTreeSet::from([2, 4]));
        assert!(!is_satisfiable_generic(&q, &a));
    }

    #[test]
    fn hornsat_ac_detects_emptiness() {
        let mut a = RelStructure::new(3);
        a.add_binary("R", [(0, 1)]);
        a.add_unary("P", [2]);
        // P(x), R(x, y): x must be 2 but 2 has no R-successor.
        let q = GenCq {
            num_vars: 2,
            atoms: vec![
                GenAtom::Unary("P".into(), 0),
                GenAtom::Binary("R".into(), 0, 1),
            ],
        };
        assert!(max_arc_consistent_hornsat(&q, &a).is_none());
        assert!(!is_satisfiable_generic(&q, &a));
    }

    /// The Horn-SAT pre-valuation is maximal: it contains the projection
    /// of every solution.
    #[test]
    fn hornsat_ac_contains_solutions() {
        let mut a = RelStructure::new(4);
        a.add_binary("E", [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let q = GenCq {
            num_vars: 3,
            atoms: vec![
                GenAtom::Binary("E".into(), 0, 1),
                GenAtom::Binary("E".into(), 1, 2),
            ],
        };
        let theta = max_arc_consistent_hornsat(&q, &a).unwrap();
        // The 4-cycle: every element participates in a path of length 2.
        for (x, set) in theta.iter().enumerate() {
            assert_eq!(set.len(), 4, "var {x}");
        }
    }

    /// Theorem 4.1 evaluation agrees with backtracking across random
    /// structures and small cyclic queries.
    #[test]
    fn treewidth_eval_agrees_with_backtracking() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        // Triangle query (tree-width 2).
        let triangle = GenCq {
            num_vars: 3,
            atoms: vec![
                GenAtom::Binary("E".into(), 0, 1),
                GenAtom::Binary("E".into(), 1, 2),
                GenAtom::Binary("E".into(), 2, 0),
            ],
        };
        // 4-clique query (tree-width 3).
        let mut k4 = GenCq {
            num_vars: 4,
            atoms: Vec::new(),
        };
        for i in 0..4usize {
            for j in 0..4usize {
                if i != j {
                    k4.atoms.push(GenAtom::Binary("E".into(), i, j));
                }
            }
        }
        for trial in 0..30 {
            let n = rng.gen_range(2..7usize);
            let mut a = RelStructure::new(n);
            let mut pairs = Vec::new();
            for x in 0..n as u32 {
                for y in 0..n as u32 {
                    if x != y && rng.gen_bool(0.4) {
                        pairs.push((x, y));
                    }
                }
            }
            a.add_binary("E", pairs);
            for q in [&triangle, &k4] {
                assert_eq!(
                    eval_treewidth_auto(q, &a),
                    is_satisfiable_generic(q, &a),
                    "trial {trial}, |atoms|={}",
                    q.atoms.len()
                );
            }
        }
    }

    #[test]
    fn treewidth_eval_rejects_invalid_decomposition() {
        let (q, a) = example_6_1();
        let bad = TreeDecomposition {
            bags: vec![vec![0]],
            parent: vec![None],
        };
        assert!(eval_treewidth(&q, &a, &bad).is_none());
    }

    #[test]
    fn structure_size_norm() {
        let (_, a) = example_6_1();
        assert_eq!(a.size_norm(), 5 + 4);
    }
}
