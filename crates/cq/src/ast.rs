//! Abstract syntax of conjunctive queries over trees.

use std::collections::BTreeSet;
use std::fmt;

use treequery_tree::Axis;

/// A query variable (dense index within one [`Cq`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CqVar(pub u32);

impl CqVar {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An atom of a conjunctive query over trees.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum CqAtom {
    /// `Labₐ(x)`: x carries label `a`.
    Label(String, CqVar),
    /// `Root(x)`: x is the root (an arbitrary unary relation, as allowed
    /// by Theorem 6.8; needed for the Core XPath translation).
    Root(CqVar),
    /// `Leaf(x)`: x has no children.
    Leaf(CqVar),
    /// `R(x, y)` for an axis relation `R`.
    Axis(Axis, CqVar, CqVar),
    /// `x <pre y` — used internally by the rewrite algorithm of
    /// Theorem 5.1; also accepted by the evaluators.
    PreLt(CqVar, CqVar),
}

impl CqAtom {
    /// The variables of the atom.
    pub fn vars(&self) -> impl Iterator<Item = CqVar> {
        let (a, b) = match *self {
            CqAtom::Label(_, x) | CqAtom::Root(x) | CqAtom::Leaf(x) => (x, None),
            CqAtom::Axis(_, x, y) => (x, Some(y)),
            CqAtom::PreLt(x, y) => (x, Some(y)),
        };
        std::iter::once(a).chain(b)
    }

    /// Applies a variable substitution.
    pub fn map_vars(&self, f: impl Fn(CqVar) -> CqVar) -> CqAtom {
        match self {
            CqAtom::Label(l, x) => CqAtom::Label(l.clone(), f(*x)),
            CqAtom::Root(x) => CqAtom::Root(f(*x)),
            CqAtom::Leaf(x) => CqAtom::Leaf(f(*x)),
            CqAtom::Axis(a, x, y) => CqAtom::Axis(*a, f(*x), f(*y)),
            CqAtom::PreLt(x, y) => CqAtom::PreLt(f(*x), f(*y)),
        }
    }
}

/// A conjunctive query over trees: a set of label and axis atoms with a
/// tuple of head (free) variables. An empty head makes the query Boolean.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Cq {
    var_names: Vec<String>,
    /// The atoms (conjuncts).
    pub atoms: Vec<CqAtom>,
    /// Head variables, in output order (may repeat; empty = Boolean).
    pub head: Vec<CqVar>,
}

impl Cq {
    /// Creates an empty (trivially true, Boolean) query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fresh variable with the given display name.
    pub fn add_var(&mut self, name: impl Into<String>) -> CqVar {
        let v = CqVar(u32::try_from(self.var_names.len()).expect("too many variables"));
        self.var_names.push(name.into());
        v
    }

    /// Gets the variable with the given name, creating it if absent.
    pub fn var(&mut self, name: &str) -> CqVar {
        match self.var_names.iter().position(|n| n == name) {
            Some(i) => CqVar(i as u32),
            None => self.add_var(name),
        }
    }

    /// The display name of a variable.
    pub fn var_name(&self, v: CqVar) -> &str {
        &self.var_names[v.index()]
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Whether the query is Boolean (no head variables).
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// Query size `|Q|`: the number of atoms (plus one per head variable).
    pub fn size(&self) -> usize {
        self.atoms.len() + self.head.len()
    }

    /// The set of axes used by the query's axis atoms.
    pub fn axes_used(&self) -> BTreeSet<Axis> {
        self.atoms
            .iter()
            .filter_map(|a| match a {
                CqAtom::Axis(axis, _, _) => Some(*axis),
                _ => None,
            })
            .collect()
    }

    /// Replaces every inverse (non-forward) axis atom `R⁻¹(x, y)` by the
    /// equivalent forward atom `R(y, x)`. Evaluation, classification and
    /// rewriting all operate on this normal form.
    pub fn normalize_forward(&self) -> Cq {
        let mut out = self.clone();
        for atom in &mut out.atoms {
            if let CqAtom::Axis(axis, x, y) = atom {
                if !axis.is_forward() {
                    *atom = CqAtom::Axis(axis.inverse(), *y, *x);
                }
            }
        }
        out
    }

    /// Merges variable `b` into variable `a` (used when an equality `a = b`
    /// is asserted): rewrites all atoms and the head. Variable indexes are
    /// preserved (no compaction); `b` simply no longer occurs.
    pub fn merge_vars(&mut self, a: CqVar, b: CqVar) {
        let subst = |v: CqVar| if v == b { a } else { v };
        for atom in &mut self.atoms {
            *atom = atom.map_vars(subst);
        }
        for h in &mut self.head {
            *h = subst(*h);
        }
    }

    /// The variables that actually occur in atoms or the head.
    pub fn live_vars(&self) -> BTreeSet<CqVar> {
        self.atoms
            .iter()
            .flat_map(|a| a.vars())
            .chain(self.head.iter().copied())
            .collect()
    }
}

impl fmt::Display for Cq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q(")?;
        for (i, h) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.var_name(*h))?;
        }
        write!(f, ") :- ")?;
        for (i, atom) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match atom {
                CqAtom::Label(l, x) => write!(f, "label({}, {l})", self.var_name(*x))?,
                CqAtom::Root(x) => write!(f, "root({})", self.var_name(*x))?,
                CqAtom::Leaf(x) => write!(f, "leaf({})", self.var_name(*x))?,
                CqAtom::Axis(a, x, y) => write!(
                    f,
                    "{}({}, {})",
                    a.name(),
                    self.var_name(*x),
                    self.var_name(*y)
                )?,
                CqAtom::PreLt(x, y) => {
                    write!(f, "{} <pre {}", self.var_name(*x), self.var_name(*y))?
                }
            }
        }
        write!(f, ".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_reuse() {
        let mut q = Cq::new();
        let x = q.var("x");
        let y = q.var("y");
        assert_ne!(x, y);
        assert_eq!(q.var("x"), x);
        assert_eq!(q.var_name(y), "y");
    }

    #[test]
    fn normalize_forward_flips_inverse_axes() {
        let mut q = Cq::new();
        let x = q.var("x");
        let y = q.var("y");
        q.atoms.push(CqAtom::Axis(Axis::Parent, x, y));
        q.atoms.push(CqAtom::Axis(Axis::Child, x, y));
        let n = q.normalize_forward();
        assert_eq!(n.atoms[0], CqAtom::Axis(Axis::Child, y, x));
        assert_eq!(n.atoms[1], CqAtom::Axis(Axis::Child, x, y));
    }

    #[test]
    fn merge_vars_rewrites_everything() {
        let mut q = Cq::new();
        let x = q.var("x");
        let y = q.var("y");
        q.atoms.push(CqAtom::Axis(Axis::Descendant, x, y));
        q.head = vec![y, x];
        q.merge_vars(x, y);
        assert_eq!(q.atoms[0], CqAtom::Axis(Axis::Descendant, x, x));
        assert_eq!(q.head, vec![x, x]);
        assert!(!q.live_vars().contains(&y));
    }

    #[test]
    fn axes_used_and_display() {
        let mut q = Cq::new();
        let x = q.var("x");
        let y = q.var("y");
        q.atoms.push(CqAtom::Label("a".into(), x));
        q.atoms.push(CqAtom::Axis(Axis::Descendant, x, y));
        q.head = vec![y];
        assert_eq!(
            q.axes_used().into_iter().collect::<Vec<_>>(),
            vec![Axis::Descendant]
        );
        assert_eq!(q.to_string(), "q(y) :- label(x, a), Child+(x, y).");
    }
}
