//! Query graphs, acyclicity, and join forests.
//!
//! For queries over at-most-binary relations, the tree-width / acyclicity
//! notions of Section 4 specialize pleasantly: a CQ is acyclic (hypertree
//! width 1) iff its query graph — variables as vertices, one edge per pair
//! of variables co-occurring in a binary atom — is a forest after
//! collapsing parallel edges. The [`JoinForest`] is the join tree
//! Yannakakis' algorithm processes.

use std::collections::BTreeSet;

use crate::ast::{Cq, CqAtom, CqVar};

/// An undirected simple graph on query variables (parallel atoms collapse
/// onto one edge, which is sound for acyclicity: identical hyperedges nest).
fn simple_edges(q: &Cq) -> BTreeSet<(CqVar, CqVar)> {
    let mut edges = BTreeSet::new();
    for atom in &q.atoms {
        if let CqAtom::Axis(_, x, y) | CqAtom::PreLt(x, y) = atom {
            if x != y {
                let (a, b) = if x < y { (*x, *y) } else { (*y, *x) };
                edges.insert((a, b));
            }
        }
    }
    edges
}

/// Whether the query is acyclic: its query graph is a forest.
///
/// Self-loop atoms `R(x, x)` do not affect acyclicity (they are unary
/// constraints); parallel atoms over the same variable pair are fine.
pub fn is_acyclic(q: &Cq) -> bool {
    // Union-find cycle detection.
    let n = q.num_vars();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (a, b) in simple_edges(q) {
        let ra = find(&mut parent, a.index());
        let rb = find(&mut parent, b.index());
        if ra == rb {
            return false;
        }
        parent[ra] = rb;
    }
    true
}

/// A rooted join forest for an acyclic query: one tree per connected
/// component of the query graph. Tree edges carry the atoms relating the
/// two variables.
#[derive(Clone, Debug)]
pub struct JoinForest {
    /// Roots of the component trees.
    pub roots: Vec<CqVar>,
    /// `parent[v]`: the join-tree parent of variable v with the indexes
    /// (into `cq.atoms`) of the atoms on the edge; `None` for roots and
    /// variables not occurring in the query.
    pub parent: Vec<Option<(CqVar, Vec<usize>)>>,
    /// Children lists (inverse of `parent`).
    pub children: Vec<Vec<CqVar>>,
    /// All variables of each component, in BFS order from the root (every
    /// variable appears exactly once across components).
    pub bfs_order: Vec<CqVar>,
}

impl JoinForest {
    /// Builds a join forest for an acyclic query. Roots are chosen to be
    /// head variables where possible (so that unary queries read their
    /// answer off the root). Returns `None` if the query is cyclic.
    ///
    /// Variables that occur in no atom (possible after rewriting) are not
    /// part of the forest.
    pub fn build(q: &Cq) -> Option<JoinForest> {
        if !is_acyclic(q) {
            return None;
        }
        let n = q.num_vars();
        // Adjacency with atom indexes; parallel atoms merge into one edge.
        let mut adj: Vec<Vec<(CqVar, Vec<usize>)>> = vec![Vec::new(); n];
        {
            use std::collections::BTreeMap;
            let mut by_pair: BTreeMap<(CqVar, CqVar), Vec<usize>> = BTreeMap::new();
            for (i, atom) in q.atoms.iter().enumerate() {
                if let CqAtom::Axis(_, x, y) | CqAtom::PreLt(x, y) = atom {
                    if x != y {
                        let key = if x < y { (*x, *y) } else { (*y, *x) };
                        by_pair.entry(key).or_default().push(i);
                    }
                }
            }
            for ((a, b), atoms) in by_pair {
                adj[a.index()].push((b, atoms.clone()));
                adj[b.index()].push((a, atoms));
            }
        }

        let occurring: BTreeSet<CqVar> = q.atoms.iter().flat_map(|a| a.vars()).collect();

        let mut parent: Vec<Option<(CqVar, Vec<usize>)>> = vec![None; n];
        let mut children: Vec<Vec<CqVar>> = vec![Vec::new(); n];
        let mut visited = vec![false; n];
        let mut roots = Vec::new();
        let mut bfs_order = Vec::new();

        // Prefer head variables as roots.
        let seeds: Vec<CqVar> = q
            .head
            .iter()
            .copied()
            .chain(occurring.iter().copied())
            .collect();
        for seed in seeds {
            if !occurring.contains(&seed) || visited[seed.index()] {
                continue;
            }
            visited[seed.index()] = true;
            roots.push(seed);
            let mut queue = std::collections::VecDeque::from([seed]);
            while let Some(u) = queue.pop_front() {
                bfs_order.push(u);
                for (v, atoms) in &adj[u.index()] {
                    if !visited[v.index()] {
                        visited[v.index()] = true;
                        parent[v.index()] = Some((u, atoms.clone()));
                        children[u.index()].push(*v);
                        queue.push_back(*v);
                    }
                }
            }
        }
        Some(JoinForest {
            roots,
            parent,
            children,
            bfs_order,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;

    #[test]
    fn path_query_is_acyclic() {
        let q = parse_cq("child(x, y), child(y, z)").unwrap();
        assert!(is_acyclic(&q));
    }

    #[test]
    fn triangle_is_cyclic() {
        let q = parse_cq("child(x, y), child(y, z), child+(x, z)").unwrap();
        assert!(!is_acyclic(&q));
    }

    #[test]
    fn parallel_atoms_are_acyclic() {
        let q = parse_cq("child(x, y), child+(x, y)").unwrap();
        assert!(is_acyclic(&q));
        let forest = JoinForest::build(&q).unwrap();
        // One edge carrying both atoms.
        let non_roots: Vec<_> = forest.parent.iter().filter_map(|p| p.as_ref()).collect();
        assert_eq!(non_roots.len(), 1);
        assert_eq!(non_roots[0].1.len(), 2);
    }

    #[test]
    fn self_loop_does_not_break_acyclicity() {
        let q = parse_cq("child*(x, x), child(x, y)").unwrap();
        assert!(is_acyclic(&q));
        assert!(JoinForest::build(&q).is_some());
    }

    #[test]
    fn forest_roots_prefer_head_vars() {
        let q = parse_cq("q(z) :- child(x, y), child(y, z).").unwrap();
        let forest = JoinForest::build(&q).unwrap();
        assert_eq!(forest.roots, vec![q.head[0]]);
        // BFS covers all three variables.
        assert_eq!(forest.bfs_order.len(), 3);
    }

    #[test]
    fn disconnected_components() {
        let q = parse_cq("child(x, y), child(u, v)").unwrap();
        let forest = JoinForest::build(&q).unwrap();
        assert_eq!(forest.roots.len(), 2);
        assert_eq!(forest.bfs_order.len(), 4);
    }

    #[test]
    fn cyclic_query_yields_no_forest() {
        let q = parse_cq("child(x, y), child(y, z), following(x, z)").unwrap();
        assert!(JoinForest::build(&q).is_none());
    }
}
