//! Compilation of forward downward Core XPath into the streaming predicate
//! network.
//!
//! A query is flattened into *chains* of downward steps; every step of
//! every chain (main query and path qualifiers alike) becomes one entry of
//! a global step table. At run time the evaluator maintains, per open
//! element, two bit vectors over that table ("some child starts a match of
//! chain-suffix i", "some strict descendant does"), which is all that is
//! needed to decide every predicate at the element's close event.

use treequery_tree::Axis;
use treequery_xpath::{Path, Qual};

/// Why a query is outside the streamable fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NotStreamable {
    /// An axis other than `child`/`descendant`(-or-self at the top).
    UnsupportedAxis(Axis),
    /// Union nested below the top level.
    NestedUnion,
}

impl std::fmt::Display for NotStreamable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NotStreamable::UnsupportedAxis(a) => {
                write!(
                    f,
                    "axis {a} is not supported by the streaming fragment (try eliminate_upward)"
                )
            }
            NotStreamable::NestedUnion => f.write_str("union below the top level is not supported"),
        }
    }
}

impl std::error::Error for NotStreamable {}

/// The downward axes of the fragment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DownAxis {
    /// `child`.
    Child,
    /// `descendant` (strict).
    Descendant,
    /// `descendant-or-self` (produced by the upward-elimination rewrite;
    /// the "self" part is resolved within the same close event thanks to
    /// the step table's back-to-front id order).
    DescendantOrSelf,
}

/// A boolean formula decided per element at its close event.
#[derive(Clone, Debug)]
pub(crate) enum Formula {
    /// The element's label equals the query-interned label.
    Label(u32),
    /// A match of the chain starting at step-table entry `start` exists
    /// below this element via the given axis.
    Starts(DownAxis, usize),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Negation (decidable at close: all operands are subtree-local).
    Not(Box<Formula>),
    /// Constant true (e.g. `self::*`-like steps have no test).
    True,
}

/// One entry of the global step table.
#[derive(Clone, Debug)]
pub(crate) struct QStep {
    /// The test this element must pass (label + qualifiers).
    pub(crate) test: Formula,
    /// The continuation: the next step of the chain, with its axis.
    pub(crate) next: Option<(DownAxis, usize)>,
}

/// A compiled streaming filter.
#[derive(Clone, Debug)]
pub struct FilterQuery {
    pub(crate) steps: Vec<QStep>,
    /// Top-level alternatives: (axis from the virtual document node,
    /// start step).
    pub(crate) tops: Vec<(DownAxis, usize)>,
    /// Query-local label interner (name → dense id).
    pub(crate) labels: Vec<String>,
}

impl FilterQuery {
    /// Number of step-table entries (the per-frame bit-vector width; the
    /// `|Q|` factor of the memory bound).
    pub fn width(&self) -> usize {
        self.steps.len()
    }

    pub(crate) fn label_id(&self, name: &str) -> Option<u32> {
        self.labels.iter().position(|l| l == name).map(|i| i as u32)
    }
}

struct C {
    steps: Vec<QStep>,
    labels: Vec<String>,
}

impl C {
    fn intern(&mut self, label: &str) -> u32 {
        match self.labels.iter().position(|l| l == label) {
            Some(i) => i as u32,
            None => {
                self.labels.push(label.to_owned());
                (self.labels.len() - 1) as u32
            }
        }
    }

    fn down_axis(axis: Axis) -> Result<DownAxis, NotStreamable> {
        match axis {
            Axis::Child => Ok(DownAxis::Child),
            Axis::Descendant => Ok(DownAxis::Descendant),
            Axis::DescendantOrSelf => Ok(DownAxis::DescendantOrSelf),
            other => Err(NotStreamable::UnsupportedAxis(other)),
        }
    }

    /// Compiles a path into a chain; returns (first axis, start step id).
    fn chain(&mut self, p: &Path) -> Result<(DownAxis, usize), NotStreamable> {
        // Flatten Seq into a list of steps.
        let mut steps: Vec<(Axis, &[Qual])> = Vec::new();
        flatten(p, &mut steps)?;
        // Build from the back.
        let mut next: Option<(DownAxis, usize)> = None;
        let mut first: Option<(DownAxis, usize)> = None;
        for (axis, quals) in steps.iter().rev() {
            let axis = Self::down_axis(*axis)?;
            let mut test = Formula::True;
            for q in quals.iter() {
                let f = self.formula(q)?;
                test = and(test, f);
            }
            let id = self.steps.len();
            self.steps.push(QStep { test, next });
            next = Some((axis, id));
            first = next;
        }
        Ok(first.expect("paths have at least one step"))
    }

    fn formula(&mut self, q: &Qual) -> Result<Formula, NotStreamable> {
        Ok(match q {
            Qual::Label(l) => Formula::Label(self.intern(l)),
            Qual::And(a, b) => and(self.formula(a)?, self.formula(b)?),
            Qual::Or(a, b) => Formula::Or(Box::new(self.formula(a)?), Box::new(self.formula(b)?)),
            Qual::Not(inner) => Formula::Not(Box::new(self.formula(inner)?)),
            Qual::Path(p) => {
                let (axis, start) = self.chain(p)?;
                Formula::Starts(axis, start)
            }
        })
    }
}

fn and(a: Formula, b: Formula) -> Formula {
    match (a, b) {
        (Formula::True, x) | (x, Formula::True) => x,
        (a, b) => Formula::And(Box::new(a), Box::new(b)),
    }
}

fn flatten<'p>(p: &'p Path, out: &mut Vec<(Axis, &'p [Qual])>) -> Result<(), NotStreamable> {
    match p {
        Path::Step { axis, quals } => {
            out.push((*axis, quals));
            Ok(())
        }
        Path::Seq(a, b) => {
            flatten(a, out)?;
            flatten(b, out)
        }
        Path::Union(..) => Err(NotStreamable::NestedUnion),
    }
}

/// Compiles a forward downward Core XPath query into a streaming filter.
/// Top-level unions are allowed (each branch becomes an alternative);
/// the first step of each branch must be `child` (tests the root) or
/// `descendant`(-or-self) from the virtual document node.
pub fn compile(p: &Path) -> Result<FilterQuery, NotStreamable> {
    let mut c = C {
        steps: Vec::new(),
        labels: Vec::new(),
    };
    // Split top-level unions.
    let mut branches = Vec::new();
    collect_branches(p, &mut branches);
    let mut tops = Vec::new();
    for branch in branches {
        // The first step's axis is interpreted from the document node:
        // descendant-or-self counts as descendant there (the document node
        // is virtual).
        let adjusted;
        let branch = match branch {
            Path::Step {
                axis: Axis::DescendantOrSelf,
                quals,
            } => {
                adjusted = Path::Step {
                    axis: Axis::Descendant,
                    quals: quals.clone(),
                };
                &adjusted
            }
            Path::Seq(first, rest) => {
                if let Path::Step {
                    axis: Axis::DescendantOrSelf,
                    quals,
                } = first.as_ref()
                {
                    adjusted = Path::Seq(
                        Box::new(Path::Step {
                            axis: Axis::Descendant,
                            quals: quals.clone(),
                        }),
                        rest.clone(),
                    );
                    &adjusted
                } else {
                    branch
                }
            }
            other => other,
        };
        tops.push(c.chain(branch)?);
    }
    Ok(FilterQuery {
        steps: c.steps,
        tops,
        labels: c.labels,
    })
}

fn collect_branches<'p>(p: &'p Path, out: &mut Vec<&'p Path>) {
    match p {
        Path::Union(a, b) => {
            collect_branches(a, out);
            collect_branches(b, out);
        }
        other => out.push(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treequery_xpath::parse_xpath;

    #[test]
    fn compiles_downward_queries() {
        for qs in [
            "//a",
            "/a/b//c",
            "//a[b and not(c//d)]",
            "//a[not(b or lab()=c)]/d",
            "//a | /b/c",
        ] {
            let p = parse_xpath(qs).unwrap();
            let f = compile(&p).unwrap_or_else(|e| panic!("{qs}: {e}"));
            assert!(f.width() > 0);
        }
    }

    #[test]
    fn rejects_upward_axes() {
        let p = parse_xpath("//a/parent::b").unwrap();
        assert!(matches!(
            compile(&p),
            Err(NotStreamable::UnsupportedAxis(Axis::Parent))
        ));
        let p2 = parse_xpath("//a[following::b]").unwrap();
        assert!(compile(&p2).is_err());
    }

    #[test]
    fn rejects_nested_union() {
        let p = parse_xpath("/a/(b|c)").unwrap_or_else(|_| {
            // The parser may not accept parenthesized unions in paths;
            // build the AST directly.
            Path::labeled_step(Axis::Child, "a").then(
                Path::labeled_step(Axis::Child, "b").union(Path::labeled_step(Axis::Child, "c")),
            )
        });
        assert!(matches!(compile(&p), Err(NotStreamable::NestedUnion)));
    }

    #[test]
    fn width_counts_all_chains() {
        let p = parse_xpath("//a[b//c]/d").unwrap();
        let f = compile(&p).unwrap();
        // Main chain a, d + qualifier chain b, c.
        assert_eq!(f.width(), 4);
    }
}
