//! The lowering seam the planner in `treequery-core` consumes: classify a
//! Core XPath expression's streamability and compile it, applying the
//! backward-axis elimination of Section 5 ("XPath: Looking Forward")
//! automatically when the direct compilation fails.

use treequery_xpath::Path;

use crate::compile::{compile, FilterQuery, NotStreamable};
use crate::rewrite::eliminate_upward;

/// How (whether) a query enters the streaming fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Streamability {
    /// Compiles directly: forward, downward.
    Direct,
    /// Compiles after backward-axis elimination.
    AfterRewrite,
    /// Outside the fragment even after rewriting (the original
    /// compilation error is carried).
    No(NotStreamable),
}

/// Classifies without keeping the compiled filter.
pub fn streamability(p: &Path) -> Streamability {
    match compile_with_rewrite(p) {
        Ok((_, false)) => Streamability::Direct,
        Ok((_, true)) => Streamability::AfterRewrite,
        Err(e) => Streamability::No(e),
    }
}

/// Compiles `p` for stream filtering, falling back to backward-axis
/// elimination; the boolean reports whether the rewrite was needed. On
/// failure the error from the *direct* compilation is returned (it names
/// the offending axis of the original query, not of the rewrite).
pub fn compile_with_rewrite(p: &Path) -> Result<(FilterQuery, bool), NotStreamable> {
    match compile(p) {
        Ok(f) => Ok((f, false)),
        Err(first_err) => {
            let Some(fwd) = eliminate_upward(p) else {
                return Err(first_err);
            };
            match compile(&fwd) {
                Ok(f) => Ok((f, true)),
                Err(_) => Err(first_err),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treequery_xpath::parse_xpath;

    #[test]
    fn classifies_the_three_cases() {
        let direct = parse_xpath("//a[b]/c").unwrap();
        assert_eq!(streamability(&direct), Streamability::Direct);

        let rewritable = parse_xpath("//b/parent::a").unwrap();
        assert_eq!(streamability(&rewritable), Streamability::AfterRewrite);

        let hopeless = parse_xpath("//a[following::b]").unwrap();
        assert!(matches!(streamability(&hopeless), Streamability::No(_)));
    }

    #[test]
    fn compile_with_rewrite_matches_direct_compile() {
        let p = parse_xpath("//a[not(b)]").unwrap();
        let (f, rewritten) = compile_with_rewrite(&p).unwrap();
        assert!(!rewritten);
        let t = treequery_tree::parse_term("r(a(b) a(c))").unwrap();
        let (matched, _) = crate::filter::matches_tree(&f, &t);
        assert!(matched);
    }
}
