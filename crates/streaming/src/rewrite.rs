//! Backward-axis elimination (Section 5; Olteanu, Meuss, Furche & Bry,
//! *XPath: Looking Forward* \[62\]).
//!
//! Queries with `parent::`/`ancestor::` steps cannot be streamed directly;
//! the rewriting below turns common shapes into equivalent forward
//! queries by the symmetry rules of \[62\]:
//!
//! * `p/X/parent::Y[q]`   ≡ `p/self-or-hop[q][child::X]` — the parent of a
//!   step's result is a result of the prefix (exactly for `child` steps,
//!   up to `descendant-or-self` for `descendant` steps);
//! * `//X[qx]/ancestor::Y[qy]` ≡ `//Y[qy][descendant::X[qx]]` — sound
//!   because `//X[qx]` membership does not depend on ancestors when `qx`
//!   is downward.
//!
//! The rewriting is applied innermost-first and returns `None` when a
//! backward step is in a shape it does not cover.

use treequery_tree::Axis;
use treequery_xpath::{Path, Qual};

/// Whether a qualifier is purely downward (safe to move across the
/// ancestor-rewrite).
fn qual_downward(q: &Qual) -> bool {
    match q {
        Qual::Label(_) => true,
        Qual::Path(p) => path_downward(p),
        Qual::And(a, b) | Qual::Or(a, b) => qual_downward(a) && qual_downward(b),
        Qual::Not(inner) => qual_downward(inner),
    }
}

fn path_downward(p: &Path) -> bool {
    match p {
        Path::Step { axis, quals } => {
            matches!(
                axis,
                Axis::Child | Axis::Descendant | Axis::DescendantOrSelf
            ) && quals.iter().all(qual_downward)
        }
        Path::Seq(a, b) => path_downward(a) && path_downward(b),
        Path::Union(..) => false,
    }
}

/// Flattens `Seq` nesting into a step list (top-level only; steps keep
/// their qualifiers). Returns `None` if a union blocks flattening.
fn steps_of(p: &Path) -> Option<Vec<(Axis, Vec<Qual>)>> {
    match p {
        Path::Step { axis, quals } => Some(vec![(*axis, quals.clone())]),
        Path::Seq(a, b) => {
            let mut v = steps_of(a)?;
            v.extend(steps_of(b)?);
            Some(v)
        }
        Path::Union(..) => None,
    }
}

fn rebuild(steps: Vec<(Axis, Vec<Qual>)>) -> Path {
    let mut it = steps.into_iter();
    let (axis, quals) = it.next().expect("non-empty step list");
    let mut p = Path::Step { axis, quals };
    for (axis, quals) in it {
        p = p.then(Path::Step { axis, quals });
    }
    p
}

/// Attempts to rewrite a query with `parent`/`ancestor` steps into an
/// equivalent forward downward query (streamable by
/// [`crate::compile`]). Qualifiers are rewritten recursively; unsupported
/// shapes yield `None`.
pub fn eliminate_upward(p: &Path) -> Option<Path> {
    // Handle top-level unions branch-wise.
    if let Path::Union(a, b) = p {
        return Some(eliminate_upward(a)?.union(eliminate_upward(b)?));
    }
    let mut steps = steps_of(p)?;
    // Rewrite qualifiers first.
    for (_, quals) in &mut steps {
        for q in quals.iter_mut() {
            *q = rewrite_qual(q)?;
        }
    }
    // Scan for upward steps, innermost (leftmost) first.
    while let Some(pos) = steps
        .iter()
        .position(|(a, _)| matches!(a, Axis::Parent | Axis::Ancestor))
    {
        if pos == 0 {
            return None; // upward from the document node: not meaningful
        }
        let (up_axis, up_quals) = steps[pos].clone();
        let (prev_axis, prev_quals) = steps[pos - 1].clone();
        // The previous step's match becomes a downward *witness* qualifier
        // of the rewritten step, so it must not look upward itself.
        if !prev_quals.iter().all(qual_downward) || !up_quals.iter().all(qual_downward) {
            return None;
        }
        let child_witness = Qual::Path(Path::Step {
            axis: Axis::Child,
            quals: prev_quals.clone(),
        });
        let desc_witness = Qual::Path(Path::Step {
            axis: Axis::Descendant,
            quals: prev_quals.clone(),
        });
        match (prev_axis, up_axis, pos) {
            // child::X from the document reaches only the root; the root
            // has no parent/ancestor: the query is empty.
            (Axis::Child, Axis::Parent | Axis::Ancestor, 1) => return Some(never()),
            // p/child::X/parent::Y[q] — the parent IS the p-result:
            // fold q and the X-child witness into the preceding step.
            (Axis::Child, Axis::Parent, _) => {
                steps[pos - 2].1.extend(up_quals);
                steps[pos - 2].1.push(child_witness);
                steps.drain(pos - 1..=pos);
            }
            // p/descendant::X/parent::Y[q] — the parent ranges over
            // descendant-or-self of the p-result.
            (Axis::Descendant, Axis::Parent, _) => {
                let mut quals = up_quals;
                quals.push(child_witness);
                steps.splice(pos - 1..=pos, [(Axis::DescendantOrSelf, quals)]);
            }
            // //X[qx]/ancestor::Y[qy] ≡ //Y[qy][descendant::X[qx]] —
            // sound because //X[qx] is ancestor-independent.
            (Axis::Descendant, Axis::Ancestor, 1) => {
                let mut quals = up_quals;
                quals.push(desc_witness);
                steps.splice(pos - 1..=pos, [(Axis::Descendant, quals)]);
            }
            _ => return None,
        }
    }
    // The result must be fully inside the streamable fragment.
    if !steps
        .iter()
        .all(|(a, _)| matches!(a, Axis::Child | Axis::Descendant | Axis::DescendantOrSelf))
    {
        return None;
    }
    Some(rebuild(steps))
}

/// A query that selects nothing (used for degenerate rewrites like
/// `/x/parent::*`).
fn never() -> Path {
    Path::Step {
        axis: Axis::Descendant,
        quals: vec![Qual::Label("\u{1}unmatchable".into())],
    }
}

fn rewrite_qual(q: &Qual) -> Option<Qual> {
    Some(match q {
        Qual::Label(_) => q.clone(),
        Qual::Path(p) => {
            if path_downward(p) {
                q.clone()
            } else {
                return None;
            }
        }
        Qual::And(a, b) => Qual::And(Box::new(rewrite_qual(a)?), Box::new(rewrite_qual(b)?)),
        Qual::Or(a, b) => Qual::Or(Box::new(rewrite_qual(a)?), Box::new(rewrite_qual(b)?)),
        Qual::Not(inner) => Qual::Not(Box::new(rewrite_qual(inner)?)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::filter::matches_tree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use treequery_tree::{parse_term, random_recursive_tree};
    use treequery_xpath::{eval_query, parse_xpath};

    /// Queries with upward axes, rewritten and streamed, agree with the
    /// in-memory evaluator on Boolean matching.
    #[test]
    fn rewritten_queries_agree() {
        let upward = [
            "//a/parent::b",
            "//a[c]/parent::b[d]",
            "//a/ancestor::b",
            "//a[b]/ancestor::c[d]",
            "/r/a/parent::r",
            "/r/a/b/parent::a",
            "//x/parent::*",
        ];
        let mut rng = StdRng::seed_from_u64(13);
        let mut trees: Vec<treequery_tree::Tree> = vec![
            parse_term("r(a(c) b(a(c) d) c)").unwrap(),
            parse_term("b(a(b(a)) d(a))").unwrap(),
            parse_term("c(d(b(a(b))))").unwrap(),
        ];
        for _ in 0..10 {
            trees.push(random_recursive_tree(
                &mut rng,
                50,
                &["a", "b", "c", "d", "r", "x"],
            ));
        }
        for qs in upward {
            let p = parse_xpath(qs).unwrap();
            let fwd = eliminate_upward(&p).unwrap_or_else(|| panic!("{qs} not rewritten"));
            assert!(fwd.is_forward(), "{qs} → {fwd} still has backward axes");
            let f = compile(&fwd).unwrap_or_else(|e| panic!("{qs} → {fwd}: {e}"));
            for t in &trees {
                let expected = !eval_query(&p, t).is_empty();
                assert_eq!(matches_tree(&f, t).0, expected, "{qs} on {t}");
            }
        }
    }

    #[test]
    fn degenerate_parent_of_root_is_empty() {
        let p = parse_xpath("/r/parent::*").unwrap();
        let fwd = eliminate_upward(&p).unwrap();
        let f = compile(&fwd).unwrap();
        let t = parse_term("r(a)").unwrap();
        assert!(!matches_tree(&f, &t).0);
    }

    #[test]
    fn unsupported_shapes_yield_none() {
        // following:: is outside the rewrite's scope.
        assert!(eliminate_upward(&parse_xpath("//a/following::b").unwrap()).is_none());
        // Upward qualifier.
        assert!(eliminate_upward(&parse_xpath("//a[parent::b]").unwrap()).is_none());
        // ancestor after a child step at depth ≥ 2 is not covered.
        assert!(eliminate_upward(&parse_xpath("//a/b/ancestor::c").unwrap()).is_none());
    }

    #[test]
    fn chained_ancestors_are_rewritten() {
        let p = parse_xpath("//a/ancestor::b/ancestor::c").unwrap();
        let fwd = eliminate_upward(&p).unwrap();
        assert!(fwd.is_forward());
        let t = parse_term("c(x(b(y(a))) b)").unwrap();
        let f = compile(&fwd).unwrap();
        assert_eq!(matches_tree(&f, &t).0, !eval_query(&p, &t).is_empty());
    }

    #[test]
    fn forward_queries_pass_through() {
        let p = parse_xpath("//a[b]/c").unwrap();
        assert_eq!(eliminate_upward(&p).unwrap(), p);
    }
}
