//! The streaming run: one pass over the event stream, one stack frame per
//! open element, `O(depth · |Q|)` memory.

use crate::compile::{DownAxis, FilterQuery, Formula};
use crate::event::Event;

/// Memory accounting for a streaming run (experiment E14).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Maximum number of simultaneously open elements (stack frames) —
    /// the document-depth factor of the bound.
    pub peak_frames: usize,
    /// Bits of state per frame (2 per step-table entry) — the `|Q|`
    /// factor.
    pub frame_bits: usize,
    /// Total events processed.
    pub events: usize,
}

impl MemoryStats {
    /// Peak working-set estimate in bits (frames × per-frame bits).
    pub fn peak_bits(&self) -> usize {
        self.peak_frames * self.frame_bits
    }
}

/// Per-open-element state.
struct Frame {
    /// Query-local label id of this element (`u32::MAX` if the label does
    /// not occur in the query).
    label: u32,
    /// `child_sat[i]`: some child of this element starts a match of the
    /// chain suffix beginning at step `i`.
    child_sat: Vec<bool>,
    /// `desc_sat[i]`: some strict descendant deeper than a child does.
    desc_sat: Vec<bool>,
}

/// Evaluates a close-time formula. `sat` holds the already-decided
/// chain-suffix matches *at this element* (entries with smaller step ids —
/// the table is built back-to-front, so every reference points backwards).
fn eval_formula(f: &Formula, frame: &Frame, sat: &[bool]) -> bool {
    match f {
        Formula::True => true,
        Formula::Label(l) => frame.label == *l,
        Formula::Starts(DownAxis::Child, start) => frame.child_sat[*start],
        Formula::Starts(DownAxis::Descendant, start) => {
            frame.child_sat[*start] || frame.desc_sat[*start]
        }
        Formula::Starts(DownAxis::DescendantOrSelf, start) => {
            sat[*start] || frame.child_sat[*start] || frame.desc_sat[*start]
        }
        Formula::And(a, b) => eval_formula(a, frame, sat) && eval_formula(b, frame, sat),
        Formula::Or(a, b) => eval_formula(a, frame, sat) || eval_formula(b, frame, sat),
        Formula::Not(inner) => !eval_formula(inner, frame, sat),
    }
}

/// Runs the filter over an event stream: does the document match (i.e.
/// would the query select at least one node)?
///
/// Exactly one stack frame per open element; every predicate is decided at
/// the element's close event, which is what makes negation harmless.
pub fn matches_events<'a>(
    q: &FilterQuery,
    events: impl IntoIterator<Item = &'a Event>,
) -> (bool, MemoryStats) {
    let width = q.steps.len();
    let mut stats = MemoryStats {
        peak_frames: 0,
        frame_bits: 2 * width,
        events: 0,
    };
    // The virtual document frame sits at the bottom of the stack.
    let mut stack: Vec<Frame> = vec![Frame {
        label: u32::MAX,
        child_sat: vec![false; width],
        desc_sat: vec![false; width],
    }];
    for ev in events {
        stats.events += 1;
        match ev {
            Event::Open(label) => {
                stack.push(Frame {
                    label: q.label_id(label).unwrap_or(u32::MAX),
                    child_sat: vec![false; width],
                    desc_sat: vec![false; width],
                });
                stats.peak_frames = stats.peak_frames.max(stack.len() - 1);
            }
            Event::Close => {
                let frame = stack.pop().expect("unbalanced events: extra close");
                assert!(!stack.is_empty(), "unbalanced events: closed the document");
                // Decide, for every step, whether a chain-suffix match
                // starts at this element.
                let parent = stack.last_mut().expect("document frame");
                // Chains are stored back-to-front, so increasing id order
                // guarantees `next` (and `Starts` references) are decided
                // before they are read.
                let mut sat = vec![false; width];
                for (i, step) in q.steps.iter().enumerate() {
                    let cont = match step.next {
                        None => true,
                        Some((DownAxis::Child, nid)) => frame.child_sat[nid],
                        Some((DownAxis::Descendant, nid)) => {
                            frame.child_sat[nid] || frame.desc_sat[nid]
                        }
                        Some((DownAxis::DescendantOrSelf, nid)) => {
                            sat[nid] || frame.child_sat[nid] || frame.desc_sat[nid]
                        }
                    };
                    sat[i] = cont && eval_formula(&step.test, &frame, &sat);
                }
                for (i, &here) in sat.iter().enumerate() {
                    if here {
                        parent.child_sat[i] = true;
                    }
                    if frame.child_sat[i] || frame.desc_sat[i] {
                        parent.desc_sat[i] = true;
                    }
                }
            }
        }
    }
    assert_eq!(stack.len(), 1, "unbalanced events: elements left open");
    let doc = &stack[0];
    let matched = q.tops.iter().any(|&(axis, start)| match axis {
        DownAxis::Child => doc.child_sat[start],
        DownAxis::Descendant | DownAxis::DescendantOrSelf => {
            doc.child_sat[start] || doc.desc_sat[start]
        }
    });
    (matched, stats)
}

/// Convenience: filter an in-memory tree (linearizing it to events).
pub fn matches_tree(q: &FilterQuery, t: &treequery_tree::Tree) -> (bool, MemoryStats) {
    let events = crate::event::tree_events(t);
    matches_events(q, &events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use treequery_tree::{deep_path, parse_term, random_recursive_tree, random_tree_with_depth};
    use treequery_xpath::{eval_query, parse_xpath};

    const STREAMABLE: &[&str] = &[
        "//a",
        "/r",
        "/r/a/b",
        "//a//b",
        "//a[b]",
        "//a[b//c]/d",
        "//a[not(b)]",
        "//a[not(b or c)]/b",
        "//a[b and not(c)]",
        "//a | //b[c]",
        "/r[a/b]",
    ];

    /// Streaming filtering agrees with "query result non-empty" from the
    /// in-memory evaluator.
    #[test]
    fn agrees_with_in_memory_evaluator() {
        let trees = [
            "r(a(b c) b(a(c) c) a)",
            "r(a(a(a(b))) c)",
            "a",
            "r(a(b(c) b) a(c(b)) b(a))",
            "b(c)",
        ];
        for qs in STREAMABLE {
            let p = parse_xpath(qs).unwrap();
            let f = compile(&p).unwrap();
            for ts in trees {
                let t = parse_term(ts).unwrap();
                let expected = !eval_query(&p, &t).is_empty();
                let (got, _) = matches_tree(&f, &t);
                assert_eq!(got, expected, "{qs} on {ts}");
            }
        }
    }

    #[test]
    fn agrees_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..15 {
            let t = random_recursive_tree(&mut rng, 60, &["a", "b", "c", "r"]);
            for qs in STREAMABLE {
                let p = parse_xpath(qs).unwrap();
                let f = compile(&p).unwrap();
                let expected = !eval_query(&p, &t).is_empty();
                assert_eq!(matches_tree(&f, &t).0, expected, "{qs} on {t}");
            }
        }
    }

    /// The paper's memory claim: peak memory is the document depth times
    /// the query width — independent of document size at fixed depth.
    #[test]
    fn memory_is_depth_bounded() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = parse_xpath("//a[b]//c").unwrap();
        let f = compile(&p).unwrap();
        // Same depth, very different sizes.
        let small = random_tree_with_depth(&mut rng, 100, 6, &["a", "b", "c"]);
        let large = random_tree_with_depth(&mut rng, 10_000, 6, &["a", "b", "c"]);
        let (_, m_small) = matches_tree(&f, &small);
        let (_, m_large) = matches_tree(&f, &large);
        assert_eq!(m_small.peak_frames, 7);
        assert_eq!(m_large.peak_frames, 7);
        assert_eq!(m_small.frame_bits, m_large.frame_bits);
        // Deep path: frames grow with depth.
        let path = deep_path(50, "a");
        let (_, m_path) = matches_tree(&f, &path);
        assert_eq!(m_path.peak_frames, 50);
        assert_eq!(m_path.peak_bits(), 50 * m_path.frame_bits);
    }

    #[test]
    fn event_count_is_recorded() {
        let t = parse_term("a(b c)").unwrap();
        let f = compile(&parse_xpath("//b").unwrap()).unwrap();
        let (m, stats) = matches_tree(&f, &t);
        assert!(m);
        assert_eq!(stats.events, 6);
    }
}
