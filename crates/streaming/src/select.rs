//! Node-*selecting* streaming evaluation (with candidate buffering).
//!
//! The Boolean filter ([`crate::matches_events`]) runs in `O(depth · |Q|)`
//! memory; *selection* cannot: whether a node is in the answer may depend
//! on qualifiers of its ancestors, which are only decided when those
//! ancestors close — after the node itself has long been seen. The
//! evaluator below therefore buffers *candidates*: a node that passes the
//! final step's test is held, together with the prefix steps it still
//! owes, on the stack frame of its parent; when a frame closes, its
//! pending candidates either consume a step (the frame matched it), float
//! upward (a `//`-edge lets an ancestor further up match), or die.
//!
//! The buffer size is exactly the "concurrently alive candidates"
//! quantity of the lower-bound literature (\[40\]): `SelectStats` reports
//! its peak so experiments can show it growing with the data (unlike the
//! filter's frame count).

use std::collections::BTreeSet;

use crate::compile::{DownAxis, FilterQuery, Formula};
use crate::event::Event;
use crate::filter::MemoryStats;

/// Statistics of a selecting run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SelectStats {
    /// The filter-level memory stats (frames etc.).
    pub memory: MemoryStats,
    /// Peak number of buffered candidate obligations — this is what the
    /// `O(depth)` bound does *not* cover.
    pub peak_pending: usize,
    /// Total candidate obligations created.
    pub candidates_created: u64,
}

/// A pending obligation: candidate node `pre` still owes the main-chain
/// prefix ending at position `step`; `below` is the axis of the edge
/// *below* the owed step, which governs where the obligation may be
/// consumed (`/`: exactly where it sits; `//`: there or any ancestor;
/// `//-or-self`: additionally at the frame that matched the step below).
#[derive(Clone, Copy, Debug)]
struct Pending {
    pre: u32,
    step: usize,
    below: DownAxis,
}

struct Frame {
    label: u32,
    pre: u32,
    depth: usize,
    child_sat: Vec<bool>,
    desc_sat: Vec<bool>,
    pending: Vec<(usize, Pending)>, // (chain index, obligation)
}

fn eval_formula(
    f: &Formula,
    label: u32,
    child_sat: &[bool],
    desc_sat: &[bool],
    sat: &[bool],
) -> bool {
    match f {
        Formula::True => true,
        Formula::Label(l) => label == *l,
        Formula::Starts(DownAxis::Child, s) => child_sat[*s],
        Formula::Starts(DownAxis::Descendant, s) => child_sat[*s] || desc_sat[*s],
        Formula::Starts(DownAxis::DescendantOrSelf, s) => sat[*s] || child_sat[*s] || desc_sat[*s],
        Formula::And(a, b) => {
            eval_formula(a, label, child_sat, desc_sat, sat)
                && eval_formula(b, label, child_sat, desc_sat, sat)
        }
        Formula::Or(a, b) => {
            eval_formula(a, label, child_sat, desc_sat, sat)
                || eval_formula(b, label, child_sat, desc_sat, sat)
        }
        Formula::Not(inner) => !eval_formula(inner, label, child_sat, desc_sat, sat),
    }
}

/// One top-level chain, unfolded from the step table: `steps[j]` is the
/// (axis-into-step, step-id) of position j (0-based; position 0 hangs off
/// the virtual document).
struct Chain {
    steps: Vec<(DownAxis, usize)>,
}

fn unfold_chains(q: &FilterQuery) -> Vec<Chain> {
    q.tops
        .iter()
        .map(|&(axis, start)| {
            let mut steps = vec![(axis, start)];
            let mut cur = start;
            while let Some(next) = q.steps[cur].next {
                steps.push(next);
                cur = next.1;
            }
            Chain { steps }
        })
        .collect()
}

/// Runs the selecting evaluation: returns the `<pre` ranks (0-based
/// document order) of the selected nodes, plus statistics.
pub fn select_events<'a>(
    q: &FilterQuery,
    events: impl IntoIterator<Item = &'a Event>,
) -> (BTreeSet<u32>, SelectStats) {
    let mut span = treequery_obs::span("stream.select");
    let _mem = treequery_obs::alloc::AllocScope::enter("stream.select");
    let width = q.steps.len();
    let chains = unfold_chains(q);
    let mut stats = SelectStats {
        memory: MemoryStats {
            peak_frames: 0,
            frame_bits: 2 * width,
            events: 0,
        },
        ..Default::default()
    };
    let mut out = BTreeSet::new();
    let mut next_pre = 0u32;
    let mut stack: Vec<Frame> = vec![Frame {
        label: u32::MAX,
        pre: u32::MAX,
        depth: 0,
        child_sat: vec![false; width],
        desc_sat: vec![false; width],
        pending: Vec::new(),
    }];

    for ev in events {
        stats.memory.events += 1;
        match ev {
            Event::Open(name) => {
                let depth = stack.len(); // document frame is depth 0
                stack.push(Frame {
                    label: q.label_id(name).unwrap_or(u32::MAX),
                    pre: next_pre,
                    depth,
                    child_sat: vec![false; width],
                    desc_sat: vec![false; width],
                    pending: Vec::new(),
                });
                next_pre += 1;
                stats.memory.peak_frames = stats.memory.peak_frames.max(stack.len() - 1);
            }
            Event::Close => {
                let frame = stack.pop().expect("balanced events");
                let parent = stack.last_mut().expect("document frame remains");
                // Bottom-up sat decisions (as in the filter).
                let mut sat = vec![false; width];
                let mut test = vec![false; width];
                for (i, step) in q.steps.iter().enumerate() {
                    test[i] = eval_formula(
                        &step.test,
                        frame.label,
                        &frame.child_sat,
                        &frame.desc_sat,
                        &sat,
                    );
                    let cont = match step.next {
                        None => true,
                        Some((DownAxis::Child, nid)) => frame.child_sat[nid],
                        Some((DownAxis::Descendant, nid)) => {
                            frame.child_sat[nid] || frame.desc_sat[nid]
                        }
                        Some((DownAxis::DescendantOrSelf, nid)) => {
                            sat[nid] || frame.child_sat[nid] || frame.desc_sat[nid]
                        }
                    };
                    sat[i] = cont && test[i];
                }
                for (i, &s) in sat.iter().enumerate().take(width) {
                    if s {
                        parent.child_sat[i] = true;
                    }
                    if frame.child_sat[i] || frame.desc_sat[i] {
                        parent.desc_sat[i] = true;
                    }
                }
                // Obligations to process at THIS frame (from children,
                // plus or-self consumptions discovered below), and the
                // ones to hand to the parent.
                let mut work: Vec<(usize, Pending)> = frame.pending.clone();
                let mut to_parent: Vec<(usize, Pending)> = Vec::new();

                // New candidates: this node passes a chain's final step.
                for (ci, chain) in chains.iter().enumerate() {
                    let last = chain.steps.len() - 1;
                    let (last_axis, last_id) = chain.steps[last];
                    if !test[last_id] {
                        continue;
                    }
                    stats.candidates_created += 1;
                    if last == 0 {
                        // Single-step chain: only the document-level axis
                        // remains.
                        if doc_axis_ok(last_axis, frame.depth) {
                            out.insert(frame.pre);
                        }
                    } else {
                        let ob = Pending {
                            pre: frame.pre,
                            step: last - 1,
                            below: last_axis,
                        };
                        if last_axis == DownAxis::DescendantOrSelf {
                            work.push((ci, ob)); // may be consumed here
                        } else {
                            to_parent.push((ci, ob));
                        }
                    }
                }
                // Resolve obligations (the worklist may grow through
                // or-self consumptions at this same frame).
                let mut i = 0;
                while i < work.len() {
                    let (ci, p) = work[i];
                    i += 1;
                    let chain = &chains[ci];
                    let (_, step_id) = chain.steps[p.step];
                    if test[step_id] {
                        // This frame matches the owed step.
                        let axis_into = chain.steps[p.step].0;
                        if p.step == 0 {
                            if doc_axis_ok(axis_into, frame.depth) {
                                out.insert(p.pre);
                            }
                        } else {
                            let ob = Pending {
                                pre: p.pre,
                                step: p.step - 1,
                                below: axis_into,
                            };
                            if axis_into == DownAxis::DescendantOrSelf {
                                work.push((ci, ob));
                            } else {
                                to_parent.push((ci, ob));
                            }
                        }
                    }
                    if p.below != DownAxis::Child {
                        // `//` below: an ancestor further up may match
                        // instead.
                        to_parent.push((ci, p));
                    }
                }
                let parent = stack.last_mut().expect("document frame");
                parent.pending.extend(to_parent);
                let total_pending: usize = stack.iter().map(|f| f.pending.len()).sum();
                stats.peak_pending = stats.peak_pending.max(total_pending);
            }
        }
    }
    assert_eq!(stack.len(), 1, "unbalanced event stream");
    span.record_u64("events", stats.memory.events as u64);
    span.record_u64("peak_frames", stats.memory.peak_frames as u64);
    span.record_u64("selected", out.len() as u64);
    (out, stats)
}

fn doc_axis_ok(axis: DownAxis, depth: usize) -> bool {
    match axis {
        DownAxis::Child => depth == 1,
        DownAxis::Descendant | DownAxis::DescendantOrSelf => true,
    }
}

/// Convenience: selecting run over a tree's events, returning `NodeId`s.
pub fn select_tree(
    q: &FilterQuery,
    t: &treequery_tree::Tree,
) -> (Vec<treequery_tree::NodeId>, SelectStats) {
    let events = crate::event::tree_events(t);
    let (pres, stats) = select_events(q, &events);
    (pres.into_iter().map(|r| t.node_at_pre(r)).collect(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use treequery_tree::{parse_term, random_recursive_tree, star};
    use treequery_xpath::{eval_query, parse_xpath};

    const QUERIES: &[&str] = &[
        "//a",
        "/r",
        "/r/a/b",
        "//a//b",
        "//a[b]/c",
        "//a[not(b)]//c",
        "//a[b and not(c)]/b",
        "//a | //b[c]",
    ];

    #[test]
    fn selection_agrees_with_in_memory() {
        let trees = [
            "r(a(b c) b(a(c) c) a)",
            "r(a(a(a(b))) c)",
            "a",
            "r(a(b(c) b) a(c(b)) b(a))",
        ];
        for qs in QUERIES {
            let p = parse_xpath(qs).unwrap();
            let f = compile(&p).unwrap();
            for ts in trees {
                let t = parse_term(ts).unwrap();
                let (got, _) = select_tree(&f, &t);
                let mut expected = eval_query(&p, &t).to_vec();
                t.sort_by_pre(&mut expected);
                assert_eq!(got, expected, "{qs} on {ts}");
            }
        }
    }

    #[test]
    fn selection_agrees_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..12 {
            let t = random_recursive_tree(&mut rng, 70, &["a", "b", "c", "r"]);
            for qs in QUERIES {
                let p = parse_xpath(qs).unwrap();
                let f = compile(&p).unwrap();
                let (got, _) = select_tree(&f, &t);
                let mut expected = eval_query(&p, &t).to_vec();
                t.sort_by_pre(&mut expected);
                assert_eq!(got, expected, "{qs} on {t}");
            }
        }
    }

    /// Selection needs buffering where filtering does not: on a star of
    /// `a` children under a root whose qualifier resolves only at the
    /// root's close, pending candidates grow with the data.
    #[test]
    fn pending_grows_with_data_unlike_frames() {
        let p = parse_xpath("//r[b]/a").unwrap();
        let f = compile(&p).unwrap();
        for n in [10usize, 100, 1000] {
            // Root r with n a-children and NO b child: every a is a
            // candidate until the root closes and kills them all.
            let t = star(n + 1, "a"); // all-a star, relabel root via term
            let _ = t;
            let mut term = String::from("r(");
            term.push_str(&"a ".repeat(n));
            term.push(')');
            let t = parse_term(&term).unwrap();
            let (got, stats) = select_tree(&f, &t);
            assert!(got.is_empty());
            assert!(
                stats.peak_pending >= n,
                "pending {} should reach {n}",
                stats.peak_pending
            );
            assert_eq!(stats.memory.peak_frames, 2); // memory for frames stays tiny
        }
    }
}
