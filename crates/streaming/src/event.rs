//! SAX-style event streams.

use treequery_tree::{NodeId, Tree};

/// A parse event: the opening or closing tag of an element.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// `<label>`.
    Open(String),
    /// `</...>`.
    Close,
}

/// The event sequence of a tree (document order: an `Open` per node at its
/// `<pre` position, a `Close` at its `<post` position).
pub fn tree_events(t: &Tree) -> Vec<Event> {
    let mut out = Vec::with_capacity(t.len() * 2);
    enum Op {
        Open(NodeId),
        Close,
    }
    let mut stack = vec![Op::Open(t.root())];
    while let Some(op) = stack.pop() {
        match op {
            Op::Close => out.push(Event::Close),
            Op::Open(v) => {
                out.push(Event::Open(t.label_name(v).to_owned()));
                stack.push(Op::Close);
                let children: Vec<_> = t.children(v).collect();
                for &c in children.iter().rev() {
                    stack.push(Op::Open(c));
                }
            }
        }
    }
    out
}

/// Tokenizes the element structure of an XML document into events without
/// building a tree (attributes, text, comments skipped — the same subset
/// as `treequery_tree::parse_xml`).
pub fn xml_events(input: &str) -> Result<Vec<Event>, treequery_tree::XmlError> {
    // Reuse the robust tree parser for error handling, then linearize.
    // (A production system would tokenize incrementally; the evaluator's
    // memory accounting is independent of how events are produced.)
    let t = treequery_tree::parse_xml(input)?;
    Ok(tree_events(&t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use treequery_tree::parse_term;

    #[test]
    fn events_are_balanced_and_in_document_order() {
        let t = parse_term("a(b(c) d)").unwrap();
        let ev = tree_events(&t);
        assert_eq!(
            ev,
            vec![
                Event::Open("a".into()),
                Event::Open("b".into()),
                Event::Open("c".into()),
                Event::Close,
                Event::Close,
                Event::Open("d".into()),
                Event::Close,
                Event::Close,
            ]
        );
    }

    #[test]
    fn xml_events_match_tree_events() {
        let xml = "<a><b><c/></b><d/></a>";
        let t = treequery_tree::parse_xml(xml).unwrap();
        assert_eq!(xml_events(xml).unwrap(), tree_events(&t));
    }
}
