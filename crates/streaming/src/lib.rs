#![warn(missing_docs)]

//! Streaming evaluation of forward Core XPath (Sections 5 and 7 of the
//! paper).
//!
//! A streaming algorithm scans the document's event sequence (open/close
//! tags) once, left to right. The paper's results frame what is possible:
//!
//! * any streaming algorithm for Boolean Core XPath needs memory at least
//!   linear in the document depth \[40\];
//! * conversely, MSO-definable tree languages — hence Boolean Core XPath —
//!   are recognizable with memory `O(depth)` \[60, 70\].
//!
//! This crate implements that matching upper bound: [`FilterQuery`]
//! compiles a *forward, downward* Core XPath query (`child`/`descendant`
//! steps, qualifiers with downward paths, `and`/`or`/`not`, label tests —
//! the selective-dissemination fragment of \[3, 16, 62\]) into a network of
//! per-node predicates evaluated bottom-up over the event stream with one
//! stack frame per open element: peak memory `O(depth · |Q|)`, reported
//! exactly by [`MemoryStats`]. Negation is free here because every
//! predicate is decided at the element's close event.
//!
//! [`eliminate_upward`] rewrites common backward-axis queries into this
//! forward fragment (Section 5, "XPath: Looking Forward" \[62\]).

mod compile;
mod event;
mod filter;
mod lower;
mod rewrite;
mod select;

pub use compile::{compile, FilterQuery, NotStreamable};
pub use event::{tree_events, xml_events, Event};
pub use filter::{matches_events, matches_tree, MemoryStats};
pub use lower::{compile_with_rewrite, streamability, Streamability};
pub use rewrite::eliminate_upward;
pub use select::{select_events, select_tree, SelectStats};
