//! Iterative tree surgery for mutation, metamorphic oracles, and
//! shrinking.
//!
//! Every operation rebuilds the tree with an explicit work stack — never
//! recursion — so a depth-10⁴ chain (an edge case the test suite insists
//! on) cannot overflow the call stack. Node identifiers are *not*
//! preserved across a rebuild; callers that compare results across trees
//! must compare pre-order ranks or labels, not raw [`NodeId`]s.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use treequery_core::tree::TreeBuilder;
use treequery_core::{NodeId, Tree};

/// Rebuilds `t` with per-node child lists chosen by `children_of` and
/// labels chosen by `label_of`. The root is always kept.
fn rebuild_with(
    t: &Tree,
    children_of: &mut dyn FnMut(&Tree, NodeId) -> Vec<NodeId>,
    label_of: &mut dyn FnMut(&Tree, NodeId) -> String,
) -> Tree {
    let mut b = TreeBuilder::with_capacity(t.len());
    let new_root = b.root(&label_of(t, t.root()));
    let mut stack = vec![(t.root(), new_root)];
    while let Some((old, new)) = stack.pop() {
        for c in children_of(t, old) {
            let nc = b.child(new, &label_of(t, c));
            stack.push((c, nc));
        }
    }
    b.freeze()
}

/// Copies `t` verbatim (fresh ids, same structure and labels).
pub fn copy_tree(t: &Tree) -> Tree {
    rebuild_with(t, &mut |t, v| t.children(v).collect(), &mut |t, v| {
        t.label_name(v).to_owned()
    })
}

/// Deletes the subtree rooted at `victim` (which must not be the root).
pub fn delete_subtree(t: &Tree, victim: NodeId) -> Tree {
    assert!(!t.is_root(victim), "cannot delete the root subtree");
    rebuild_with(
        t,
        &mut |t, v| t.children(v).filter(|&c| c != victim).collect(),
        &mut |t, v| t.label_name(v).to_owned(),
    )
}

/// Relabels a single node.
pub fn relabel(t: &Tree, node: NodeId, label: &str) -> Tree {
    rebuild_with(t, &mut |t, v| t.children(v).collect(), &mut |t, v| {
        if v == node {
            label.to_owned()
        } else {
            t.label_name(v).to_owned()
        }
    })
}

/// Shuffles every node's child list with `rng` (structure below each
/// child is preserved). Used by the order-blindness oracle and the
/// subtree-splice mutator's target selection.
pub fn shuffle_children(t: &Tree, rng: &mut StdRng) -> Tree {
    rebuild_with(
        t,
        &mut |t, v| {
            let mut cs: Vec<NodeId> = t.children(v).collect();
            cs.shuffle(rng);
            cs
        },
        &mut |t, v| t.label_name(v).to_owned(),
    )
}

/// Appends a fresh leaf labelled `label` as the *last* child of the
/// root. Because the new node is last in document order, every original
/// node keeps its pre-order rank — the monotonicity oracle relies on
/// this.
pub fn append_leaf_to_root(t: &Tree, label: &str) -> Tree {
    let mut b = TreeBuilder::with_capacity(t.len() + 1);
    let new_root = b.root(t.label_name(t.root()));
    let mut map = vec![new_root; t.len()];
    let mut stack = vec![t.root()];
    while let Some(old) = stack.pop() {
        for c in t.children(old) {
            map[c.index()] = b.child(map[old.index()], t.label_name(c));
            stack.push(c);
        }
    }
    b.child(new_root, label);
    b.freeze()
}

/// Replaces the subtree at `v` (non-root) with the subtree of `c`,
/// which must be a child of `v` — i.e. contracts the edge by hoisting
/// `c` into `v`'s place (dropping `v` and its other children). The
/// shrinker uses this to flatten chains, which plain subtree deletion
/// cannot do.
pub fn hoist_child(t: &Tree, v: NodeId, c: NodeId) -> Tree {
    assert!(!t.is_root(v), "cannot hoist over the root");
    assert_eq!(t.parent(c), Some(v), "hoist target must be a child");
    rebuild_with(
        t,
        &mut |t, u| t.children(u).map(|x| if x == v { c } else { x }).collect(),
        &mut |t, u| t.label_name(u).to_owned(),
    )
}

/// Extracts the subtree rooted at `c` as a standalone tree (promoting
/// `c` to root). Another chain-flattening shrink reduction.
pub fn promote_to_root(t: &Tree, c: NodeId) -> Tree {
    let mut b = TreeBuilder::with_capacity(t.subtree_size(c) as usize);
    let new_root = b.root(t.label_name(c));
    let mut stack = vec![(c, new_root)];
    while let Some((old, new)) = stack.pop() {
        for ch in t.children(old) {
            let nc = b.child(new, t.label_name(ch));
            stack.push((ch, nc));
        }
    }
    b.freeze()
}

/// Appends a copy of the subtree rooted at `src` as a new last child of
/// `dst` (the subtree-splice mutation). `src` and `dst` may be anywhere,
/// including inside each other: the source subtree is read from the
/// original tree, so no cycle can form.
pub fn splice(t: &Tree, src: NodeId, dst: NodeId) -> Tree {
    let mut b = TreeBuilder::with_capacity(t.len() + t.subtree_size(src) as usize);
    let new_root = b.root(t.label_name(t.root()));
    let mut map = vec![new_root; t.len()];
    let mut stack = vec![t.root()];
    while let Some(old) = stack.pop() {
        for c in t.children(old) {
            map[c.index()] = b.child(map[old.index()], t.label_name(c));
            stack.push(c);
        }
    }
    let copy_root = b.child(map[dst.index()], t.label_name(src));
    let mut stack = vec![(src, copy_root)];
    while let Some((old, new)) = stack.pop() {
        for c in t.children(old) {
            let nc = b.child(new, t.label_name(c));
            stack.push((c, nc));
        }
    }
    b.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use treequery_core::parse_term;
    use treequery_core::tree::deep_path;
    use treequery_core::tree::to_term;

    #[test]
    fn copy_preserves_term() {
        let t = parse_term("r(a(b c) d(e))").unwrap();
        assert_eq!(to_term(&copy_tree(&t)), to_term(&t));
    }

    #[test]
    fn delete_removes_whole_subtree() {
        let t = parse_term("r(a(b c) d)").unwrap();
        let a = t.node_at_pre(1);
        assert_eq!(t.label_name(a), "a");
        assert_eq!(to_term(&delete_subtree(&t, a)), "r(d)");
    }

    #[test]
    fn relabel_changes_one_node() {
        let t = parse_term("r(a a)").unwrap();
        let first_a = t.node_at_pre(1);
        assert_eq!(to_term(&relabel(&t, first_a, "z")), "r(z a)");
    }

    #[test]
    fn append_leaf_keeps_pre_ranks() {
        let t = parse_term("r(a(b) c)").unwrap();
        let t2 = append_leaf_to_root(&t, "zz");
        assert_eq!(to_term(&t2), "r(a(b) c zz)");
        for v in t.nodes() {
            let r = t.pre(v);
            assert_eq!(t.label_name(v), t2.label_name(t2.node_at_pre(r)));
        }
        assert_eq!(t2.label_name(t2.node_at_pre(t.len() as u32)), "zz");
    }

    #[test]
    fn splice_duplicates_subtree() {
        let t = parse_term("r(a(b) c)").unwrap();
        let a = t.node_at_pre(1);
        let c = t.node_at_pre(3);
        assert_eq!(to_term(&splice(&t, a, c)), "r(a(b) c(a(b)))");
    }

    #[test]
    fn hoist_contracts_an_edge() {
        let t = parse_term("r(a(b(c)) d)").unwrap();
        let a = t.node_at_pre(1);
        let b = t.node_at_pre(2);
        assert_eq!(to_term(&hoist_child(&t, a, b)), "r(b(c) d)");
    }

    #[test]
    fn promote_extracts_a_subtree() {
        let t = parse_term("r(a(b(c)) d)").unwrap();
        let a = t.node_at_pre(1);
        assert_eq!(to_term(&promote_to_root(&t, a)), "a(b(c))");
    }

    #[test]
    fn shuffle_preserves_multiset_and_size() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = parse_term("r(a(x y z) b c)").unwrap();
        let t2 = shuffle_children(&t, &mut rng);
        assert_eq!(t2.len(), t.len());
        let mut l1: Vec<String> = t.nodes().map(|v| t.label_name(v).to_owned()).collect();
        let mut l2: Vec<String> = t2.nodes().map(|v| t2.label_name(v).to_owned()).collect();
        l1.sort();
        l2.sort();
        assert_eq!(l1, l2);
    }

    #[test]
    fn deep_chain_operations_do_not_overflow() {
        let t = deep_path(10_000, "a");
        let copy = copy_tree(&t);
        assert_eq!(copy.len(), 10_000);
        let deep = copy.node_at_pre(9_999);
        assert_eq!(relabel(&copy, deep, "z").len(), 10_000);
        let mid = copy.node_at_pre(5_000);
        assert_eq!(delete_subtree(&copy, mid).len(), 5_000);
        assert_eq!(append_leaf_to_root(&copy, "z").len(), 10_001);
    }
}
