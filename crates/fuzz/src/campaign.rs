//! Seed-deterministic fuzzing campaigns.
//!
//! A campaign's workload is a pure function of its seed: the input
//! *quota* is `seconds × inputs_per_second` (a fixed budget, not a
//! wall-clock race), the rng stream is seeded once, and every check —
//! including the rng the order-blindness law uses, and the shrinker's
//! predicate — derives its randomness deterministically from case
//! content. Wall-clock time appears only as an emergency stop (three
//! times the nominal duration) that sets [`CampaignReport::truncated`];
//! on any machine fast enough to finish, two runs with the same seed
//! produce byte-identical [`CampaignReport::render`] output.
//!
//! Category rotation: inputs cycle through the [`Category`]s (all six,
//! or only [`Category::EditDiff`] when [`CampaignConfig::edits_only`] is
//! set), so every active category gets an equal share of the quota
//! regardless of seed. Each category
//! keeps a small pool of recent inputs; a third of new inputs are
//! grammar-level mutants of pool members rather than fresh generations,
//! which concentrates the search around structures that already
//! exercise interesting code paths.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::corpus::{fnv64, save_case, Reproducer};
use crate::diff::{differential_check, edit_differential_check, Corruption, DiffOptions};
use crate::gen::{gen_case, Category, GenConfig};
use crate::mutate::mutate_case;
use crate::oracle::check_laws;
use crate::shrink::shrink;
use crate::FuzzCase;

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Nominal duration; the input quota is `seconds × inputs_per_second`.
    pub seconds: u64,
    /// The campaign seed — the sole source of randomness.
    pub seed: u64,
    /// Deterministic throughput assumption (default 150). The quota, not
    /// the clock, decides how many inputs run.
    pub inputs_per_second: u64,
    /// Where to persist shrunk reproducers; `None` disables persistence.
    pub corpus_dir: Option<PathBuf>,
    /// An injected bug for detector self-tests (see [`Corruption`]).
    pub corrupt: Option<Corruption>,
    /// Restrict the rotation to [`Category::EditDiff`]: every input is a
    /// (tree, query, edit script) triple checked against the rebuild
    /// oracle after each edit. This is `harness fuzz --edits`.
    pub edits_only: bool,
    /// Generator bounds.
    pub gen: GenConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seconds: 10,
            seed: 0,
            inputs_per_second: 150,
            corpus_dir: None,
            corrupt: None,
            edits_only: false,
            gen: GenConfig::default(),
        }
    }
}

/// Per-category campaign statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CategoryStats {
    /// Inputs executed.
    pub inputs: u64,
    /// Individual executor runs / law checks performed.
    pub checks: u64,
    /// Inputs on which a discrepancy or law violation was found.
    pub discrepancies: u64,
    /// Total accepted shrink steps across all discrepancies.
    pub shrink_steps: u64,
}

/// The result of a campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// The seed the campaign ran with.
    pub seed: u64,
    /// The deterministic input quota.
    pub quota: u64,
    /// Whether the emergency wall-clock stop fired before the quota was
    /// reached (making this run's report machine-dependent).
    pub truncated: bool,
    /// Stats per category, in rotation order.
    pub categories: Vec<(&'static str, CategoryStats)>,
    /// Paths of reproducers persisted during this run.
    pub saved: Vec<PathBuf>,
    /// Wall-clock duration (informational; never part of [`render`](Self::render)).
    pub elapsed: Duration,
}

impl CampaignReport {
    /// Total inputs across categories.
    pub fn total_inputs(&self) -> u64 {
        self.categories.iter().map(|(_, s)| s.inputs).sum()
    }

    /// Total discrepancies across categories.
    pub fn total_discrepancies(&self) -> u64 {
        self.categories.iter().map(|(_, s)| s.discrepancies).sum()
    }

    /// Renders the deterministic campaign summary. Contains no wall
    /// times: two runs with the same seed render identically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fuzz campaign: seed {:#x}, quota {} inputs",
            self.seed, self.quota
        );
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>8} {:>14} {:>13}",
            "category", "inputs", "checks", "discrepancies", "shrink-steps"
        );
        for (name, s) in &self.categories {
            let _ = writeln!(
                out,
                "{:<14} {:>8} {:>8} {:>14} {:>13}",
                name, s.inputs, s.checks, s.discrepancies, s.shrink_steps
            );
        }
        let _ = writeln!(
            out,
            "total: {} inputs, {} discrepancies",
            self.total_inputs(),
            self.total_discrepancies()
        );
        if self.truncated {
            let _ = writeln!(
                out,
                "TRUNCATED: emergency wall-clock stop fired before the quota"
            );
        }
        out
    }
}

/// Checks one case the way its category demands. Deterministic: law
/// categories derive their rng from the case content, so the same case
/// always gets the same verdict — which is also what makes the
/// shrinker's predicate stable.
fn case_fails(
    case: &FuzzCase,
    cat: Category,
    corrupt: Option<Corruption>,
) -> (Option<String>, usize) {
    match cat {
        Category::XPathDiff | Category::CqDiff | Category::DatalogDiff => {
            let opts = DiffOptions {
                corrupt,
                ..DiffOptions::default()
            };
            let (d, checks) = differential_check(case, &opts);
            (d.map(|d| d.to_string()), checks)
        }
        Category::EditDiff => {
            let opts = DiffOptions {
                corrupt,
                ..DiffOptions::default()
            };
            let (d, checks) = edit_differential_check(case, &opts);
            (d.map(|d| d.to_string()), checks)
        }
        Category::XPathLaws | Category::CqLaws => {
            let key = format!(
                "{}\n{}",
                treequery_core::tree::to_term(&case.tree),
                case.query
            );
            let mut rng = StdRng::seed_from_u64(fnv64(&key));
            let (v, checks) = check_laws(case, &mut rng);
            (v.map(|v| v.to_string()), checks)
        }
    }
}

/// Runs a campaign to completion (or to the emergency stop).
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let start = Instant::now();
    let quota = cfg.seconds.saturating_mul(cfg.inputs_per_second);
    let deadline = start + Duration::from_secs(cfg.seconds.saturating_mul(3).max(5));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    const N: usize = Category::ALL.len();
    let mut stats = [CategoryStats::default(); N];
    let mut pools: [Vec<FuzzCase>; N] = Default::default();
    let mut saved = Vec::new();
    let mut truncated = false;
    let rotation: &[Category] = if cfg.edits_only {
        &[Category::EditDiff]
    } else {
        &Category::ALL
    };

    for i in 0..quota {
        if Instant::now() > deadline {
            truncated = true;
            break;
        }
        let cat = rotation[(i as usize) % rotation.len()];
        let ci = Category::ALL
            .iter()
            .position(|c| *c == cat)
            .expect("rotation subset of ALL");
        let case = if !pools[ci].is_empty() && rng.gen_bool(1.0 / 3.0) {
            let base = pools[ci]
                .choose(&mut rng)
                .expect("pool checked non-empty")
                .clone();
            mutate_case(&mut rng, &cfg.gen, &base)
        } else {
            gen_case(&mut rng, &cfg.gen, cat)
        };
        stats[ci].inputs += 1;
        let (failure, checks) = case_fails(&case, cat, cfg.corrupt);
        stats[ci].checks += checks as u64;
        if let Some(desc) = failure {
            stats[ci].discrepancies += 1;
            let (min, sstats) = shrink(&case, &mut |c| case_fails(c, cat, cfg.corrupt).0.is_some());
            stats[ci].shrink_steps += sstats.steps as u64;
            if let Some(dir) = &cfg.corpus_dir {
                let r = Reproducer {
                    category: cat.name().to_owned(),
                    case: min,
                    note: format!("seed {:#x}: {desc}", cfg.seed),
                };
                if let Ok(path) = save_case(dir, &r) {
                    saved.push(path);
                }
            }
        } else {
            pools[ci].push(case);
            if pools[ci].len() > 8 {
                pools[ci].remove(0);
            }
        }
    }

    // Surface per-category stats through the observability layer, so a
    // tracing recorder (EXPLAIN ANALYZE-style) sees the campaign too.
    for (ci, cat) in Category::ALL.iter().enumerate() {
        let mut span = treequery_core::obs::span("fuzz.category");
        span.record_str("category", cat.name());
        span.record_u64("inputs", stats[ci].inputs);
        span.record_u64("checks", stats[ci].checks);
        span.record_u64("discrepancies", stats[ci].discrepancies);
        span.record_u64("shrink_steps", stats[ci].shrink_steps);
    }

    CampaignReport {
        seed: cfg.seed,
        quota,
        truncated,
        categories: Category::ALL
            .iter()
            .enumerate()
            .map(|(ci, c)| (c.name(), stats[ci]))
            .collect(),
        saved,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::CorruptionKind;
    use treequery_core::Strategy;

    fn quick(seed: u64) -> CampaignConfig {
        CampaignConfig {
            seconds: 1,
            seed,
            inputs_per_second: 60,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn same_seed_same_report() {
        let a = run_campaign(&quick(0xC0C4));
        let b = run_campaign(&quick(0xC0C4));
        assert!(!a.truncated && !b.truncated, "quick campaign must finish");
        assert_eq!(a.render(), b.render());
        assert_eq!(a.total_inputs(), 60);
        assert_eq!(a.total_discrepancies(), 0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_campaign(&quick(1));
        let b = run_campaign(&quick(2));
        // Same totals (the quota is fixed), but the per-category check
        // counts almost surely differ because the inputs do.
        assert_eq!(a.total_inputs(), b.total_inputs());
        let ca: Vec<u64> = a.categories.iter().map(|(_, s)| s.checks).collect();
        let cb: Vec<u64> = b.categories.iter().map(|(_, s)| s.checks).collect();
        assert_ne!(ca, cb, "different seeds should explore different inputs");
    }

    #[test]
    fn edits_only_mode_restricts_rotation() {
        let cfg = CampaignConfig {
            edits_only: true,
            inputs_per_second: 30,
            ..quick(0xED17)
        };
        let report = run_campaign(&cfg);
        assert!(!report.truncated, "edits-only quick campaign must finish");
        assert_eq!(report.total_discrepancies(), 0);
        for (name, s) in &report.categories {
            if *name == "edit-diff" {
                assert_eq!(s.inputs, 30, "every input goes to edit-diff");
                assert!(s.checks > 30, "each edit contributes several checks");
            } else {
                assert_eq!(s.inputs, 0, "{name} must be idle in --edits mode");
            }
        }
    }

    #[test]
    fn injected_bug_is_found_and_shrunk() {
        let dir = std::env::temp_dir().join("treequery-fuzz-campaign-test");
        let _ = std::fs::remove_dir_all(&dir);
        // 3 seconds × 60/s = 36 xpath-diff inputs: enough that at least
        // one has a non-empty answer for DropLast to corrupt, whatever
        // the rng stream does.
        let cfg = CampaignConfig {
            corrupt: Some(Corruption {
                strategy: Strategy::XPathSetAtATime,
                kind: CorruptionKind::DropLast,
            }),
            corpus_dir: Some(dir.clone()),
            seconds: 3,
            ..quick(7)
        };
        let report = run_campaign(&cfg);
        assert!(
            report.total_discrepancies() > 0,
            "an always-on corrupted strategy must be caught"
        );
        assert!(!report.saved.is_empty(), "reproducers must be persisted");
        let corpus = crate::corpus::load_dir(&dir).unwrap();
        assert!(!corpus.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
