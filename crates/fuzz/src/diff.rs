//! The differential executor: one input, every applicable strategy.
//!
//! A case is lowered once to the shared IR; `applicable_strategies`
//! (the planner's own notion of which strategies are *correct* for the
//! IR) gives the executor list, and each is forced via
//! `Engine::eval_ir_via` under every configured worker count. XPath
//! cases additionally run through the streaming automaton path when the
//! query is streamable (directly or after the Section 5 forward
//! rewrite); datalog cases are cross-checked against naive evaluation
//! and the TMNF normal form. All outputs are normalized and compared
//! against the first executor; any disagreement is a [`Discrepancy`].
//!
//! For tests of the *detector itself*, a [`Corruption`] can be injected:
//! it tampers with the output of one named strategy, simulating a bug in
//! exactly one implementation, which the differential check must then
//! catch (and the shrinker must minimize).

use std::collections::BTreeSet;
use std::fmt;

use treequery_core::plan::QueryOutput;
use treequery_core::{streaming, Engine, NodeId, Strategy};

use crate::{CaseQuery, FuzzCase};

/// A strategy's output in comparable form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Norm {
    /// A document-ordered node list (XPath / datalog results).
    Nodes(Vec<NodeId>),
    /// A set of result tuples (CQ results).
    Tuples(BTreeSet<Vec<NodeId>>),
    /// A Boolean verdict (Boolean CQs answered by satisfiability-only
    /// strategies such as the X-property arc-consistency check).
    Bool(bool),
}

impl Norm {
    /// Whether two normalized outputs agree. A [`Norm::Bool`] agrees
    /// with a tuple set iff the set's non-emptiness matches — the
    /// X-property strategy answers only satisfiability, which is still
    /// a meaningful cross-check against enumerating strategies.
    pub fn agrees(&self, other: &Norm) -> bool {
        match (self, other) {
            (Norm::Bool(a), Norm::Bool(b)) => a == b,
            (Norm::Bool(a), Norm::Tuples(t)) | (Norm::Tuples(t), Norm::Bool(a)) => {
                *a != t.is_empty()
            }
            (Norm::Bool(a), Norm::Nodes(n)) | (Norm::Nodes(n), Norm::Bool(a)) => *a != n.is_empty(),
            (a, b) => a == b,
        }
    }

    fn summary(&self) -> String {
        match self {
            Norm::Nodes(n) => format!("{} nodes: {:?}", n.len(), &n[..n.len().min(8)]),
            Norm::Tuples(t) => {
                let head: Vec<_> = t.iter().take(4).collect();
                format!("{} tuples: {head:?}", t.len())
            }
            Norm::Bool(b) => format!("bool: {b}"),
        }
    }
}

/// Which corrupted answer to fake, for detector self-tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Drop the last node/tuple from the answer (an off-by-one bug).
    DropLast,
    /// Flip a Boolean verdict.
    FlipBool,
}

/// A simulated bug: tamper with the output of one strategy.
#[derive(Clone, Copy, Debug)]
pub struct Corruption {
    /// The strategy whose output is corrupted.
    pub strategy: Strategy,
    /// How the output is corrupted.
    pub kind: CorruptionKind,
}

impl Corruption {
    fn apply(&self, n: Norm) -> Norm {
        match (self.kind, n) {
            (CorruptionKind::DropLast, Norm::Nodes(mut v)) => {
                v.pop();
                Norm::Nodes(v)
            }
            (CorruptionKind::DropLast, Norm::Tuples(mut t)) => {
                let last = t.iter().next_back().cloned();
                if let Some(last) = last {
                    t.remove(&last);
                }
                Norm::Tuples(t)
            }
            (CorruptionKind::FlipBool, Norm::Bool(b)) => Norm::Bool(!b),
            (CorruptionKind::FlipBool, Norm::Tuples(t)) => {
                // Flip the satisfiability verdict of a tuple set.
                if t.is_empty() {
                    Norm::Tuples(std::iter::once(Vec::new()).collect())
                } else {
                    Norm::Tuples(BTreeSet::new())
                }
            }
            (_, other) => other,
        }
    }
}

/// Options for a differential check.
#[derive(Clone, Debug)]
pub struct DiffOptions {
    /// Worker counts to force for every strategy.
    pub worker_counts: Vec<usize>,
    /// Whether to also run the streaming path on streamable XPath.
    pub check_streaming: bool,
    /// Whether to also cross-check datalog against naive evaluation and
    /// its TMNF normal form.
    pub check_datalog_variants: bool,
    /// An injected bug, for detector self-tests.
    pub corrupt: Option<Corruption>,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            worker_counts: vec![1, 4],
            check_streaming: true,
            check_datalog_variants: true,
            corrupt: None,
        }
    }
}

/// A disagreement between two executors on the same input.
#[derive(Clone, Debug)]
pub struct Discrepancy {
    /// Label of the executor whose answer is taken as the reference.
    pub baseline: String,
    /// Label of the disagreeing executor.
    pub culprit: String,
    /// Human-readable summaries of the two answers.
    pub detail: String,
}

impl fmt::Display for Discrepancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} disagrees with {}: {}",
            self.culprit, self.baseline, self.detail
        )
    }
}

fn normalize(out: QueryOutput) -> Norm {
    match out {
        QueryOutput::Nodes(v) => Norm::Nodes(v),
        // Satisfiability-only strategies (the X-property check) already
        // materialize their verdict as `{()}` / `{}`, and such strategies
        // are only applicable to Boolean queries — so tuple comparison is
        // exact for every CQ strategy.
        QueryOutput::Answer(a) => Norm::Tuples(a.tuples),
    }
}

/// Runs `case` through every applicable executor and cross-checks the
/// answers. Returns the first disagreement found, or `None` when all
/// executors agree. The number of executor runs is reported through the
/// second tuple element so campaigns can count real work.
pub fn differential_check(case: &FuzzCase, opts: &DiffOptions) -> (Option<Discrepancy>, usize) {
    let ir = case.query.lower();
    let strategies = treequery_core::applicable_strategies(&ir);
    let engine = Engine::new(&case.tree);
    let mut results: Vec<(String, Norm)> = Vec::new();

    for &s in &strategies {
        for &w in &opts.worker_counts {
            let out = engine
                .eval_ir_via(&ir, s, w)
                .expect("forced applicable strategy must not fail");
            let mut norm = normalize(out);
            if let Some(c) = opts.corrupt {
                if c.strategy == s {
                    norm = c.apply(norm);
                }
            }
            results.push((format!("{s} [workers={w}]"), norm));
        }
    }

    // The planner's own (uncorrupted) choice, as one more executor.
    let planned = engine
        .eval_ir(&ir)
        .expect("planner evaluation must not fail");
    results.push(("planner".into(), normalize(planned)));

    if let CaseQuery::XPath(p) = &case.query {
        if opts.check_streaming {
            if let Ok((filter, _rewritten)) = streaming::compile_with_rewrite(p) {
                let (nodes, _stats) = streaming::select_tree(&filter, &case.tree);
                results.push(("streaming".into(), Norm::Nodes(nodes)));
            }
        }
    }

    if let CaseQuery::Datalog(prog) = &case.query {
        if opts.check_datalog_variants {
            if let Some(qp) = prog.query {
                let naive = treequery_core::datalog::eval_naive(prog, &case.tree);
                results.push((
                    "datalog-naive".into(),
                    Norm::Nodes(sorted_nodes(&case.tree, &naive[qp.index()])),
                ));
                if let Ok(tmnf) = treequery_core::datalog::to_tmnf(prog) {
                    let tm = treequery_core::datalog::eval_query(&tmnf, &case.tree);
                    results.push((
                        "datalog-tmnf".into(),
                        Norm::Nodes(sorted_nodes(&case.tree, &tm)),
                    ));
                }
            }
        }
    }

    let checks = results.len();
    let (base_label, base) = &results[0];
    for (label, norm) in &results[1..] {
        if !norm.agrees(base) {
            return (
                Some(Discrepancy {
                    baseline: base_label.clone(),
                    culprit: label.clone(),
                    detail: format!("{} vs {}", norm.summary(), base.summary()),
                }),
                checks,
            );
        }
    }
    (None, checks)
}

fn sorted_nodes(t: &treequery_core::Tree, set: &treequery_core::NodeSet) -> Vec<NodeId> {
    let mut v = set.to_vec();
    t.sort_by_pre(&mut v);
    v
}

/// Maps node ids to pre-order ranks. Ids are allocation-ordered in an
/// edited document (inserts append) but pre-ordered in a from-scratch
/// rebuild, so ranks are the only coordinate in which the two sides of
/// the edit differential are comparable.
fn pre_rank_norm(t: &treequery_core::Tree, n: Norm) -> Norm {
    let rank = |v: NodeId| NodeId(t.pre(v));
    match n {
        Norm::Nodes(v) => Norm::Nodes(v.into_iter().map(rank).collect()),
        Norm::Tuples(ts) => Norm::Tuples(
            ts.into_iter()
                .map(|tup| tup.into_iter().map(rank).collect())
                .collect(),
        ),
        Norm::Bool(b) => Norm::Bool(b),
    }
}

/// Replays `case.edits` on an incrementally maintained
/// [`Document`](treequery_core::Document),
/// cross-checking after every *effective* op (ops normalized to a skip
/// are silently dropped, as everywhere else):
///
/// * every applicable strategy × worker count on the live (incrementally
///   edited, plan-cache-sharing) document, plus the planner's own choice
///   and — for datalog — the semi-naive delta pass behind
///   [`Document::watch_datalog`](treequery_core::Document::watch_datalog),
///   against a **from-scratch rebuild
///   oracle**: a cold engine over `parse_term(to_term(live_tree))`
///   (fresh arena, fresh interner, fresh plans), compared by pre rank;
/// * the per-edit-patched [`treequery_core::storage::Xasr`] against one
///   rebuilt from the live tree;
/// * the document's incrementally patched tree fingerprint against a
///   full recomputation on the rebuilt tree.
///
/// A [`Corruption`] perturbs the live side's strategy outputs, so the
/// detector self-test proves disagreements after an edit are caught.
pub fn edit_differential_check(
    case: &FuzzCase,
    opts: &DiffOptions,
) -> (Option<Discrepancy>, usize) {
    use treequery_core::storage::Xasr;
    use treequery_core::tree::to_term;
    use treequery_core::{parse_term, Document};

    let ir = case.query.lower();
    let strategies = treequery_core::applicable_strategies(&ir);
    let mut doc = Document::new(case.tree.clone());
    let mut xasr = Xasr::from_tree(doc.tree());
    let watch = match &case.query {
        CaseQuery::Datalog(p) if p.query.is_some() => {
            doc.watch_datalog(&crate::corpus::render_program(p)).ok()
        }
        _ => None,
    };
    let mut checks = 0usize;
    for (step, op) in case.edits.iter().enumerate() {
        let Some(delta) = doc.edit(op) else { continue };
        xasr.apply_edit(doc.tree(), &delta);

        let rebuilt = parse_term(&to_term(doc.tree())).expect("document renders a valid term");
        let oracle = Engine::new(&rebuilt);
        let base_label = format!("rebuild-oracle [step {step}]");
        let base = pre_rank_norm(
            &rebuilt,
            normalize(
                oracle
                    .eval_ir(&ir)
                    .expect("oracle evaluation must not fail"),
            ),
        );

        let live = doc.engine();
        let mut results: Vec<(String, Norm)> = Vec::new();
        for &s in &strategies {
            for &w in &opts.worker_counts {
                let out = live
                    .eval_ir_via(&ir, s, w)
                    .expect("forced applicable strategy must not fail");
                let mut norm = pre_rank_norm(doc.tree(), normalize(out));
                if let Some(c) = opts.corrupt {
                    if c.strategy == s {
                        norm = c.apply(norm);
                    }
                }
                results.push((format!("{s} [workers={w}, step {step}]"), norm));
            }
        }
        results.push((
            format!("planner [step {step}]"),
            pre_rank_norm(
                doc.tree(),
                normalize(live.eval_ir(&ir).expect("planner evaluation must not fail")),
            ),
        ));
        if let Some(id) = watch {
            let ranks = doc
                .watched(id)
                .into_iter()
                .map(|v| NodeId(doc.tree().pre(v)));
            results.push((
                format!("datalog-incremental [step {step}]"),
                Norm::Nodes(ranks.collect()),
            ));
        }

        checks += results.len();
        for (label, norm) in &results {
            if !norm.agrees(&base) {
                return (
                    Some(Discrepancy {
                        baseline: base_label.clone(),
                        culprit: label.clone(),
                        detail: format!("after {op}: {} vs {}", norm.summary(), base.summary()),
                    }),
                    checks,
                );
            }
        }

        checks += 1;
        if !xasr.equiv(&Xasr::from_tree(doc.tree())) {
            return (
                Some(Discrepancy {
                    baseline: format!("xasr-rebuild [step {step}]"),
                    culprit: format!("xasr-patched [step {step}]"),
                    detail: format!("XASR diverged from rebuild after {op}"),
                }),
                checks,
            );
        }

        checks += 1;
        let full_fp = treequery_core::plan::tree_fingerprint(&rebuilt);
        if doc.fingerprint() != full_fp {
            return (
                Some(Discrepancy {
                    baseline: format!("fingerprint-recompute [step {step}]"),
                    culprit: format!("fingerprint-patched [step {step}]"),
                    detail: format!("after {op}: {:#x} vs {full_fp:#x}", doc.fingerprint()),
                }),
                checks,
            );
        }
    }
    (None, checks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_case, Category, GenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use treequery_core::parse_term;

    fn fixture() -> treequery_core::Tree {
        parse_term("r(a(b(c) b) a(c(b)) b(a))").unwrap()
    }

    #[test]
    fn generated_inputs_agree_across_strategies() {
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(1234);
        let opts = DiffOptions::default();
        for i in 0..60 {
            let cat = Category::ALL[i % 3]; // the three diff categories
            let case = gen_case(&mut rng, &cfg, cat);
            let (d, checks) = differential_check(&case, &opts);
            assert!(checks >= 2, "at least two executors must run");
            assert!(d.is_none(), "discrepancy on {}: {}", case.query, d.unwrap());
        }
    }

    #[test]
    fn injected_bug_is_detected() {
        let case = FuzzCase {
            tree: fixture(),
            query: CaseQuery::XPath(
                treequery_core::xpath::parse_xpath("descendant::*[lab()=b]").unwrap(),
            ),
            edits: Vec::new(),
        };
        let mut opts = DiffOptions::default();
        let (ok, _) = differential_check(&case, &opts);
        assert!(ok.is_none());
        opts.corrupt = Some(Corruption {
            strategy: Strategy::XPathSetAtATime,
            kind: CorruptionKind::DropLast,
        });
        let (bad, _) = differential_check(&case, &opts);
        let d = bad.expect("corrupted strategy must be flagged");
        // The corrupted strategy is the baseline (first applicable), so
        // every honest executor shows up as the "culprit" against it.
        assert!(d.baseline.contains("set-at-a-time"), "got {d}");
    }

    #[test]
    fn edit_scripts_agree_with_rebuild_oracle() {
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(4242);
        let opts = DiffOptions::default();
        let mut effective_steps = 0;
        for _ in 0..40 {
            let case = gen_case(&mut rng, &cfg, Category::EditDiff);
            let (d, checks) = edit_differential_check(&case, &opts);
            effective_steps += checks;
            assert!(
                d.is_none(),
                "edit discrepancy on {}: {}",
                case.query,
                d.unwrap()
            );
        }
        assert!(
            effective_steps > 100,
            "edit scripts degenerated: only {effective_steps} checks ran"
        );
    }

    #[test]
    fn injected_bug_after_an_edit_is_detected() {
        use treequery_core::tree::EditOp;
        let case = FuzzCase {
            tree: fixture(),
            query: CaseQuery::XPath(
                treequery_core::xpath::parse_xpath("descendant::*[lab()=b]").unwrap(),
            ),
            edits: vec![
                EditOp::Relabel {
                    pre: 3,
                    label: "b".into(),
                },
                EditOp::InsertLeaf {
                    parent_pre: 0,
                    child_idx: 0,
                    label: "b".into(),
                },
            ],
        };
        let mut opts = DiffOptions::default();
        let (ok, checks) = edit_differential_check(&case, &opts);
        assert!(ok.is_none());
        assert!(checks >= 2, "both edits must be checked");
        opts.corrupt = Some(Corruption {
            strategy: Strategy::XPathSetAtATime,
            kind: CorruptionKind::DropLast,
        });
        let (bad, _) = edit_differential_check(&case, &opts);
        let d = bad.expect("a corrupted strategy must be flagged after an edit");
        assert!(d.culprit.contains("set-at-a-time"), "got {d}");
        assert!(d.baseline.contains("rebuild-oracle"), "got {d}");
    }

    #[test]
    fn bool_norm_agrees_with_nonempty_tuples() {
        let mut t = BTreeSet::new();
        t.insert(vec![]);
        assert!(Norm::Bool(true).agrees(&Norm::Tuples(t.clone())));
        assert!(!Norm::Bool(false).agrees(&Norm::Tuples(t)));
        assert!(Norm::Bool(false).agrees(&Norm::Tuples(BTreeSet::new())));
    }
}
