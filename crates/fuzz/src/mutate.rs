//! Structure-aware, grammar-level mutations.
//!
//! Mutations act on the ASTs, not on text, so every mutant is
//! well-formed by construction: an axis swap yields a different valid
//! axis, a predicate delete removes a whole qualifier, a subtree splice
//! duplicates a real subtree. This keeps the fuzzer exploring the
//! *semantic* neighbourhood of an input instead of bouncing off parse
//! errors.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use treequery_core::cq::{Cq, CqAtom};
use treequery_core::datalog::{BasePred, BinRel, BodyAtom, Program, UnaryRef};
use treequery_core::tree::EditOp;
use treequery_core::xpath::{Path, Qual};
use treequery_core::{Axis, NodeId, Tree};

use crate::gen::GenConfig;
use crate::{treeops, CaseQuery, FuzzCase};

// ---------------------------------------------------------------------
// XPath AST visitors: steps are numbered in a fixed pre-order so a
// random index deterministically picks a mutation site.

fn visit_steps_mut(
    p: &mut Path,
    k: &mut usize,
    target: usize,
    f: &mut dyn FnMut(&mut Axis, &mut Vec<Qual>),
) {
    match p {
        Path::Step { axis, quals } => {
            if *k == target {
                f(axis, quals);
            }
            *k += 1;
            for q in quals.iter_mut() {
                visit_quals_mut(q, k, target, f);
            }
        }
        Path::Seq(a, b) | Path::Union(a, b) => {
            visit_steps_mut(a, k, target, f);
            visit_steps_mut(b, k, target, f);
        }
    }
}

fn visit_quals_mut(
    q: &mut Qual,
    k: &mut usize,
    target: usize,
    f: &mut dyn FnMut(&mut Axis, &mut Vec<Qual>),
) {
    match q {
        Qual::Path(p) => visit_steps_mut(p, k, target, f),
        Qual::Label(_) => {}
        Qual::And(a, b) | Qual::Or(a, b) => {
            visit_quals_mut(a, k, target, f);
            visit_quals_mut(b, k, target, f);
        }
        Qual::Not(inner) => visit_quals_mut(inner, k, target, f),
    }
}

fn count_steps(p: &Path) -> usize {
    let mut clone = p.clone();
    let mut k = 0;
    visit_steps_mut(&mut clone, &mut k, usize::MAX, &mut |_, _| {});
    k
}

fn visit_labels_mut(p: &mut Path, k: &mut usize, target: usize, f: &mut dyn FnMut(&mut String)) {
    visit_steps_mut(p, &mut 0, usize::MAX, &mut |_, quals| {
        for q in quals.iter_mut() {
            if let Qual::Label(l) = q {
                if *k == target {
                    f(l);
                }
                *k += 1;
            }
        }
    });
}

fn count_labels(p: &Path) -> usize {
    let mut clone = p.clone();
    let mut k = 0;
    visit_labels_mut(&mut clone, &mut k, usize::MAX, &mut |_| {});
    k
}

// ---------------------------------------------------------------------
// Per-language query mutations.

fn swap_axis(rng: &mut StdRng, old: Axis) -> Axis {
    loop {
        let ax = *Axis::ALL.choose(rng).expect("axis list is non-empty");
        if ax != old {
            return ax;
        }
    }
}

fn mutate_xpath(rng: &mut StdRng, cfg: &GenConfig, p: &Path) -> Path {
    let mut out = p.clone();
    let steps = count_steps(&out);
    match rng.gen_range(0u32..4) {
        // Axis swap.
        0 => {
            let target = rng.gen_range(0..steps);
            let mut k = 0;
            let mut new_axis = None;
            visit_steps_mut(&mut out, &mut k, target, &mut |axis, _| {
                let ax = new_axis.get_or_insert(*axis);
                *axis = *ax;
            });
            // Two passes keep the rng draw outside the visitor closure.
            let mut k = 0;
            let replacement = swap_axis(rng, new_axis.unwrap_or(Axis::Child));
            visit_steps_mut(&mut out, &mut k, target, &mut |axis, _| *axis = replacement);
            out
        }
        // Predicate insert.
        1 => {
            let target = rng.gen_range(0..steps);
            let label = cfg.label(rng);
            let mut k = 0;
            visit_steps_mut(&mut out, &mut k, target, &mut |_, quals| {
                quals.push(Qual::Label(label.clone()));
            });
            out
        }
        // Predicate delete (falls back to insert on a bare step).
        2 => {
            let target = rng.gen_range(0..steps);
            let idx = rng.gen::<u32>() as usize;
            let label = cfg.label(rng);
            let mut k = 0;
            visit_steps_mut(&mut out, &mut k, target, &mut |_, quals| {
                if quals.is_empty() {
                    quals.push(Qual::Label(label.clone()));
                } else {
                    let i = idx % quals.len();
                    quals.remove(i);
                }
            });
            out
        }
        // Label rename (falls back to insert when no label qualifier).
        _ => {
            let labels = count_labels(&out);
            if labels == 0 {
                return mutate_xpath(rng, cfg, p);
            }
            let target = rng.gen_range(0..labels);
            let label = cfg.label(rng);
            let mut k = 0;
            visit_labels_mut(&mut out, &mut k, target, &mut |l| *l = label.clone());
            out
        }
    }
}

/// Variables that occur in at least one atom of `q`.
fn covered_vars(q: &Cq) -> Vec<treequery_core::cq::CqVar> {
    let mut vs: Vec<_> = q.atoms.iter().flat_map(|a| a.vars()).collect();
    vs.sort_by_key(|v| v.index());
    vs.dedup();
    vs
}

fn mutate_cq(rng: &mut StdRng, cfg: &GenConfig, q: &Cq) -> Cq {
    let mut out = q.clone();
    match rng.gen_range(0u32..5) {
        // Axis swap on a random axis atom.
        0 => {
            let idxs: Vec<_> = (0..out.atoms.len())
                .filter(|&i| matches!(out.atoms[i], CqAtom::Axis(..)))
                .collect();
            if let Some(&i) = idxs.choose(rng) {
                if let CqAtom::Axis(ax, x, y) = out.atoms[i] {
                    out.atoms[i] = CqAtom::Axis(swap_axis(rng, ax), x, y);
                }
            }
            out
        }
        // Atom insert over existing variables.
        1 => {
            let vars = covered_vars(&out);
            if let (Some(&v), Some(&w)) = (vars.choose(rng), vars.choose(rng)) {
                let atom = match rng.gen_range(0u32..3) {
                    0 => CqAtom::Label(cfg.label(rng), v),
                    1 => CqAtom::Axis(
                        *Axis::ALL.choose(rng).expect("axis list is non-empty"),
                        v,
                        w,
                    ),
                    _ => CqAtom::Leaf(v),
                };
                out.atoms.push(atom);
            }
            out
        }
        // Atom delete, provided every head variable stays covered.
        2 => {
            if out.atoms.len() > 1 {
                let i = rng.gen_range(0..out.atoms.len());
                let mut candidate = out.clone();
                candidate.atoms.remove(i);
                let covered = covered_vars(&candidate);
                if candidate.head.iter().all(|v| covered.contains(v)) {
                    return crate::compact_cq(&candidate);
                }
            }
            out
        }
        // Label rename.
        3 => {
            let idxs: Vec<_> = (0..out.atoms.len())
                .filter(|&i| matches!(out.atoms[i], CqAtom::Label(..)))
                .collect();
            if let Some(&i) = idxs.choose(rng) {
                if let CqAtom::Label(_, v) = out.atoms[i] {
                    out.atoms[i] = CqAtom::Label(cfg.label(rng), v);
                }
            }
            out
        }
        // Toggle a head variable.
        _ => {
            if !out.head.is_empty() && rng.gen_bool(0.5) {
                out.head.pop();
            } else {
                let vars = covered_vars(&out);
                if let Some(&v) = vars.choose(rng) {
                    out.head.push(v);
                }
            }
            out
        }
    }
}

fn mutate_datalog(rng: &mut StdRng, cfg: &GenConfig, p: &Program) -> Program {
    let mut out = p.clone();
    match rng.gen_range(0u32..4) {
        // Rename a label in some label/notlabel body atom.
        0 => {
            let label = cfg.label(rng);
            let sites: Vec<(usize, usize)> = out
                .rules
                .iter()
                .enumerate()
                .flat_map(|(ri, r)| {
                    r.body.iter().enumerate().filter_map(move |(ai, a)| {
                        matches!(
                            a,
                            BodyAtom::Unary(
                                UnaryRef::Base(BasePred::Label(_) | BasePred::NotLabel(_)),
                                _
                            )
                        )
                        .then_some((ri, ai))
                    })
                })
                .collect();
            if let Some(&(ri, ai)) = sites.choose(rng) {
                if let BodyAtom::Unary(UnaryRef::Base(base), v) = &out.rules[ri].body[ai] {
                    let new = match base {
                        BasePred::Label(_) => BasePred::Label(label),
                        _ => BasePred::NotLabel(label),
                    };
                    out.rules[ri].body[ai] = BodyAtom::Unary(UnaryRef::Base(new), *v);
                }
            }
            out
        }
        // Delete a whole rule (keeping at least one).
        1 => {
            if out.rules.len() > 1 {
                let i = rng.gen_range(0..out.rules.len());
                out.rules.remove(i);
            }
            out
        }
        // Delete a body atom if the rule stays safe.
        2 => {
            let ri = rng.gen_range(0..out.rules.len());
            if out.rules[ri].body.len() > 1 {
                let ai = rng.gen_range(0..out.rules[ri].body.len());
                let mut rule = out.rules[ri].clone();
                rule.body.remove(ai);
                if rule.is_safe() {
                    out.rules[ri] = rule;
                }
            }
            out
        }
        // Swap the relation of a binary atom.
        _ => {
            let rels = [BinRel::FirstChild, BinRel::NextSibling, BinRel::Child];
            let sites: Vec<(usize, usize)> = out
                .rules
                .iter()
                .enumerate()
                .flat_map(|(ri, r)| {
                    r.body.iter().enumerate().filter_map(move |(ai, a)| {
                        matches!(a, BodyAtom::Binary(..)).then_some((ri, ai))
                    })
                })
                .collect();
            if let Some(&(ri, ai)) = sites.choose(rng) {
                if let BodyAtom::Binary(_, x, y) = out.rules[ri].body[ai] {
                    let rel = *rels.choose(rng).expect("rels is non-empty");
                    out.rules[ri].body[ai] = BodyAtom::Binary(rel, x, y);
                }
            }
            out
        }
    }
}

fn random_node(rng: &mut StdRng, t: &Tree) -> NodeId {
    t.node_at_pre(rng.gen_range(0..t.len() as u32))
}

fn mutate_tree(rng: &mut StdRng, cfg: &GenConfig, t: &Tree) -> Tree {
    match rng.gen_range(0u32..4) {
        // Subtree splice (bounded so repeated mutation can't blow up).
        0 => {
            let src = random_node(rng, t);
            let dst = random_node(rng, t);
            if t.len() + t.subtree_size(src) as usize <= 2 * cfg.max_nodes.max(1) {
                treeops::splice(t, src, dst)
            } else {
                treeops::relabel(t, src, &cfg.label(rng))
            }
        }
        // Subtree delete.
        1 => {
            if t.len() > 1 {
                let v = t.node_at_pre(rng.gen_range(1..t.len() as u32));
                treeops::delete_subtree(t, v)
            } else {
                treeops::relabel(t, t.root(), &cfg.label(rng))
            }
        }
        // Label rename.
        2 => {
            let v = random_node(rng, t);
            treeops::relabel(t, v, &cfg.label(rng))
        }
        // Sibling shuffle.
        _ => treeops::shuffle_children(t, rng),
    }
}

/// Mutates an edit script: drop, duplicate, or append an op, perturb an
/// address, or rename an op label. Addresses are raw `u32`s with total
/// normalization semantics, so every mutant script is valid against
/// every tree.
fn mutate_edits(rng: &mut StdRng, cfg: &GenConfig, edits: &[EditOp]) -> Vec<EditOp> {
    let mut out = edits.to_vec();
    match rng.gen_range(0u32..5) {
        // Drop an op.
        0 => {
            if !out.is_empty() {
                let i = rng.gen_range(0..out.len());
                out.remove(i);
            }
            out
        }
        // Duplicate an op (re-running a total op is always meaningful).
        1 => {
            if let Some(i) = (!out.is_empty()).then(|| rng.gen_range(0..out.len())) {
                let op = out[i].clone();
                out.insert(i, op);
            }
            out
        }
        // Append a fresh op.
        2 => {
            out.extend(crate::gen::gen_edit_script(rng, cfg).into_iter().take(1));
            out
        }
        // Perturb an address.
        3 => {
            if let Some(i) = (!out.is_empty()).then(|| rng.gen_range(0..out.len())) {
                let bump = rng.gen_range(1..8u32);
                match &mut out[i] {
                    EditOp::InsertLeaf { parent_pre, .. } => {
                        *parent_pre = parent_pre.wrapping_add(bump)
                    }
                    EditOp::DeleteSubtree { pre } => *pre = pre.wrapping_add(bump),
                    EditOp::Relabel { pre, .. } => *pre = pre.wrapping_add(bump),
                }
            }
            out
        }
        // Rename an op label (deletes have none; fall through to drop).
        _ => {
            let label = cfg.label(rng);
            let sites: Vec<usize> = (0..out.len())
                .filter(|&i| !matches!(out[i], EditOp::DeleteSubtree { .. }))
                .collect();
            if let Some(&i) = sites.choose(rng) {
                match &mut out[i] {
                    EditOp::InsertLeaf { label: l, .. } | EditOp::Relabel { label: l, .. } => {
                        *l = label;
                    }
                    EditOp::DeleteSubtree { .. } => {}
                }
            }
            out
        }
    }
}

/// Mutates a case: the tree, the query, or (for edit-script cases) the
/// script. The result is always a well-formed case in the same language.
pub fn mutate_case(rng: &mut StdRng, cfg: &GenConfig, case: &FuzzCase) -> FuzzCase {
    if !case.edits.is_empty() && rng.gen_bool(1.0 / 3.0) {
        return FuzzCase {
            tree: treeops::copy_tree(&case.tree),
            query: case.query.clone(),
            edits: mutate_edits(rng, cfg, &case.edits),
        };
    }
    if rng.gen_bool(0.5) {
        FuzzCase {
            tree: mutate_tree(rng, cfg, &case.tree),
            query: case.query.clone(),
            edits: case.edits.clone(),
        }
    } else {
        let query = match &case.query {
            CaseQuery::XPath(p) => CaseQuery::XPath(mutate_xpath(rng, cfg, p)),
            CaseQuery::Cq(q) => CaseQuery::Cq(mutate_cq(rng, cfg, q)),
            CaseQuery::Datalog(p) => CaseQuery::Datalog(mutate_datalog(rng, cfg, p)),
        };
        FuzzCase {
            tree: treeops::copy_tree(&case.tree),
            query,
            edits: case.edits.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_case, Category};
    use rand::SeedableRng;

    #[test]
    fn mutants_stay_well_formed() {
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..150 {
            let cat = Category::ALL[i % Category::ALL.len()];
            let mut case = gen_case(&mut rng, &cfg, cat);
            for _ in 0..4 {
                case = mutate_case(&mut rng, &cfg, &case);
                // Lowering panics or errors on malformed input; reaching
                // a plan proves the mutant is valid.
                let ir = case.query.lower();
                assert!(!treequery_core::applicable_strategies(&ir).is_empty());
                assert!(!case.tree.is_empty());
            }
        }
    }

    #[test]
    fn mutation_is_seed_deterministic() {
        let cfg = GenConfig::default();
        for cat in [Category::XPathDiff, Category::EditDiff] {
            let case = gen_case(&mut StdRng::seed_from_u64(3), &cfg, cat);
            let a = mutate_case(&mut StdRng::seed_from_u64(5), &cfg, &case);
            let b = mutate_case(&mut StdRng::seed_from_u64(5), &cfg, &case);
            assert_eq!(
                treequery_core::tree::to_term(&a.tree),
                treequery_core::tree::to_term(&b.tree)
            );
            assert_eq!(a.query.to_string(), b.query.to_string());
            assert_eq!(a.edits, b.edits);
        }
    }

    #[test]
    fn script_mutations_reach_every_kind() {
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(13);
        let mut case = gen_case(&mut rng, &cfg, Category::EditDiff);
        let original = case.edits.clone();
        let (mut grew, mut shrank) = (false, false);
        for _ in 0..60 {
            let mutant = mutate_case(&mut rng, &cfg, &case);
            grew |= mutant.edits.len() > case.edits.len();
            shrank |= mutant.edits.len() < case.edits.len();
            case = mutant;
            if case.edits.is_empty() {
                case.edits = original.clone();
            }
        }
        assert!(grew && shrank, "script mutation must both grow and shrink");
    }
}
