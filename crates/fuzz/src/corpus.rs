//! The persisted regression corpus.
//!
//! Every discrepancy a campaign finds is shrunk and saved as a
//! human-readable `.case` file under `tests/corpus/`, which ordinary
//! `cargo test` replays forever after (see `tests/corpus_replay.rs`).
//! The format is line-oriented `key: value` text:
//!
//! ```text
//! # treequery-fuzz reproducer
//! category: xpath-diff
//! lang: xpath
//! tree: r(a(b) c)
//! query: descendant::*[lab()=a]
//! edits: insert(0,0,b); relabel(2,a)
//! note: found by `harness fuzz --seed 0x1`
//! ```
//!
//! The optional `edits:` line is an edit script in the canonical
//! `tree::edit` syntax (`render_script`/`parse_script`), replayed by the
//! edit differential on every corpus replay.
//!
//! Trees round-trip through the term syntax of `tree::term`. XPath
//! round-trips through its own `Display`. CQs and datalog programs do
//! **not**: their `Display` impls print the paper's notation
//! (`x <pre y`, `label_a(v0)`), which their parsers deliberately reject.
//! [`render_cq`] and [`render_program`] therefore emit the parser
//! surface syntax (`pre_lt(x, y)`, `label(v0, a)`) instead, and the
//! corpus stores only re-parseable text.

use std::fmt::Write as _;
use std::path::{Path as FsPath, PathBuf};

use treequery_core::cq::{parse_cq, Cq, CqAtom};
use treequery_core::datalog::{parse_program, BasePred, BinRel, BodyAtom, Program, UnaryRef};
use treequery_core::tree::{parse_script, parse_term, render_script, to_term};
use treequery_core::xpath::parse_xpath;

use crate::{CaseQuery, FuzzCase};

/// Renders a CQ in the surface syntax `parse_cq` accepts.
pub fn render_cq(q: &Cq) -> String {
    let mut out = String::from("q(");
    for (i, v) in q.head.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(q.var_name(*v));
    }
    out.push_str(") :- ");
    for (i, atom) in q.atoms.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match atom {
            CqAtom::Label(l, v) => {
                let _ = write!(out, "label({}, {l})", q.var_name(*v));
            }
            CqAtom::Root(v) => {
                let _ = write!(out, "root({})", q.var_name(*v));
            }
            CqAtom::Leaf(v) => {
                let _ = write!(out, "leaf({})", q.var_name(*v));
            }
            CqAtom::Axis(ax, x, y) => {
                let _ = write!(
                    out,
                    "{}({}, {})",
                    ax.name().to_ascii_lowercase(),
                    q.var_name(*x),
                    q.var_name(*y)
                );
            }
            CqAtom::PreLt(x, y) => {
                let _ = write!(out, "pre_lt({}, {})", q.var_name(*x), q.var_name(*y));
            }
        }
    }
    out.push('.');
    out
}

/// Renders a datalog program, one line, in the surface syntax
/// `parse_program` accepts.
pub fn render_program(p: &Program) -> String {
    let mut out = String::new();
    for rule in &p.rules {
        let _ = write!(
            out,
            "{}(v{}) :- ",
            p.pred_name(rule.head),
            rule.head_var.index()
        );
        for (i, atom) in rule.body.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match atom {
                BodyAtom::Unary(UnaryRef::Pred(q), v) => {
                    let _ = write!(out, "{}(v{})", p.pred_name(*q), v.index());
                }
                BodyAtom::Unary(UnaryRef::Base(b), v) => {
                    let v = v.index();
                    let _ = match b {
                        BasePred::Dom => write!(out, "dom(v{v})"),
                        BasePred::Root => write!(out, "root(v{v})"),
                        BasePred::Leaf => write!(out, "leaf(v{v})"),
                        BasePred::FirstSibling => write!(out, "firstsibling(v{v})"),
                        BasePred::LastSibling => write!(out, "lastsibling(v{v})"),
                        BasePred::Label(l) => write!(out, "label(v{v}, {l})"),
                        BasePred::NotLabel(l) => write!(out, "notlabel(v{v}, {l})"),
                    };
                }
                BodyAtom::Binary(rel, x, y) => {
                    let name = match rel {
                        BinRel::FirstChild => "firstchild",
                        BinRel::NextSibling => "nextsibling",
                        BinRel::Child => "child",
                    };
                    let _ = write!(out, "{name}(v{}, v{})", x.index(), y.index());
                }
            }
        }
        out.push_str(". ");
    }
    if let Some(qp) = p.query {
        let _ = write!(out, "?- {}.", p.pred_name(qp));
    }
    out
}

/// A persisted reproducer: a case plus its category and provenance.
#[derive(Clone, Debug)]
pub struct Reproducer {
    /// The campaign category that found it (one of
    /// [`crate::gen::Category::name`]) — also the file-name prefix.
    pub category: String,
    /// The minimized failing input.
    pub case: FuzzCase,
    /// Free-text provenance (seed, law, culprit strategy).
    pub note: String,
}

/// Renders a reproducer in the corpus file format.
pub fn render_case(r: &Reproducer) -> String {
    let mut out = String::from("# treequery-fuzz reproducer\n");
    let _ = writeln!(out, "category: {}", r.category);
    let _ = writeln!(out, "lang: {}", r.case.query.lang());
    let _ = writeln!(out, "tree: {}", to_term(&r.case.tree));
    let _ = writeln!(out, "query: {}", r.case.query);
    if !r.case.edits.is_empty() {
        let _ = writeln!(out, "edits: {}", render_script(&r.case.edits));
    }
    if !r.note.is_empty() {
        let _ = writeln!(out, "note: {}", r.note.replace('\n', " "));
    }
    out
}

/// 64-bit FNV-1a — a stable hash for deterministic corpus file names
/// (the std hasher is explicitly not stable across releases).
pub(crate) fn fnv64(data: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The deterministic file name for a reproducer:
/// `{category}-{hash of content:016x}.case`.
pub fn case_file_name(r: &Reproducer) -> String {
    let mut key = format!(
        "{}\n{}\n{}",
        r.case.query.lang(),
        to_term(&r.case.tree),
        r.case.query
    );
    if !r.case.edits.is_empty() {
        key.push('\n');
        key.push_str(&render_script(&r.case.edits));
    }
    format!("{}-{:016x}.case", r.category, fnv64(&key))
}

/// Saves a reproducer into `dir` (created if missing), returning the
/// path. Identical cases map to identical file names, so re-finding a
/// known bug does not grow the corpus.
pub fn save_case(dir: &FsPath, r: &Reproducer) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(case_file_name(r));
    std::fs::write(&path, render_case(r))?;
    Ok(path)
}

fn parse_query(lang: &str, text: &str) -> Result<CaseQuery, String> {
    match lang {
        "xpath" => parse_xpath(text)
            .map(CaseQuery::XPath)
            .map_err(|e| format!("bad xpath: {e:?}")),
        "cq" => parse_cq(text)
            .map(CaseQuery::Cq)
            .map_err(|e| format!("bad cq: {e:?}")),
        "datalog" => parse_program(text)
            .map(CaseQuery::Datalog)
            .map_err(|e| format!("bad datalog: {e:?}")),
        other => Err(format!("unknown lang `{other}`")),
    }
}

/// Parses the corpus file format.
pub fn parse_case(text: &str) -> Result<Reproducer, String> {
    let mut category = None;
    let mut lang = None;
    let mut tree = None;
    let mut query = None;
    let mut edits = Vec::new();
    let mut note = String::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed line `{line}`"))?;
        let value = value.trim();
        match key.trim() {
            "category" => category = Some(value.to_owned()),
            "lang" => lang = Some(value.to_owned()),
            "tree" => tree = Some(parse_term(value).map_err(|e| format!("bad tree: {e:?}"))?),
            "query" => query = Some(value.to_owned()),
            "edits" => edits = parse_script(value).map_err(|e| format!("bad edits: {e}"))?,
            "note" => note = value.to_owned(),
            other => return Err(format!("unknown key `{other}`")),
        }
    }
    let lang = lang.ok_or("missing lang")?;
    let query = parse_query(&lang, &query.ok_or("missing query")?)?;
    Ok(Reproducer {
        category: category.ok_or("missing category")?,
        case: FuzzCase {
            tree: tree.ok_or("missing tree")?,
            query,
            edits,
        },
        note,
    })
}

/// Loads one `.case` file.
pub fn load_case(path: &FsPath) -> Result<Reproducer, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_case(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Loads every `.case` file in `dir`, sorted by file name. A missing
/// directory is an empty corpus, not an error.
pub fn load_dir(dir: &FsPath) -> Result<Vec<(PathBuf, Reproducer)>, String> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(out),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    paths.sort();
    for p in paths {
        let r = load_case(&p)?;
        out.push((p, r));
    }
    Ok(out)
}

/// Replays a reproducer: the full differential check plus every
/// metamorphic law, with a deterministic rng derived from the case
/// content. Returns a failure description, or `None` when the case
/// passes (i.e. the bug it reproduces is fixed or never regresses).
pub fn replay(r: &Reproducer) -> Option<String> {
    use rand::SeedableRng;
    let opts = crate::diff::DiffOptions::default();
    let (d, _) = crate::diff::differential_check(&r.case, &opts);
    if let Some(d) = d {
        return Some(d.to_string());
    }
    if !r.case.edits.is_empty() {
        let (d, _) = crate::diff::edit_differential_check(&r.case, &opts);
        if let Some(d) = d {
            return Some(d.to_string());
        }
    }
    let seed = fnv64(&render_case(r));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (v, _) = crate::oracle::check_laws(&r.case, &mut rng);
    v.map(|v| v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_case, Category, GenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn corpus_format_round_trips_generated_cases() {
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..100 {
            let cat = Category::ALL[i % Category::ALL.len()];
            let case = gen_case(&mut rng, &cfg, cat);
            let r = Reproducer {
                category: cat.name().to_owned(),
                case,
                note: "round-trip".into(),
            };
            let text = render_case(&r);
            let back = parse_case(&text).expect("rendered case must parse");
            // The fixpoint the corpus relies on: render(parse(render(x)))
            // is byte-identical to render(x).
            assert_eq!(render_case(&back), text);
        }
    }

    #[test]
    fn file_names_are_deterministic_and_content_addressed() {
        let cfg = GenConfig::default();
        let case = gen_case(&mut StdRng::seed_from_u64(4), &cfg, Category::XPathDiff);
        let r = Reproducer {
            category: "xpath-diff".into(),
            case,
            note: "one".into(),
        };
        let mut r2 = r.clone();
        r2.note = "different note".into();
        // The note is provenance, not identity.
        assert_eq!(case_file_name(&r), case_file_name(&r2));
        assert!(case_file_name(&r).ends_with(".case"));
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("treequery-fuzz-corpus-test");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(21);
        let case = gen_case(&mut rng, &cfg, Category::DatalogDiff);
        let r = Reproducer {
            category: "datalog-diff".into(),
            case,
            note: "io round-trip".into(),
        };
        let path = save_case(&dir, &r).unwrap();
        let loaded = load_case(&path).unwrap();
        assert_eq!(render_case(&loaded), render_case(&r));
        let all = load_dir(&dir).unwrap();
        assert_eq!(all.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_cases_are_rejected() {
        assert!(parse_case("lang: xpath\nquery: child::*").is_err()); // no tree/category
        assert!(parse_case("category: x\nlang: klingon\ntree: r\nquery: q").is_err());
        assert!(parse_case("category: x\nlang: xpath\ntree: r(\nquery: child::*").is_err());
        assert!(parse_case("garbage without a colon").is_err());
    }
}
